package jem

import (
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/parallel"
)

// VerifyOptions configures alignment-verified mapping.
type VerifyOptions struct {
	// TopX is how many sketch candidates to rescore per segment
	// (default 3).
	TopX int
	// MinIdentity drops verified mappings below this percent identity
	// (default 80).
	MinIdentity float64
}

func (v VerifyOptions) withDefaults() VerifyOptions {
	if v.TopX == 0 {
		v.TopX = 3
	}
	if v.MinIdentity == 0 {
		v.MinIdentity = 80
	}
	return v
}

// VerifiedMapping is a mapping whose best hit was chosen by banded
// alignment among the sketch's top-x candidates.
type VerifiedMapping struct {
	Mapping
	// Identity is the percent identity of the winning alignment.
	Identity float64
	// CIGAR is the winning alignment's CIGAR string (query = segment).
	CIGAR string
	// TargetStart/TargetEnd is the aligned span on the contig.
	TargetStart, TargetEnd int
	// Reverse is true when the segment aligned as its reverse
	// complement (SAM flag 0x10).
	Reverse bool
	// Rescued is true when verification changed the winner relative
	// to plain trial-count ranking.
	Rescued bool
}

// MapReadsVerified maps end segments by sketch, then rescoreseach
// segment's top-x candidates with a banded local alignment and reports
// the alignment winner — the paper's future-work direction (i):
// trading a little alignment work (x alignments per segment instead of
// |S|) for precision on repetitive inputs. Requires the mapper to have
// been built with contig records (NewMapper retains them; index-loaded
// mappers need them passed to LoadMapper).
func (m *Mapper) MapReadsVerified(reads []Record, vo VerifyOptions) []VerifiedMapping {
	vo = vo.withDefaults()
	sc := align.DefaultScoring()
	out := make([][]VerifiedMapping, len(reads))
	parallel.ForEachWorker(len(reads), m.opts.Workers,
		func() *core.Session { return m.core.NewSession() },
		func(sess *core.Session, i int) {
			segs, kinds := core.EndSegments(reads[i].Seq, m.opts.SegmentLen)
			vms := make([]VerifiedMapping, 0, len(segs))
			for si, seg := range segs {
				vm := VerifiedMapping{Mapping: Mapping{
					ReadIndex: i,
					ReadID:    reads[i].ID,
					End:       PrefixEnd,
				}}
				if kinds[si] == core.Suffix {
					vm.End = SuffixEnd
				}
				hits := sess.MapSegmentTopK(seg, vo.TopX)
				bestIdx := -1
				bestRev := false
				var best align.Result
				for hi, h := range hits {
					res, rev := align.FastIdentityStranded(seg, m.contigs[h.Subject].Seq, sc, 64)
					if bestIdx < 0 || res.Score > best.Score {
						best = res
						bestRev = rev
						bestIdx = hi
					}
				}
				if bestIdx >= 0 && best.PercentIdentity() >= vo.MinIdentity {
					h := hits[bestIdx]
					vm.Mapped = true
					vm.Contig = int(h.Subject)
					vm.ContigID = m.core.Subject(h.Subject).Name
					vm.SharedTrials = int(h.Count)
					vm.Identity = best.PercentIdentity()
					vm.CIGAR = best.CIGAR()
					vm.TargetStart = best.BStart
					vm.TargetEnd = best.BEnd
					vm.Reverse = bestRev
					vm.Rescued = bestIdx != 0
				}
				vms = append(vms, vm)
			}
			out[i] = vms
		})
	flat := make([]VerifiedMapping, 0, 2*len(reads))
	for _, vms := range out {
		flat = append(flat, vms...)
	}
	return flat
}
