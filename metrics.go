package jem

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// mapperMetrics bundles every instrument a facade Mapper owns: the
// core serving counters (installed via core.EnableMetrics) plus the
// streaming-pipeline counters and phase-wall gauges MapStream drives.
// The registry these live in is the fleet-wide source of truth; each
// Map/Stream invocation additionally carries its own runStats so
// concurrent runs on one Mapper report correct per-run Stats (see
// newRun).
type mapperMetrics struct {
	core *core.Metrics

	reads    *obs.Counter // records pulled from the input stream
	segments *obs.Counter // end segments drained by the stream writer
	mapped   *obs.Counter // drained segments that hit a contig

	badRecords  *obs.Counter // malformed/over-length records rejected by the reader
	quarantined *obs.Counter // bad records written to the quarantine sidecar
	panics      *obs.Counter // worker panics recovered into batch errors

	readWall  *obs.Wall // cumulative wall time parsing input records
	mapWall   *obs.Wall // cumulative worker wall time sketching+mapping
	writeWall *obs.Wall // cumulative wall time formatting+writing TSV
}

func newMapperMetrics(reg *obs.Registry, cm *core.Mapper) *mapperMetrics {
	return &mapperMetrics{
		core:     cm.EnableMetrics(reg),
		reads:    reg.Counter("jem_stream_reads_total", "records pulled from the input stream"),
		segments: reg.Counter("jem_stream_segments_total", "end segments drained by the stream writer"),
		mapped:   reg.Counter("jem_stream_segments_mapped_total", "drained segments that hit a contig"),
		badRecords: reg.Counter("jem_stream_bad_records_total",
			"malformed or over-length records rejected by the stream reader"),
		quarantined: reg.Counter("jem_stream_quarantined_total",
			"bad records written to the quarantine sidecar"),
		panics: reg.Counter("jem_stream_worker_panics_total",
			"worker panics recovered into per-batch errors"),
		readWall: reg.Wall("jem_stream_read_wall_seconds",
			"cumulative wall time parsing FASTA/FASTQ records"),
		mapWall: reg.Wall("jem_stream_map_wall_seconds",
			"cumulative worker wall time sketching and mapping"),
		writeWall: reg.Wall("jem_stream_write_wall_seconds",
			"cumulative wall time formatting and writing TSV rows"),
	}
}

// runScope is one Map/Stream invocation's stats scope: every pipeline
// event is recorded twice, into the mapper's registry instruments
// (fleet-wide, shared by every concurrent run) and into this run's own
// delta accumulators. Per-run Stats are read from the accumulators, so
// N overlapping runs each report exactly their own work while the
// registry still shows the aggregate — the two views sum consistently
// by construction.
//
// Before runScope existed, Stats was derived by diffing registry
// snapshots taken at the start and end of a run; any concurrent
// traffic on the same Mapper (a second Stream, a Map batch) landed in
// between and was misattributed to whichever run read its snapshot
// later. A long-lived server doing concurrent mapping sessions is
// exactly that workload.
//
// All fields are atomics: the reader goroutine, the worker pool and
// the writer each feed different fields, and wall totals from several
// workers land on mapWallNS concurrently.
type runScope struct {
	mm *mapperMetrics

	reads, segments, mapped         atomic.Int64
	badRecords, quarantined, panics atomic.Int64
	postings                        atomic.Int64

	// Wall totals in integer nanoseconds — same representation as the
	// registry's obs.Wall gauges, so per-run and fleet-wide wall time
	// never disagree by float rounding.
	readWallNS, mapWallNS, writeWallNS atomic.Int64

	// lost is the union of shard ids lost by this run's worker
	// sessions (remote serving only; see Stats.ShardsLost). Guarded by
	// lostMu: workers merge their sessions' lost sets as they exit.
	lostMu sync.Mutex
	lost   map[int]struct{}
}

// newRun opens a fresh per-run scope over the mapper's instruments.
func (mm *mapperMetrics) newRun() *runScope { return &runScope{mm: mm} }

func (rs *runScope) incRead() {
	rs.mm.reads.Inc()
	rs.reads.Add(1)
}

func (rs *runScope) incBadRecord() {
	rs.mm.badRecords.Inc()
	rs.badRecords.Add(1)
}

func (rs *runScope) incQuarantined() {
	rs.mm.quarantined.Inc()
	rs.quarantined.Add(1)
}

func (rs *runScope) incPanic() {
	rs.mm.panics.Inc()
	rs.panics.Add(1)
}

// addDrained accounts one drained batch: segments written (or
// accounted after a write error) and how many of them hit a contig.
func (rs *runScope) addDrained(segments, mapped int64) {
	rs.mm.segments.Add(segments)
	rs.mm.mapped.Add(mapped)
	rs.segments.Add(segments)
	rs.mapped.Add(mapped)
}

// addPostings attributes one worker session's posting scans to this
// run. The registry's core counter already received them per segment
// (the session's instrumented lookups), so only the run accumulator
// moves here.
func (rs *runScope) addPostings(n int64) { rs.postings.Add(n) }

// addLostShards merges one worker session's lost-shard ids into the
// run's degraded-answer record. The coordinator's registry counter
// (jem_shardnet_shards_lost_total) already counted each loss; this is
// the per-run view that becomes Stats.ShardsLost.
func (rs *runScope) addLostShards(ids []int) {
	if len(ids) == 0 {
		return
	}
	rs.lostMu.Lock()
	defer rs.lostMu.Unlock()
	if rs.lost == nil {
		rs.lost = make(map[int]struct{}, len(ids))
	}
	for _, sd := range ids {
		rs.lost[sd] = struct{}{}
	}
}

func (rs *runScope) addReadWall(d time.Duration) {
	rs.mm.readWall.Add(d)
	rs.readWallNS.Add(int64(d))
}

func (rs *runScope) addMapWall(d time.Duration) {
	rs.mm.mapWall.Add(d)
	rs.mapWallNS.Add(int64(d))
}

func (rs *runScope) addWriteWall(d time.Duration) {
	rs.mm.writeWall.Add(d)
	rs.writeWallNS.Add(int64(d))
}

// stats renders the run's accumulators as the Stats returned to the
// caller. Safe to call once the pipeline has drained (the stream's
// goroutines have all exited by then, so the loads observe every
// update).
func (rs *runScope) stats() Stats {
	var lost []int
	rs.lostMu.Lock()
	if len(rs.lost) > 0 {
		lost = make([]int, 0, len(rs.lost))
		for sd := range rs.lost {
			lost = append(lost, sd)
		}
		sort.Ints(lost)
	}
	rs.lostMu.Unlock()
	return Stats{
		ShardsLost:      lost,
		Reads:           int(rs.reads.Load()),
		Segments:        int(rs.segments.Load()),
		Mapped:          int(rs.mapped.Load()),
		BadRecords:      int(rs.badRecords.Load()),
		Quarantined:     int(rs.quarantined.Load()),
		WorkerPanics:    int(rs.panics.Load()),
		PostingsScanned: rs.postings.Load(),
		ReadWall:        time.Duration(rs.readWallNS.Load()),
		MapWall:         time.Duration(rs.mapWallNS.Load()),
		WriteWall:       time.Duration(rs.writeWallNS.Load()),
	}
}

// Metrics returns the mapper's observability registry: the core
// serving counters and lookup-latency histogram, the streaming
// pipeline counters, and the phase tracer (index build/freeze,
// save/load spans). Serve it live with obs.Serve (jem-mapper
// -metrics-addr) or render it with WritePrometheus/WriteTable.
func (m *Mapper) Metrics() *obs.Registry { return m.reg }
