package jem

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// mapperMetrics bundles every instrument a facade Mapper owns: the
// core serving counters (installed via core.EnableMetrics) plus the
// streaming-pipeline counters and phase-wall gauges MapStream drives.
// The registry these live in is the single source of truth — the
// Stats returned by MapStream is derived from registry movement, not
// from parallel bookkeeping.
type mapperMetrics struct {
	core *core.Metrics

	reads    *obs.Counter // records pulled from the input stream
	segments *obs.Counter // end segments drained by the stream writer
	mapped   *obs.Counter // drained segments that hit a contig

	badRecords  *obs.Counter // malformed/over-length records rejected by the reader
	quarantined *obs.Counter // bad records written to the quarantine sidecar
	panics      *obs.Counter // worker panics recovered into batch errors

	readWall  *obs.Gauge // cumulative seconds parsing input records
	mapWall   *obs.Gauge // cumulative worker seconds sketching+mapping
	writeWall *obs.Gauge // cumulative seconds formatting+writing TSV
}

func newMapperMetrics(reg *obs.Registry, cm *core.Mapper) *mapperMetrics {
	return &mapperMetrics{
		core:     cm.EnableMetrics(reg),
		reads:    reg.Counter("jem_stream_reads_total", "records pulled from the input stream"),
		segments: reg.Counter("jem_stream_segments_total", "end segments drained by the stream writer"),
		mapped:   reg.Counter("jem_stream_segments_mapped_total", "drained segments that hit a contig"),
		badRecords: reg.Counter("jem_stream_bad_records_total",
			"malformed or over-length records rejected by the stream reader"),
		quarantined: reg.Counter("jem_stream_quarantined_total",
			"bad records written to the quarantine sidecar"),
		panics: reg.Counter("jem_stream_worker_panics_total",
			"worker panics recovered into per-batch errors"),
		readWall: reg.Gauge("jem_stream_read_wall_seconds",
			"cumulative wall time parsing FASTA/FASTQ records"),
		mapWall: reg.Gauge("jem_stream_map_wall_seconds",
			"cumulative worker wall time sketching and mapping"),
		writeWall: reg.Gauge("jem_stream_write_wall_seconds",
			"cumulative wall time formatting and writing TSV rows"),
	}
}

// streamSnapshot is a point-in-time reading of the instruments one
// MapStream run moves. Two snapshots bracket a run; their difference
// is that run's Stats.
type streamSnapshot struct {
	reads, segments, mapped, postings int64
	badRecords, quarantined, panics   int64
	readWall, mapWall, writeWall      float64
}

func (mm *mapperMetrics) snapshot() streamSnapshot {
	return streamSnapshot{
		reads:       mm.reads.Value(),
		segments:    mm.segments.Value(),
		mapped:      mm.mapped.Value(),
		postings:    mm.core.Postings.Value(),
		badRecords:  mm.badRecords.Value(),
		quarantined: mm.quarantined.Value(),
		panics:      mm.panics.Value(),
		readWall:    mm.readWall.Value(),
		mapWall:     mm.mapWall.Value(),
		writeWall:   mm.writeWall.Value(),
	}
}

// statsSince derives a Stats from the registry movement since base.
// Counters are exact; wall times round-trip through float seconds
// (sub-nanosecond error over any realistic run length).
func (mm *mapperMetrics) statsSince(base streamSnapshot) Stats {
	now := mm.snapshot()
	return Stats{
		Reads:           int(now.reads - base.reads),
		Segments:        int(now.segments - base.segments),
		Mapped:          int(now.mapped - base.mapped),
		BadRecords:      int(now.badRecords - base.badRecords),
		Quarantined:     int(now.quarantined - base.quarantined),
		WorkerPanics:    int(now.panics - base.panics),
		PostingsScanned: now.postings - base.postings,
		ReadWall:        secondsToDuration(now.readWall - base.readWall),
		MapWall:         secondsToDuration(now.mapWall - base.mapWall),
		WriteWall:       secondsToDuration(now.writeWall - base.writeWall),
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Metrics returns the mapper's observability registry: the core
// serving counters and lookup-latency histogram, the streaming
// pipeline counters, and the phase tracer (index build/freeze,
// save/load spans). Serve it live with obs.Serve (jem-mapper
// -metrics-addr) or render it with WritePrometheus/WriteTable.
func (m *Mapper) Metrics() *obs.Registry { return m.reg }
