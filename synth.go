package jem

import (
	"repro/internal/assemble"
	"repro/internal/genome"
	"repro/internal/simulate"
)

// SynthesisConfig describes a complete synthetic hybrid-sequencing
// dataset: a reference genome, an Illumina short-read run assembled
// into contigs, and a HiFi long-read run.
type SynthesisConfig struct {
	// Name labels the dataset.
	Name string
	// GenomeLength is the reference length in bases.
	GenomeLength int
	// RepeatFraction (0..1) controls genome complexity; higher values
	// emulate repetitive eukaryotic genomes.
	RepeatFraction float64
	// RepeatDivergence (0..1) is the per-base divergence between
	// repeat copies; 0 means 0.05.
	RepeatDivergence float64
	// Heterozygosity makes the genome diploid with this per-base SNP
	// rate between haplotypes; both read sets are then drawn from both
	// haplotypes (half the coverage each). SNP-only variation keeps
	// ground-truth coordinates valid on haplotype 1.
	Heterozygosity float64
	// HiFiCoverage is the long-read depth; 0 means 10 (the paper's
	// simulated setting).
	HiFiCoverage float64
	// HiFiMedianLen is the median long-read length; 0 means 10000.
	HiFiMedianLen int
	// ShortCoverage is the Illumina depth feeding the assembler; 0
	// means 30.
	ShortCoverage float64
	// AssemblyK is the de Bruijn k; 0 means 31.
	AssemblyK int
	// DisableBubblePopping passes through to the assembler (ablation
	// knob; popping is on by default).
	DisableBubblePopping bool
	// Seed makes the dataset reproducible.
	Seed int64
	// Workers bounds parallelism; ≤0 means GOMAXPROCS.
	Workers int
}

// Dataset is a synthesized hybrid-sequencing input with ground truth.
type Dataset struct {
	Name string
	// Chromosomes is the reference the reads were sampled from.
	Chromosomes []Record
	// Contigs is the short-read assembly (the subject set S).
	Contigs []Record
	// Reads are the HiFi long reads (the query set Q).
	Reads []Record
	// Truth carries per-read sampling coordinates for benchmarking.
	Truth []simulate.Read
	// AssemblyStats summarizes the contig set.
	AssemblyStats assemble.Stats
}

// Synthesize builds a full dataset: genome → short reads → contigs,
// plus long reads with ground-truth coordinates. It substitutes for
// the paper's NCBI + ART + Minia + Sim-it pipeline.
func Synthesize(cfg SynthesisConfig) (*Dataset, error) {
	if cfg.HiFiCoverage == 0 {
		cfg.HiFiCoverage = 10
	}
	if cfg.ShortCoverage == 0 {
		cfg.ShortCoverage = 30
	}
	if cfg.RepeatDivergence == 0 {
		cfg.RepeatDivergence = 0.05
	}
	g, err := genome.Generate(genome.Config{
		Name:             cfg.Name,
		Length:           cfg.GenomeLength,
		RepeatFraction:   cfg.RepeatFraction,
		RepeatDivergence: cfg.RepeatDivergence,
		Heterozygosity:   cfg.Heterozygosity,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	shortCov := cfg.ShortCoverage
	hifiCov := cfg.HiFiCoverage
	diploid := g.Haplotype2 != nil
	if diploid {
		shortCov /= 2
		hifiCov /= 2
	}
	short, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{
		Coverage: shortCov,
		Seed:     cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	shortRecs := simulate.Records(short)
	if diploid {
		short2, err := simulate.Illumina(g.Haplotype2, simulate.IlluminaConfig{
			Coverage:   shortCov,
			Seed:       cfg.Seed + 3,
			NamePrefix: "sr2",
		})
		if err != nil {
			return nil, err
		}
		shortRecs = append(shortRecs, simulate.Records(short2)...)
	}
	asm, err := assemble.Assemble(shortRecs, assemble.Config{
		K:                    cfg.AssemblyK,
		Workers:              cfg.Workers,
		DisableBubblePopping: cfg.DisableBubblePopping,
	})
	if err != nil {
		return nil, err
	}
	long, err := simulate.HiFi(g.Records, simulate.HiFiConfig{
		Coverage:  hifiCov,
		MedianLen: cfg.HiFiMedianLen,
		Seed:      cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	if diploid {
		// SNP-only haplotypes share coordinates, so hap2 reads keep
		// valid hap1 ground truth.
		long2, err := simulate.HiFi(g.Haplotype2, simulate.HiFiConfig{
			Coverage:   hifiCov,
			MedianLen:  cfg.HiFiMedianLen,
			Seed:       cfg.Seed + 4,
			NamePrefix: "hifi2",
		})
		if err != nil {
			return nil, err
		}
		long = append(long, long2...)
	}
	return &Dataset{
		Name:          cfg.Name,
		Chromosomes:   g.Records,
		Contigs:       asm.Contigs,
		Reads:         simulate.Records(long),
		Truth:         long,
		AssemblyStats: asm.Stats,
	}, nil
}
