package jem_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
)

// TestFilePipeline exercises the on-disk workflow the CLIs implement:
// dataset to (gzipped) FASTA/FASTQ files, reload, map, index
// save/load, TSV round trip, and evaluation of the reloaded artifacts.
func TestFilePipeline(t *testing.T) {
	ds := buildSmallDataset(t)
	dir := t.TempDir()
	contigPath := filepath.Join(dir, "contigs.fasta.gz")
	readPath := filepath.Join(dir, "reads.fastq.gz")
	refPath := filepath.Join(dir, "ref.fasta")
	if err := jem.WriteFASTA(contigPath, ds.Contigs); err != nil {
		t.Fatal(err)
	}
	if err := jem.WriteFASTQ(readPath, ds.Reads); err != nil {
		t.Fatal(err)
	}
	if err := jem.WriteFASTA(refPath, ds.Chromosomes); err != nil {
		t.Fatal(err)
	}

	contigs, err := jem.ReadSequences(contigPath)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := jem.ReadSequences(readPath)
	if err != nil {
		t.Fatal(err)
	}
	chromosomes, err := jem.ReadSequences(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != len(ds.Contigs) || len(reads) != len(ds.Reads) {
		t.Fatalf("reload lost records: %d/%d contigs, %d/%d reads",
			len(contigs), len(ds.Contigs), len(reads), len(ds.Reads))
	}

	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mappings := mapAll(mapper, reads)

	// Index round trip through a file.
	idxPath := filepath.Join(dir, "contigs.jemidx")
	f, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapper.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := jem.LoadMapper(f2, contigs)
	_ = f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	reloadedMappings := mapAll(loaded, reads)
	if !reflect.DeepEqual(mappings, reloadedMappings) {
		t.Fatal("index-loaded mapper maps differently")
	}

	// TSV round trip + evaluation against ground truth recovered from
	// the FASTQ headers (the jem-eval path).
	var buf bytes.Buffer
	if err := jem.WriteTSV(&buf, mappings); err != nil {
		t.Fatal(err)
	}
	parsed, err := jem.ReadTSV(&buf, reads, contigs)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := jem.GroundTruthReads(reads)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := &jem.Dataset{
		Chromosomes: chromosomes,
		Contigs:     contigs,
		Reads:       reads,
		Truth:       truth,
	}
	bench, err := jem.BuildBenchmark(reloaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := bench.Evaluate(parsed)
	if q.Precision < 0.9 || q.Recall < 0.85 {
		t.Errorf("file-pipeline quality degraded: precision %.3f recall %.3f", q.Precision, q.Recall)
	}
}
