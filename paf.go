package jem

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/parallel"
)

// PositionalMapping extends Mapping with approximate coordinates: the
// segment's span on the read, the estimated target window on the
// contig (from the positional sketch table), and an estimated relative
// strand. These estimates are an extension over the paper, whose
// output is best-hit contig ids only.
type PositionalMapping struct {
	Mapping
	// QueryStart/QueryEnd is the segment's span on the read.
	QueryStart, QueryEnd int
	// TargetStart/TargetEnd is the estimated mapped window on the
	// contig (TargetStart == -1 when no estimate exists).
	TargetStart, TargetEnd int
	// Strand is '+' when the segment matches the contig forward, '-'
	// for reverse complement, and '?' when it cannot be estimated.
	Strand byte
}

// MapReadsPositional maps both end segments of every read and
// augments each mapping with positional and strand estimates.
func (m *Mapper) MapReadsPositional(reads []Record) []PositionalMapping {
	out := make([][]PositionalMapping, len(reads))
	parallel.ForEachWorker(len(reads), m.opts.Workers,
		func() *core.Session { return m.core.NewSession() },
		func(sess *core.Session, i int) {
			out[i] = m.mapOnePositional(sess, i, reads[i])
		})
	flat := make([]PositionalMapping, 0, 2*len(reads))
	for _, ms := range out {
		flat = append(flat, ms...)
	}
	return flat
}

func (m *Mapper) mapOnePositional(sess *core.Session, readIndex int, read Record) []PositionalMapping {
	segs, kinds := core.EndSegments(read.Seq, m.opts.SegmentLen)
	results := make([]PositionalMapping, len(segs))
	offset := 0
	for i, seg := range segs {
		if kinds[i] == core.Suffix {
			offset = len(read.Seq) - len(seg)
		}
		pm := PositionalMapping{
			Mapping: Mapping{
				ReadIndex: readIndex,
				ReadID:    read.ID,
				End:       PrefixEnd,
			},
			QueryStart:  offset,
			QueryEnd:    offset + len(seg),
			TargetStart: -1,
			Strand:      '?',
		}
		if kinds[i] == core.Suffix {
			pm.End = SuffixEnd
		}
		if hit, ok := sess.MapSegmentPositional(seg); ok {
			pm.Mapped = true
			pm.Contig = int(hit.Subject)
			pm.ContigID = m.core.Subject(hit.Subject).Name
			pm.SharedTrials = int(hit.Count)
			if hit.TargetStart >= 0 {
				pm.TargetStart = int(hit.TargetStart)
				pm.TargetEnd = int(hit.TargetEnd)
				if hit.Reverse {
					pm.Strand = '-'
				} else {
					pm.Strand = '+'
				}
			}
		}
		results[i] = pm
	}
	return results
}

// WritePAF writes positional mappings in PAF (pairwise alignment
// format), the interchange format of minimap2/Mashmap. Columns 10-11
// (matching bases, block length) are approximated by the shared-trial
// count scaled to the segment length and the segment length
// respectively; a `jm:i:` tag carries the raw shared-trial count.
// Unmapped segments are skipped (PAF has no unmapped rows).
func (m *Mapper) WritePAF(w io.Writer, mappings []PositionalMapping, reads []Record) error {
	for _, pm := range mappings {
		if !pm.Mapped || pm.TargetStart < 0 {
			continue
		}
		strand := pm.Strand
		if strand == '?' {
			strand = '+'
		}
		readLen := len(reads[pm.ReadIndex].Seq)
		tlen := int(m.core.Subject(int32(pm.Contig)).Length)
		segLen := pm.QueryEnd - pm.QueryStart
		matches := segLen * pm.SharedTrials / m.opts.Trials
		mapq := 60 * pm.SharedTrials / m.opts.Trials
		if mapq > 60 {
			mapq = 60
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tjm:i:%d\n",
			pm.ReadID, readLen, pm.QueryStart, pm.QueryEnd, strand,
			pm.ContigID, tlen, pm.TargetStart, pm.TargetEnd,
			matches, segLen, mapq, pm.SharedTrials); err != nil {
			return err
		}
	}
	return nil
}
