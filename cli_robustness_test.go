package jem_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildMapperBinary compiles cmd/jem-mapper into dir and returns its
// path.
func buildMapperBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "jem-mapper")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/jem-mapper").CombinedOutput(); err != nil {
		t.Fatalf("building jem-mapper: %v\n%s", err, out)
	}
	return bin
}

// writeTinyDataset writes a deterministic contig FASTA and a reads
// FASTA (nReads reads of 3000 bases sliced from the contig) into dir.
func writeTinyDataset(t *testing.T, dir string, nReads int) (contigPath, readPath string) {
	t.Helper()
	bases := []byte("ACGT")
	contig := make([]byte, 12000)
	state := uint64(42)
	for i := range contig {
		state = state*6364136223846793005 + 1442695040888963407
		contig[i] = bases[state>>62]
	}
	var fa strings.Builder
	fa.WriteString(">contig0\n")
	fa.Write(contig)
	fa.WriteString("\n")
	contigPath = filepath.Join(dir, "contigs.fasta")
	if err := os.WriteFile(contigPath, []byte(fa.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var reads strings.Builder
	for i := 0; i < nReads; i++ {
		off := (i * 997) % (len(contig) - 3000)
		fmt.Fprintf(&reads, ">read%d\n%s\n", i, contig[off:off+3000])
	}
	readPath = filepath.Join(dir, "reads.fasta")
	if err := os.WriteFile(readPath, []byte(reads.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return contigPath, readPath
}

// TestMapperCorruptIndexFallback: a bit-flipped index file must not be
// served. jem-mapper detects the checksum mismatch, warns, rebuilds
// from the contigs, and produces the same mapping a fresh build does.
func TestMapperCorruptIndexFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the jem-mapper binary")
	}
	dir := t.TempDir()
	bin := buildMapperBinary(t, dir)
	contigPath, readPath := writeTinyDataset(t, dir, 6)
	idx := filepath.Join(dir, "contigs.idx")
	m1 := filepath.Join(dir, "m1.tsv")
	if out, err := exec.Command(bin, "-save-index", idx, "-o", m1, contigPath, readPath).CombinedOutput(); err != nil {
		t.Fatalf("save-index run: %v\n%s", err, out)
	}
	// Flip one byte near the middle of the index (inside the table).
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(idx, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := filepath.Join(dir, "m2.tsv")
	out, err := exec.Command(bin, "-load-index", idx, "-o", m2, contigPath, readPath).CombinedOutput()
	if err != nil {
		t.Fatalf("corrupt-index run should fall back, not fail: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "corrupt") || !strings.Contains(string(out), "rebuilding") {
		t.Errorf("stderr does not report the fallback:\n%s", out)
	}
	b1, _ := os.ReadFile(m1)
	b2, _ := os.ReadFile(m2)
	if len(b1) == 0 || string(b1) != string(b2) {
		t.Error("rebuilt mapping differs from the original")
	}
}

// TestMapperKillMidStream: SIGINT during a -stream run must drain
// in-flight batches, flush a well-formed partial TSV, report the
// interruption and exit non-zero. JEM_FAULTS=writer.slow throttles
// row writes so the interrupt reliably lands mid-stream.
func TestMapperKillMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the jem-mapper binary")
	}
	dir := t.TempDir()
	bin := buildMapperBinary(t, dir)
	// 2000 reads = 32 batches: far more than fit in the pipeline (~7
	// batches with 2 workers), so the slow writer backpressures the
	// reader and the signal reliably lands while input remains unread.
	contigPath, readPath := writeTinyDataset(t, dir, 2000)
	outPath := filepath.Join(dir, "out.tsv")
	cmd := exec.Command(bin, "-stream", "-workers", "2", "-o", outPath, contigPath, readPath)
	// 5ms per row throttles the writer to ~1s of slow output; times
	// bounds the post-signal drain so the test stays fast.
	cmd.Env = append(os.Environ(), "JEM_FAULTS=writer.slow:delay=5ms,times=200")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("interrupted run exited zero; stderr:\n%s", stderr.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit status: %v (want exit code 1)", err)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
	}
	// The partial TSV must be well-formed: header plus complete rows.
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	content := string(raw)
	if !strings.HasPrefix(content, "read_id\tend\tcontig_id\tshared_trials\n") {
		t.Fatalf("partial output lacks the header: %q", content[:min(len(content), 60)])
	}
	if !strings.HasSuffix(content, "\n") {
		t.Fatalf("partial output ends mid-row: %q", content[max(0, len(content)-60):])
	}
	lines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
	for i, ln := range lines[1:] {
		if strings.Count(ln, "\t") != 3 {
			t.Fatalf("row %d is torn: %q", i, ln)
		}
	}
	if len(lines)-1 >= 2*2000 {
		t.Errorf("all %d rows written; the interrupt landed too late to test anything", len(lines)-1)
	}
}

// TestMapperQuarantineSidecar: the quarantine policy end to end —
// the run succeeds, the sidecar file names the bad record, and the
// same input under the default fail policy exits non-zero.
func TestMapperQuarantineSidecar(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the jem-mapper binary")
	}
	dir := t.TempDir()
	bin := buildMapperBinary(t, dir)
	contigPath, readPath := writeTinyDataset(t, dir, 6)
	// Append a malformed FASTA record (header, then '>' inside payload).
	f, err := os.OpenFile(readPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(">badread\nACGT>GGTT\nACGT\n>lastread\nACGTACGTACGT\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.tsv")

	// Default policy: the malformed record fails the run.
	if out, err := exec.Command(bin, "-stream", "-o", outPath, contigPath, readPath).CombinedOutput(); err == nil {
		t.Fatalf("fail policy accepted a malformed record:\n%s", out)
	}

	out, err := exec.Command(bin, "-stream", "-on-bad-record=quarantine", "-o", outPath,
		contigPath, readPath).CombinedOutput()
	if err != nil {
		t.Fatalf("quarantine run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "quarantined 1 bad records") {
		t.Errorf("stderr does not report the quarantine:\n%s", out)
	}
	side, err := os.ReadFile(outPath + ".quarantine")
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if !strings.Contains(string(side), "badread") || strings.Count(string(side), "\n") != 1 {
		t.Errorf("sidecar content: %q", side)
	}
	// The good records around the bad one were all mapped.
	tsv, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tsv), "lastread") || !strings.Contains(string(tsv), "read5") {
		t.Errorf("good records missing from output:\n%s", tsv)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
