// Benchmarks regenerating the paper's tables and figures (one
// benchmark per exhibit, on scaled-down datasets), plus
// micro-benchmarks of the hot paths and ablation benches for the
// design choices called out in DESIGN.md.
//
// Quality metrics are attached via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both runtime and the reproduced statistics. Datasets are
// cached process-wide: the first benchmark touching a dataset pays
// its synthesis cost inside the timed region of its first iteration
// only if it is the builder (Table1); the others reuse the cache.
package jem_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// benchScale keeps full-suite bench runs in the minutes range.
const benchScale = 0.002

func benchOpts() jem.Options { return jem.DefaultOptions() }

// benchSpecs returns the two datasets the scaling exhibits focus on.
func benchSpecs(b *testing.B) []experiments.Spec {
	b.Helper()
	h7, ok1 := experiments.SpecByName("human7-like")
	bs, ok2 := experiments.SpecByName("bsplendens-like")
	if !ok1 || !ok2 {
		b.Fatal("specs missing")
	}
	return []experiments.Spec{h7, bs}
}

func prebuild(b *testing.B, specs []experiments.Spec) {
	b.Helper()
	for _, s := range specs {
		if _, err := experiments.Build(s, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Pipeline regenerates Table I: the full synthesis
// pipeline (genome → short reads → assembly → long reads) plus the
// dataset statistics, for one representative input.
func BenchmarkTable1Pipeline(b *testing.B) {
	spec, _ := experiments.SpecByName("ecoli-like")
	for i := 0; i < b.N; i++ {
		experiments.DropCaches() // force a real pipeline run
		rows, err := experiments.Table1([]experiments.Spec{spec}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].NumContigs), "contigs")
			b.ReportMetric(float64(rows[0].NumReads), "reads")
		}
	}
	b.StopTimer()
	experiments.DropCaches()
}

// BenchmarkFig5Quality regenerates Fig. 5 on two representative
// genomes: precision/recall of JEM-mapper vs the Mashmap baseline.
func BenchmarkFig5Quality(b *testing.B) {
	specs := benchSpecs(b)
	prebuild(b, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(specs, benchScale, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[1].JEM.Precision, "JEM-precision")
			b.ReportMetric(rows[1].JEM.Recall, "JEM-recall")
			b.ReportMetric(rows[1].Mashmap.Precision, "mashmap-precision")
			b.ReportMetric(rows[1].Mashmap.Recall, "mashmap-recall")
		}
	}
}

// BenchmarkFig6Trials regenerates Fig. 6: the T sweep comparing JEM
// against classical MinHash on the B. splendens stand-in.
func BenchmarkFig6Trials(b *testing.B) {
	spec, _ := experiments.SpecByName("bsplendens-like")
	prebuild(b, []experiments.Spec{spec})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6(spec, benchScale, []int{5, 30}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[0].JEM.Recall, "JEM-recall-T5")
			b.ReportMetric(pts[0].ClassicalMinHash.Recall, "minhash-recall-T5")
			b.ReportMetric(pts[1].JEM.Recall, "JEM-recall-T30")
			b.ReportMetric(pts[1].ClassicalMinHash.Recall, "minhash-recall-T30")
		}
	}
}

// BenchmarkTable2Scaling regenerates Table II: simulated distributed
// runtimes across p plus the Mashmap-baseline runtime.
func BenchmarkTable2Scaling(b *testing.B) {
	specs := benchSpecs(b)[1:] // bsplendens-like
	prebuild(b, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(specs, benchScale, []int{4, 16, 64}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(rows[0].JEMRuntime) - 1
			b.ReportMetric(rows[0].Speedup(last), "speedup-p64-vs-p4")
			b.ReportMetric(float64(rows[0].MashmapRuntime)/float64(rows[0].JEMRuntime[last]), "vs-mashmap")
		}
	}
}

// BenchmarkFig7Breakdown regenerates Fig. 7a: the per-step runtime
// split at p=16 (query processing should dominate).
func BenchmarkFig7Breakdown(b *testing.B) {
	specs := benchSpecs(b)[1:]
	prebuild(b, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7a(specs, benchScale, 16, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var queryFrac float64
			for _, st := range rows[0].Steps {
				if st.Name == "S4 map queries" {
					queryFrac = float64(st.Duration) / float64(rows[0].Total)
				}
			}
			b.ReportMetric(queryFrac, "query-step-fraction")
		}
	}
}

// BenchmarkFig7Throughput regenerates Fig. 7b: querying throughput as
// a function of p.
func BenchmarkFig7Throughput(b *testing.B) {
	specs := benchSpecs(b)[1:]
	prebuild(b, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7b(specs, benchScale, []int{4, 16, 64}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Throughput[0], "qps-p4")
			b.ReportMetric(rows[0].Throughput[len(rows[0].Throughput)-1], "qps-p64")
		}
	}
}

// BenchmarkFig8CommComp regenerates Fig. 8: the computation vs
// communication split on the two large inputs.
func BenchmarkFig8CommComp(b *testing.B) {
	specs := benchSpecs(b)
	prebuild(b, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(specs, benchScale, []int{4, 64}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[1].CommPct[0], "comm-pct-p4")
			b.ReportMetric(rows[1].CommPct[len(rows[1].CommPct)-1], "comm-pct-p64")
		}
	}
}

// BenchmarkFig9Identity regenerates Fig. 9: percent-identity
// distribution of JEM mappings on the real-data stand-in (alignment
// work capped per iteration to keep the bench bounded).
func BenchmarkFig9Identity(b *testing.B) {
	spec, _ := experiments.SpecByName("osativa-like")
	prebuild(b, []experiments.Spec{spec})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(spec, benchScale, benchOpts(), 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mean, "mean-identity-pct")
			b.ReportMetric(100*res.Frac95to100, "pct-in-95-100")
		}
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------------

func benchDataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	spec, _ := experiments.SpecByName("bsplendens-like")
	d, err := experiments.Build(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkIndexContigs measures subject sketching + table build.
func BenchmarkIndexContigs(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jem.NewMapper(d.Contigs, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(totalBases(d.Contigs))
}

// BenchmarkMapReads measures the dominant query-mapping step.
func BenchmarkMapReads(b *testing.B) {
	d := benchDataset(b)
	mapper, err := jem.NewMapper(d.Contigs, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var segments int
	for i := 0; i < b.N; i++ {
		segments = len(mapAll(mapper, d.Reads))
	}
	b.ReportMetric(float64(segments)*float64(b.N)/b.Elapsed().Seconds(), "segments/s")
}

// BenchmarkMapStream measures the pipelined streaming path end to end
// (FASTQ parse → worker pool → in-order TSV write) on the same input
// as BenchmarkMapReads, so the two throughputs are comparable.
func BenchmarkMapStream(b *testing.B) {
	d := benchDataset(b)
	mapper, err := jem.NewMapper(d.Contigs, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	var fastq bytes.Buffer
	if err := writeFASTQ(&fastq, d.Reads); err != nil {
		b.Fatal(err)
	}
	input := fastq.Bytes()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	var segments int
	for i := 0; i < b.N; i++ {
		stats, err := streamAll(mapper, bytes.NewReader(input), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		segments = stats.Segments
	}
	b.ReportMetric(float64(segments)*float64(b.N)/b.Elapsed().Seconds(), "segments/s")
}

// BenchmarkMashmapMapReads measures the baseline on the same input.
func BenchmarkMashmapMapReads(b *testing.B) {
	d := benchDataset(b)
	baseline := jem.NewMashmapMapper(d.Contigs, benchOpts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.MapReads(d.Reads)
	}
}

// BenchmarkSeedChainMapReads measures the Minimap2-style third
// baseline on the same input (extension; the paper compares
// JEM/Mashmap only).
func BenchmarkSeedChainMapReads(b *testing.B) {
	d := benchDataset(b)
	baseline := jem.NewSeedChainMapper(d.Contigs, benchOpts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.MapReads(d.Reads)
	}
}

// --- Ablation benches (design choices from DESIGN.md §5) --------------------

// BenchmarkAblationSegmentsVsWholeRead contrasts mapping ℓ-length end
// segments (the paper's choice) against sketching entire reads: the
// segment variant does less work per read and is what makes long-read
// queries cheap.
func BenchmarkAblationSegmentsVsWholeRead(b *testing.B) {
	d := benchDataset(b)
	opts := benchOpts()
	mapper, err := jem.NewMapper(d.Contigs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("end-segments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range d.Reads {
				seg := r.Seq
				if len(seg) > opts.SegmentLen {
					seg = seg[:opts.SegmentLen]
				}
				mapper.MapSegment(seg)
				if len(r.Seq) > opts.SegmentLen {
					mapper.MapSegment(r.Seq[len(r.Seq)-opts.SegmentLen:])
				}
			}
		}
	})
	b.Run("whole-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range d.Reads {
				mapper.MapSegment(r.Seq)
			}
		}
	})
}

// BenchmarkAblationTrials shows the linear cost of T, the knob Fig. 6
// trades against quality.
func BenchmarkAblationTrials(b *testing.B) {
	d := benchDataset(b)
	for _, T := range []int{5, 30, 100} {
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			opts := benchOpts()
			opts.Trials = T
			mapper, err := jem.NewMapper(d.Contigs, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mapAll(mapper, d.Reads)
			}
		})
	}
}

// BenchmarkAblationOrdering contrasts lexicographic (the paper's) and
// hash minimizer orderings end to end, reporting both precisions.
func BenchmarkAblationOrdering(b *testing.B) {
	spec, _ := experiments.SpecByName("bsplendens-like")
	prebuild(b, []experiments.Spec{spec})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationOrdering(spec, benchScale, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(a.Lex.Precision, "lex-precision")
			b.ReportMetric(a.Hash.Precision, "hash-precision")
		}
	}
}

// BenchmarkAblationLazyCounters measures the §III-C lazy counter
// against plain map counting.
func BenchmarkAblationLazyCounters(b *testing.B) {
	spec, _ := experiments.SpecByName("bsplendens-like")
	prebuild(b, []experiments.Spec{spec})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationLazyCounters(spec, benchScale, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(a.LazySeconds, "lazy-s")
			b.ReportMetric(a.MapCounterSeconds, "map-s")
		}
	}
}

// BenchmarkAblationDistributedP sweeps the simulated rank count,
// the Table II axis, on one input.
func BenchmarkAblationDistributedP(b *testing.B) {
	d := benchDataset(b)
	for _, p := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				out, err := jem.MapDistributed(d.Contigs, d.Reads, p, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				sim = out.Total.Seconds()
			}
			b.ReportMetric(sim, "sim-seconds")
		})
	}
}

func totalBases(records []jem.Record) int64 {
	var n int64
	for i := range records {
		n += int64(len(records[i].Seq))
	}
	return n
}
