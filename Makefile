# Convenience targets for the JEM-mapper reproduction.

GO ?= go

.PHONY: all build vet lint lint-tests lint-fix api-check api-update test test-short fault-test serve-smoke dist-smoke obs-smoke mem-smoke bench bench-smoke bench-core bench-obs bench-dist bench-mem metrics-demo fuzz repro repro-quick clean

all: build vet lint lint-tests api-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Custom static analysis (cmd/jem-vet, internal/lint): hot-path
# allocation discipline, atomic-access consistency, lock hygiene,
# serialization error sinks, map-order determinism, plus the
# CFG-backed generation-2 analyzers (context propagation, span
# lifecycle, goroutine supervision, deprecated-API callers). The
# whole repo must pass clean; see docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/jem-vet ./...

# lint-tests re-runs the analyzers over the test variants of every
# package (_test.go files included, loaded via `go list -test`), so
# test helpers meet the same error-handling and span-hygiene bar.
lint-tests:
	$(GO) run ./cmd/jem-vet -tests ./...

# lint-fix auto-fixes what tooling can (gofmt -s), then prints the
# remaining jem-vet diagnostics verbosely with clickable file:line:
# prefixes (suppressed findings included).
lint-fix:
	gofmt -s -w .
	$(GO) run ./cmd/jem-vet -v ./...

# Exported-API compatibility gate (cmd/jem-api, docs/API.md §5): the
# public jem surface must match the committed golden listing. After a
# deliberate API change, run `make api-update` and commit the diff.
api-check:
	$(GO) run ./cmd/jem-api -check docs/api_surface.txt

api-update:
	$(GO) run ./cmd/jem-api -update docs/api_surface.txt

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Fault-injection and robustness tests under the race detector:
# cancellation, quarantine, injected I/O errors, worker panics,
# index corruption, and the SIGINT-mid-stream CLI test. See
# docs/ROBUSTNESS.md for the failure-path contracts these prove.
fault-test:
	$(GO) test -race -run 'TestMapStream|TestMapReads|TestMapper|TestIndex|TestWriteIndex' . ./internal/core/
	$(GO) test -race ./internal/fault/ ./internal/seq/

# End-to-end serving tests under the race detector: concurrent
# byte-identity with the CLI, admission control, deadlines, hot-swap
# under load, fault injection. See docs/SERVING.md.
serve-smoke:
	$(GO) test -race ./internal/serve/
	$(GO) test -race -run TestConcurrentStreamStatsSumToRegistry .

# Distributed shard serving under the race detector: the shardnet
# protocol/coordinator suite (hedged probes, retries, degraded
# answers), the facade-level fleet identity and degraded-answer tests,
# and the multi-process jem-shardd end-to-end with fault injection.
# See docs/DISTRIBUTED.md for the contracts these prove.
dist-smoke:
	$(GO) test -race ./internal/shardnet/
	$(GO) test -race -run 'TestOpenShardServers|TestServeShardsLostHeader|TestDistE2EMultiProcess' .

# Request-scoped observability tests under the race detector: trace
# propagation through Stream, the X-JEM-Trace-Id header contract,
# tail-sampling rings, the flight recorder, the request log, and the
# 10k-request bounded-memory soak. See docs/OBSERVABILITY.md.
obs-smoke:
	$(GO) test -race -count=2 ./internal/obs/
	$(GO) test -race -run 'TestTrace|TestSlowRequest|TestRequestLog|TestObsSoak' ./internal/serve/
	$(GO) test -race -run 'TestStreamAttachesSpans|TestStreamSpansUnsharded|TestMapChildSpan' .

# Out-of-core index serving under the race detector: the JEMIDX06
# corruption matrix (truncation, payload/manifest byte flips, poisoned
# lazy fault-ins), heap/mmap/budgeted byte identity at the core and
# facade layers, and the two-process shared-mapping test. See
# docs/MEMORY.md for the contracts these prove.
mem-smoke:
	$(GO) test -race -run 'TestOpenIndexFile|TestLazyFaultIn|TestOpenShardSubset' ./internal/core/
	$(GO) test -race -run 'TestOpenMemory|TestStreamSurfacesFaultInFailure|TestSharedMappingTwoProcesses' .
	$(GO) test -race -run TestServeMemoryAccounting ./internal/serve/

# Full benchmark sweep (micro-benchmarks + one bench per paper exhibit).
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark — a compile-and-run smoke test, not
# a measurement (CI runs this to keep the benches from bit-rotting).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Refresh the committed perf trajectory point (BENCH_core.json at the
# repo root). Run on a quiet machine and commit the diff; git history
# of the file is the performance trajectory.
bench-core:
	$(GO) run ./cmd/jem-bench core

# Refresh the committed tracing-overhead point (BENCH_obs.json): the
# same streaming run with tracing off vs on, interleaved passes. The
# traced run must stay within a few percent of the untraced one.
bench-obs:
	$(GO) run ./cmd/jem-bench obs

# Refresh the committed distributed-overhead point (BENCH_dist.json):
# the same streaming run against the local sharded backend vs an
# in-process shard-server fleet at p=2/4/8, byte-identity asserted.
bench-dist:
	$(GO) run ./cmd/jem-bench dist

# Refresh the committed memory-mode point (BENCH_mem.json): cold-open
# cost, resident/mapped split, and ns/read for heap vs mmap vs a
# budgeted auto open of the same saved index.
bench-mem:
	$(GO) run ./cmd/jem-bench mem

# End-to-end observability demo: synthesize a tiny dataset, run the
# streaming mapper with a live metrics server, and scrape /metrics and
# /statusz while it serves. See docs/OBSERVABILITY.md.
METRICS_ADDR ?= 127.0.0.1:9921
metrics-demo:
	rm -rf /tmp/jem-metrics-demo && mkdir -p /tmp/jem-metrics-demo
	$(GO) run ./cmd/jem-simulate -name demo -len 300000 -hifi-cov 5 -short-cov 25 -out /tmp/jem-metrics-demo
	$(GO) run ./cmd/jem-assemble -o /tmp/jem-metrics-demo/contigs.fasta /tmp/jem-metrics-demo/demo.illumina.fastq
	$(GO) run ./cmd/jem-mapper -stream -metrics-addr $(METRICS_ADDR) -metrics-linger 3s \
		-o /tmp/jem-metrics-demo/mapping.tsv \
		/tmp/jem-metrics-demo/contigs.fasta /tmp/jem-metrics-demo/demo.hifi.fastq & \
	pid=$$!; \
	sleep 2; \
	echo "--- /metrics (excerpt) ---"; \
	curl -sf http://$(METRICS_ADDR)/metrics | grep -E '^jem_' | head -20; \
	echo "--- /statusz ---"; \
	curl -sf http://$(METRICS_ADDR)/statusz; \
	wait $$pid

# Short fuzz sessions over the fuzz targets.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/seq/
	$(GO) test -fuzz FuzzDecodeTable -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzDecodeFrozenTable -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzQuerySketch -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzReadIndex -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzReadTSV -fuzztime $(FUZZTIME) .

# Regenerate every table and figure (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/jem-bench -scale 0.02 -csv exhibits all | tee experiments_output.txt

repro-quick:
	$(GO) run ./cmd/jem-bench -scale 0.002 all

# clean removes only scratch artifacts. The CSVs under exhibits/ are
# committed fixtures; `make repro` regenerates them in place, so they
# must survive a clean checkout + make clean.
clean:
	rm -f *.test cpu.prof mem.prof *.pprof
