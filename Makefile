# Convenience targets for the JEM-mapper reproduction.

GO ?= go

.PHONY: all build vet test test-short bench fuzz repro repro-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full benchmark sweep (micro-benchmarks + one bench per paper exhibit).
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz sessions over the fuzz targets.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/seq/
	$(GO) test -fuzz FuzzDecodeTable -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzDecodeFrozenTable -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzQuerySketch -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzReadIndex -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzReadTSV -fuzztime $(FUZZTIME) .

# Regenerate every table and figure (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/jem-bench -scale 0.02 -csv exhibits all | tee experiments_output.txt

repro-quick:
	$(GO) run ./cmd/jem-bench -scale 0.002 all

# clean removes only scratch artifacts. The CSVs under exhibits/ are
# committed fixtures; `make repro` regenerates them in place, so they
# must survive a clean checkout + make clean.
clean:
	rm -f *.test cpu.prof mem.prof *.pprof
