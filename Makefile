# Convenience targets for the JEM-mapper reproduction.

GO ?= go

.PHONY: all build vet test test-short bench fuzz repro repro-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full benchmark sweep (micro-benchmarks + one bench per paper exhibit).
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz sessions over the three fuzz targets.
fuzz:
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/seq/
	$(GO) test -fuzz FuzzDecodeTable -fuzztime 30s ./internal/sketch/
	$(GO) test -fuzz FuzzReadTSV -fuzztime 30s .

# Regenerate every table and figure (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/jem-bench -scale 0.02 -csv exhibits all | tee experiments_output.txt

repro-quick:
	$(GO) run ./cmd/jem-bench -scale 0.002 all

clean:
	rm -rf exhibits
