package jem_test

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestMapStreamMatchesMapReads(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the reads to FASTQ, then map them as a stream.
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := streamAll(mapper, &reads, &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stream saw %d reads, want %d", stats.Reads, len(ds.Reads))
	}
	if stats.Segments != 2*len(ds.Reads) {
		t.Errorf("stream mapped %d segments, want %d", stats.Segments, 2*len(ds.Reads))
	}
	// The streamed TSV must parse back to exactly the in-memory result.
	parsed, err := jem.ReadTSV(&out, ds.Reads, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	want := mapAll(mapper, ds.Reads)
	if !reflect.DeepEqual(parsed, want) {
		t.Error("streamed mappings differ from in-memory mappings")
	}
	mappedWant := 0
	for _, m := range want {
		if m.Mapped {
			mappedWant++
		}
	}
	if stats.Mapped != mappedWant {
		t.Errorf("stats.Mapped = %d want %d", stats.Mapped, mappedWant)
	}
	if stats.PostingsScanned <= 0 {
		t.Errorf("stats.PostingsScanned = %d, want > 0", stats.PostingsScanned)
	}
}

// errAfterReader yields its payload, then a non-EOF error — a
// mid-stream failure (truncated download, dropped NFS mount) after N
// complete records.
type errAfterReader struct {
	payload io.Reader
	err     error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	n, err := r.payload.Read(p)
	if err == io.EOF {
		return n, r.err
	}
	return n, err
}

// TestMapStreamFlushesOnReaderError pins the mid-stream error
// contract: every record read before the failure is still mapped,
// written, and counted; only then is the error returned.
func TestMapStreamFlushesOnReaderError(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stream died mid-flight")
	var out bytes.Buffer
	stats, err := streamAll(mapper, &errAfterReader{payload: &reads, err: boom}, &out)
	if err == nil {
		t.Fatal("reader error was swallowed")
	}
	if !errors.Is(err, boom) && !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("got error %v, want the reader's", err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d (records before the error)", stats.Reads, len(ds.Reads))
	}
	if stats.Segments != 2*len(ds.Reads) {
		t.Errorf("stats.Segments = %d, want %d", stats.Segments, 2*len(ds.Reads))
	}
	// Every pre-error record must have produced its TSV rows.
	lines := strings.Count(out.String(), "\n")
	if lines != 1+2*len(ds.Reads) {
		t.Errorf("wrote %d lines, want header + %d rows", lines, 2*len(ds.Reads))
	}
	parsed, err := jem.ReadTSV(&out, ds.Reads, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	if want := mapAll(mapper, ds.Reads); !reflect.DeepEqual(parsed, want) {
		t.Error("pre-error mappings differ from in-memory mappings")
	}
}

// failAfterWriter accepts n writes, then fails every later one — a
// disk-full / closed-pipe stand-in.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestMapStreamCountsAfterWriteError pins the accounting contract on
// the write-error path: output stops, but every batch the workers
// mapped is still drained AND counted, so Stats reflects the mapping
// work actually done. (The pre-fix code skipped counting for batches
// drained after the error, undercounting Segments/Mapped.)
func TestMapStreamCountsAfterWriteError(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	// Allow the header and the first row, then fail.
	stats, err := streamAll(mapper, &reads, &failAfterWriter{n: 2, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the write error", err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d", stats.Reads, len(ds.Reads))
	}
	if want := 2 * len(ds.Reads); stats.Segments != want {
		t.Errorf("stats.Segments = %d, want %d (write errors must not drop accounting)", stats.Segments, want)
	}
	mappedWant := 0
	for _, m := range mapAll(mapper, ds.Reads) {
		if m.Mapped {
			mappedWant++
		}
	}
	if stats.Mapped != mappedWant {
		t.Errorf("stats.Mapped = %d, want %d", stats.Mapped, mappedWant)
	}
}

func TestMapStreamEmptyInput(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := streamAll(mapper, bytes.NewReader(nil), &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != 0 || stats.Segments != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMapStreamMalformedInput(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := streamAll(mapper, bytes.NewReader([]byte("@broken\nACGT\nIIII\n")), &out); err == nil {
		t.Error("malformed FASTQ should fail")
	}
}

// writeFASTQ is a tiny local helper so the test controls exactly what
// bytes enter the stream.
func writeFASTQ(buf *bytes.Buffer, records []jem.Record) error {
	for _, r := range records {
		if r.Desc != "" {
			if _, err := buf.WriteString("@" + r.ID + " " + r.Desc + "\n"); err != nil {
				return err
			}
		} else {
			if _, err := buf.WriteString("@" + r.ID + "\n"); err != nil {
				return err
			}
		}
		buf.Write(r.Seq)
		buf.WriteString("\n+\n")
		for range r.Seq {
			buf.WriteByte('I')
		}
		buf.WriteByte('\n')
	}
	return nil
}
