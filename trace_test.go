package jem_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
)

// spanByName finds the first direct child of sp with the given name.
func spanByName(sp *obs.Span, name string) *obs.Span {
	for _, c := range sp.Children() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

func attrValue(sp *obs.Span, key string) (any, bool) {
	for _, a := range sp.Attrs() {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// TestStreamAttachesSpans pins the tracing contract of Stream: when
// the context carries a span, the run attaches read/sketch/gather/
// write phase children, per-shard gather children whose postings sum
// to the run total, and the run stats as attributes. An untraced
// context attaches nothing.
func TestStreamAttachesSpans(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	opts.Shards = 4
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}

	var reads, out bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(t.Context(), root)
	stats, err := mapper.Stream(ctx, &reads, &out, jem.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	for _, phase := range []string{"read", "sketch", "gather", "write"} {
		if spanByName(root, phase) == nil {
			t.Errorf("request span missing %q phase child", phase)
		}
	}
	gather := spanByName(root, "gather")
	if gather == nil {
		t.Fatal("no gather span")
	}
	shardSpans := gather.Children()
	if len(shardSpans) != 4 {
		t.Fatalf("gather has %d shard children, want 4", len(shardSpans))
	}
	var postings int64
	var wall int64
	for _, s := range shardSpans {
		if !strings.HasPrefix(s.Name(), "shard") {
			t.Errorf("gather child %q is not a shard span", s.Name())
		}
		v, ok := attrValue(s, "postings")
		if !ok {
			t.Fatalf("shard span %s has no postings attr", s.Name())
		}
		postings += v.(int64)
		wall += int64(s.Duration())
	}
	if postings != stats.PostingsScanned {
		t.Errorf("per-shard postings sum %d != stats total %d", postings, stats.PostingsScanned)
	}
	if wall <= 0 {
		t.Error("no shard accumulated wall time under tracing")
	}
	if v, ok := attrValue(root, "reads"); !ok || v.(int) != stats.Reads {
		t.Errorf("root reads attr = %v, want %d", v, stats.Reads)
	}
	if v, ok := attrValue(root, "mapped"); !ok || v.(int) != stats.Mapped {
		t.Errorf("root mapped attr = %v, want %d", v, stats.Mapped)
	}

	// Rendered tree carries the whole story on four lines plus shards.
	var sb strings.Builder
	if err := obs.RenderSpan(&sb, root, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"request", "gather", "shard00", "postings="} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered tree missing %q:\n%s", want, sb.String())
		}
	}

	// Untraced: no span in the context, nothing attached anywhere, and
	// the run still succeeds (the zero-cost default path).
	var reads2, out2 bytes.Buffer
	if err := writeFASTQ(&reads2, ds.Reads); err != nil {
		t.Fatal(err)
	}
	if _, err := mapper.Stream(t.Context(), &reads2, &out2, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSpansUnsharded: a monolithic index has no gather phase —
// the trace shows read/sketch/write only.
func TestStreamSpansUnsharded(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var reads, out bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(t.Context(), root)
	if _, err := mapper.Stream(ctx, &reads, &out, jem.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if spanByName(root, "gather") != nil {
		t.Error("unsharded stream attached a gather span")
	}
	for _, phase := range []string{"read", "sketch", "write"} {
		if spanByName(root, phase) == nil {
			t.Errorf("request span missing %q phase child", phase)
		}
	}
}

// TestMapChildSpan: the batch Map entry point contributes a "map"
// child when traced.
func TestMapChildSpan(t *testing.T) {
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(t.Context(), root)
	if _, err := mapper.Map(ctx, ds.Reads, jem.MapOptions{}); err != nil {
		t.Fatal(err)
	}
	c := spanByName(root, "map")
	if c == nil {
		t.Fatal("no map child span")
	}
	if !c.Ended() {
		t.Error("map span left open")
	}
	if v, ok := attrValue(c, "reads"); !ok || v.(int) != len(ds.Reads) {
		t.Errorf("map span reads attr = %v, want %d", v, len(ds.Reads))
	}
}
