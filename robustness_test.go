package jem_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro"
	"repro/internal/fault"
)

// streamMapper builds the shared mapper + serialized FASTQ input the
// robustness tests feed through the pipeline.
func streamMapper(t *testing.T) (*jem.Mapper, *jem.Dataset, []byte) {
	t.Helper()
	ds := buildSmallDataset(t)
	mapper, err := jem.NewMapper(ds.Contigs, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var reads bytes.Buffer
	if err := writeFASTQ(&reads, ds.Reads); err != nil {
		t.Fatal(err)
	}
	return mapper, ds, reads.Bytes()
}

// checkTSVShape asserts the output is a well-formed (possibly partial)
// TSV table: a header and complete 4-column rows, no torn lines.
func checkTSVShape(t *testing.T, out string) (rows int) {
	t.Helper()
	if out == "" {
		t.Fatal("no output at all (header must always be written)")
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("output ends mid-line: %q", out[max(0, len(out)-40):])
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if lines[0] != "read_id\tend\tcontig_id\tshared_trials" {
		t.Fatalf("bad header %q", lines[0])
	}
	for i, ln := range lines[1:] {
		if got := strings.Count(ln, "\t"); got != 3 {
			t.Fatalf("row %d has %d tabs, want 3: %q", i, got, ln)
		}
	}
	return len(lines) - 1
}

// TestMapStreamContextPreCancelled: a context cancelled before the
// call produces a header-only table and ctx.Err(), not a hang or a
// torn file.
func TestMapStreamContextPreCancelled(t *testing.T) {
	mapper, _, reads := streamMapper(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	stats, err := mapper.Stream(ctx, bytes.NewReader(reads), &out, jem.StreamOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Reads != 0 {
		t.Errorf("stats.Reads = %d, want 0", stats.Reads)
	}
	if rows := checkTSVShape(t, out.String()); rows != 0 {
		t.Errorf("wrote %d rows after pre-cancel, want 0", rows)
	}
}

// cancelAfterReader cancels the context after n Read calls and keeps
// serving data — modeling a signal arriving mid-stream.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		c.cancel()
	}
	c.n--
	return c.r.Read(p)
}

// TestMapStreamContextCancelMidStream pins the drain contract: on
// cancellation every record read so far is still mapped, written and
// counted, the output is a well-formed partial table, and ctx.Err()
// is returned.
func TestMapStreamContextCancelMidStream(t *testing.T) {
	mapper, ds, reads := streamMapper(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	stats, err := mapper.Stream(ctx,
		&cancelAfterReader{r: bytes.NewReader(reads), n: 1, cancel: cancel},
		&out, jem.StreamOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Reads >= len(ds.Reads) {
		t.Fatalf("stats.Reads = %d, want < %d (cancellation ignored?)", stats.Reads, len(ds.Reads))
	}
	rows := checkTSVShape(t, out.String())
	// Everything read pre-cancel was drained: rows written == segments
	// counted == 2 per read (every read here is longer than ℓ).
	if rows != stats.Segments {
		t.Errorf("wrote %d rows but counted %d segments", rows, stats.Segments)
	}
	if want := 2 * stats.Reads; stats.Segments != want {
		t.Errorf("stats.Segments = %d, want %d (in-flight batches must drain)", stats.Segments, want)
	}
}

// badRecordInput interleaves malformed records with good ones:
// rec "bad1" is missing its '+' separator, rec "bad2" has a
// quality-length mismatch.
func badRecordInput(good []jem.Record) []byte {
	var buf bytes.Buffer
	writeOne := func(r jem.Record) {
		buf.WriteString("@" + r.ID + "\n")
		buf.Write(r.Seq)
		buf.WriteString("\n+\n")
		for range r.Seq {
			buf.WriteByte('I')
		}
		buf.WriteByte('\n')
	}
	writeOne(good[0])
	buf.WriteString("@bad1\nACGTACGT\nIIIIIIII\n") // no '+' line
	writeOne(good[1])
	buf.WriteString("@bad2\nACGTACGT\n+\nII\n") // qual length mismatch
	for _, r := range good[2:] {
		writeOne(r)
	}
	return buf.Bytes()
}

// TestMapStreamSkipPolicy: skip counts bad records and maps every
// parseable one; the run succeeds.
func TestMapStreamSkipPolicy(t *testing.T) {
	mapper, ds, _ := streamMapper(t)
	in := badRecordInput(ds.Reads)
	var out bytes.Buffer
	stats, err := mapper.Stream(context.Background(), bytes.NewReader(in), &out,
		jem.StreamOptions{OnBadRecord: jem.BadRecordSkip})
	if err != nil {
		t.Fatalf("skip policy failed the run: %v", err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d good records", stats.Reads, len(ds.Reads))
	}
	if stats.BadRecords != 2 {
		t.Errorf("stats.BadRecords = %d, want 2", stats.BadRecords)
	}
	if stats.Quarantined != 0 {
		t.Errorf("stats.Quarantined = %d, want 0 under skip", stats.Quarantined)
	}
	if rows := checkTSVShape(t, out.String()); rows != 2*len(ds.Reads) {
		t.Errorf("wrote %d rows, want %d", rows, 2*len(ds.Reads))
	}
	// The same input under the default fail policy must abort.
	if _, err := streamAll(mapper, bytes.NewReader(in), io.Discard); err == nil {
		t.Error("fail policy accepted a malformed record")
	}
}

// TestMapStreamQuarantinePolicy: quarantine behaves like skip and
// additionally logs line number, record ID and cause to the sidecar.
func TestMapStreamQuarantinePolicy(t *testing.T) {
	mapper, ds, _ := streamMapper(t)
	in := badRecordInput(ds.Reads)
	var out, sidecar bytes.Buffer
	stats, err := mapper.Stream(context.Background(), bytes.NewReader(in), &out,
		jem.StreamOptions{OnBadRecord: jem.BadRecordQuarantine, Quarantine: &sidecar})
	if err != nil {
		t.Fatalf("quarantine policy failed the run: %v", err)
	}
	if stats.BadRecords != 2 || stats.Quarantined != 2 {
		t.Errorf("bad=%d quarantined=%d, want 2/2", stats.BadRecords, stats.Quarantined)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d", stats.Reads, len(ds.Reads))
	}
	entries := strings.Split(strings.TrimSuffix(sidecar.String(), "\n"), "\n")
	if len(entries) != 2 {
		t.Fatalf("sidecar has %d entries, want 2:\n%s", len(entries), sidecar.String())
	}
	for i, want := range []string{"bad1", "bad2"} {
		fields := strings.SplitN(entries[i], "\t", 3)
		if len(fields) != 3 {
			t.Fatalf("sidecar entry %d is not line\\tid\\terror: %q", i, entries[i])
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			t.Errorf("sidecar entry %d line number %q: %v", i, fields[0], err)
		}
		if fields[1] != want {
			t.Errorf("sidecar entry %d id = %q, want %q", i, fields[1], want)
		}
		if fields[2] == "" {
			t.Errorf("sidecar entry %d has no error text", i)
		}
	}
}

// TestMapStreamMaxRecordLen: an over-length record is a bad record —
// skippable under skip/quarantine, fatal under fail.
func TestMapStreamMaxRecordLen(t *testing.T) {
	mapper, ds, reads := streamMapper(t)
	limit := 0
	for _, r := range ds.Reads {
		if len(r.Seq) > limit {
			limit = len(r.Seq)
		}
	}
	limit-- // exactly the longest read(s) become bad
	var out bytes.Buffer
	stats, err := mapper.Stream(context.Background(), bytes.NewReader(reads), &out,
		jem.StreamOptions{OnBadRecord: jem.BadRecordSkip, MaxRecordLen: limit})
	if err != nil {
		t.Fatalf("skip policy: %v", err)
	}
	if stats.BadRecords == 0 {
		t.Error("no record exceeded the limit; test input broken")
	}
	if stats.Reads+stats.BadRecords != len(ds.Reads) {
		t.Errorf("reads %d + bad %d != total %d", stats.Reads, stats.BadRecords, len(ds.Reads))
	}
	if _, err := mapper.Stream(context.Background(), bytes.NewReader(reads), io.Discard,
		jem.StreamOptions{MaxRecordLen: limit}); err == nil {
		t.Error("fail policy accepted an over-length record")
	}
}

// TestMapStreamWorkerPanicFailPolicy: an injected worker panic is
// recovered, surfaces as the run's error under the fail policy, and
// never crashes the process.
func TestMapStreamWorkerPanicFailPolicy(t *testing.T) {
	defer fault.Reset()
	mapper, _, reads := streamMapper(t)
	fault.Set(fault.WorkerPanic, fault.Spec{Times: 1})
	var out bytes.Buffer
	stats, err := streamAll(mapper, bytes.NewReader(reads), &out)
	if err == nil {
		t.Fatal("worker panic did not fail the run")
	}
	if !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("err = %v, want a worker-panic batch error", err)
	}
	if stats.WorkerPanics != 1 {
		t.Errorf("stats.WorkerPanics = %d, want 1", stats.WorkerPanics)
	}
	checkTSVShape(t, out.String())
}

// TestMapStreamWorkerPanicSkipPolicy: under skip the panicked batch's
// rows are lost but counted, and the stream finishes cleanly.
func TestMapStreamWorkerPanicSkipPolicy(t *testing.T) {
	defer fault.Reset()
	mapper, ds, reads := streamMapper(t)
	fault.Set(fault.WorkerPanic, fault.Spec{Times: 1})
	var out bytes.Buffer
	stats, err := mapper.Stream(context.Background(), bytes.NewReader(reads), &out,
		jem.StreamOptions{OnBadRecord: jem.BadRecordSkip})
	if err != nil {
		t.Fatalf("skip policy surfaced the batch error: %v", err)
	}
	if stats.WorkerPanics != 1 {
		t.Errorf("stats.WorkerPanics = %d, want 1", stats.WorkerPanics)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d", stats.Reads, len(ds.Reads))
	}
	rows := checkTSVShape(t, out.String())
	if rows != stats.Segments {
		t.Errorf("wrote %d rows but counted %d segments", rows, stats.Segments)
	}
	if rows >= 2*len(ds.Reads) {
		t.Errorf("wrote %d rows; the panicked batch's rows should be missing", rows)
	}
}

// TestMapStreamInjectedENOSPC: a disk-full error from the fault
// registry behaves exactly like the hand-rolled failing writer —
// output stops, accounting continues, the errno surfaces.
func TestMapStreamInjectedENOSPC(t *testing.T) {
	defer fault.Reset()
	mapper, ds, reads := streamMapper(t)
	// Let the header and two rows through, then every write fails.
	fault.Set(fault.WriterENOSPC, fault.Spec{After: 3})
	var out bytes.Buffer
	stats, err := streamAll(mapper, bytes.NewReader(reads), &out)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d", stats.Reads, len(ds.Reads))
	}
	if want := 2 * len(ds.Reads); stats.Segments != want {
		t.Errorf("stats.Segments = %d, want %d (accounting must survive ENOSPC)", stats.Segments, want)
	}
	checkTSVShape(t, out.String())
}

// TestMapStreamInjectedReaderError: the reader.err fault aborts the
// stream with the injected error after flushing completed work.
func TestMapStreamInjectedReaderError(t *testing.T) {
	defer fault.Reset()
	mapper, _, reads := streamMapper(t)
	fault.Set(fault.ReaderErr, fault.Spec{After: 1})
	var out bytes.Buffer
	stats, err := streamAll(mapper, bytes.NewReader(reads), &out)
	if !errors.Is(err, fault.ErrInjectedRead) {
		t.Fatalf("err = %v, want ErrInjectedRead", err)
	}
	rows := checkTSVShape(t, out.String())
	if rows != stats.Segments {
		t.Errorf("wrote %d rows but counted %d segments", rows, stats.Segments)
	}
}

// TestMapStreamQuarantineSidecarWriteError: a sidecar that cannot be
// written must not kill the stream; the sticky error surfaces at the
// end (when nothing worse happened).
func TestMapStreamQuarantineSidecarWriteError(t *testing.T) {
	mapper, ds, _ := streamMapper(t)
	in := badRecordInput(ds.Reads)
	boom := errors.New("sidecar disk gone")
	var out bytes.Buffer
	stats, err := mapper.Stream(context.Background(), bytes.NewReader(in), &out,
		jem.StreamOptions{OnBadRecord: jem.BadRecordQuarantine, Quarantine: &failAfterWriter{n: 0, err: boom}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sidecar write error", err)
	}
	if stats.Reads != len(ds.Reads) {
		t.Errorf("stats.Reads = %d, want %d (stream must finish despite sidecar failure)", stats.Reads, len(ds.Reads))
	}
	if rows := checkTSVShape(t, out.String()); rows != 2*len(ds.Reads) {
		t.Errorf("wrote %d rows, want %d", rows, 2*len(ds.Reads))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
