// Command jem-scaffold chains contigs into scaffolds using a JEM
// mapping: long reads whose two end segments map to different contigs
// witness contig adjacencies (the hybrid workflow motivating the
// paper). It consumes the TSV written by jem-mapper and emits a
// scaffold table plus, optionally, scaffold FASTA with N-gaps.
//
// Usage:
//
//	jem-scaffold -contigs contigs.fasta -reads reads.fastq mapping.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/seq"
)

func main() {
	var (
		contigPath = flag.String("contigs", "", "contigs FASTA (required)")
		readPath   = flag.String("reads", "", "long reads FASTA/FASTQ (required)")
		minSupport = flag.Int("min-support", 2, "minimum witnessing reads per link")
		gapLen     = flag.Int("gap", 100, "N-gap length between chained contigs in FASTA output")
		fastaOut   = flag.String("o", "", "write scaffold FASTA here (optional)")
		oriented   = flag.Bool("oriented", false, "map internally with positional sketches and build oriented scaffolds with gap estimates (no TSV argument)")
		agpOut     = flag.String("agp", "", "write AGP v2.1 here (oriented mode)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-scaffold -contigs C -reads Q [flags] mapping.tsv\n")
		fmt.Fprintf(os.Stderr, "       jem-scaffold -oriented -contigs C -reads Q [-agp out.agp]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *contigPath == "" || *readPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *oriented {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		err = runOriented(*contigPath, *readPath, *minSupport, *agpOut)
	} else {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		err = run(*contigPath, *readPath, flag.Arg(0), *minSupport, *gapLen, *fastaOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jem-scaffold: %v\n", err)
		os.Exit(1)
	}
}

// runOriented maps the reads with positional sketches and emits
// oriented scaffolds with estimated gaps (table to stdout, AGP
// optionally to a file).
func runOriented(contigPath, readPath string, minSupport int, agpOut string) error {
	contigs, err := jem.ReadSequences(contigPath)
	if err != nil {
		return err
	}
	reads, err := jem.ReadSequences(readPath)
	if err != nil {
		return err
	}
	mapper, _, err := jem.Open(jem.OpenOptions{Contigs: contigs, Options: jem.DefaultOptions()})
	if err != nil {
		return err
	}
	pms := mapper.MapReadsPositional(reads)
	scaffolds, singletons := jem.BuildScaffoldsOrientedFull(pms, reads, contigs, minSupport)
	for i, sc := range scaffolds {
		fmt.Printf("scaffold_%d\t%d contigs:", i, len(sc.Contigs))
		for j, c := range sc.Contigs {
			orient := "+"
			if sc.Reversed[j] {
				orient = "-"
			}
			if j > 0 {
				fmt.Printf(" --%d--", sc.Gaps[j])
			}
			fmt.Printf(" %s(%s)", contigs[c].ID, orient)
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "%d oriented scaffolds, %d singletons (min support %d)\n",
		len(scaffolds), len(singletons), minSupport)
	if agpOut != "" {
		f, err := os.Create(agpOut)
		if err != nil {
			return err
		}
		if err := jem.WriteAGP(f, scaffolds, singletons, contigs, 10); err != nil {
			_ = f.Close() // the WriteAGP error is the one to report
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote AGP to %s\n", agpOut)
	}
	return nil
}

func run(contigPath, readPath, tsvPath string, minSupport, gapLen int, fastaOut string) error {
	contigs, err := jem.ReadSequences(contigPath)
	if err != nil {
		return err
	}
	reads, err := jem.ReadSequences(readPath)
	if err != nil {
		return err
	}
	f, err := os.Open(tsvPath)
	if err != nil {
		return err
	}
	mappings, err := jem.ReadTSV(f, reads, contigs)
	_ = f.Close() // read-only; parse errors carry the signal
	if err != nil {
		return err
	}
	scaffolds := jem.BuildScaffolds(mappings, len(contigs), minSupport)

	inChains := 0
	var records []seq.Record
	for i, sc := range scaffolds {
		names := make([]string, len(sc.Contigs))
		var span int64
		for j, c := range sc.Contigs {
			names[j] = contigs[c].ID
			span += int64(len(contigs[c].Seq))
		}
		inChains += len(sc.Contigs)
		fmt.Printf("scaffold_%d\t%d contigs\t%d bp\t%s\n", i, len(sc.Contigs), span, strings.Join(names, ","))
		if fastaOut != "" {
			var sb []byte
			for j, c := range sc.Contigs {
				if j > 0 {
					for g := 0; g < gapLen; g++ {
						sb = append(sb, 'N')
					}
				}
				sb = append(sb, contigs[c].Seq...)
			}
			records = append(records, seq.Record{
				ID:   fmt.Sprintf("scaffold_%d", i),
				Desc: fmt.Sprintf("contigs=%d span=%d", len(sc.Contigs), span),
				Seq:  sb,
			})
		}
	}
	fmt.Fprintf(os.Stderr, "%d scaffolds covering %d of %d contigs (min support %d)\n",
		len(scaffolds), inChains, len(contigs), minSupport)
	if fastaOut != "" {
		// Singleton contigs pass through unchanged so the output is a
		// complete assembly.
		inChain := make([]bool, len(contigs))
		for _, sc := range scaffolds {
			for _, c := range sc.Contigs {
				inChain[c] = true
			}
		}
		for i := range contigs {
			if !inChain[i] {
				records = append(records, contigs[i])
			}
		}
		if err := seq.WriteFASTAFile(fastaOut, records); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), fastaOut)
	}
	return nil
}
