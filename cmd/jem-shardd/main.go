// Command jem-shardd is a shard server: it loads a subset of the
// shards of a sharded (JEMIDX06/JEMIDX05) sketch index and answers scatter-
// gather count queries from coordinators (jem-serve -shard-servers,
// or any jem.Open with OpenOptions.ShardServers) over the shardnet
// wire protocol. A fleet of jem-shardd processes that collectively
// own every shard of one index replaces the in-process sharded table,
// letting an index larger than one machine's memory serve from many.
//
// Usage:
//
//	jem-shardd -index /data/asm.jemidx -shards 0,2,5-7 -listen :8855
//	jem-shardd -index /data/asm.jemidx -shards 1/4     -listen unix:/tmp/s1.sock
//
// -shards selects which shards this process owns: explicit ids and
// ranges ("0,2,5-7"), a stripe "k/n" (every shard ≡ k mod n), or
// "all". Only the selected payloads are read and decoded; the rest of
// the index file is skipped. On startup the server prints one line
//
//	listening <address>
//
// to stdout once the socket is bound (with the kernel-chosen port for
// ":0" listens), so supervisors and tests can scrape the address.
// SIGINT/SIGTERM shut the server down; in-flight queries finish,
// blocked ones see their connections closed. See docs/DISTRIBUTED.md.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shardnet"
)

func main() {
	var (
		listen      = flag.String("listen", ":8855", "listen address: host:port (TCP) or unix:/path")
		index       = flag.String("index", "", "sharded (JEMIDX06/JEMIDX05) index file to serve from (required)")
		shards      = flag.String("shards", "all", "shards to own: ids and ranges (\"0,2,5-7\"), a stripe (\"k/n\"), or \"all\"")
		memory      = flag.String("memory", "", "how owned shards are held: heap, mmap, or auto (JEMIDX06 files only; see docs/MEMORY.md)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /statusz on this address (empty = off)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-shardd -index path [-shards spec] [-listen addr]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *index == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *index, *shards, *memory, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "jem-shardd:", err)
		os.Exit(1)
	}
}

// parseMemory maps the -memory flag to a core spec. The empty default
// is heap — the historical jem-shardd behavior — so turning on page
// sharing across a co-located fleet is an explicit choice.
func parseMemory(s string) (core.MemorySpec, error) {
	switch s {
	case "", "heap":
		return core.MemorySpec{Mode: core.MemoryHeap}, nil
	case "mmap":
		return core.MemorySpec{Mode: core.MemoryMMap}, nil
	case "auto":
		return core.MemorySpec{Mode: core.MemoryAuto}, nil
	}
	return core.MemorySpec{}, fmt.Errorf("bad -memory %q (want heap, mmap, or auto)", s)
}

func run(listen, index, shardSpec, memory, metricsAddr string) error {
	keep, err := parseShardSpec(shardSpec)
	if err != nil {
		return err
	}
	spec, err := parseMemory(memory)
	if err != nil {
		return err
	}
	tables, meta, mapping, err := core.OpenShardSubset(index, keep, spec)
	if err != nil {
		return err
	}
	if mapping != nil {
		defer func() { _ = mapping.Close() }()
	}
	srv, err := shardnet.NewServer(tables, shardnet.Info{
		Shards:      meta.Shards,
		T:           meta.T,
		NumSubjects: meta.NumSubjects,
		ManifestCRC: meta.ManifestCRC,
	})
	if err != nil {
		return err
	}
	network, address := "tcp", listen
	if rest, ok := strings.CutPrefix(listen, "unix:"); ok {
		network, address = "unix", rest
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return err
	}
	srv.Start(ln)
	bound := ln.Addr().String()
	if network == "unix" {
		bound = "unix:" + bound
	}
	// The scrape line supervisors and tests wait for; flushed before any
	// query can arrive.
	fmt.Println("listening", bound)

	if metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Gauge("jem_shardd_shards_owned", "shards this server owns").Set(float64(len(srv.Owned())))
		ms, err := obs.Serve(metricsAddr, reg)
		if err != nil {
			_ = srv.Close()
			return fmt.Errorf("metrics server: %w", err)
		}
		defer func() { _ = ms.Close() }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// parseShardSpec compiles the -shards flag into a keep predicate:
// "all", a "k/n" stripe, or a comma-separated list of ids and "a-b"
// ranges.
func parseShardSpec(spec string) (func(int) bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return func(int) bool { return true }, nil
	}
	if ks, ns, ok := strings.Cut(spec, "/"); ok && !strings.ContainsAny(spec, ",-") {
		k, err1 := strconv.Atoi(ks)
		n, err2 := strconv.Atoi(ns)
		if err1 != nil || err2 != nil || n <= 0 || k < 0 || k >= n {
			return nil, fmt.Errorf("bad stripe spec %q (want k/n with 0 ≤ k < n)", spec)
		}
		return func(sd int) bool { return sd%n == k }, nil
	}
	set := make(map[int]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a < 0 || b < a {
				return nil, fmt.Errorf("bad shard range %q", part)
			}
			for sd := a; sd <= b; sd++ {
				set[sd] = true
			}
			continue
		}
		sd, err := strconv.Atoi(part)
		if err != nil || sd < 0 {
			return nil, fmt.Errorf("bad shard id %q", part)
		}
		set[sd] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("shard spec %q selects nothing", spec)
	}
	return func(sd int) bool { return set[sd] }, nil
}
