// Command jem-vet runs the repository's custom static analyzers
// (internal/lint) over package patterns:
//
//	jem-vet ./...                  # whole repo, all analyzers
//	jem-vet -run errsink ./paf.go  # one analyzer (patterns are go list patterns)
//	jem-vet -list                  # what's in the suite
//
// Diagnostics print as file:line:col: message (analyzer) — clickable
// in editors and CI logs. Exit status is 1 when any unsuppressed
// diagnostic is found. See docs/STATIC_ANALYSIS.md for the analyzer
// catalogue, the //jem:hotpath annotation and the
// //jem:nolint(<analyzer>) suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available analyzers and exit")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		verbose = flag.Bool("v", false, "also print suppressed diagnostics and per-analyzer totals")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *run != "" {
		var err error
		analyzers, err = lint.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := lint.Run(analyzers, pkgs)
	active := 0
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			if *verbose {
				fmt.Printf("%s [suppressed]\n", relativize(cwd, d))
			}
			continue
		}
		active++
		fmt.Println(relativize(cwd, d))
	}
	if n := total(res.Suppressed); n > 0 || *verbose {
		fmt.Fprintf(os.Stderr, "jem-vet: %d issue(s), %d suppressed by %s%s\n",
			active, n, "//jem:nolint", suppressionBreakdown(res.Suppressed))
	}
	if active > 0 {
		os.Exit(1)
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressionBreakdown(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s:%d", name, m[name])
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// relativize shortens absolute diagnostic paths to cwd-relative ones
// so CI logs and editors get clickable file:line:col prefixes.
func relativize(cwd string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s (%s)", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	return s
}
