// Command jem-vet runs the repository's custom static analyzers
// (internal/lint) over package patterns:
//
//	jem-vet ./...                  # whole repo, all analyzers
//	jem-vet -run errsink ./paf.go  # one analyzer (patterns are go list patterns)
//	jem-vet -tests ./...           # analyze _test.go files too
//	jem-vet -json report.json ./...# also write machine-readable findings
//	jem-vet -list                  # what's in the suite
//
// Diagnostics print as file:line:col: message (analyzer) — clickable
// in editors and CI logs. Exit status is 1 when any unsuppressed
// diagnostic is found. See docs/STATIC_ANALYSIS.md for the analyzer
// catalogue, the //jem:hotpath annotation and the
// //jem:nolint(<analyzer>) suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available analyzers and exit")
		run      = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		verbose  = flag.Bool("v", false, "also print suppressed diagnostics and per-analyzer totals")
		tests    = flag.Bool("tests", false, "also analyze _test.go files (in-package and external test packages)")
		jsonPath = flag.String("json", "", "write machine-readable diagnostics (including suppressed) to this file")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *run != "" {
		var err error
		analyzers, err = lint.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	load := lint.Load
	if *tests {
		load = lint.LoadTests
	}
	pkgs, err := load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := lint.Run(analyzers, pkgs)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, cwd, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	active := 0
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			if *verbose {
				fmt.Printf("%s [suppressed]\n", relativize(cwd, d))
			}
			continue
		}
		active++
		fmt.Println(relativize(cwd, d))
	}
	if n := total(res.Suppressed); n > 0 || *verbose {
		fmt.Fprintf(os.Stderr, "jem-vet: %d issue(s), %d suppressed by %s%s\n",
			active, n, "//jem:nolint", suppressionBreakdown(res.Suppressed))
	}
	if active > 0 {
		os.Exit(1)
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressionBreakdown(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s:%d", name, m[name])
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// relativize shortens absolute diagnostic paths to cwd-relative ones
// so CI logs and editors get clickable file:line:col prefixes.
func relativize(cwd string, d lint.Diagnostic) string {
	s := d.String()
	if rel, ok := relPath(cwd, d.Pos.Filename); ok {
		s = fmt.Sprintf("%s:%d:%d: %s (%s)", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	return s
}

func relPath(cwd, filename string) (string, bool) {
	rel, err := filepath.Rel(cwd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	return rel, true
}

// jsonDiagnostic is the machine-readable form of one finding, written
// by -json for CI artifacts and downstream tooling. Suppressed
// findings are included (marked) so a report consumer can audit the
// //jem:nolint inventory without re-running the analysis.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func writeJSON(path, cwd string, res lint.Result) error {
	out := make([]jsonDiagnostic, 0, len(res.Diagnostics))
	for _, d := range res.Diagnostics {
		file := d.Pos.Filename
		if rel, ok := relPath(cwd, file); ok {
			file = rel
		}
		out = append(out, jsonDiagnostic{
			File:       file,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
