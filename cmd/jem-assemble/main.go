// Command jem-assemble builds contigs from short reads with the
// repository's de Bruijn graph assembler (the Minia substitute).
//
// Usage:
//
//	jem-assemble -o contigs.fasta short_reads.fastq
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/assemble"
	"repro/internal/seq"
)

func main() {
	var (
		k       = flag.Int("k", 31, "de Bruijn k-mer size")
		minAb   = flag.Int("min-abundance", 3, "solid k-mer threshold")
		minLen  = flag.Int("min-len", 0, "minimum contig length (0 = 2k+1)")
		workers = flag.Int("workers", 0, "goroutines (0 = all cores)")
		noPop   = flag.Bool("no-pop", false, "disable SNP bubble popping")
		outPath = flag.String("o", "contigs.fasta", "output FASTA path")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-assemble [flags] reads.fastq...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Args(), *k, uint32(*minAb), *minLen, *workers, *noPop, *outPath); err != nil {
		fmt.Fprintf(os.Stderr, "jem-assemble: %v\n", err)
		os.Exit(1)
	}
}

func run(paths []string, k int, minAb uint32, minLen, workers int, noPop bool, outPath string) error {
	var reads []seq.Record
	for _, p := range paths {
		rs, err := seq.ReadFile(p)
		if err != nil {
			return err
		}
		reads = append(reads, rs...)
	}
	start := time.Now()
	asm, err := assemble.Assemble(reads, assemble.Config{
		K:                    k,
		MinAbundance:         minAb,
		MinContigLen:         minLen,
		Workers:              workers,
		DisableBubblePopping: noPop,
	})
	if err != nil {
		return err
	}
	if err := seq.WriteFASTAFile(outPath, asm.Contigs); err != nil {
		return err
	}
	st := asm.Stats
	fmt.Printf("assembled %d reads in %v\n", len(reads), time.Since(start).Round(time.Millisecond))
	fmt.Printf("k-mers: %d distinct, %d solid; %d bubbles popped\n", st.DistinctKmers, st.SolidKmers, st.BubblesPopped)
	fmt.Printf("contigs: %d (%.0f +/- %.0f bp, max %d, N50 %d, total %d bp) -> %s\n",
		st.Contigs, st.MeanLen, st.StdDevLen, st.MaxLen, st.N50, st.TotalBases, outPath)
	return nil
}
