// Command jem-serve is the long-lived mapping service: it loads one
// or more contig sketch indexes, keeps them hot, and serves concurrent
// mapping requests over HTTP until told to stop.
//
// Usage:
//
//	jem-serve -addr :8844 -index ecoli=/data/ecoli.jemidx
//	jem-serve -addr :8844 -contigs asm=/data/contigs.fasta -shards 8
//
// -index and -contigs are repeatable name=path pairs; a name given to
// both loads the index file and keeps the contig records as metadata.
// Map against a loaded reference with:
//
//	curl --data-binary @reads.fastq 'localhost:8844/v1/map/ecoli?timeout=30s'
//
// Endpoints, admission control, deadlines and the hot-swap protocol
// are documented in docs/SERVING.md. SIGINT/SIGTERM drain gracefully:
// readyz flips to 503, in-flight requests finish (bounded by
// -drain-timeout), then the process exits; a second signal kills it
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// namedPaths collects repeatable -index/-contigs name=path flags in
// order.
type namedPaths []struct{ name, path string }

func (n *namedPaths) String() string { return fmt.Sprint(*n) }

func (n *namedPaths) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*n = append(*n, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		indexes      namedPaths
		contigs      namedPaths
		shardServers namedPaths

		addr      = flag.String("addr", ":8844", "HTTP listen address")
		k         = flag.Int("k", 16, "k-mer size (builds from -contigs)")
		w         = flag.Int("w", 100, "minimizer window size (builds from -contigs)")
		t         = flag.Int("t", 30, "sketch trials T (builds from -contigs)")
		l         = flag.Int("l", 1000, "end segment length (builds from -contigs)")
		seed      = flag.Int64("seed", 1, "hash family seed (builds from -contigs)")
		shards    = flag.Int("shards", 0, "index shards for builds (0/1 = unsharded)")
		memory    = flag.String("memory", "", "how -index loads hold the table: heap, mmap, or auto (builds are always heap)")
		memBudget = flag.Int64("memory-budget", 0, "heap byte budget for -memory auto (0 = no cap)")
		inflight  = flag.Int("max-in-flight", 0, "concurrent mapping requests (0 = default 4)")
		queue     = flag.Int("max-queue", 0, "waiting requests before 429 (0 = 4x max-in-flight)")
		reqWork   = flag.Int("workers-per-request", 0, "mapping workers per request (0 = GOMAXPROCS/max-in-flight)")
		defTO     = flag.Duration("default-timeout", 0, "per-request deadline when the client sends none (0 = none)")
		maxTO     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight requests")

		traceRing   = flag.Int("trace-ring", 256, "completed request traces retained at /debug/traces")
		traceSample = flag.Int("trace-sample", 8, "keep 1 in N ok-and-fast traces (errors/slow/p99 always kept)")
		slowReq     = flag.Duration("slow-request", time.Second, "latency threshold that marks a request slow and arms the flight recorder (0 = off)")
		flightRing  = flag.Int("flight-ring", 16, "flight-recorder snapshots retained at /debug/flight")
		logSample   = flag.Int("log-sample", 1, "emit 1 in N ok request log lines (errors/slow always logged)")
		logText     = flag.Bool("log-text", false, "log human-readable text instead of JSON")
	)
	flag.Var(&indexes, "index", "serve a saved index: name=path (repeatable)")
	flag.Var(&contigs, "contigs", "build and serve an index from contigs: name=path (repeatable)")
	flag.Var(&shardServers, "shard-servers",
		"serve name through a jem-shardd fleet: name=addr1,addr2 (repeatable; requires -index name=path — only the manifest is read locally)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-serve [flags] -index name=path | -contigs name=path\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if len(indexes) == 0 && len(contigs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var handler slog.Handler = slog.NewJSONHandler(os.Stderr, nil)
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	memMode, err := jem.ParseMemoryMode(*memory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jem-serve:", err)
		os.Exit(2)
	}
	if err := run(logger, indexes, contigs, shardServers, config{
		addr: *addr, k: *k, w: *w, t: *t, l: *l, seed: *seed, shards: *shards,
		memory:   jem.Memory{Mode: memMode, Budget: *memBudget},
		inflight: *inflight, queue: *queue, reqWork: *reqWork,
		defTO: *defTO, maxTO: *maxTO, drainTO: *drainTO,
		traceRing: *traceRing, traceSample: *traceSample, slowReq: *slowReq,
		flightRing: *flightRing, logSample: *logSample,
	}); err != nil {
		logger.Error("jem-serve failed", slog.Any("error", err))
		os.Exit(1)
	}
}

type config struct {
	addr                     string
	k, w, t, l               int
	seed                     int64
	shards                   int
	memory                   jem.Memory
	inflight, queue, reqWork int
	defTO, maxTO, drainTO    time.Duration

	traceRing, traceSample int
	slowReq                time.Duration
	flightRing, logSample  int
}

func run(logger *slog.Logger, indexes, contigs, shardServers namedPaths, cfg config) error {
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		MaxInFlight:       cfg.inflight,
		MaxQueue:          cfg.queue,
		WorkersPerRequest: cfg.reqWork,
		DefaultTimeout:    cfg.defTO,
		MaxTimeout:        cfg.maxTO,
		Registry:          reg,
		TraceRing:         cfg.traceRing,
		TraceSampleN:      cfg.traceSample,
		SlowRequest:       cfg.slowReq,
		FlightRing:        cfg.flightRing,
		Logger:            logger,
		LogSampleN:        cfg.logSample,
	})

	// Contig records given for the same name as an index become load
	// metadata; standalone -contigs names are full builds.
	contigRecords := make(map[string][]jem.Record)
	for _, c := range contigs {
		recs, err := jem.ReadSequences(c.path)
		if err != nil {
			return fmt.Errorf("contigs %s: %w", c.name, err)
		}
		contigRecords[c.name] = recs
	}
	// Shard-server fleets are keyed by index name; each value is the
	// comma-separated server address list.
	fleets := make(map[string][]string)
	for _, ss := range shardServers {
		fleets[ss.name] = strings.Split(ss.path, ",")
	}
	opts := jem.Options{K: cfg.k, W: cfg.w, Trials: cfg.t, SegmentLen: cfg.l,
		Seed: cfg.seed, Shards: cfg.shards, Memory: cfg.memory, Metrics: reg}
	loaded := make(map[string]bool)
	// Remote mappers hold coordinator connection pools; release them
	// when the server exits.
	var remotes []*jem.Mapper
	defer func() {
		for _, m := range remotes {
			_ = m.Close()
		}
	}()
	for _, ix := range indexes {
		m, info, err := jem.Open(jem.OpenOptions{
			Contigs:      contigRecords[ix.name],
			IndexPath:    ix.path,
			ShardServers: fleets[ix.name],
			Options:      opts,
		})
		if err != nil {
			return fmt.Errorf("index %s: %w", ix.name, err)
		}
		srv.AddIndex(ix.name, m)
		loaded[ix.name] = true
		how := "loaded"
		if info.Remote {
			how = fmt.Sprintf("remote (%d shard servers)", len(fleets[ix.name]))
			remotes = append(remotes, m)
		}
		delete(fleets, ix.name)
		logIndex(logger, ix.name, m, how)
	}
	for name := range fleets {
		return fmt.Errorf("-shard-servers %s given without a matching -index %s=path", name, name)
	}
	for _, c := range contigs {
		if loaded[c.name] {
			continue
		}
		m, err := jem.NewMapper(contigRecords[c.name], opts)
		if err != nil {
			return fmt.Errorf("building %s: %w", c.name, err)
		}
		srv.AddIndex(c.name, m)
		logIndex(logger, c.name, m, "built")
	}

	hs := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	logger.Info("listening",
		slog.String("addr", cfg.addr),
		slog.String("endpoints", "/v1/map /v1/indexes /healthz /readyz /metrics /debug/traces /debug/flight /debug/requests"),
		slog.Duration("slow_request", cfg.slowReq),
	)

	// First signal: stop advertising ready, drain in-flight requests,
	// exit. Second signal (stop() restores default handling): hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", slog.Duration("grace", cfg.drainTO))
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTO)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w (in-flight requests were cut)", err)
	}
	logger.Info("drained, bye")
	return nil
}

func logIndex(logger *slog.Logger, name string, m *jem.Mapper, how string) {
	resident, mapped := m.IndexMemory()
	logger.Info("index ready",
		slog.String("name", name),
		slog.String("source", how),
		slog.Int("contigs", m.NumContigs()),
		slog.Int("shards", m.Shards()),
		slog.Int64("index_bytes", m.IndexBytes()),
		slog.Int64("resident_bytes", resident),
		slog.Int64("mapped_bytes", mapped),
	)
}
