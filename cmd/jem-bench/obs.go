// The obs subcommand measures the cost of request-scoped tracing: the
// same streaming run benchCore times, once with a plain context and
// once under a live root span (per-phase children, per-shard timing,
// trace-ring admission and a request-log record per pass — everything
// a traced serving request pays). The result, BENCH_obs.json, pins the
// overhead so a regression in the observability path shows up in the
// perf trajectory like any other slowdown.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// obsResult is the BENCH_obs.json schema. "off" fields measure the
// untraced pipeline, "on" fields the fully traced one; overhead_pct is
// the ns/read delta as a percentage of the untraced baseline.
type obsResult struct {
	Schema    string `json:"schema"` // "jem-bench/obs/v1"
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`

	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Shards  int     `json:"shards"`

	Reads     int `json:"reads_per_pass"`
	PassesOff int `json:"passes_off"`
	PassesOn  int `json:"passes_on"`

	NSPerReadOff     float64 `json:"ns_per_read_off"`
	NSPerReadOn      float64 `json:"ns_per_read_on"`
	AllocsPerReadOff float64 `json:"allocs_per_read_off"`
	AllocsPerReadOn  float64 `json:"allocs_per_read_on"`
	OverheadPct      float64 `json:"overhead_pct"`
}

// benchObs measures tracing-off vs tracing-on streaming throughput on
// a sharded index (the traced run exercises the per-shard timing path)
// and writes the comparison to outPath.
func benchObs(scale float64, opts jem.Options, w io.Writer, outPath string) error {
	// Shard the index so the traced passes pay for per-shard clock
	// reads and the gather span fan-out — the most expensive tracing
	// configuration, not the cheapest.
	opts.Shards = 8
	ds, err := experiments.Build(mustSpec("bsplendens-like"), scale)
	if err != nil {
		return err
	}
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		return err
	}

	var fastq bytes.Buffer
	for _, r := range ds.Reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, strings.Repeat("I", len(r.Seq)))
	}
	input := fastq.Bytes()

	res := obsResult{
		Schema:    "jem-bench/obs/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Dataset:   ds.Spec.Name,
		Scale:     scale,
		Shards:    mapper.Shards(),
	}

	// The traced passes feed the same sinks a serving request does:
	// a tail-sampling trace ring and a (ring-only, loggerless)
	// request log.
	ring := obs.NewTraceRing(256, 8, 0)
	reqlog := obs.NewRequestLog(nil, 1, 256, 0)

	// One warmup pass per mode so both measure steady state.
	untraced := func(ctx context.Context) (jem.Stats, error) {
		return mapper.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{})
	}
	traced := func(ctx context.Context) (jem.Stats, error) {
		id := obs.NewTraceID()
		root := obs.NewSpan("request")
		stats, err := mapper.Stream(obs.ContextWithSpan(ctx, root), bytes.NewReader(input), io.Discard, jem.StreamOptions{})
		d := root.End()
		ring.Add(&obs.Trace{ID: id, Root: root, Status: 200, Start: time.Now().Add(-d), Duration: d})
		reqlog.Record(ctx, obs.RequestLogEntry{
			TraceID: id, Status: 200,
			Reads: stats.Reads, Mapped: stats.Mapped, Postings: stats.PostingsScanned,
			ReadWall: stats.ReadWall, MapWall: stats.MapWall, WriteWall: stats.WriteWall,
			Duration: d,
		})
		return stats, err
	}

	// One warmup pass per mode, then interleaved off/on pass pairs:
	// alternating modes within the same run cancels machine drift
	// (thermal throttling, background load) that a sequential
	// off-block-then-on-block design would charge to one mode.
	ctx := context.Background()
	if _, err := untraced(ctx); err != nil {
		return err
	}
	if _, err := traced(ctx); err != nil {
		return err
	}
	var (
		offNS, onNS         int64
		offAllocs, onAllocs uint64
		offReads, onReads   int
	)
	for res.PassesOff < 4 || (offNS < int64(2*time.Second) && res.PassesOff < 20) {
		ns, allocs, reads, err := timedPass(untraced)
		if err != nil {
			return err
		}
		offNS += ns
		offAllocs += allocs
		offReads += reads
		res.PassesOff++
		if ns, allocs, reads, err = timedPass(traced); err != nil {
			return err
		}
		onNS += ns
		onAllocs += allocs
		onReads += reads
		res.PassesOn++
	}

	res.Reads = offReads / res.PassesOff
	res.NSPerReadOff = float64(offNS) / float64(offReads)
	res.NSPerReadOn = float64(onNS) / float64(onReads)
	res.AllocsPerReadOff = float64(offAllocs) / float64(offReads)
	res.AllocsPerReadOn = float64(onAllocs) / float64(onReads)
	res.OverheadPct = (res.NSPerReadOn - res.NSPerReadOff) / res.NSPerReadOff * 100

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "observability overhead (%s @ scale %g, shards=%d, %d reads/pass)\n",
		res.Dataset, res.Scale, res.Shards, res.Reads)
	fmt.Fprintf(w, "  %12.0f ns/read untraced (%d passes)\n", res.NSPerReadOff, res.PassesOff)
	fmt.Fprintf(w, "  %12.0f ns/read traced   (%d passes)\n", res.NSPerReadOn, res.PassesOn)
	fmt.Fprintf(w, "  %12.1f allocs/read untraced\n", res.AllocsPerReadOff)
	fmt.Fprintf(w, "  %12.1f allocs/read traced\n", res.AllocsPerReadOn)
	fmt.Fprintf(w, "  %+11.2f%% overhead\n", res.OverheadPct)
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	return nil
}

// timedPass runs one measured pass: GC to a clean slate, run, return
// wall nanoseconds, mallocs and reads.
func timedPass(pass func(context.Context) (jem.Stats, error)) (wallNS int64, allocs uint64, reads int, err error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	stats, err := pass(context.Background())
	if err != nil {
		return 0, 0, 0, err
	}
	wallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&ms1)
	return wallNS, ms1.Mallocs - ms0.Mallocs, stats.Reads, nil
}
