// The dist subcommand measures what the wire costs: the same
// deterministic streaming run, once against the local sharded backend
// and once routed through a shard-server fleet (in-process
// shardnet.Server instances on unix sockets — the same stack jem-shardd
// wraps, minus the process boundary), at several shard counts. The
// result is written as machine-readable JSON (BENCH_dist.json at the
// repo root), the distributed sibling of BENCH_core.json: each
// committed point is one sample of the remote-overhead trajectory.
// Numbers are only comparable between runs on the same machine.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/shardnet"
)

// distResult is the BENCH_dist.json schema. Field names are stable:
// downstream tooling diffs them across commits.
type distResult struct {
	Schema    string `json:"schema"` // "jem-bench/dist/v1"
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`

	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Reads   int     `json:"reads_per_pass"`

	Points []distPoint `json:"points"`
}

// distPoint is one shard count: local vs remote cost for the same
// stream. Overhead is the per-read price of the wire (framing, kernel
// round trips, coordinator bookkeeping); the identity of the output
// bytes is asserted, not reported.
type distPoint struct {
	Shards            int     `json:"shards"`
	Servers           int     `json:"servers"`
	LocalPasses       int     `json:"local_passes"`
	RemotePasses      int     `json:"remote_passes"`
	LocalNSPerRead    float64 `json:"local_ns_per_read"`
	RemoteNSPerRead   float64 `json:"remote_ns_per_read"`
	OverheadNSPerRead float64 `json:"overhead_ns_per_read"`
	RemoteOverLocal   float64 `json:"remote_over_local"`
}

var distShardCounts = []int{2, 4, 8}

// benchDist measures remote-vs-local streaming cost at each shard
// count and writes the result to outPath. The remote path must stay
// byte-identical to the local one — a fleet that answered faster by
// answering differently would make the benchmark meaningless — so the
// warmup pass of each backend is also the identity check.
func benchDist(scale float64, opts jem.Options, w io.Writer, outPath string) error {
	ds, err := experiments.Build(mustSpec("bsplendens-like"), scale)
	if err != nil {
		return err
	}
	var fastq bytes.Buffer
	for _, r := range ds.Reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, bytes.Repeat([]byte{'I'}, len(r.Seq)))
	}
	input := fastq.Bytes()

	res := distResult{
		Schema:    "jem-bench/dist/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Dataset:   ds.Spec.Name,
		Scale:     scale,
	}

	for _, p := range distShardCounts {
		pt, reads, err := benchDistPoint(ds, input, p, opts)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", p, err)
		}
		res.Reads = reads
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "dist p=%d (%d servers): local %8.0f ns/read, remote %8.0f ns/read (+%.0f, %.2fx)\n",
			pt.Shards, pt.Servers, pt.LocalNSPerRead, pt.RemoteNSPerRead, pt.OverheadNSPerRead, pt.RemoteOverLocal)
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	return nil
}

// benchDistPoint measures one shard count: build the sharded index,
// serve it from p/2 in-process servers, and time both backends.
func benchDistPoint(ds *experiments.Dataset, input []byte, p int, opts jem.Options) (distPoint, int, error) {
	opts.Shards = p
	local, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		return distPoint{}, 0, err
	}
	dir, err := os.MkdirTemp("", "jem-dist")
	if err != nil {
		return distPoint{}, 0, err
	}
	defer os.RemoveAll(dir)
	idx := filepath.Join(dir, "idx.jem")
	if err := local.SaveIndexFile(idx); err != nil {
		return distPoint{}, 0, err
	}

	nServers := p / 2
	addrs, stopFleet, err := startDistFleet(dir, idx, nServers)
	if err != nil {
		return distPoint{}, 0, err
	}
	defer stopFleet()
	remote, _, err := jem.Open(jem.OpenOptions{IndexPath: idx, ShardServers: addrs})
	if err != nil {
		return distPoint{}, 0, err
	}
	defer func() { _ = remote.Close() }()

	localNS, localTSV, localPasses, reads, err := distMeasure(local, input, nil)
	if err != nil {
		return distPoint{}, 0, err
	}
	remoteNS, _, remotePasses, _, err := distMeasure(remote, input, localTSV)
	if err != nil {
		return distPoint{}, 0, err
	}

	return distPoint{
		Shards:            p,
		Servers:           nServers,
		LocalPasses:       localPasses,
		RemotePasses:      remotePasses,
		LocalNSPerRead:    localNS,
		RemoteNSPerRead:   remoteNS,
		OverheadNSPerRead: remoteNS - localNS,
		RemoteOverLocal:   remoteNS / localNS,
	}, reads, nil
}

// distMeasure runs one warmup pass (whose TSV is returned, and checked
// against wantTSV when non-nil) then timed passes: at least 2 and at
// least half a second of wall clock, capped so six backends still
// finish promptly.
func distMeasure(m *jem.Mapper, input []byte, wantTSV []byte) (nsPerRead float64, tsv []byte, passes, reads int, err error) {
	ctx := context.Background()
	var warm bytes.Buffer
	if _, err := m.Stream(ctx, bytes.NewReader(input), &warm, jem.StreamOptions{}); err != nil {
		return 0, nil, 0, 0, err
	}
	if wantTSV != nil && !bytes.Equal(warm.Bytes(), wantTSV) {
		return 0, nil, 0, 0, fmt.Errorf("remote output differs from local (%d vs %d bytes)", warm.Len(), len(wantTSV))
	}
	var wallNS int64
	for passes < 2 || (wallNS < int64(500*time.Millisecond) && passes < 10) {
		start := time.Now()
		stats, err := m.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{})
		if err != nil {
			return 0, nil, 0, 0, err
		}
		wallNS += time.Since(start).Nanoseconds()
		reads += stats.Reads
		passes++
	}
	return float64(wallNS) / float64(reads), warm.Bytes(), passes, reads / passes, nil
}

// startDistFleet serves the index at idx from nServers in-process
// shardnet servers on unix sockets (server i owns the shards ≡ i mod
// nServers), returning dial addresses and a teardown func.
func startDistFleet(dir, idx string, nServers int) (addrs []string, stop func(), err error) {
	var servers []*shardnet.Server
	stop = func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	for i := 0; i < nServers; i++ {
		tables, meta, err := core.ReadShardSubsetFile(idx, func(sd int) bool { return sd%nServers == i })
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv, err := shardnet.NewServer(tables, shardnet.Info{
			Shards:      meta.Shards,
			T:           meta.T,
			NumSubjects: meta.NumSubjects,
			ManifestCRC: meta.ManifestCRC,
		})
		if err != nil {
			stop()
			return nil, nil, err
		}
		ln, err := net.Listen("unix", filepath.Join(dir, fmt.Sprintf("s%d.sock", i)))
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv.Start(ln)
		servers = append(servers, srv)
		addrs = append(addrs, "unix:"+ln.Addr().String())
	}
	return addrs, stop, nil
}
