// The core subcommand is the repository's perf trajectory probe: one
// fixed, deterministic end-to-end streaming run whose result is written
// as machine-readable JSON (BENCH_core.json at the repo root). Each
// committed point is one sample of the trajectory; `git log -p
// BENCH_core.json` is the performance history. Numbers are only
// comparable between runs on the same machine — the point of the file
// is trend, not absolute throughput.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

// coreResult is the BENCH_core.json schema. Field names are stable:
// downstream tooling (and future sessions reading the trajectory)
// diffs them across commits.
type coreResult struct {
	Schema    string `json:"schema"` // "jem-bench/core/v1"
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`

	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Contigs int     `json:"contigs"`
	K       int     `json:"k"`
	W       int     `json:"w"`
	Trials  int     `json:"trials"`
	SegLen  int     `json:"segment_len"`
	Shards  int     `json:"shards"`

	Reads           int     `json:"reads"`
	Passes          int     `json:"passes"`
	WallNS          int64   `json:"wall_ns"`
	ReadsPerSec     float64 `json:"reads_per_sec"`
	NSPerRead       float64 `json:"ns_per_read"`
	AllocsPerRead   float64 `json:"allocs_per_read"`
	PostingsScanned int64   `json:"postings_scanned"`
	PostingsPerRead float64 `json:"postings_per_read"`
}

// benchCore measures steady-state streaming throughput of the core
// mapping pipeline (parse → sketch → scatter-gather lookup → TSV) on
// the bsplendens-like dataset and writes the result to outPath.
func benchCore(scale float64, opts jem.Options, w io.Writer, outPath string) error {
	ds, err := experiments.Build(mustSpec("bsplendens-like"), scale)
	if err != nil {
		return err
	}
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		return err
	}

	var fastq bytes.Buffer
	for _, r := range ds.Reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, strings.Repeat("I", len(r.Seq)))
	}
	input := fastq.Bytes()
	ctx := context.Background()

	// One warmup pass populates the dataset cache side effects and the
	// runtime's lazily grown structures so the timed passes measure
	// steady state.
	if _, err := mapper.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{}); err != nil {
		return err
	}

	res := coreResult{
		Schema:    "jem-bench/core/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Dataset:   ds.Spec.Name,
		Scale:     scale,
		Contigs:   len(ds.Contigs),
		K:         opts.K,
		W:         opts.W,
		Trials:    opts.Trials,
		SegLen:    opts.SegmentLen,
		Shards:    mapper.Shards(),
	}

	// Timed passes: at least 3 and at least one second of wall clock,
	// capped so a slow machine still finishes promptly.
	var (
		ms0, ms1 runtime.MemStats
		allocs   uint64
	)
	for res.Passes < 3 || (res.WallNS < int64(time.Second) && res.Passes < 20) {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		stats, err := mapper.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{})
		if err != nil {
			return err
		}
		res.WallNS += time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		res.Reads += stats.Reads
		res.PostingsScanned += stats.PostingsScanned
		res.Passes++
	}
	res.ReadsPerSec = float64(res.Reads) / (float64(res.WallNS) / float64(time.Second))
	res.NSPerRead = float64(res.WallNS) / float64(res.Reads)
	res.AllocsPerRead = float64(allocs) / float64(res.Reads)
	res.PostingsPerRead = float64(res.PostingsScanned) / float64(res.Reads)

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "core benchmark (%s @ scale %g, %d reads x %d passes)\n",
		res.Dataset, res.Scale, res.Reads/res.Passes, res.Passes)
	fmt.Fprintf(w, "  %12.0f reads/sec\n", res.ReadsPerSec)
	fmt.Fprintf(w, "  %12.0f ns/read\n", res.NSPerRead)
	fmt.Fprintf(w, "  %12.1f allocs/read\n", res.AllocsPerRead)
	fmt.Fprintf(w, "  %12.1f postings scanned/read\n", res.PostingsPerRead)
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	return nil
}
