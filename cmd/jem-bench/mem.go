// The mem subcommand records the trade the memory modes make: for one
// saved index, the cold-open cost, the resident/mapped byte split, and
// the steady-state per-read mapping cost of a heap load, a full mmap,
// and a budgeted auto open (half the index on the heap, the rest
// lazy). The result is written as machine-readable JSON
// (BENCH_mem.json at the repo root) — the footprint trajectory
// counterpart to BENCH_core.json. Numbers are only comparable between
// runs on the same machine; the point of the file is trend.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

// memResult is the BENCH_mem.json schema. Field names are stable:
// downstream tooling diffs them across commits.
type memResult struct {
	Schema    string `json:"schema"` // "jem-bench/mem/v1"
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	Procs     int    `json:"gomaxprocs"`

	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Contigs    int     `json:"contigs"`
	K          int     `json:"k"`
	W          int     `json:"w"`
	Trials     int     `json:"trials"`
	SegLen     int     `json:"segment_len"`
	Shards     int     `json:"shards"`
	IndexBytes int64   `json:"index_file_bytes"`
	Budget     int64   `json:"auto_budget_bytes"`

	Modes []memModeResult `json:"modes"`
}

// memModeResult is one memory mode's measured point.
type memModeResult struct {
	Mode          string  `json:"mode"` // "heap", "mmap", "auto-budget"
	OpenNS        int64   `json:"open_ns"`
	ResidentBytes int64   `json:"resident_bytes"` // at open, before any fault-in
	MappedBytes   int64   `json:"mapped_bytes"`
	LazyShards    int     `json:"lazy_shards"`
	Reads         int     `json:"reads"`
	Passes        int     `json:"passes"`
	WallNS        int64   `json:"wall_ns"`
	NSPerRead     float64 `json:"ns_per_read"`
}

// benchMem saves a sharded index for the bsplendens-like dataset and
// measures each memory mode's open cost, byte split, and streaming
// throughput against it, writing the result to outPath.
func benchMem(scale float64, opts jem.Options, w io.Writer, outPath string) error {
	ds, err := experiments.Build(mustSpec("bsplendens-like"), scale)
	if err != nil {
		return err
	}
	// The budgeted mode needs shards to split between heap and lazy; an
	// unsharded run would degenerate to all-heap.
	if opts.Shards < 2 {
		opts.Shards = 8
	}
	builder, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "jem-bench-mem")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	idx := filepath.Join(dir, "bench.jemidx")
	if err := builder.SaveIndexFile(idx); err != nil {
		return err
	}
	st, err := os.Stat(idx)
	if err != nil {
		return err
	}

	var fastq bytes.Buffer
	for _, r := range ds.Reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, strings.Repeat("I", len(r.Seq)))
	}
	input := fastq.Bytes()
	ctx := context.Background()

	res := memResult{
		Schema:     "jem-bench/mem/v1",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Procs:      runtime.GOMAXPROCS(0),
		Dataset:    ds.Spec.Name,
		Scale:      scale,
		Contigs:    len(ds.Contigs),
		K:          opts.K,
		W:          opts.W,
		Trials:     opts.Trials,
		SegLen:     opts.SegmentLen,
		Shards:     builder.Shards(),
		IndexBytes: st.Size(),
		Budget:     builder.IndexBytes() / 2,
	}

	modes := []struct {
		name string
		mem  jem.Memory
	}{
		{"heap", jem.Memory{Mode: jem.MemoryHeap}},
		{"mmap", jem.Memory{Mode: jem.MemoryMMap}},
		{"auto-budget", jem.Memory{Mode: jem.MemoryAuto, Budget: res.Budget}},
	}
	for _, mc := range modes {
		loadOpts := opts
		loadOpts.Memory = mc.mem
		start := time.Now()
		m, info, err := jem.Open(jem.OpenOptions{IndexPath: idx, Options: loadOpts})
		if err != nil {
			return fmt.Errorf("%s open: %w", mc.name, err)
		}
		mr := memModeResult{
			Mode:          mc.name,
			OpenNS:        time.Since(start).Nanoseconds(),
			ResidentBytes: info.Memory.ResidentBytes,
			MappedBytes:   info.Memory.MappedBytes,
		}
		for _, r := range info.Memory.Shards {
			if r == jem.ShardLazy {
				mr.LazyShards++
			}
		}
		// One warmup pass faults in whatever the workload touches, so
		// the timed passes measure steady state for every mode alike.
		if _, err := m.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{}); err != nil {
			return fmt.Errorf("%s warmup: %w", mc.name, err)
		}
		for mr.Passes < 3 || (mr.WallNS < int64(time.Second) && mr.Passes < 20) {
			t0 := time.Now()
			stats, err := m.Stream(ctx, bytes.NewReader(input), io.Discard, jem.StreamOptions{})
			if err != nil {
				return fmt.Errorf("%s pass %d: %w", mc.name, mr.Passes, err)
			}
			mr.WallNS += time.Since(t0).Nanoseconds()
			mr.Reads += stats.Reads
			mr.Passes++
		}
		mr.NSPerRead = float64(mr.WallNS) / float64(mr.Reads)
		if err := m.Close(); err != nil {
			return fmt.Errorf("%s close: %w", mc.name, err)
		}
		res.Modes = append(res.Modes, mr)
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "memory benchmark (%s @ scale %g, %d shards, %d-byte index)\n",
		res.Dataset, res.Scale, res.Shards, res.IndexBytes)
	for _, mr := range res.Modes {
		fmt.Fprintf(w, "  %-12s %8.2fms open  %10d resident  %10d mapped  %2d lazy  %8.0f ns/read\n",
			mr.Mode, float64(mr.OpenNS)/1e6, mr.ResidentBytes, mr.MappedBytes, mr.LazyShards, mr.NSPerRead)
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	return nil
}
