// Command jem-bench regenerates the paper's tables and figures on
// synthesized datasets. Each subcommand corresponds to one exhibit:
//
//	jem-bench table1            dataset statistics
//	jem-bench fig5              precision/recall, JEM vs Mashmap
//	jem-bench fig6              trial sweep, JEM vs classical MinHash
//	jem-bench table2            strong scaling p=4..64 + Mashmap
//	jem-bench fig7a             runtime breakdown by step (p=16)
//	jem-bench fig7b             querying throughput vs p
//	jem-bench fig8              computation vs communication split
//	jem-bench fig9              percent identity distribution
//	jem-bench core              core mapping throughput -> BENCH_core.json
//	jem-bench obs               tracing overhead on/off -> BENCH_obs.json
//	jem-bench dist              remote vs local shard serving -> BENCH_dist.json
//	jem-bench mem               heap vs mmap vs budgeted serving -> BENCH_mem.json
//	jem-bench all               everything above in order (except core/obs/dist/mem)
//
// The -scale flag scales the paper's genome lengths; the default 0.01
// keeps a full "all" run in the minutes range on a laptop. Absolute
// runtimes are not comparable to the paper's cluster; shapes are.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.01, "genome length scale vs the paper")
		trials   = flag.Int("t", 30, "sketch trials T")
		seed     = flag.Int64("seed", 1, "hash family seed")
		csvDir   = flag.String("csv", "", "also write raw data as CSV files into this directory")
		benchOut = flag.String("bench-out", "",
			"output path for the core/obs/dist/mem subcommand's machine-readable result (default BENCH_<sub>.json)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics, /statusz, /debug/vars and /debug/pprof while benchmarks run (empty = off)")
		metricsLinger = flag.Duration("metrics-linger", 0,
			"keep the metrics server up this long after the run finishes (lets a scraper collect the final state)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-bench [flags] {table1|fig5|fig6|table2|fig7a|fig7b|fig8|fig9|ablations|coverage|core|obs|dist|mem|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := jem.DefaultOptions()
	opts.Trials = *trials
	opts.Seed = *seed

	if *metricsAddr != "" {
		// Mapper instruments from every exhibit accumulate in one
		// registry; /debug/pprof makes long bench runs profilable
		// without restarting them under -cpuprofile.
		reg := obs.NewRegistry()
		opts.Metrics = reg
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jem-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics at %s/metrics (also /statusz, /debug/vars, /debug/pprof)\n", srv.URL())
		defer func() {
			if *metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "metrics server lingering %v\n", *metricsLinger)
				// The linger is interruptible: a signal during it ends
				// the wait early instead of holding the process hostage.
				ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
				select {
				case <-time.After(*metricsLinger):
				case <-ctx.Done():
				}
				stop()
			}
			// Graceful shutdown lets an in-flight scrape finish; fall
			// back to a hard close if it cannot within the grace period.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				_ = srv.Close() // hard stop; the scrape was cut anyway
			}
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "jem-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := run(flag.Arg(0), *scale, opts, os.Stdout, *csvDir, *benchOut); err != nil {
		fmt.Fprintf(os.Stderr, "jem-bench: %v\n", err)
		os.Exit(1)
	}
}

var processCounts = []int{4, 8, 16, 32, 64}

// writeCSVFile writes one exhibit's raw data when csvDir is set.
func writeCSVFile(csvDir, name string, write func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}

func run(cmd string, scale float64, opts jem.Options, w io.Writer, csvDir, benchOut string) error {
	start := time.Now()
	defer func() {
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
	}()
	switch cmd {
	case "table1":
		rows, err := experiments.Table1(experiments.PaperSpecs(), scale)
		if err != nil {
			return err
		}
		experiments.RenderTable1(w, rows)
		if err := writeCSVFile(csvDir, "table1.csv", func(f io.Writer) error { return experiments.Table1CSV(f, rows) }); err != nil {
			return err
		}
	case "fig5":
		rows, err := experiments.Fig5(experiments.SimSpecs(), scale, opts)
		if err != nil {
			return err
		}
		experiments.RenderFig5(w, rows)
		if err := writeCSVFile(csvDir, "fig5.csv", func(f io.Writer) error { return experiments.Fig5CSV(f, rows) }); err != nil {
			return err
		}
	case "fig6":
		spec, _ := experiments.SpecByName("bsplendens-like")
		pts, err := experiments.Fig6(spec, scale, []int{5, 10, 20, 30, 50, 100, 150}, opts)
		if err != nil {
			return err
		}
		experiments.RenderFig6(w, spec.Name, pts)
		if err := writeCSVFile(csvDir, "fig6.csv", func(f io.Writer) error { return experiments.Fig6CSV(f, spec.Name, pts) }); err != nil {
			return err
		}
	case "table2":
		specs := append(experiments.SimSpecs()[2:6:6], mustSpec("bsplendens-like"), mustSpec("osativa-like"))
		rows, err := experiments.Table2(specs, scale, processCounts, opts)
		if err != nil {
			return err
		}
		experiments.RenderTable2(w, rows)
		if err := writeCSVFile(csvDir, "table2.csv", func(f io.Writer) error { return experiments.Table2CSV(f, rows) }); err != nil {
			return err
		}
	case "fig7a":
		specs := append(experiments.SimSpecs()[2:6:6], mustSpec("bsplendens-like"), mustSpec("osativa-like"))
		rows, err := experiments.Fig7a(specs, scale, 16, opts)
		if err != nil {
			return err
		}
		experiments.RenderFig7a(w, rows)
		if err := writeCSVFile(csvDir, "fig7a.csv", func(f io.Writer) error { return experiments.Fig7aCSV(f, rows) }); err != nil {
			return err
		}
	case "fig7b":
		specs := append(experiments.SimSpecs()[2:6:6], mustSpec("bsplendens-like"), mustSpec("osativa-like"))
		rows, err := experiments.Fig7b(specs, scale, processCounts, opts)
		if err != nil {
			return err
		}
		experiments.RenderFig7b(w, rows)
		if err := writeCSVFile(csvDir, "fig7b.csv", func(f io.Writer) error { return experiments.Fig7bCSV(f, rows) }); err != nil {
			return err
		}
	case "fig8":
		specs := []experiments.Spec{mustSpec("human7-like"), mustSpec("bsplendens-like")}
		rows, err := experiments.Fig8(specs, scale, processCounts, opts)
		if err != nil {
			return err
		}
		experiments.RenderFig8(w, rows)
		if err := writeCSVFile(csvDir, "fig8.csv", func(f io.Writer) error { return experiments.Fig8CSV(f, rows) }); err != nil {
			return err
		}
	case "fig9":
		res, err := experiments.Fig9(mustSpec("osativa-like"), scale, opts, 0)
		if err != nil {
			return err
		}
		experiments.RenderFig9(w, res)
		if err := writeCSVFile(csvDir, "fig9.csv", func(f io.Writer) error { return experiments.Fig9CSV(f, res) }); err != nil {
			return err
		}
	case "coverage":
		spec := mustSpec("bsplendens-like")
		pts, err := experiments.CoverageSweep(spec, scale, []float64{2.5, 5, 10, 20}, opts)
		if err != nil {
			return err
		}
		experiments.RenderCoverage(w, spec.Name, pts)
		if err := writeCSVFile(csvDir, "coverage.csv", func(f io.Writer) error {
			return experiments.CoverageCSV(f, spec.Name, pts)
		}); err != nil {
			return err
		}
	case "ablations":
		spec := mustSpec("bsplendens-like")
		ord, err := experiments.AblationOrdering(spec, scale, opts)
		if err != nil {
			return err
		}
		experiments.RenderAblationOrdering(w, ord)
		fmt.Fprintln(w)
		segs, err := experiments.AblationEndSegments(spec, scale, opts)
		if err != nil {
			return err
		}
		experiments.RenderAblationSegments(w, segs)
		fmt.Fprintln(w)
		lazy, err := experiments.AblationLazyCounters(spec, scale, opts)
		if err != nil {
			return err
		}
		experiments.RenderAblationLazy(w, lazy)
		fmt.Fprintln(w)
		win, err := experiments.AblationWindow(spec, scale, []int{20, 50, 100, 200}, opts)
		if err != nil {
			return err
		}
		experiments.RenderAblationWindow(w, spec.Name, win)
		fmt.Fprintln(w)
		genomeLen := mustSpec("osativa-like").GenomeLen(scale)
		bub, err := experiments.AblationBubbles(genomeLen, 0.004, opts)
		if err != nil {
			return err
		}
		experiments.RenderAblationBubbles(w, bub)
	case "core":
		if benchOut == "" {
			benchOut = "BENCH_core.json"
		}
		if err := benchCore(scale, opts, w, benchOut); err != nil {
			return err
		}
	case "dist":
		if benchOut == "" {
			benchOut = "BENCH_dist.json"
		}
		if err := benchDist(scale, opts, w, benchOut); err != nil {
			return err
		}
	case "obs":
		if benchOut == "" {
			benchOut = "BENCH_obs.json"
		}
		if err := benchObs(scale, opts, w, benchOut); err != nil {
			return err
		}
	case "mem":
		if benchOut == "" {
			benchOut = "BENCH_mem.json"
		}
		if err := benchMem(scale, opts, w, benchOut); err != nil {
			return err
		}
	case "all":
		for _, c := range []string{"table1", "fig5", "fig6", "table2", "fig7a", "fig7b", "fig8", "fig9", "ablations", "coverage"} {
			if err := run(c, scale, opts, w, csvDir, benchOut); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

func mustSpec(name string) experiments.Spec {
	s, ok := experiments.SpecByName(name)
	if !ok {
		panic("unknown spec " + name)
	}
	return s
}
