// Command jem-mapper maps the end segments of long reads to contigs
// using the JEM sketch, writing a TSV mapping to stdout (or -o).
//
// Usage:
//
//	jem-mapper [flags] contigs.fasta reads.fastq
//
// Flags mirror the paper's parameters: -k 16 -w 100 -t 30 -l 1000.
// Pass -p N to run the simulated distributed-memory algorithm on N
// ranks and report per-step simulated times on stderr.
//
// Pass -metrics-addr host:port to serve live observability while the
// run is in flight: /metrics (Prometheus text), /statusz (human
// table + phase spans), /debug/vars (expvar) and /debug/pprof/*.
// -metrics-linger keeps the server up after the run so a scraper can
// collect the final state. See docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	var (
		k           = flag.Int("k", 16, "k-mer size")
		w           = flag.Int("w", 100, "minimizer window size (in k-mers)")
		t           = flag.Int("t", 30, "number of sketch trials T")
		l           = flag.Int("l", 1000, "end segment / interval length (bp)")
		seed        = flag.Int64("seed", 1, "hash family seed")
		workers     = flag.Int("workers", 0, "goroutines (0 = all cores)")
		ranks       = flag.Int("p", 0, "simulated MPI ranks (0 = shared-memory run)")
		outPath     = flag.String("o", "", "output TSV path (default stdout)")
		paf         = flag.Bool("paf", false, "write PAF with positional estimates instead of TSV")
		sam         = flag.Bool("sam", false, "verify top hits by alignment and write SAM (slower)")
		saveIdx     = flag.String("save-index", "", "write the sketch index here after building")
		loadIdx     = flag.String("load-index", "", "load a sketch index instead of sketching contigs")
		stream      = flag.Bool("stream", false, "map reads as a stream (bounded memory) and report per-phase stats")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile here")
		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics, /statusz, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty = off)")
		metricsLinger = flag.Duration("metrics-linger", 0,
			"keep the metrics server up this long after the run finishes (lets a scraper collect the final state)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-mapper [flags] contigs.fasta reads.fastq\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	opts := jem.Options{K: *k, W: *w, Trials: *t, SegmentLen: *l, Seed: *seed, Workers: *workers}
	cfg := runConfig{
		contigPath: flag.Arg(0), readPath: flag.Arg(1),
		opts: opts, ranks: *ranks, outPath: *outPath, paf: *paf, sam: *sam,
		saveIndex: *saveIdx, loadIndex: *loadIdx, stream: *stream, cpuProfile: *cpuProf,
		metricsAddr: *metricsAddr, metricsLinger: *metricsLinger,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "jem-mapper: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	contigPath, readPath string
	opts                 jem.Options
	ranks                int
	outPath              string
	paf                  bool
	sam                  bool
	saveIndex, loadIndex string
	stream               bool
	cpuProfile           string
	metricsAddr          string
	metricsLinger        time.Duration
}

func run(cfg runConfig) (retErr error) {
	if err := cfg.opts.Validate(); err != nil {
		return err
	}
	// One registry for the whole run: the mapper's instruments, phase
	// spans and (with -p) per-rank spans all land here, and the final
	// summary is printed from it. -metrics-addr serves it live.
	reg := obs.NewRegistry()
	cfg.opts.Metrics = reg
	if cfg.metricsAddr != "" {
		srv, err := obs.Serve(cfg.metricsAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving metrics at %s/metrics (also /statusz, /debug/vars, /debug/pprof)\n", srv.URL())
		defer func() {
			if cfg.metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "metrics server lingering %v\n", cfg.metricsLinger)
				time.Sleep(cfg.metricsLinger)
			}
			_ = srv.Close() // shutdown at exit; nothing to do with the error
		}()
	}
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		// StopCPUProfile (deferred later, so it runs first) flushes the
		// profile; a failed close means a truncated profile on disk.
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.stream && (cfg.paf || cfg.sam || cfg.ranks > 0) {
		return fmt.Errorf("-stream writes TSV only and runs shared-memory (drop -paf/-sam/-p)")
	}
	start := time.Now()
	contigs, err := jem.ReadSequences(cfg.contigPath)
	if err != nil {
		return err
	}
	var reads []jem.Record
	if !cfg.stream {
		// Stream mode never materializes the read set; everyone else
		// loads it up front.
		reads, err = jem.ReadSequences(cfg.readPath)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "loaded %d contigs, %d reads in %v\n",
		len(contigs), len(reads), time.Since(start).Round(time.Millisecond))

	out := os.Stdout
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		// Close errors on the output file are write errors (the last
		// buffered bytes land at close): a truncated mapping table must
		// fail the run, not exit 0.
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		out = f
	}

	if cfg.ranks > 0 {
		dout, err := jem.MapDistributed(contigs, reads, cfg.ranks, cfg.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulated p=%d total=%v comm=%.1f%% throughput=%.0f seg/s\n",
			cfg.ranks, dout.Total.Round(time.Millisecond), 100*dout.CommFraction, dout.Throughput)
		for _, st := range dout.Steps {
			fmt.Fprintf(os.Stderr, "  %-22s %v\n", st.Name, st.Duration.Round(time.Microsecond))
		}
		fmt.Fprint(os.Stderr, dout.PhaseTrace)
		return jem.WriteTSV(out, dout.Mappings)
	}

	var mapper *jem.Mapper
	if cfg.loadIndex != "" {
		f, err := os.Open(cfg.loadIndex)
		if err != nil {
			return err
		}
		mapper, err = jem.LoadMapperObserved(f, contigs, reg)
		_ = f.Close() // read-only; decode errors carry the signal
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded index %s (%d contigs)\n", cfg.loadIndex, mapper.NumContigs())
	} else {
		mapper, err = jem.NewMapper(contigs, cfg.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sketched subjects in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if cfg.saveIndex != "" {
		f, err := os.Create(cfg.saveIndex)
		if err != nil {
			return err
		}
		if err := mapper.SaveIndex(f); err != nil {
			_ = f.Close() // the SaveIndex error is the one to report
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved index to %s\n", cfg.saveIndex)
	}

	mapStart := time.Now()
	if cfg.stream {
		stats, err := mapStreaming(mapper, cfg.readPath, out)
		printStats(os.Stderr, stats, time.Since(mapStart))
		return err
	}
	if cfg.sam {
		vms := mapper.MapReadsVerified(reads, jem.VerifyOptions{})
		fmt.Fprintf(os.Stderr, "verified %d segments in %v\n",
			len(vms), time.Since(mapStart).Round(time.Millisecond))
		return mapper.WriteSAM(out, vms, reads)
	}
	if cfg.paf {
		pms := mapper.MapReadsPositional(reads)
		printMapSummary(os.Stderr, reg, time.Since(mapStart))
		return mapper.WritePAF(out, pms, reads)
	}
	mappings := mapper.MapReads(reads)
	printMapSummary(os.Stderr, reg, time.Since(mapStart))
	return jem.WriteTSV(out, mappings)
}

// printMapSummary renders the run epilogue from the registry — the
// same counters /metrics serves — so the printed summary and the
// scraped one cannot disagree. Shared by the TSV and PAF paths.
func printMapSummary(w io.Writer, reg *obs.Registry, elapsed time.Duration) {
	snap := reg.Snapshot()
	fmt.Fprintf(w, "mapped %d segments (%d hit) in %v, %d postings scanned\n",
		int64(snap["jem_core_segments_total"]),
		int64(snap["jem_core_segments_mapped_total"]),
		elapsed.Round(time.Millisecond),
		int64(snap["jem_core_postings_scanned_total"]))
}

// mapStreaming runs the pipelined streaming path over the reads file
// (gzip-transparent) and returns its per-phase stats.
func mapStreaming(mapper *jem.Mapper, readPath string, out *os.File) (jem.Stats, error) {
	f, err := os.Open(readPath)
	if err != nil {
		return jem.Stats{}, err
	}
	defer f.Close()
	var src io.Reader = f
	if strings.HasSuffix(readPath, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return jem.Stats{}, err
		}
		defer gz.Close()
		src = gz
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	stats, err := mapper.MapStream(src, bw)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	return stats, err
}

// printStats renders the jem.Stats snapshot on one line per phase.
func printStats(w io.Writer, s jem.Stats, elapsed time.Duration) {
	fmt.Fprintf(w, "streamed %d reads -> %d segments (%d mapped), %d postings scanned in %v\n",
		s.Reads, s.Segments, s.Mapped, s.PostingsScanned, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  phase wall: read %v, map %v, write %v\n",
		s.ReadWall.Round(time.Millisecond), s.MapWall.Round(time.Millisecond),
		s.WriteWall.Round(time.Millisecond))
}
