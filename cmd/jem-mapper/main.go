// Command jem-mapper maps the end segments of long reads to contigs
// using the JEM sketch, writing a TSV mapping to stdout (or -o).
//
// Usage:
//
//	jem-mapper [flags] contigs.fasta reads.fastq
//
// Flags mirror the paper's parameters: -k 16 -w 100 -t 30 -l 1000.
// Pass -p N to run the simulated distributed-memory algorithm on N
// ranks and report per-step simulated times on stderr.
//
// Pass -metrics-addr host:port to serve live observability while the
// run is in flight: /metrics (Prometheus text), /statusz (human
// table + phase spans), /debug/vars (expvar) and /debug/pprof/*.
// -metrics-linger keeps the server up after the run so a scraper can
// collect the final state. See docs/OBSERVABILITY.md.
//
// SIGINT/SIGTERM cancel the run: in-flight batches drain, partial
// output is flushed, the summary printed so far is reported, and the
// process exits non-zero. -on-bad-record controls what a malformed
// input record does (fail the run, be skipped, or be skipped AND
// logged to a quarantine sidecar file). See docs/ROBUSTNESS.md.
package main

import (
	"bufio"
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
)

// logger carries the CLI's structured progress log (stderr). Result
// summaries (printStats, printMapSummary, the distributed step table)
// stay plain text: they are the run's output, not its log.
var logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
	ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
		if a.Key == slog.TimeKey && len(groups) == 0 {
			return slog.Attr{} // timestamps are noise on an interactive CLI
		}
		return a
	},
}))

func main() {
	var (
		k           = flag.Int("k", 16, "k-mer size")
		w           = flag.Int("w", 100, "minimizer window size (in k-mers)")
		t           = flag.Int("t", 30, "number of sketch trials T")
		l           = flag.Int("l", 1000, "end segment / interval length (bp)")
		seed        = flag.Int64("seed", 1, "hash family seed")
		workers     = flag.Int("workers", 0, "goroutines (0 = all cores)")
		shards      = flag.Int("shards", 0, "partition the sketch index into this many shards (0/1 = unsharded; sharded and unsharded output is identical)")
		ranks       = flag.Int("p", 0, "simulated MPI ranks (0 = shared-memory run)")
		outPath     = flag.String("o", "", "output TSV path (default stdout)")
		paf         = flag.Bool("paf", false, "write PAF with positional estimates instead of TSV")
		sam         = flag.Bool("sam", false, "verify top hits by alignment and write SAM (slower)")
		saveIdx     = flag.String("save-index", "", "write the sketch index here after building (atomic temp+rename)")
		loadIdx     = flag.String("load-index", "", "load a sketch index instead of sketching contigs")
		memory      = flag.String("memory", "", "how -load-index holds the table: heap, mmap, or auto (see docs/MEMORY.md)")
		memBudget   = flag.Int64("memory-budget", 0, "heap byte budget for -memory auto (0 = no cap)")
		stream      = flag.Bool("stream", false, "map reads as a stream (bounded memory) and report per-phase stats")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile here")
		onBadRecord = flag.String("on-bad-record", "fail",
			"what a malformed input record does in -stream mode: fail, skip, or quarantine (skip + log to the sidecar file)")
		quarantinePath = flag.String("quarantine-file", "",
			"sidecar path for -on-bad-record=quarantine (default: <output>.quarantine, requires -o)")
		maxRecordLen = flag.Int("max-record-len", 0,
			"treat -stream records longer than this many bases as bad records (0 = no limit)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics, /statusz, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty = off)")
		metricsLinger = flag.Duration("metrics-linger", 0,
			"keep the metrics server up this long after the run finishes (lets a scraper collect the final state)")
		logJSON = flag.Bool("log-json", false, "emit the progress log as JSON lines instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-mapper [flags] contigs.fasta reads.fastq\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	policy, err := jem.ParseBadRecordPolicy(*onBadRecord)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jem-mapper: %v\n", err)
		os.Exit(2)
	}
	memMode, err := jem.ParseMemoryMode(*memory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jem-mapper: %v\n", err)
		os.Exit(2)
	}
	opts := jem.Options{K: *k, W: *w, Trials: *t, SegmentLen: *l, Seed: *seed, Workers: *workers, Shards: *shards,
		Memory: jem.Memory{Mode: memMode, Budget: *memBudget}}
	cfg := runConfig{
		contigPath: flag.Arg(0), readPath: flag.Arg(1),
		opts: opts, ranks: *ranks, outPath: *outPath, paf: *paf, sam: *sam,
		saveIndex: *saveIdx, loadIndex: *loadIdx, stream: *stream, cpuProfile: *cpuProf,
		onBadRecord: policy, quarantinePath: *quarantinePath, maxRecordLen: *maxRecordLen,
		metricsAddr: *metricsAddr, metricsLinger: *metricsLinger,
	}
	// SIGINT/SIGTERM cancel ctx; the pipeline drains in-flight batches,
	// flushes partial output and returns context.Canceled. A second
	// signal kills the process outright (stop() restores the default
	// handler), so a wedged run can still be terminated.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		if errors.Is(err, context.Canceled) {
			logger.Warn("interrupted; partial output flushed")
		} else {
			logger.Error("run failed", slog.Any("error", err))
		}
		os.Exit(1)
	}
}

type runConfig struct {
	contigPath, readPath string
	opts                 jem.Options
	ranks                int
	outPath              string
	paf                  bool
	sam                  bool
	saveIndex, loadIndex string
	stream               bool
	cpuProfile           string
	onBadRecord          jem.BadRecordPolicy
	quarantinePath       string
	maxRecordLen         int
	metricsAddr          string
	metricsLinger        time.Duration
}

func run(ctx context.Context, cfg runConfig) (retErr error) {
	if err := cfg.opts.Validate(); err != nil {
		return err
	}
	// One registry for the whole run: the mapper's instruments, phase
	// spans and (with -p) per-rank spans all land here, and the final
	// summary is printed from it. -metrics-addr serves it live.
	reg := obs.NewRegistry()
	cfg.opts.Metrics = reg
	if cfg.metricsAddr != "" {
		srv, err := obs.Serve(cfg.metricsAddr, reg)
		if err != nil {
			return err
		}
		logger.Info("serving metrics",
			slog.String("url", srv.URL()+"/metrics"),
			slog.String("also", "/statusz /debug/vars /debug/pprof"))
		defer func() {
			if cfg.metricsLinger > 0 {
				logger.Info("metrics server lingering", slog.Duration("linger", cfg.metricsLinger))
				// The linger is interruptible: a signal during it ends the
				// wait early instead of holding the process hostage.
				select {
				case <-time.After(cfg.metricsLinger):
				case <-ctx.Done():
				}
			}
			// Graceful shutdown lets an in-flight scrape finish; fall back
			// to a hard close if it cannot within the grace period.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				_ = srv.Close() // hard stop; the scrape was cut anyway
			}
		}()
	}
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		// StopCPUProfile (deferred later, so it runs first) flushes the
		// profile; a failed close means a truncated profile on disk.
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.stream && (cfg.paf || cfg.sam || cfg.ranks > 0) {
		return fmt.Errorf("-stream writes TSV only and runs shared-memory (drop -paf/-sam/-p)")
	}
	if cfg.onBadRecord != jem.BadRecordFail && !cfg.stream {
		return fmt.Errorf("-on-bad-record applies to -stream mode only")
	}
	if cfg.onBadRecord == jem.BadRecordQuarantine && cfg.quarantinePath == "" {
		if cfg.outPath == "" {
			return fmt.Errorf("-on-bad-record=quarantine needs -quarantine-file (or -o, which defaults the sidecar to <output>.quarantine)")
		}
		cfg.quarantinePath = cfg.outPath + ".quarantine"
	}
	start := time.Now()
	contigs, err := jem.ReadSequences(cfg.contigPath)
	if err != nil {
		return err
	}
	var reads []jem.Record
	if !cfg.stream {
		// Stream mode never materializes the read set; everyone else
		// loads it up front.
		reads, err = jem.ReadSequences(cfg.readPath)
		if err != nil {
			return err
		}
	}
	logger.Info("inputs loaded",
		slog.Int("contigs", len(contigs)),
		slog.Int("reads", len(reads)),
		slog.Duration("elapsed", time.Since(start).Round(time.Millisecond)))

	out := os.Stdout
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		// Close errors on the output file are write errors (the last
		// buffered bytes land at close): a truncated mapping table must
		// fail the run, not exit 0.
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		out = f
	}

	if cfg.ranks > 0 {
		dout, err := jem.MapDistributed(contigs, reads, cfg.ranks, cfg.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulated p=%d total=%v comm=%.1f%% throughput=%.0f seg/s\n",
			cfg.ranks, dout.Total.Round(time.Millisecond), 100*dout.CommFraction, dout.Throughput)
		for _, st := range dout.Steps {
			fmt.Fprintf(os.Stderr, "  %-22s %v\n", st.Name, st.Duration.Round(time.Microsecond))
		}
		fmt.Fprint(os.Stderr, dout.PhaseTrace)
		return jem.WriteTSV(out, dout.Mappings)
	}

	mapper, err := buildMapper(cfg, contigs, reg)
	if err != nil {
		return err
	}
	// Releases the file mapping of an mmap-backed -load-index; a no-op
	// for heap-resident mappers.
	defer mapper.Close()
	if cfg.saveIndex != "" {
		if err := mapper.SaveIndexFile(cfg.saveIndex); err != nil {
			return err
		}
		logger.Info("index saved", slog.String("path", cfg.saveIndex))
	}

	mapStart := time.Now()
	if cfg.stream {
		stats, err := mapStreaming(ctx, mapper, cfg, out)
		printStats(os.Stderr, stats, time.Since(mapStart))
		return err
	}
	if cfg.sam {
		vms := mapper.MapReadsVerified(reads, jem.VerifyOptions{})
		fmt.Fprintf(os.Stderr, "verified %d segments in %v\n",
			len(vms), time.Since(mapStart).Round(time.Millisecond))
		return mapper.WriteSAM(out, vms, reads)
	}
	if cfg.paf {
		pms := mapper.MapReadsPositional(reads)
		printMapSummary(os.Stderr, reg, time.Since(mapStart))
		return mapper.WritePAF(out, pms, reads)
	}
	mappings, mapErr := mapper.Map(ctx, reads, jem.MapOptions{})
	printMapSummary(os.Stderr, reg, time.Since(mapStart))
	// On cancellation the completed prefix is still written, so an
	// interrupted run leaves a well-formed (partial) table behind.
	if err := jem.WriteTSV(out, mappings); err != nil {
		return err
	}
	return mapErr
}

// buildMapper constructs the mapper through jem.Open: it loads the
// index when -load-index is given (falling back to a rebuild from the
// contigs when the file is corrupt — never serving a corrupt index)
// and sketches the contigs otherwise.
func buildMapper(cfg runConfig, contigs []jem.Record, reg *obs.Registry) (*jem.Mapper, error) {
	cfg.opts.Metrics = reg
	mapper, info, err := jem.Open(jem.OpenOptions{
		Contigs:          contigs,
		IndexPath:        cfg.loadIndex,
		RebuildOnCorrupt: true,
		Options:          cfg.opts,
	})
	if err != nil {
		return nil, err
	}
	switch {
	case info.FromIndex:
		logger.Info("index loaded",
			slog.String("path", cfg.loadIndex), slog.Int("contigs", mapper.NumContigs()))
	case info.Rebuilt:
		// The message keeps "corrupt" and "rebuilding" verbatim — the
		// operator-facing contract tests pin those words.
		logger.Warn("index corrupt; rebuilding from contigs",
			slog.String("path", cfg.loadIndex), slog.Any("error", info.IndexErr))
		logger.Info("subjects sketched", slog.Int("subjects", mapper.NumContigs()))
	default:
		logger.Info("subjects sketched", slog.Int("subjects", mapper.NumContigs()))
	}
	if sh := mapper.Shards(); sh > 1 {
		logger.Info("serving sharded index", slog.Int("shards", sh))
	}
	return mapper, nil
}

// printMapSummary renders the run epilogue from the registry — the
// same counters /metrics serves — so the printed summary and the
// scraped one cannot disagree. Shared by the TSV and PAF paths.
func printMapSummary(w io.Writer, reg *obs.Registry, elapsed time.Duration) {
	snap := reg.Snapshot()
	fmt.Fprintf(w, "mapped %d segments (%d hit) in %v, %d postings scanned\n",
		int64(snap["jem_core_segments_total"]),
		int64(snap["jem_core_segments_mapped_total"]),
		elapsed.Round(time.Millisecond),
		int64(snap["jem_core_postings_scanned_total"]))
}

// mapStreaming runs the pipelined streaming path over the reads file
// (gzip-transparent) and returns its per-phase stats. The context
// cancels the pipeline; whatever was mapped before cancellation is
// flushed to out regardless.
func mapStreaming(ctx context.Context, mapper *jem.Mapper, cfg runConfig, out *os.File) (jem.Stats, error) {
	f, err := os.Open(cfg.readPath)
	if err != nil {
		return jem.Stats{}, err
	}
	defer f.Close()
	var src io.Reader = f
	if strings.HasSuffix(cfg.readPath, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return jem.Stats{}, err
		}
		defer gz.Close()
		src = gz
	}
	opts := jem.StreamOptions{OnBadRecord: cfg.onBadRecord, MaxRecordLen: cfg.maxRecordLen}
	var sidecar *os.File
	if cfg.onBadRecord == jem.BadRecordQuarantine {
		sidecar, err = os.Create(cfg.quarantinePath)
		if err != nil {
			return jem.Stats{}, err
		}
		opts.Quarantine = sidecar
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	stats, err := mapper.Stream(ctx, src, bw, opts)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if sidecar != nil {
		// The sidecar is a write handle: its close error is a lost
		// quarantine log and must surface unless the run already failed.
		if cerr := sidecar.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if stats.Quarantined > 0 {
			// fmt.Sprintf keeps the "quarantined N bad records" phrasing
			// the CLI contract tests pin.
			logger.Warn(fmt.Sprintf("quarantined %d bad records to %s", stats.Quarantined, cfg.quarantinePath),
				slog.Int("quarantined", stats.Quarantined),
				slog.String("sidecar", cfg.quarantinePath))
		}
	}
	return stats, err
}

// printStats renders the jem.Stats snapshot on one line per phase.
func printStats(w io.Writer, s jem.Stats, elapsed time.Duration) {
	fmt.Fprintf(w, "streamed %d reads -> %d segments (%d mapped), %d postings scanned in %v\n",
		s.Reads, s.Segments, s.Mapped, s.PostingsScanned, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  phase wall: read %v, map %v, write %v\n",
		s.ReadWall.Round(time.Millisecond), s.MapWall.Round(time.Millisecond),
		s.WriteWall.Round(time.Millisecond))
	if s.BadRecords > 0 || s.WorkerPanics > 0 {
		fmt.Fprintf(w, "  bad records: %d (%d quarantined), worker panics: %d\n",
			s.BadRecords, s.Quarantined, s.WorkerPanics)
	}
}
