// Command jem-stats prints assembly/read-set statistics for FASTA or
// FASTQ files (gzip transparent): record count, total bases, min/mean/
// max lengths, N50, N90, GC content and ambiguity fraction — the
// numbers Table I is made of.
//
// Usage:
//
//	jem-stats contigs.fasta reads.fastq.gz ...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/seq"
	"repro/internal/stats"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-stats file.fasta [file2.fastq ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	t := stats.NewTable("file", "records", "bases", "min", "mean", "max", "N50", "N90", "GC%", "N%")
	for _, path := range flag.Args() {
		records, err := seq.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jem-stats: %v\n", err)
			os.Exit(1)
		}
		row := summarize(records)
		t.AddRow(path, row.n, row.bases, row.min, fmt.Sprintf("%.0f", row.mean), row.max,
			row.n50, row.n90, fmt.Sprintf("%.2f", row.gc), fmt.Sprintf("%.3f", row.ambiguous))
	}
	fmt.Print(t.String())
}

type summary struct {
	n, min, max, n50, n90 int
	bases                 int64
	mean, gc, ambiguous   float64
}

func summarize(records []seq.Record) summary {
	var s summary
	s.n = len(records)
	if s.n == 0 {
		return s
	}
	lens := make([]int, len(records))
	var gcBases, validBases, ambig int64
	s.min = len(records[0].Seq)
	for i := range records {
		l := len(records[i].Seq)
		lens[i] = l
		s.bases += int64(l)
		if l < s.min {
			s.min = l
		}
		if l > s.max {
			s.max = l
		}
		valid := int64(seq.CountValid(records[i].Seq))
		validBases += valid
		ambig += int64(l) - valid
		gcBases += int64(float64(valid) * seq.GC(records[i].Seq))
	}
	s.mean = float64(s.bases) / float64(s.n)
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	var acc int64
	for _, l := range lens {
		acc += int64(l)
		if s.n50 == 0 && acc*2 >= s.bases {
			s.n50 = l
		}
		if acc*10 >= 9*s.bases {
			s.n90 = l
			break
		}
	}
	if validBases > 0 {
		s.gc = 100 * float64(gcBases) / float64(validBases)
	}
	if s.bases > 0 {
		s.ambiguous = float64(ambig) / float64(s.bases)
	}
	return s
}
