// Command jem-eval scores a mapping TSV (as written by jem-mapper)
// against the §IV-B benchmark: contigs are located on the reference by
// anchor voting, simulated reads carry their true coordinates in their
// headers, and a reported pair counts as correct when the reference
// intervals intersect in at least k positions.
//
// Usage:
//
//	jem-eval -ref ref.fasta -contigs contigs.fasta -reads reads.fastq mapping.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		refPath    = flag.String("ref", "", "reference FASTA (required)")
		contigPath = flag.String("contigs", "", "contigs FASTA (required)")
		readPath   = flag.String("reads", "", "reads FASTQ with coordinate headers (required)")
		k          = flag.Int("k", 16, "k-mer size (intersection threshold)")
		l          = flag.Int("l", 1000, "end segment length")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jem-eval -ref R -contigs C -reads Q mapping.tsv\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *refPath == "" || *contigPath == "" || *readPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*refPath, *contigPath, *readPath, flag.Arg(0), *k, *l); err != nil {
		fmt.Fprintf(os.Stderr, "jem-eval: %v\n", err)
		os.Exit(1)
	}
}

func run(refPath, contigPath, readPath, tsvPath string, k, l int) error {
	chromosomes, err := jem.ReadSequences(refPath)
	if err != nil {
		return err
	}
	contigs, err := jem.ReadSequences(contigPath)
	if err != nil {
		return err
	}
	reads, err := jem.ReadSequences(readPath)
	if err != nil {
		return err
	}
	truthReads, err := jem.GroundTruthReads(reads)
	if err != nil {
		return fmt.Errorf("reads lack coordinate headers (simulate with jem-simulate): %w", err)
	}
	ds := &jem.Dataset{
		Chromosomes: chromosomes,
		Contigs:     contigs,
		Reads:       reads,
		Truth:       truthReads,
	}
	opts := jem.DefaultOptions()
	opts.K, opts.SegmentLen = k, l
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		return err
	}
	tf, err := os.Open(tsvPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	mappings, err := jem.ReadTSV(tf, reads, contigs)
	if err != nil {
		return err
	}
	q := bench.Evaluate(mappings)
	fmt.Printf("segments evaluated: %d\n", len(mappings))
	fmt.Printf("true pairs in benchmark: %d\n", bench.TruePairs())
	fmt.Printf("TP=%d FP=%d FN=%d TN=%d\n", q.TP, q.FP, q.FN, q.TN)
	fmt.Printf("precision=%.4f recall=%.4f F1=%.4f\n", q.Precision, q.Recall, q.F1)
	return nil
}
