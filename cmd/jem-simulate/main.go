// Command jem-simulate synthesizes a reference genome plus HiFi long
// reads and Illumina short reads, the inputs of the paper's pipeline
// (standing in for NCBI genomes, Sim-it and ART). Ground-truth
// coordinates are encoded in read headers for later benchmarking.
//
// Usage:
//
//	jem-simulate -len 2000000 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/genome"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	var (
		name       = flag.String("name", "synthetic", "dataset name")
		length     = flag.Int("len", 1_000_000, "genome length (bp)")
		repeats    = flag.Float64("repeats", 0.15, "repeat fraction of the genome")
		divergence = flag.Float64("divergence", 0.05, "repeat copy divergence")
		het        = flag.Float64("het", 0, "heterozygosity (0 = haploid; >0 adds a second haplotype)")
		hifiCov    = flag.Float64("hifi-cov", 10, "HiFi long read coverage")
		hifiLen    = flag.Int("hifi-len", 10000, "HiFi median read length")
		shortCov   = flag.Float64("short-cov", 30, "Illumina short read coverage")
		shortLen   = flag.Int("short-len", 100, "Illumina read length")
		seed       = flag.Int64("seed", 1, "generator seed")
		outDir     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	if err := run(*name, *length, *repeats, *divergence, *het, *hifiCov, *hifiLen, *shortCov, *shortLen, *seed, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "jem-simulate: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, length int, repeats, divergence, het, hifiCov float64, hifiLen int, shortCov float64, shortLen int, seed int64, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	g, err := genome.Generate(genome.Config{
		Name:             name,
		Length:           length,
		RepeatFraction:   repeats,
		RepeatDivergence: divergence,
		Heterozygosity:   het,
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	refPath := filepath.Join(outDir, name+".ref.fasta")
	if err := seq.WriteFASTAFile(refPath, g.Records); err != nil {
		return err
	}
	if g.Haplotype2 != nil {
		hap2Path := filepath.Join(outDir, name+".hap2.fasta")
		if err := seq.WriteFASTAFile(hap2Path, g.Haplotype2); err != nil {
			return err
		}
		fmt.Printf("haplotype2: %s\n", hap2Path)
	}
	long, err := simulate.HiFi(g.Records, simulate.HiFiConfig{
		Coverage:  hifiCov,
		MedianLen: hifiLen,
		Seed:      seed + 1,
	})
	if err != nil {
		return err
	}
	longPath := filepath.Join(outDir, name+".hifi.fastq")
	if err := seq.WriteFASTQFile(longPath, simulate.Records(long)); err != nil {
		return err
	}
	short, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{
		Coverage: shortCov,
		ReadLen:  shortLen,
		Seed:     seed + 2,
	})
	if err != nil {
		return err
	}
	shortPath := filepath.Join(outDir, name+".illumina.fastq")
	if err := seq.WriteFASTQFile(shortPath, simulate.Records(short)); err != nil {
		return err
	}
	fmt.Printf("reference : %s (%d bp)\n", refPath, length)
	fmt.Printf("hifi reads: %s (%d reads, %.0fx)\n", longPath, len(long), hifiCov)
	fmt.Printf("short reads: %s (%d reads, %.0fx)\n", shortPath, len(short), shortCov)
	return nil
}
