// Command jem-api prints the exported API surface of the public jem
// package as a stable, sorted, one-declaration-per-line listing. CI
// diffs it against the committed golden file docs/api_surface.txt
// (`make api-check`), so removing or changing an exported name fails
// the build until the golden file is deliberately regenerated
// (`make api-update`). See docs/API.md §5 for the policy.
//
// Usage:
//
//	jem-api                 # print the surface to stdout
//	jem-api -check golden   # exit 1 with a diff if surface != golden
//	jem-api -update golden  # rewrite golden with the current surface
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/types"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		check  = flag.String("check", "", "compare the surface against this golden file; non-empty diff exits 1")
		update = flag.String("update", "", "write the surface to this golden file")
		pkg    = flag.String("pkg", ".", "package pattern to list (default: the public jem package)")
	)
	flag.Parse()
	if err := run(*pkg, *check, *update); err != nil {
		fmt.Fprintf(os.Stderr, "jem-api: %v\n", err)
		os.Exit(1)
	}
}

func run(pattern, check, update string) error {
	pkgs, err := lint.Load(".", pattern)
	if err != nil {
		return err
	}
	if len(pkgs) != 1 {
		return fmt.Errorf("pattern %q matched %d packages, want exactly 1", pattern, len(pkgs))
	}
	got := Surface(pkgs[0].Types)
	switch {
	case update != "":
		return os.WriteFile(update, []byte(got), 0o644)
	case check != "":
		want, err := os.ReadFile(check)
		if err != nil {
			return fmt.Errorf("%v (run `make api-update` to create the golden file)", err)
		}
		if diff := surfaceDiff(string(want), got); diff != "" {
			return fmt.Errorf("exported API surface differs from %s:\n%s\n"+
				"if this change is intentional, run `make api-update` and commit the result", check, diff)
		}
		return nil
	default:
		_, err := os.Stdout.WriteString(got)
		return err
	}
}

// Surface renders the exported declarations of pkg, one per line,
// sorted. Lines are self-contained type signatures, so any change to
// an exported name, field, or signature changes the listing.
func Surface(pkg *types.Package) string {
	// Qualify foreign packages by name, never the package under
	// inspection, so the listing is path-independent.
	qual := func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", name, types.TypeString(obj.Type(), qual)))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", name, types.TypeString(obj.Type(), qual)))
		case *types.Func:
			lines = append(lines, "func "+name+strings.TrimPrefix(types.TypeString(obj.Type(), qual), "func"))
		case *types.TypeName:
			lines = append(lines, typeLines(obj, qual)...)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// typeLines renders one exported named type: its kind line, exported
// struct fields, and exported methods (pointer and value receivers).
func typeLines(obj *types.TypeName, qual types.Qualifier) []string {
	name := obj.Name()
	var lines []string
	if obj.IsAlias() {
		return []string{fmt.Sprintf("type %s = %s", name, types.TypeString(obj.Type(), qual))}
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return []string{fmt.Sprintf("type %s %s", name, types.TypeString(obj.Type().Underlying(), qual))}
	}
	switch under := named.Underlying().(type) {
	case *types.Struct:
		lines = append(lines, fmt.Sprintf("type %s struct", name))
		for i := 0; i < under.NumFields(); i++ {
			f := under.Field(i)
			if !f.Exported() {
				continue
			}
			lines = append(lines, fmt.Sprintf("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)))
		}
	case *types.Interface:
		lines = append(lines, fmt.Sprintf("type %s interface", name))
		for i := 0; i < under.NumExplicitMethods(); i++ {
			m := under.ExplicitMethod(i)
			if !m.Exported() {
				continue
			}
			lines = append(lines, fmt.Sprintf("method %s.%s%s", name, m.Name(),
				strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
		}
	default:
		lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(under, qual)))
	}
	// The pointer method set includes the value method set.
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		m := mset.At(i).Obj()
		if !m.Exported() || m.Pkg() != obj.Pkg() {
			continue
		}
		recv := name
		if _, isPtr := mset.At(i).Recv().(*types.Pointer); isPtr || isPointerReceiver(m) {
			recv = "*" + name
		}
		lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, m.Name(),
			strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
	}
	return lines
}

// isPointerReceiver reports whether the method was declared on a
// pointer receiver (the method-set view erases this).
func isPointerReceiver(m types.Object) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// surfaceDiff returns a minimal line diff ("-" removed from want, "+"
// added in got), empty when equal.
func surfaceDiff(want, got string) string {
	if want == got {
		return ""
	}
	wantSet := lineSet(want)
	gotSet := lineSet(got)
	var buf bytes.Buffer
	for _, l := range sortedLines(want) {
		if !gotSet[l] {
			fmt.Fprintf(&buf, "- %s\n", l)
		}
	}
	for _, l := range sortedLines(got) {
		if !wantSet[l] {
			fmt.Fprintf(&buf, "+ %s\n", l)
		}
	}
	if buf.Len() == 0 {
		return "(only ordering or blank lines differ — regenerate with `make api-update`)"
	}
	return strings.TrimRight(buf.String(), "\n")
}

func lineSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			set[l] = true
		}
	}
	return set
}

func sortedLines(s string) []string {
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	return lines
}
