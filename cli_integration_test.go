package jem_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the real binaries and drives the full
// command-line workflow the README documents:
//
//	jem-simulate → jem-assemble → jem-mapper → jem-eval → jem-scaffold → jem-stats
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs the full pipeline")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	tools := []string{"jem-simulate", "jem-assemble", "jem-mapper", "jem-eval", "jem-scaffold", "jem-stats"}
	for _, tool := range tools {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}
	runStdout := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		cmd.Dir = dir
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		return string(out)
	}

	// 1. Simulate a small dataset.
	run("jem-simulate", "-name", "cli", "-len", "300000", "-repeats", "0.1",
		"-hifi-cov", "5", "-short-cov", "25", "-out", dir)
	for _, f := range []string{"cli.ref.fasta", "cli.hifi.fastq", "cli.illumina.fastq"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	// 2. Assemble contigs.
	out := run("jem-assemble", "-o", filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.illumina.fastq"))
	if !strings.Contains(out, "contigs:") {
		t.Fatalf("assemble output: %s", out)
	}

	// 3. Map (shared memory, TSV).
	run("jem-mapper", "-o", filepath.Join(dir, "mapping.tsv"),
		filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.hifi.fastq"))
	tsv, err := os.ReadFile(filepath.Join(dir, "mapping.tsv"))
	if err != nil || len(tsv) == 0 {
		t.Fatalf("mapping.tsv: %v", err)
	}

	// 3b. Map again through a saved index; outputs must be identical.
	run("jem-mapper", "-save-index", filepath.Join(dir, "contigs.idx"), "-o", filepath.Join(dir, "m1.tsv"),
		filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.hifi.fastq"))
	run("jem-mapper", "-load-index", filepath.Join(dir, "contigs.idx"), "-o", filepath.Join(dir, "m2.tsv"),
		filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.hifi.fastq"))
	m1, _ := os.ReadFile(filepath.Join(dir, "m1.tsv"))
	m2, _ := os.ReadFile(filepath.Join(dir, "m2.tsv"))
	if string(m1) != string(m2) || string(m1) != string(tsv) {
		t.Fatal("index round trip changed the mapping")
	}

	// 3c. PAF output.
	paf := runStdout("jem-mapper", "-paf",
		filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.hifi.fastq"))
	pafLines := strings.Split(strings.TrimSpace(paf), "\n")
	if len(pafLines) < 10 || len(strings.Split(pafLines[0], "\t")) != 13 {
		t.Fatalf("paf output looks wrong: %q...", pafLines[0])
	}

	// 3d. Simulated distributed run.
	run("jem-mapper", "-p", "4", "-o", filepath.Join(dir, "dist.tsv"),
		filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "cli.hifi.fastq"))
	d1, _ := os.ReadFile(filepath.Join(dir, "dist.tsv"))
	if string(d1) != string(tsv) {
		t.Fatal("distributed mapping differs from shared-memory mapping")
	}

	// 4. Evaluate: simulated reads carry ground truth in headers.
	evalOut := run("jem-eval", "-ref", filepath.Join(dir, "cli.ref.fasta"),
		"-contigs", filepath.Join(dir, "contigs.fasta"),
		"-reads", filepath.Join(dir, "cli.hifi.fastq"),
		filepath.Join(dir, "mapping.tsv"))
	if !strings.Contains(evalOut, "precision=") {
		t.Fatalf("eval output: %s", evalOut)
	}
	// Parse the precision and insist the pipeline is sane end to end.
	for _, line := range strings.Split(evalOut, "\n") {
		if strings.HasPrefix(line, "precision=") {
			var p, r, f1 float64
			if _, err := fmtSscanf(line, &p, &r, &f1); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if p < 0.9 || r < 0.8 {
				t.Errorf("CLI pipeline quality: %s", line)
			}
		}
	}

	// 5. Scaffold (TSV mode and oriented mode with AGP).
	run("jem-scaffold", "-contigs", filepath.Join(dir, "contigs.fasta"),
		"-reads", filepath.Join(dir, "cli.hifi.fastq"),
		"-o", filepath.Join(dir, "scaffolds.fasta"),
		filepath.Join(dir, "mapping.tsv"))
	if _, err := os.Stat(filepath.Join(dir, "scaffolds.fasta")); err != nil {
		t.Fatal("no scaffold FASTA written")
	}
	run("jem-scaffold", "-oriented", "-contigs", filepath.Join(dir, "contigs.fasta"),
		"-reads", filepath.Join(dir, "cli.hifi.fastq"),
		"-agp", filepath.Join(dir, "scaffolds.agp"))
	agp, err := os.ReadFile(filepath.Join(dir, "scaffolds.agp"))
	if err != nil || !strings.Contains(string(agp), "\tW\t") {
		t.Fatalf("AGP output: %v", err)
	}

	// 6. Stats over everything produced.
	statsOut := run("jem-stats", filepath.Join(dir, "contigs.fasta"), filepath.Join(dir, "scaffolds.fasta"))
	if !strings.Contains(statsOut, "N50") {
		t.Fatalf("stats output: %s", statsOut)
	}
}

// fmtSscanf parses "precision=X recall=Y F1=Z".
func fmtSscanf(line string, p, r, f1 *float64) (int, error) {
	return fmt.Sscanf(line, "precision=%f recall=%f F1=%f", p, r, f1)
}

// TestMapperOutputWriteErrorFails is the regression test for the
// output-path error handling jem-vet's errsink analyzer surfaced:
// jem-mapper used `defer f.Close()` on the -o file, so a failing
// output device could leave a truncated mapping table behind a zero
// exit status. Mapping to /dev/full must fail loudly, in both the
// batch and streaming writers.
func TestMapperOutputWriteErrorFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the jem-mapper binary")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	dir := t.TempDir()
	mapper := filepath.Join(dir, "jem-mapper")
	if out, err := exec.Command("go", "build", "-o", mapper, "./cmd/jem-mapper").CombinedOutput(); err != nil {
		t.Fatalf("building jem-mapper: %v\n%s", err, out)
	}

	// Tiny deterministic dataset: one 12kb contig, reads sliced from
	// it (longer than the default 1000-base end segments).
	bases := []byte("ACGT")
	contig := make([]byte, 12000)
	state := uint64(42)
	for i := range contig {
		state = state*6364136223846793005 + 1442695040888963407
		contig[i] = bases[state>>62]
	}
	var fa strings.Builder
	fa.WriteString(">contig0\n")
	fa.Write(contig)
	fa.WriteString("\n")
	contigPath := filepath.Join(dir, "contigs.fasta")
	if err := os.WriteFile(contigPath, []byte(fa.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var reads strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&reads, ">read%d\n%s\n", i, contig[i*1000:i*1000+3000])
	}
	readPath := filepath.Join(dir, "reads.fasta")
	if err := os.WriteFile(readPath, []byte(reads.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, mode := range [][]string{
		{"-o", "/dev/full"},
		{"-stream", "-o", "/dev/full"},
	} {
		args := append(append([]string{}, mode...), contigPath, readPath)
		out, err := exec.Command(mapper, args...).CombinedOutput()
		if err == nil {
			t.Errorf("jem-mapper %v: expected failure writing to /dev/full, got success\n%s", mode, out)
		}
		// And the same invocation to a real file must succeed.
		okArgs := append([]string{}, args...)
		for i, a := range okArgs {
			if a == "/dev/full" {
				okArgs[i] = filepath.Join(dir, "out.tsv")
			}
		}
		if out, err := exec.Command(mapper, okArgs...).CombinedOutput(); err != nil {
			t.Errorf("jem-mapper %v: %v\n%s", okArgs, err, out)
		}
	}
}
