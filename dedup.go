package jem

import (
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/parallel"
)

// DedupOptions configures contig deduplication.
type DedupOptions struct {
	// MinIdentity is the percent identity above which a contained
	// contig is considered redundant (default 95).
	MinIdentity float64
	// MinCoverage is the fraction of the smaller contig that must be
	// covered by the alignment (default 0.9).
	MinCoverage float64
}

func (o DedupOptions) withDefaults() DedupOptions {
	if o.MinIdentity == 0 {
		o.MinIdentity = 95
	}
	if o.MinCoverage == 0 {
		o.MinCoverage = 0.9
	}
	return o
}

// DeduplicateContigs removes contigs that are contained in (or
// near-duplicates of) longer contigs, returning the kept records and
// the indices of dropped ones (into the input slice). The paper's
// problem statement assumes a non-redundant subject set ("negligible
// duplication ratio"); this pass makes that assumption operational
// for inputs from less disciplined assemblers.
//
// Candidates are found by sketch: each contig's tiles are mapped
// against the full index, and a contig whose tiles consistently hit a
// single longer contig is verified by banded alignment before being
// dropped.
func DeduplicateContigs(contigs []Record, opts Options, dopts DedupOptions) (kept []Record, dropped []int, err error) {
	dopts = dopts.withDefaults()
	mapper, err := NewMapper(contigs, opts)
	if err != nil {
		return nil, nil, err
	}
	sc := align.DefaultScoring()

	type verdict struct {
		drop bool
	}
	verdicts := make([]verdict, len(contigs))
	parallel.ForEachWorker(len(contigs), opts.Workers,
		func() *core.Session { return mapper.core.NewSession() },
		func(sess *core.Session, i int) {
			c := contigs[i].Seq
			if len(c) < opts.K {
				return
			}
			// Tile the contig and tally which other contigs its tiles hit.
			tiles := sess.MapReadTiled(c, opts.SegmentLen, 0)
			votes := map[int32]int{}
			total := 0
			for _, th := range tiles {
				total++
				if int(th.Subject) == i {
					continue
				}
				votes[th.Subject]++
			}
			if total == 0 {
				return
			}
			// A containment candidate must absorb most tiles.
			bestD, bestVotes := int32(-1), 0
			for d, v := range votes {
				if v > bestVotes || (v == bestVotes && d < bestD) {
					bestD, bestVotes = d, v
				}
			}
			if bestD < 0 || bestVotes*10 < total*8 {
				return
			}
			// Never drop the longer of the pair; break length ties by
			// index so exactly one of two identical contigs survives.
			li, ld := len(c), len(contigs[bestD].Seq)
			if li > ld || (li == ld && i < int(bestD)) {
				return
			}
			// Verify by alignment. Fit alignment consumes all of c, so
			// coverage is measured as the fraction of c's bases that
			// land in aligned (non-gap) columns.
			res := align.FastIdentity(c, contigs[bestD].Seq, sc, 64)
			covered := float64(res.Matches+res.Mismatches) / float64(len(c))
			if res.PercentIdentity() >= dopts.MinIdentity && covered >= dopts.MinCoverage {
				verdicts[i].drop = true
			}
		})

	for i := range contigs {
		if verdicts[i].drop {
			dropped = append(dropped, i)
		} else {
			kept = append(kept, contigs[i])
		}
	}
	sort.Ints(dropped)
	return kept, dropped, nil
}
