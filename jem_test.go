package jem_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestOptionsValidate(t *testing.T) {
	if err := jem.DefaultOptions().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := jem.DefaultOptions()
	bad.Trials = 0
	if err := bad.Validate(); err == nil {
		t.Error("T=0 should be invalid")
	}
	bad = jem.DefaultOptions()
	bad.SegmentLen = 2
	if err := bad.Validate(); err == nil {
		t.Error("l<k should be invalid")
	}
}

func TestNewMapperRejectsBadOptions(t *testing.T) {
	if _, err := jem.NewMapper(nil, jem.Options{}); err == nil {
		t.Error("zero options should be rejected")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := jem.Synthesize(jem.SynthesisConfig{GenomeLength: 0}); err == nil {
		t.Error("zero-length genome should fail")
	}
	if _, err := jem.Synthesize(jem.SynthesisConfig{GenomeLength: 1000, RepeatFraction: 2}); err == nil {
		t.Error("absurd repeat fraction should fail")
	}
}

func TestSynthesizeDiploid(t *testing.T) {
	ds, err := jem.Synthesize(jem.SynthesisConfig{
		Name:           "diploid",
		GenomeLength:   200_000,
		Heterozygosity: 0.003,
		HiFiCoverage:   6,
		Seed:           88,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Contigs) == 0 || len(ds.Reads) == 0 {
		t.Fatal("empty diploid dataset")
	}
	// Reads from both haplotypes must be present.
	hap2 := false
	for _, r := range ds.Reads {
		if len(r.ID) >= 5 && r.ID[:5] == "hifi2" {
			hap2 = true
			break
		}
	}
	if !hap2 {
		t.Error("no haplotype-2 reads")
	}
	// Mapping quality must survive heterozygosity (bubbles popped in
	// assembly; 0.3% SNPs barely dent sketches).
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := bench.Evaluate(mapAll(mapper, ds.Reads))
	t.Logf("diploid dataset: %d contigs, %d reads, precision %.4f recall %.4f",
		len(ds.Contigs), len(ds.Reads), q.Precision, q.Recall)
	if q.Precision < 0.85 || q.Recall < 0.8 {
		t.Errorf("diploid quality degraded: p=%.4f r=%.4f", q.Precision, q.Recall)
	}
}

func TestDistributedMatchesShared(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	shared := mapAll(mapper, ds.Reads)
	for _, p := range []int{1, 3, 8} {
		out, err := jem.MapDistributed(ds.Contigs, ds.Reads, p, opts)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(out.Mappings, shared) {
			t.Fatalf("p=%d: distributed mappings differ", p)
		}
		if out.Total <= 0 {
			t.Errorf("p=%d: zero simulated time", p)
		}
		if len(out.Steps) == 0 {
			t.Errorf("p=%d: no steps", p)
		}
	}
}

func TestDistributedStepStructure(t *testing.T) {
	ds := buildSmallDataset(t)
	out, err := jem.MapDistributed(ds.Contigs, ds.Reads, 4, jem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := []string{
		"S1 load input", "S2 sketch subjects", "S3 serialize sketch",
		"S3 allgather sketch", "S3 merge sketch", "S4 map queries",
	}
	if len(out.Steps) != len(wantSteps) {
		t.Fatalf("got %d steps: %+v", len(out.Steps), out.Steps)
	}
	commSeen := false
	for i, st := range out.Steps {
		if st.Name != wantSteps[i] {
			t.Errorf("step %d = %q want %q", i, st.Name, wantSteps[i])
		}
		if st.Communication {
			commSeen = true
			if st.Name != "S3 allgather sketch" {
				t.Errorf("unexpected communication step %q", st.Name)
			}
		}
	}
	if !commSeen {
		t.Error("no communication step recorded")
	}
	if out.CommFraction <= 0 || out.CommFraction >= 1 {
		t.Errorf("comm fraction %v", out.CommFraction)
	}
	if out.Throughput <= 0 {
		t.Error("throughput not positive")
	}
}

func TestBaselinesProduceQualityMappings(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	bench, err := jem.BuildBenchmark(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	mash := jem.NewMashmapMapper(ds.Contigs, opts)
	mq := bench.Evaluate(mash.MapReads(ds.Reads))
	if mq.Precision < 0.9 || mq.Recall < 0.8 {
		t.Errorf("mashmap baseline quality p=%.3f r=%.3f", mq.Precision, mq.Recall)
	}
	mh, err := jem.NewMinHashMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	hq := bench.Evaluate(mh.MapReads(ds.Reads))
	if hq.Precision < 0.7 {
		t.Errorf("minhash baseline precision %.3f", hq.Precision)
	}
	chain := jem.NewSeedChainMapper(ds.Contigs, opts)
	cq := bench.Evaluate(chain.MapReads(ds.Reads))
	if cq.Precision < 0.9 || cq.Recall < 0.8 {
		t.Errorf("seed-chain baseline quality p=%.3f r=%.3f", cq.Precision, cq.Recall)
	}
}

func TestWriteTSV(t *testing.T) {
	mappings := []jem.Mapping{
		{ReadID: "r1", End: jem.PrefixEnd, Mapped: true, ContigID: "c9", SharedTrials: 12},
		{ReadID: "r1", End: jem.SuffixEnd, Mapped: false},
	}
	var buf bytes.Buffer
	if err := jem.WriteTSV(&buf, mappings); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "read_id\tend\tcontig_id\tshared_trials" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "r1\tprefix\tc9\t12" {
		t.Errorf("row = %q", lines[1])
	}
	if lines[2] != "r1\tsuffix\t*\t0" {
		t.Errorf("unmapped row = %q", lines[2])
	}
}

func TestTopHits(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	seg := ds.Reads[0].Seq[:opts.SegmentLen]
	hits := mapper.TopHits(seg, 5)
	if len(hits) == 0 {
		t.Fatal("no top hits")
	}
	best, trials, ok := mapper.MapSegment(seg)
	if !ok || hits[0].Contig != best || hits[0].SharedTrials != trials {
		t.Errorf("topHits[0]=%+v best=%d trials=%d", hits[0], best, trials)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].SharedTrials > hits[i-1].SharedTrials {
			t.Errorf("hits not sorted: %+v", hits)
		}
	}
}

func TestScaffoldsFromMappings(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mappings := mapAll(mapper, ds.Reads)
	scaffolds := jem.BuildScaffolds(mappings, len(ds.Contigs), 1)
	if len(scaffolds) == 0 {
		t.Fatal("no scaffolds built")
	}
	seen := map[int]bool{}
	for _, sc := range scaffolds {
		if len(sc.Contigs) < 2 {
			t.Errorf("chain of length %d", len(sc.Contigs))
		}
		for _, c := range sc.Contigs {
			if c < 0 || c >= len(ds.Contigs) {
				t.Fatalf("contig index %d out of range", c)
			}
			if seen[c] {
				t.Fatalf("contig %d in two scaffolds", c)
			}
			seen[c] = true
		}
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	// LoadMapper on garbage.
	if _, err := jem.LoadMapper(strings.NewReader("not an index"), nil); err == nil {
		t.Error("garbage index should fail")
	}
	// MapDistributed with invalid options / rank count.
	ds := buildSmallDataset(t)
	bad := jem.DefaultOptions()
	bad.Trials = 0
	if _, err := jem.MapDistributed(ds.Contigs, ds.Reads, 2, bad); err == nil {
		t.Error("invalid options should fail")
	}
	if _, err := jem.MapDistributed(ds.Contigs, ds.Reads, 0, jem.DefaultOptions()); err == nil {
		t.Error("p=0 should fail")
	}
	// NewMinHashMapper with invalid options.
	if _, err := jem.NewMinHashMapper(nil, bad); err == nil {
		t.Error("invalid minhash options should fail")
	}
	// BuildBenchmark with k=0.
	badK := jem.DefaultOptions()
	badK.K = 0
	if _, err := jem.BuildBenchmark(ds, badK); err == nil {
		t.Error("k=0 benchmark should fail")
	}
}

func TestGroundTruthRoundTrip(t *testing.T) {
	ds := buildSmallDataset(t)
	truth, err := jem.GroundTruthReads(ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != len(ds.Truth) {
		t.Fatalf("lengths differ")
	}
	for i := range truth {
		if truth[i].Start != ds.Truth[i].Start || truth[i].End != ds.Truth[i].End ||
			truth[i].Chrom != ds.Truth[i].Chrom || truth[i].Strand != ds.Truth[i].Strand {
			t.Fatalf("read %d coords differ", i)
		}
	}
	if _, err := jem.GroundTruthReads([]jem.Record{{ID: "x", Desc: "no coords"}}); err == nil {
		t.Error("missing coords should fail")
	}
}

func TestPercentIdentityOfMappedPairs(t *testing.T) {
	ds := buildSmallDataset(t)
	opts := jem.DefaultOptions()
	mapper, err := jem.NewMapper(ds.Contigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mappings := mapAll(mapper, ds.Reads)
	checked := 0
	for _, m := range mappings {
		if !m.Mapped || checked >= 5 {
			continue
		}
		read := ds.Reads[m.ReadIndex].Seq
		var seg []byte
		if m.End == jem.PrefixEnd {
			seg = read[:minInt(opts.SegmentLen, len(read))]
		} else {
			seg = read[maxInt(0, len(read)-opts.SegmentLen):]
		}
		id := jem.PercentIdentity(seg, ds.Contigs[m.Contig].Seq)
		if id < 80 {
			t.Errorf("mapped pair identity %.1f%% suspiciously low", id)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no mapped pairs to check")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
