package truth

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Chrom: 0, Start: 100, End: 200}
	cases := []struct {
		b    Interval
		want int
	}{
		{Interval{Chrom: 0, Start: 150, End: 250}, 50},
		{Interval{Chrom: 0, Start: 0, End: 100}, 0},
		{Interval{Chrom: 0, Start: 199, End: 300}, 1},
		{Interval{Chrom: 1, Start: 100, End: 200}, 0},
		{Interval{Chrom: 0, Start: 120, End: 130}, 10},
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); got != c.want {
			t.Errorf("overlap(%v) = %d want %d", c.b, got, c.want)
		}
	}
}

func TestLocateExactSubstring(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := []seq.Record{{ID: "chr", Seq: randDNA(rng, 50_000)}}
	ix := NewRefIndex(ref, 16)
	for trial := 0; trial < 20; trial++ {
		start := rng.Intn(45_000)
		length := 500 + rng.Intn(2000)
		sub := ref[0].Seq[start : start+length]
		iv, ok := ix.Locate(sub, 1, 3)
		if !ok {
			t.Fatalf("trial %d: locate failed", trial)
		}
		if iv.Chrom != 0 || iv.Start != start || iv.End != start+length || iv.Reverse {
			t.Fatalf("trial %d: located %+v want start=%d end=%d", trial, iv, start, start+length)
		}
	}
}

func TestLocateReverseComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := []seq.Record{{ID: "chr", Seq: randDNA(rng, 30_000)}}
	ix := NewRefIndex(ref, 16)
	start, length := 5000, 1200
	sub := seq.ReverseComplement(ref[0].Seq[start : start+length])
	iv, ok := ix.Locate(sub, 1, 3)
	if !ok {
		t.Fatal("locate failed")
	}
	if !iv.Reverse || iv.Start != start || iv.End != start+length {
		t.Fatalf("located %+v want reverse [%d,%d)", iv, start, start+length)
	}
}

func TestLocateUnrelatedFails(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := []seq.Record{{ID: "chr", Seq: randDNA(rng, 20_000)}}
	ix := NewRefIndex(ref, 16)
	if iv, ok := ix.Locate(randDNA(rng, 1000), 1, 3); ok {
		t.Errorf("unrelated sequence located at %+v", iv)
	}
}

func TestLocateMultiChromosome(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := []seq.Record{
		{ID: "c1", Seq: randDNA(rng, 20_000)},
		{ID: "c2", Seq: randDNA(rng, 20_000)},
	}
	ix := NewRefIndex(ref, 16)
	sub := ref[1].Seq[3000:4500]
	iv, ok := ix.Locate(sub, 1, 3)
	if !ok || iv.Chrom != 1 || iv.Start != 3000 {
		t.Fatalf("located %+v ok=%v", iv, ok)
	}
}

func TestSegmentInterval(t *testing.T) {
	r := simulate.Read{Chrom: 2, Start: 1000, End: 9000, Strand: simulate.Forward}
	iv := SegmentInterval(r, core.Prefix, 500)
	if iv != (Interval{Chrom: 2, Start: 1000, End: 1500}) {
		t.Errorf("fwd prefix = %+v", iv)
	}
	iv = SegmentInterval(r, core.Suffix, 500)
	if iv != (Interval{Chrom: 2, Start: 8500, End: 9000}) {
		t.Errorf("fwd suffix = %+v", iv)
	}
	// Reverse-strand read: the sequenced prefix is the genomic right
	// end.
	r.Strand = simulate.Reverse
	iv = SegmentInterval(r, core.Prefix, 500)
	if iv.Start != 8500 || iv.End != 9000 || !iv.Reverse {
		t.Errorf("rev prefix = %+v", iv)
	}
	iv = SegmentInterval(r, core.Suffix, 500)
	if iv.Start != 1000 || iv.End != 1500 {
		t.Errorf("rev suffix = %+v", iv)
	}
	// Segment longer than the read clamps.
	short := simulate.Read{Chrom: 0, Start: 100, End: 400, Strand: simulate.Forward}
	iv = SegmentInterval(short, core.Prefix, 1000)
	if iv.Start != 100 || iv.End != 400 {
		t.Errorf("clamped = %+v", iv)
	}
}

// buildTinyWorld creates a reference whose first half is covered by
// contig A and second half by contig B, plus reads with known spans.
func buildTinyWorld(t *testing.T) (ref []seq.Record, contigs []seq.Record, reads []simulate.Read) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	refSeq := randDNA(rng, 20_000)
	ref = []seq.Record{{ID: "chr", Seq: refSeq}}
	contigs = []seq.Record{
		{ID: "A", Seq: refSeq[0:10_000]},
		{ID: "B", Seq: refSeq[10_000:20_000]},
	}
	mk := func(id int, start, end int, strand simulate.Strand) simulate.Read {
		payload := append([]byte(nil), refSeq[start:end]...)
		if strand == simulate.Reverse {
			seq.ReverseComplementInPlace(payload)
		}
		return simulate.Read{
			Rec:   seq.Record{ID: fmt.Sprintf("r%d", id), Seq: payload},
			Chrom: 0, Start: start, End: end, Strand: strand,
		}
	}
	reads = []simulate.Read{
		mk(0, 1000, 5000, simulate.Forward),     // both ends in A
		mk(1, 8500, 12_500, simulate.Forward),   // prefix in A, suffix in B
		mk(2, 14_000, 19_000, simulate.Reverse), // both ends in B
	}
	return ref, contigs, reads
}

func TestBuildAndEvaluate(t *testing.T) {
	ref, contigs, reads := buildTinyWorld(t)
	const l, k = 1000, 16
	b, err := Build(ref, contigs, reads, l, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Placed != 2 {
		t.Fatalf("placed %d contigs", b.Placed)
	}
	// Read 0: both segments in contig A (id 0).
	if got := b.True(0, core.Prefix); len(got) != 1 || got[0] != 0 {
		t.Errorf("r0 prefix truth = %v", got)
	}
	if got := b.True(0, core.Suffix); len(got) != 1 || got[0] != 0 {
		t.Errorf("r0 suffix truth = %v", got)
	}
	// Read 1: prefix [8500,9500) in A; suffix [11500,12500) in B.
	if got := b.True(1, core.Prefix); len(got) != 1 || got[0] != 0 {
		t.Errorf("r1 prefix truth = %v", got)
	}
	if got := b.True(1, core.Suffix); len(got) != 1 || got[0] != 1 {
		t.Errorf("r1 suffix truth = %v", got)
	}
	// Read 2 (reverse): sequenced prefix = genomic right end, in B.
	if got := b.True(2, core.Prefix); len(got) != 1 || got[0] != 1 {
		t.Errorf("r2 prefix truth = %v", got)
	}

	// Evaluate a mix of outcomes.
	results := []core.Result{
		{ReadIndex: 0, Kind: core.Prefix, Subject: 0},  // TP
		{ReadIndex: 0, Kind: core.Suffix, Subject: 1},  // FP (+FN)
		{ReadIndex: 1, Kind: core.Prefix, Subject: -1}, // FN (has truth, no output)
		{ReadIndex: 1, Kind: core.Suffix, Subject: 1},  // TP
		{ReadIndex: 2, Kind: core.Prefix, Subject: 1},  // TP
		{ReadIndex: 2, Kind: core.Suffix, Subject: -1}, // FN
	}
	c := b.Evaluate(results)
	if c.TP != 3 || c.FP != 1 || c.FN != 3 || c.TN != 0 {
		t.Errorf("confusion = %+v", c)
	}
	wantP := 3.0 / 4.0
	wantR := 3.0 / 6.0
	if c.Precision() != wantP || c.Recall() != wantR {
		t.Errorf("precision %v recall %v", c.Precision(), c.Recall())
	}
}

func TestBoundaryIntersectionRule(t *testing.T) {
	// A segment overlapping a contig by fewer than k bases is NOT a
	// true pair; ≥ k is.
	ref, contigs, _ := buildTinyWorld(t)
	const l, k = 1000, 16
	refSeq := ref[0].Seq
	mk := func(start, end int) simulate.Read {
		return simulate.Read{
			Rec:   seq.Record{ID: "x", Seq: append([]byte(nil), refSeq[start:end]...)},
			Chrom: 0, Start: start, End: end, Strand: simulate.Forward,
		}
	}
	// Prefix [9990, 10990): overlap with A = 10 < k, with B = 990 ≥ k.
	reads := []simulate.Read{mk(9990, 13_000)}
	b, err := Build(ref, contigs, reads, l, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := b.True(0, core.Prefix)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("boundary prefix truth = %v want [1]", got)
	}
	// Prefix [9984, ...): overlap with A = exactly 16 = k → included.
	reads = []simulate.Read{mk(9984, 13_000)}
	b, err = Build(ref, contigs, reads, l, k, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got = b.True(0, core.Prefix)
	if len(got) != 2 {
		t.Errorf("exact-k prefix truth = %v want both contigs", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	c := Confusion{}
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Errorf("empty confusion: p=%v r=%v", c.Precision(), c.Recall())
	}
	if c.F1() != 1 {
		t.Errorf("empty F1 = %v", c.F1())
	}
	c = Confusion{FP: 5}
	if c.Precision() != 0 {
		t.Errorf("all-FP precision = %v", c.Precision())
	}
	if c.String() == "" {
		t.Error("empty render")
	}
}

func TestBuildRejectsBadK(t *testing.T) {
	if _, err := Build(nil, nil, nil, 100, 0, BuildOptions{}); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestPairsCount(t *testing.T) {
	ref, contigs, reads := buildTinyWorld(t)
	b, err := Build(ref, contigs, reads, 1000, 16, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Pairs() != 6 {
		t.Errorf("pairs = %d want 6", b.Pairs())
	}
}
