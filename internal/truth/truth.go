// Package truth constructs the quality benchmark of §IV-B and scores
// mappings against it.
//
// The paper located contigs and long reads on the full reference with
// Minimap2 and declared an end segment e to truly map to a contig c
// iff their reference intervals intersect in at least k positions.
// Here simulated reads carry exact coordinates, and contigs are
// located with an anchor-vote scheme: unique reference k-mers shared
// with the contig vote for an (orientation, offset) hypothesis, and
// the winning hypothesis places the contig. Contigs assembled from
// low-error short reads place unambiguously in practice.
package truth

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kmer"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Interval is a located span on the reference.
type Interval struct {
	Chrom      int
	Start, End int // half-open
	Reverse    bool
	// Votes is the number of anchors supporting the placement (0 for
	// intervals with exact provenance, e.g. simulated reads).
	Votes int
}

// Overlap returns the size of the intersection of two intervals, or 0
// when they are on different chromosomes or disjoint.
func (iv Interval) Overlap(other Interval) int {
	if iv.Chrom != other.Chrom {
		return 0
	}
	lo := iv.Start
	if other.Start > lo {
		lo = other.Start
	}
	hi := iv.End
	if other.End < hi {
		hi = other.End
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// RefIndex indexes the unique canonical k-mers of a reference.
type RefIndex struct {
	K int
	// pos maps a canonical k-mer to its packed position
	// (chrom<<40 | offset) when the k-mer occurs exactly once;
	// multi-occurring k-mers are recorded in multi and excluded.
	pos   map[kmer.Word]uint64
	multi map[kmer.Word]struct{}
}

const chromShift = 40

// NewRefIndex builds an index over the chromosome records.
func NewRefIndex(chromosomes []seq.Record, k int) *RefIndex {
	ix := &RefIndex{
		K:     k,
		pos:   make(map[kmer.Word]uint64),
		multi: make(map[kmer.Word]struct{}),
	}
	for chrom := range chromosomes {
		it := kmer.NewIterator(chromosomes[chrom].Seq, k)
		for {
			_, canon, p, ok := it.Next()
			if !ok {
				break
			}
			if _, dup := ix.multi[canon]; dup {
				continue
			}
			if _, seen := ix.pos[canon]; seen {
				delete(ix.pos, canon)
				ix.multi[canon] = struct{}{}
				continue
			}
			ix.pos[canon] = uint64(chrom)<<chromShift | uint64(p)
		}
	}
	return ix
}

// UniqueKmers returns the number of unique (single-occurrence)
// canonical k-mers indexed.
func (ix *RefIndex) UniqueKmers() int { return len(ix.pos) }

// Locate places a sequence on the reference by anchor voting. stride
// controls anchor sampling (1 = every k-mer; larger is faster).
// ok=false when fewer than minVotes anchors agree on a placement.
func (ix *RefIndex) Locate(s []byte, stride, minVotes int) (Interval, bool) {
	if stride < 1 {
		stride = 1
	}
	if minVotes < 1 {
		minVotes = 1
	}
	type key struct {
		chrom int
		diff  int // fwd: p - i ; rev: p + i
		rev   bool
	}
	votes := make(map[key]int)
	it := kmer.NewIterator(s, ix.K)
	n := 0
	for {
		_, canon, i, ok := it.Next()
		if !ok {
			break
		}
		n++
		if n%stride != 0 {
			continue
		}
		packed, ok := ix.pos[canon]
		if !ok {
			continue
		}
		chrom := int(packed >> chromShift)
		p := int(packed & (1<<chromShift - 1))
		// Canonical matching hides relative orientation, so vote both
		// hypotheses per anchor: the true one accumulates on a single
		// offset, the false one spreads across offsets.
		votes[key{chrom, p - i, false}]++
		votes[key{chrom, p + i, true}]++
	}
	var best key
	bestVotes := 0
	for k2, v := range votes {
		if v > bestVotes || (v == bestVotes && less(k2, best)) {
			best, bestVotes = k2, v
		}
	}
	if bestVotes < minVotes {
		return Interval{}, false
	}
	iv := Interval{Chrom: best.chrom, Reverse: best.rev, Votes: bestVotes}
	if !best.rev {
		iv.Start = best.diff
		iv.End = best.diff + len(s)
	} else {
		// rev: ref position p of anchor i satisfies p + i = start + len - k
		iv.Start = best.diff - len(s) + ix.K
		iv.End = iv.Start + len(s)
	}
	if iv.Start < 0 {
		iv.Start = 0
	}
	return iv, true
}

func less(a, b struct {
	chrom int
	diff  int
	rev   bool
}) bool {
	if a.chrom != b.chrom {
		return a.chrom < b.chrom
	}
	if a.diff != b.diff {
		return a.diff < b.diff
	}
	return !a.rev && b.rev
}

// SegmentInterval derives the reference interval of an end segment of
// a simulated read. l is the segment length; kind selects the prefix
// or suffix segment of the read as sequenced (which maps to the
// opposite genomic end for reverse-strand reads).
func SegmentInterval(r simulate.Read, kind core.SegmentKind, l int) Interval {
	readLen := r.End - r.Start
	if l > readLen {
		l = readLen
	}
	atLeft := (kind == core.Prefix) == (r.Strand == simulate.Forward)
	iv := Interval{Chrom: r.Chrom, Reverse: r.Strand == simulate.Reverse}
	if atLeft {
		iv.Start, iv.End = r.Start, r.Start+l
	} else {
		iv.Start, iv.End = r.End-l, r.End
	}
	return iv
}

// Benchmark holds, for every end segment, the set of truly mapping
// contigs.
type Benchmark struct {
	K int
	// ContigIntervals[i] is the placement of contig i (Votes==0 and
	// End==Start when unplaced).
	ContigIntervals []Interval
	// truth[segmentKey] = sorted contig ids whose placement intersects
	// the segment's interval in ≥ K positions.
	truth map[segKey][]int32
	// Placed is the number of contigs that could be located.
	Placed int
}

type segKey struct {
	read int32
	kind core.SegmentKind
}

// BuildOptions tunes benchmark construction.
type BuildOptions struct {
	// Stride samples contig anchors (default 4).
	Stride int
	// MinVotes is the minimum agreeing anchors to place a contig
	// (default 3).
	MinVotes int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.Stride == 0 {
		o.Stride = 4
	}
	if o.MinVotes == 0 {
		o.MinVotes = 3
	}
	return o
}

// Build constructs the benchmark: locate every contig, derive every
// segment interval, and enumerate the ≥k-intersection pairs.
func Build(chromosomes []seq.Record, contigs []seq.Record, reads []simulate.Read, l, k int, opt BuildOptions) (*Benchmark, error) {
	if k <= 0 {
		return nil, fmt.Errorf("truth: k=%d must be positive", k)
	}
	opt = opt.withDefaults()
	ix := NewRefIndex(chromosomes, k)

	b := &Benchmark{
		K:               k,
		ContigIntervals: make([]Interval, len(contigs)),
		truth:           make(map[segKey][]int32, 2*len(reads)),
	}
	// Place contigs and bucket them per chromosome sorted by start.
	type placed struct {
		id int32
		iv Interval
	}
	byChrom := make(map[int][]placed)
	maxLen := make(map[int]int)
	for i := range contigs {
		iv, ok := ix.Locate(contigs[i].Seq, opt.Stride, opt.MinVotes)
		if !ok {
			continue
		}
		b.ContigIntervals[i] = iv
		b.Placed++
		byChrom[iv.Chrom] = append(byChrom[iv.Chrom], placed{int32(i), iv})
		if n := iv.End - iv.Start; n > maxLen[iv.Chrom] {
			maxLen[iv.Chrom] = n
		}
	}
	for c := range byChrom {
		list := byChrom[c]
		sort.Slice(list, func(i, j int) bool { return list[i].iv.Start < list[j].iv.Start })
	}

	// Enumerate true pairs per segment.
	for ri := range reads {
		segs, kinds := core.EndSegments(reads[ri].Rec.Seq, l)
		_ = segs
		for _, kind := range kinds {
			siv := SegmentInterval(reads[ri], kind, l)
			list := byChrom[siv.Chrom]
			if len(list) == 0 {
				continue
			}
			// Candidates start in [siv.Start - maxLen, siv.End).
			lo := sort.Search(len(list), func(i int) bool {
				return list[i].iv.Start >= siv.Start-maxLen[siv.Chrom]
			})
			var hits []int32
			for i := lo; i < len(list) && list[i].iv.Start < siv.End; i++ {
				if siv.Overlap(list[i].iv) >= k {
					hits = append(hits, list[i].id)
				}
			}
			if len(hits) > 0 {
				b.truth[segKey{int32(ri), kind}] = hits
			}
		}
	}
	return b, nil
}

// True returns the truly-mapping contig ids for a segment (nil when
// none).
func (b *Benchmark) True(read int32, kind core.SegmentKind) []int32 {
	return b.truth[segKey{read, kind}]
}

// Pairs returns the total number of true ⟨segment, contig⟩ pairs.
func (b *Benchmark) Pairs() int {
	n := 0
	for _, v := range b.truth {
		n += len(v)
	}
	return n
}

// Confusion tallies the four outcome classes of §IV-B.
type Confusion struct {
	TP, FP, FN, TN int
}

// Precision is TP/(TP+FP); 1 when no positives were output.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1 when there are no true pairs.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d precision=%.4f recall=%.4f",
		c.TP, c.FP, c.FN, c.TN, c.Precision(), c.Recall())
}

// Evaluate scores mapper results against the benchmark, one outcome
// per end segment: an output pair in the truth set is a TP; an output
// pair outside it is an FP (and, when the segment had true contigs, a
// missed mapping — counted once as FN per the paper's "room for only
// one best hit" argument); a segment with true contigs and no (or a
// wrong) output is an FN; a segment with no true contigs and no
// output is a TN.
func (b *Benchmark) Evaluate(results []core.Result) Confusion {
	var c Confusion
	for _, r := range results {
		trueSet := b.True(r.ReadIndex, r.Kind)
		switch {
		case r.Mapped() && contains(trueSet, r.Subject):
			c.TP++
		case r.Mapped():
			c.FP++
			if len(trueSet) > 0 {
				c.FN++
			}
		case len(trueSet) > 0:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

func contains(list []int32, v int32) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
