package assemble

import (
	"sort"

	"repro/internal/kmer"
)

// popBubbles collapses simple bubbles: a branch node with exactly two
// oriented successors whose unique paths reconverge at the same node
// after the same number of steps — the de Bruijn signature of a
// heterozygous SNP (paths of exactly k interior nodes) or a recurrent
// sequencing error. The lower-coverage path's interior nodes are
// deleted, leaving the higher-coverage allele as a single unitig.
// It returns the number of bubbles popped.
//
// Only clean bubbles are popped: every interior node must have in- and
// out-degree 1 and the two paths must be node-disjoint, so genuine
// repeat structure (unequal lengths, internal branching) is left
// alone.
func popBubbles(g *graph) int {
	order := make([]kmer.Word, 0, len(g.nodes))
	for w := range g.nodes {
		order = append(order, w)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// An SNP bubble's interior is exactly k nodes; allow a little
	// slack for adjacent variants.
	maxSteps := g.k + 8
	popped := 0
	var scratch [4]kmer.Word
	for _, canon := range order {
		if _, ok := g.nodes[canon]; !ok {
			continue // deleted by an earlier pop
		}
		for _, oriented := range [2]kmer.Word{canon, kmer.ReverseComplement(canon, g.k)} {
			nexts := g.fwdNexts(scratch[:0], oriented)
			if len(nexts) != 2 {
				continue
			}
			pathA, endA, okA := bubblePath(g, nexts[0], maxSteps)
			if !okA {
				continue
			}
			pathB, endB, okB := bubblePath(g, nexts[1], maxSteps)
			if !okB {
				continue
			}
			if len(pathA) != len(pathB) || len(pathA) == 0 {
				continue
			}
			if kmer.Canonical(endA, g.k) != kmer.Canonical(endB, g.k) {
				continue
			}
			if !disjoint(g, pathA, pathB) {
				continue
			}
			// Drop the lower-coverage allele; ties break toward
			// keeping the path with the smaller first canonical node,
			// so popping is deterministic.
			covA, covB := meanCoverage(g, pathA), meanCoverage(g, pathB)
			drop := pathB
			if covA < covB ||
				(covA == covB && kmer.Canonical(pathA[0], g.k) > kmer.Canonical(pathB[0], g.k)) {
				drop = pathA
			}
			for _, n := range drop {
				delete(g.nodes, kmer.Canonical(n, g.k))
			}
			popped++
		}
	}
	return popped
}

// bubblePath walks forward from an oriented node through interior
// nodes (in-degree and out-degree exactly 1) until it reaches a
// reconvergence node (in-degree ≥ 2). It returns the interior path
// (starting at `start` itself) and the merge node.
func bubblePath(g *graph, start kmer.Word, maxSteps int) (path []kmer.Word, end kmer.Word, ok bool) {
	var scratch [4]kmer.Word
	cur := start
	// The start node itself must be interior: a single predecessor
	// (the branch node) — otherwise this is not a clean bubble arm.
	if len(g.bwdNexts(scratch[:0], cur)) != 1 {
		return nil, 0, false
	}
	path = append(path, cur)
	for step := 0; step < maxSteps; step++ {
		nexts := g.fwdNexts(scratch[:0], cur)
		if len(nexts) != 1 {
			return nil, 0, false
		}
		nxt := nexts[0]
		indeg := len(g.bwdNexts(scratch[:0], nxt))
		if indeg >= 2 {
			return path, nxt, true
		}
		if indeg != 1 {
			return nil, 0, false
		}
		path = append(path, nxt)
		cur = nxt
	}
	return nil, 0, false
}

// disjoint reports whether the two paths share no canonical node.
func disjoint(g *graph, a, b []kmer.Word) bool {
	seen := make(map[kmer.Word]struct{}, len(a))
	for _, n := range a {
		seen[kmer.Canonical(n, g.k)] = struct{}{}
	}
	for _, n := range b {
		if _, dup := seen[kmer.Canonical(n, g.k)]; dup {
			return false
		}
	}
	return true
}

// meanCoverage averages the multiplicities along a path.
func meanCoverage(g *graph, path []kmer.Word) uint32 {
	var sum uint64
	for _, n := range path {
		sum += uint64(g.coverage(n))
	}
	return uint32(sum / uint64(len(path)))
}
