package assemble

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/kmer"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func errorFreeReads(t *testing.T, g *genome.Genome, coverage float64) []seq.Record {
	t.Helper()
	reads, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{
		Coverage: coverage, ErrorRate: -1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return simulate.Records(reads)
}

func TestAssembleErrorFreeContigsAreSubstrings(t *testing.T) {
	// With error-free reads every solid k-mer is genomic, so every
	// contig must appear verbatim in the genome (on either strand) —
	// the core correctness property of the unitig walk.
	g, err := genome.Generate(genome.Config{Length: 60_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads := errorFreeReads(t, g, 25)
	asm, err := Assemble(reads, Config{K: 21, MinAbundance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	for _, c := range asm.Contigs {
		if !bytes.Contains(g.Seq, c.Seq) && !bytes.Contains(g.Seq, seq.ReverseComplement(c.Seq)) {
			t.Fatalf("contig %s (%d bp) not a substring of the genome", c.ID, len(c.Seq))
		}
	}
}

func TestAssembleCoversGenome(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 80_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reads := errorFreeReads(t, g, 30)
	asm, err := Assemble(reads, Config{K: 25, MinAbundance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(asm.Stats.TotalBases) < 0.9*float64(len(g.Seq)) {
		t.Errorf("assembly covers only %d of %d bases", asm.Stats.TotalBases, len(g.Seq))
	}
	// A random-sequence genome should assemble into few large contigs.
	if asm.Stats.N50 < 5_000 {
		t.Errorf("N50 %d suspiciously small", asm.Stats.N50)
	}
}

func TestAssembleFiltersSequencingErrors(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 50_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{
		Coverage: 30, ErrorRate: 0.005, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Assemble(simulate.Records(noisy), Config{K: 21, MinAbundance: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Erroneous k-mers must be gone: solid set should be close to the
	// genomic distinct k-mer count, far below the raw distinct count.
	genomic := len(kmer.Set(g.Seq, 21))
	if asm.Stats.SolidKmers > genomic*11/10 {
		t.Errorf("solid k-mers %d far exceed genomic %d (error filtering failed)",
			asm.Stats.SolidKmers, genomic)
	}
	if asm.Stats.DistinctKmers < asm.Stats.SolidKmers {
		t.Errorf("distinct %d < solid %d", asm.Stats.DistinctKmers, asm.Stats.SolidKmers)
	}
	if asm.Stats.DistinctKmers < genomic*3/2 {
		t.Errorf("errors should inflate distinct k-mers: distinct=%d genomic=%d",
			asm.Stats.DistinctKmers, genomic)
	}
}

func TestRepeatsFragmentAssembly(t *testing.T) {
	plain, err := genome.Generate(genome.Config{Length: 100_000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	repeaty, err := genome.Generate(genome.Config{
		Length: 100_000, RepeatFraction: 0.3, RepeatDivergence: 0, RepeatRegionFraction: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	asmPlain, err := Assemble(errorFreeReads(t, plain, 25), Config{K: 21, MinAbundance: 2})
	if err != nil {
		t.Fatal(err)
	}
	asmRep, err := Assemble(errorFreeReads(t, repeaty, 25), Config{K: 21, MinAbundance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if asmRep.Stats.Contigs <= asmPlain.Stats.Contigs {
		t.Errorf("repeats should fragment: %d contigs vs %d on plain",
			asmRep.Stats.Contigs, asmPlain.Stats.Contigs)
	}
}

func TestAssembleDeterministic(t *testing.T) {
	g, _ := genome.Generate(genome.Config{Length: 30_000, Seed: 7})
	reads := errorFreeReads(t, g, 20)
	a1, err := Assemble(reads, Config{K: 21, MinAbundance: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assemble(reads, Config{K: 21, MinAbundance: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Contigs) != len(a2.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(a1.Contigs), len(a2.Contigs))
	}
	for i := range a1.Contigs {
		if !bytes.Equal(a1.Contigs[i].Seq, a2.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between worker counts", i)
		}
	}
}

func TestAssembleEmptyAndTinyInputs(t *testing.T) {
	asm, err := Assemble(nil, Config{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Contigs) != 0 {
		t.Errorf("empty input produced contigs")
	}
	// Reads shorter than k contribute nothing.
	asm, err = Assemble([]seq.Record{{ID: "r", Seq: []byte("ACGT")}}, Config{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(asm.Contigs) != 0 {
		t.Errorf("short reads produced contigs")
	}
}

func TestAssembleValidation(t *testing.T) {
	if _, err := Assemble(nil, Config{K: -1}); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := Assemble(nil, Config{K: 33}); err == nil {
		t.Error("k > MaxK should fail")
	}
}

func TestMinContigLenFilter(t *testing.T) {
	g, _ := genome.Generate(genome.Config{Length: 40_000, Seed: 8})
	reads := errorFreeReads(t, g, 20)
	asm, err := Assemble(reads, Config{K: 21, MinAbundance: 2, MinContigLen: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range asm.Contigs {
		if len(c.Seq) < 500 {
			t.Fatalf("contig %s below MinContigLen: %d", c.ID, len(c.Seq))
		}
	}
}

func TestSummarizeStats(t *testing.T) {
	contigs := []seq.Record{
		{Seq: bytes.Repeat([]byte("A"), 100)},
		{Seq: bytes.Repeat([]byte("C"), 200)},
		{Seq: bytes.Repeat([]byte("G"), 700)},
	}
	st := summarize(contigs)
	if st.Contigs != 3 || st.TotalBases != 1000 || st.MaxLen != 700 {
		t.Errorf("stats = %+v", st)
	}
	if st.N50 != 700 {
		t.Errorf("N50 = %d want 700", st.N50)
	}
	if st.MeanLen < 333 || st.MeanLen > 334 {
		t.Errorf("mean = %v", st.MeanLen)
	}
	empty := summarize(nil)
	if empty.Contigs != 0 || empty.N50 != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestUnitigWalkHandlesCycle(t *testing.T) {
	// A perfectly periodic sequence creates a cycle in the de Bruijn
	// graph; the walk must terminate.
	period := []byte("ACGGTCA")
	var s []byte
	for i := 0; i < 50; i++ {
		s = append(s, period...)
	}
	var reads []seq.Record
	for i := 0; i+40 <= len(s); i += 5 {
		reads = append(reads, seq.Record{ID: fmt.Sprintf("r%d", i), Seq: s[i : i+40]})
	}
	if _, err := Assemble(reads, Config{K: 5, MinAbundance: 1, MinContigLen: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSharding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := newCounter()
	batch := make([][]kmer.Word, countShards)
	words := make([]kmer.Word, 500)
	for i := range words {
		words[i] = kmer.Word(rng.Intn(100))
		s := shardOf(words[i])
		batch[s] = append(batch[s], words[i])
	}
	c.addBatch(batch)
	c.addBatch(batch)
	want := map[kmer.Word]int{}
	for _, w := range words {
		want[w] += 2
	}
	if c.distinct() != len(want) {
		t.Errorf("distinct %d want %d", c.distinct(), len(want))
	}
	solid := c.solidCounts(2)
	if len(solid) != len(want) {
		t.Errorf("solid %d want %d", len(solid), len(want))
	}
	for w, n := range solid {
		if int(n) != want[w] {
			t.Errorf("count of %d = %d want %d", w, n, want[w])
		}
	}
	high := c.solidCounts(1000)
	if len(high) != 0 {
		t.Errorf("absurd threshold kept %d k-mers", len(high))
	}
}
