package assemble

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/genome"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// TestPopSingleSNPBubble constructs the textbook case: reads from two
// haplotypes differing at one SNP. Without popping, the assembly
// breaks at the site; with popping, one contig spans it.
func TestPopSingleSNPBubble(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 4000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	hap1 := g.Seq
	hap2 := append([]byte(nil), hap1...)
	pos := 2000
	if hap2[pos] == 'A' {
		hap2[pos] = 'C'
	} else {
		hap2[pos] = 'A'
	}
	// Tile error-free reads off both haplotypes, hap1 at higher depth
	// so the pop keeps it.
	var reads []seq.Record
	add := func(h []byte, copies int) {
		for c := 0; c < copies; c++ {
			for i := 0; i+100 <= len(h); i += 10 {
				reads = append(reads, seq.Record{
					ID:  fmt.Sprintf("r%d", len(reads)),
					Seq: h[i : i+100],
				})
			}
		}
	}
	add(hap1, 3)
	add(hap2, 1)

	cfg := Config{K: 21, MinAbundance: 2}
	popped, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableBubblePopping = true
	kept, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if popped.Stats.BubblesPopped < 1 {
		t.Fatalf("no bubbles popped: %+v", popped.Stats)
	}
	if kept.Stats.BubblesPopped != 0 {
		t.Fatalf("popping ran while disabled")
	}
	if popped.Stats.Contigs >= kept.Stats.Contigs {
		t.Errorf("popping did not reduce fragmentation: %d vs %d contigs",
			popped.Stats.Contigs, kept.Stats.Contigs)
	}
	// The popped assembly must contain a contig spanning the SNP site
	// with the kept (higher-coverage) allele — i.e. a substring of
	// hap1 crossing position 2000.
	spans := false
	for _, c := range popped.Contigs {
		if idx := bytes.Index(hap1, c.Seq); idx >= 0 {
			if idx < pos-50 && idx+len(c.Seq) > pos+50 {
				spans = true
			}
			continue
		}
		if idx := bytes.Index(hap1, seq.ReverseComplement(c.Seq)); idx >= 0 {
			if idx < pos-50 && idx+len(c.Seq) > pos+50 {
				spans = true
			}
			continue
		}
		t.Fatalf("popped contig %s is not a hap1 substring", c.ID)
	}
	if !spans {
		t.Error("no popped contig spans the SNP site")
	}
}

// TestDiploidAssemblyBenefitsFromPopping runs the realistic version:
// a heterozygous diploid genome sequenced from both haplotypes.
func TestDiploidAssemblyBenefitsFromPopping(t *testing.T) {
	g, err := genome.Generate(genome.Config{
		Length: 80_000, Heterozygosity: 0.003, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Haplotype2 == nil {
		t.Fatal("no second haplotype generated")
	}
	r1, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{Coverage: 20, ErrorRate: -1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := simulate.Illumina(g.Haplotype2, simulate.IlluminaConfig{Coverage: 12, ErrorRate: -1, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	reads := append(simulate.Records(r1), simulate.Records(r2)...)

	cfg := Config{K: 21, MinAbundance: 2}
	withPop, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableBubblePopping = true
	noPop, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("popping: %d bubbles popped, %d contigs N50 %d; without: %d contigs N50 %d",
		withPop.Stats.BubblesPopped, withPop.Stats.Contigs, withPop.Stats.N50,
		noPop.Stats.Contigs, noPop.Stats.N50)
	if withPop.Stats.BubblesPopped < 10 {
		t.Errorf("expected many SNP bubbles, popped %d", withPop.Stats.BubblesPopped)
	}
	if withPop.Stats.N50 <= noPop.Stats.N50 {
		t.Errorf("popping should improve N50: %d vs %d", withPop.Stats.N50, noPop.Stats.N50)
	}
	if withPop.Stats.Contigs >= noPop.Stats.Contigs {
		t.Errorf("popping should reduce contig count: %d vs %d",
			withPop.Stats.Contigs, noPop.Stats.Contigs)
	}
}

// TestHaploidAssemblyUnchangedByPopping ensures popping is a no-op on
// clean haploid data (no false bubbles on random sequence).
func TestHaploidAssemblyUnchangedByPopping(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 50_000, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{Coverage: 20, ErrorRate: -1, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 21, MinAbundance: 2}
	a, err := Assemble(simulate.Records(reads), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.BubblesPopped != 0 {
		t.Errorf("popped %d bubbles on haploid error-free data", a.Stats.BubblesPopped)
	}
}

// TestHeterozygosityValidation covers the new genome knob.
func TestHeterozygosityValidation(t *testing.T) {
	if _, err := genome.Generate(genome.Config{Length: 1000, Heterozygosity: 0.5}); err == nil {
		t.Error("absurd heterozygosity should fail")
	}
	g, err := genome.Generate(genome.Config{Length: 10_000, Heterozygosity: 0.01, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Haplotype2) != len(g.Records) {
		t.Fatalf("haplotype2 records = %d", len(g.Haplotype2))
	}
	diff := 0
	for i := range g.Seq {
		if g.Seq[i] != g.Haplotype2[0].Seq[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(len(g.Seq))
	if rate < 0.005 || rate > 0.015 {
		t.Errorf("observed het rate %v want ~0.01", rate)
	}
}
