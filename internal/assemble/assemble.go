package assemble

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kmer"
	"repro/internal/seq"
)

// Config configures the assembler.
type Config struct {
	// K is the de Bruijn k-mer size; 0 means 31.
	K int
	// MinAbundance is the solidity threshold: k-mers seen fewer times
	// are treated as sequencing errors; 0 means 3.
	MinAbundance uint32
	// MinContigLen drops unitigs shorter than this many bases; 0
	// means 2k+1 (branch stubs).
	MinContigLen int
	// Workers bounds parallelism; ≤0 means GOMAXPROCS.
	Workers int
	// DisableBubblePopping keeps SNP bubbles (two equal-length paths
	// between the same branch and merge nodes, the signature of a
	// heterozygous site or a recurrent sequencing error) instead of
	// collapsing them to the higher-coverage path.
	DisableBubblePopping bool
	// NamePrefix prefixes contig IDs; "" means "contig".
	NamePrefix string
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 31
	}
	if c.MinAbundance == 0 {
		c.MinAbundance = 3
	}
	if c.MinContigLen == 0 {
		c.MinContigLen = 2*c.K + 1
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "contig"
	}
	return c
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.K < 0 || c.K > kmer.MaxK {
		return fmt.Errorf("assemble: k=%d out of range [1,%d]", c.K, kmer.MaxK)
	}
	return nil
}

// Stats summarizes an assembly.
type Stats struct {
	DistinctKmers int
	SolidKmers    int
	BubblesPopped int
	Contigs       int
	TotalBases    int64
	MeanLen       float64
	StdDevLen     float64
	MaxLen        int
	N50           int
}

// graph is the implicit de Bruijn graph over the solid canonical
// k-mer set (with multiplicities, used by bubble popping).
// Orientation is explicit: a node visit is a k-mer Word in a specific
// strand; membership tests canonicalize.
type graph struct {
	k     int
	mask  kmer.Word
	nodes map[kmer.Word]uint32
}

func (g *graph) has(oriented kmer.Word) bool {
	_, ok := g.nodes[kmer.Canonical(oriented, g.k)]
	return ok
}

func (g *graph) coverage(oriented kmer.Word) uint32 {
	return g.nodes[kmer.Canonical(oriented, g.k)]
}

// fwdNexts appends to dst the oriented successors of w (append last
// base), returning the extended slice.
func (g *graph) fwdNexts(dst []kmer.Word, w kmer.Word) []kmer.Word {
	base := (w << 2) & g.mask
	for b := kmer.Word(0); b < 4; b++ {
		if g.has(base | b) {
			dst = append(dst, base|b)
		}
	}
	return dst
}

// bwdNexts appends the oriented predecessors of w (prepend first base).
func (g *graph) bwdNexts(dst []kmer.Word, w kmer.Word) []kmer.Word {
	base := w >> 2
	shift := 2 * uint(g.k-1)
	for b := kmer.Word(0); b < 4; b++ {
		cand := base | b<<shift
		if g.has(cand) {
			dst = append(dst, cand)
		}
	}
	return dst
}

// Assembly is the assembler output.
type Assembly struct {
	Contigs []seq.Record
	Stats   Stats
}

// Assemble builds contigs from short reads.
func Assemble(reads []seq.Record, c Config) (*Assembly, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()

	counts := countKmers(reads, c.K, c.Workers)
	distinct := counts.distinct()
	solid := counts.solidCounts(c.MinAbundance)
	g := &graph{k: c.K, mask: kmer.Mask(c.K), nodes: solid}

	popped := 0
	if !c.DisableBubblePopping {
		popped = popBubbles(g)
	}
	contigs := extractUnitigs(g, c)
	st := summarize(contigs)
	st.DistinctKmers = distinct
	st.SolidKmers = len(solid)
	st.BubblesPopped = popped
	return &Assembly{Contigs: contigs, Stats: st}, nil
}

// extractUnitigs walks maximal non-branching paths over the solid set.
// Every canonical k-mer belongs to exactly one unitig; traversal order
// is made deterministic by seeding walks from the sorted node list.
func extractUnitigs(g *graph, c Config) []seq.Record {
	order := make([]kmer.Word, 0, len(g.nodes))
	for w := range g.nodes {
		order = append(order, w)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	visited := make(map[kmer.Word]struct{}, len(g.nodes))
	var contigs []seq.Record
	var scratch [4]kmer.Word

	for _, canon := range order {
		if _, ok := visited[canon]; ok {
			continue
		}
		visited[canon] = struct{}{}
		// Grow forward from the canonical orientation...
		fwdBases := walk(g, visited, canon, scratch[:0])
		// ...and forward from the reverse-complement orientation,
		// which extends the unitig leftward.
		rc := kmer.ReverseComplement(canon, g.k)
		bwdBases := walk(g, visited, rc, scratch[:0])

		// Assemble: revcomp(bwdBases) + seed + fwdBases.
		seqLen := len(bwdBases) + g.k + len(fwdBases)
		if seqLen < c.MinContigLen {
			continue
		}
		buf := make([]byte, 0, seqLen)
		for i := len(bwdBases) - 1; i >= 0; i-- {
			buf = append(buf, seq.Complement(bwdBases[i]))
		}
		buf = append(buf, kmer.Decode(canon, g.k)...)
		buf = append(buf, fwdBases...)
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("%s_%d", c.NamePrefix, len(contigs)),
			Seq: buf,
		})
	}
	return contigs
}

// walk extends forward from oriented k-mer w through the unique-path
// region, marking nodes visited, and returns the appended bases.
func walk(g *graph, visited map[kmer.Word]struct{}, w kmer.Word, scratch []kmer.Word) []byte {
	var bases []byte
	cur := w
	for {
		nexts := g.fwdNexts(scratch[:0], cur)
		if len(nexts) != 1 {
			return bases
		}
		next := nexts[0]
		// The successor must have a unique predecessor (us); otherwise
		// it's a merge point and belongs to another unitig.
		preds := g.bwdNexts(scratch[:0], next)
		if len(preds) != 1 {
			return bases
		}
		ncanon := kmer.Canonical(next, g.k)
		if _, ok := visited[ncanon]; ok {
			return bases // cycle or already claimed
		}
		visited[ncanon] = struct{}{}
		bases = append(bases, seq.Base(byte(next&3)))
		cur = next
	}
}

// summarize computes contig statistics.
func summarize(contigs []seq.Record) Stats {
	st := Stats{Contigs: len(contigs)}
	if len(contigs) == 0 {
		return st
	}
	lens := make([]int, len(contigs))
	var sum, sumsq float64
	for i := range contigs {
		l := len(contigs[i].Seq)
		lens[i] = l
		st.TotalBases += int64(l)
		sum += float64(l)
		sumsq += float64(l) * float64(l)
		if l > st.MaxLen {
			st.MaxLen = l
		}
	}
	n := float64(len(contigs))
	st.MeanLen = sum / n
	variance := sumsq/n - st.MeanLen*st.MeanLen
	if variance > 0 {
		st.StdDevLen = math.Sqrt(variance)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	var acc int64
	for _, l := range lens {
		acc += int64(l)
		if acc*2 >= st.TotalBases {
			st.N50 = l
			break
		}
	}
	return st
}
