// Package assemble implements a de Bruijn graph contig assembler for
// short reads, substituting for the Minia assembler the paper used to
// build its subject sets. It counts canonical k-mers, filters to
// "solid" k-mers above an abundance threshold (discarding sequencing
// errors), and emits unitigs — maximal non-branching paths — as
// contigs. The output has the statistical character the mapping layer
// cares about: many contigs with highly variable lengths covering most
// of the genome.
package assemble

import (
	"runtime"
	"sync"

	"repro/internal/kmer"
	"repro/internal/seq"
)

// countShards is the number of independent k-mer count maps; a power
// of two so shard selection is a mask.
const countShards = 64

// counter is a sharded canonical-k-mer multiplicity counter safe for
// concurrent batch updates.
type counter struct {
	shards [countShards]map[kmer.Word]uint32
	locks  [countShards]sync.Mutex
}

func newCounter() *counter {
	c := &counter{}
	for i := range c.shards {
		c.shards[i] = make(map[kmer.Word]uint32)
	}
	return c
}

func shardOf(w kmer.Word) int {
	// Mix the bits so consecutive k-mers spread across shards.
	x := uint64(w)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & (countShards - 1))
}

// addBatch folds a batch of canonical k-mers into the shard maps.
func (c *counter) addBatch(batch [][]kmer.Word) {
	for s := range batch {
		if len(batch[s]) == 0 {
			continue
		}
		c.locks[s].Lock()
		m := c.shards[s]
		for _, w := range batch[s] {
			m[w]++
		}
		c.locks[s].Unlock()
	}
}

// distinct returns the number of distinct k-mers counted.
func (c *counter) distinct() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i])
	}
	return n
}

// solidCounts returns the k-mers with count ≥ minAbundance and their
// multiplicities (the de Bruijn node set with coverage, which bubble
// popping consults).
func (c *counter) solidCounts(minAbundance uint32) map[kmer.Word]uint32 {
	out := make(map[kmer.Word]uint32, c.distinct()/2)
	for i := range c.shards {
		for w, n := range c.shards[i] {
			if n >= minAbundance {
				out[w] = n
			}
		}
	}
	return out
}

// countKmers counts canonical k-mers of all reads using `workers`
// goroutines.
func countKmers(reads []seq.Record, k, workers int) *counter {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := newCounter()
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([][]kmer.Word, countShards)
			for i := range batch {
				batch[i] = make([]kmer.Word, 0, 512)
			}
			pending := 0
			flush := func() {
				c.addBatch(batch)
				for i := range batch {
					batch[i] = batch[i][:0]
				}
				pending = 0
			}
			for i := range idx {
				it := kmer.NewIterator(reads[i].Seq, k)
				for {
					_, canon, _, ok := it.Next()
					if !ok {
						break
					}
					s := shardOf(canon)
					batch[s] = append(batch[s], canon)
					pending++
					if pending >= 1<<15 {
						flush()
					}
				}
			}
			flush()
		}()
	}
	for i := range reads {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return c
}
