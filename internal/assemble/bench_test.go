package assemble

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func benchReads(b *testing.B, genomeLen int, het float64) []seq.Record {
	b.Helper()
	g, err := genome.Generate(genome.Config{Length: genomeLen, Heterozygosity: het, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := simulate.Illumina(g.Records, simulate.IlluminaConfig{Coverage: 25, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	out := simulate.Records(reads)
	if g.Haplotype2 != nil {
		r2, err := simulate.Illumina(g.Haplotype2, simulate.IlluminaConfig{Coverage: 12, Seed: 3, NamePrefix: "sr2"})
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, simulate.Records(r2)...)
	}
	return out
}

func BenchmarkAssembleHaploid(b *testing.B) {
	reads := benchReads(b, 300_000, 0)
	var bases int64
	for i := range reads {
		bases += int64(len(reads[i].Seq))
	}
	b.SetBytes(bases)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(reads, Config{K: 25, MinAbundance: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleDiploid(b *testing.B) {
	reads := benchReads(b, 200_000, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(reads, Config{K: 25, MinAbundance: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
