package simulate

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/genome"
	"repro/internal/seq"
)

func testRef(t *testing.T, n int) []seq.Record {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g.Records
}

func TestHiFiCoverageAndLengths(t *testing.T) {
	ref := testRef(t, 500_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 8, MedianLen: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var bases int64
	for _, r := range reads {
		bases += int64(len(r.Rec.Seq))
		if len(r.Rec.Seq) < 90 {
			t.Errorf("read %s too short: %d", r.Rec.ID, len(r.Rec.Seq))
		}
	}
	cov := float64(bases) / 500_000
	if cov < 8 || cov > 8.5 {
		t.Errorf("coverage %v want ~8", cov)
	}
	// Median should be near the configured value.
	lens := make([]int, len(reads))
	for i, r := range reads {
		lens[i] = r.End - r.Start
	}
	med := median(lens)
	if math.Abs(float64(med)-5000) > 1000 {
		t.Errorf("median length %d want ~5000", med)
	}
}

func TestHiFiErrorFreeMatchesReference(t *testing.T) {
	ref := testRef(t, 100_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 2, MedianLen: 2000, ErrorRate: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		want := ref[r.Chrom].Seq[r.Start:r.End]
		got := r.Rec.Seq
		if r.Strand == Reverse {
			got = seq.ReverseComplement(got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %s does not match its source span", r.Rec.ID)
		}
	}
}

func TestHiFiErrorRateApprox(t *testing.T) {
	ref := testRef(t, 200_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 5, MedianLen: 5000, ErrorRate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Count reads whose sequence differs from the source span; with a
	// 2% per-base error on multi-kb reads essentially all must differ.
	diff := 0
	for _, r := range reads {
		want := ref[r.Chrom].Seq[r.Start:r.End]
		got := r.Rec.Seq
		if r.Strand == Reverse {
			got = seq.ReverseComplement(got)
		}
		if !bytes.Equal(got, want) {
			diff++
		}
	}
	if diff < len(reads)*9/10 {
		t.Errorf("only %d/%d reads carry errors at 2%%", diff, len(reads))
	}
}

func TestHiFiBothStrandsAppear(t *testing.T) {
	ref := testRef(t, 100_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 5, MedianLen: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := 0, 0
	for _, r := range reads {
		if r.Strand == Forward {
			fwd++
		} else {
			rev++
		}
	}
	if fwd == 0 || rev == 0 {
		t.Errorf("strand skew: fwd=%d rev=%d", fwd, rev)
	}
}

func TestHiFiValidation(t *testing.T) {
	ref := testRef(t, 10_000)
	if _, err := HiFi(ref, HiFiConfig{Coverage: 0}); err == nil {
		t.Error("zero coverage should fail")
	}
	if _, err := HiFi(nil, HiFiConfig{Coverage: 1}); err == nil {
		t.Error("empty reference should fail")
	}
	if _, err := HiFi([]seq.Record{{ID: "e"}}, HiFiConfig{Coverage: 1}); err == nil {
		t.Error("zero-length reference should fail")
	}
}

func TestIllumina(t *testing.T) {
	ref := testRef(t, 100_000)
	reads, err := Illumina(ref, IlluminaConfig{Coverage: 10, ReadLen: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 10*100_000/100 {
		t.Errorf("got %d reads", len(reads))
	}
	for _, r := range reads[:50] {
		if len(r.Rec.Seq) != 100 {
			t.Errorf("read length %d", len(r.Rec.Seq))
		}
		if r.End-r.Start != 100 {
			t.Errorf("span %d", r.End-r.Start)
		}
	}
}

func TestIlluminaErrorFree(t *testing.T) {
	ref := testRef(t, 50_000)
	reads, err := Illumina(ref, IlluminaConfig{Coverage: 3, ErrorRate: -1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		want := ref[r.Chrom].Seq[r.Start:r.End]
		got := r.Rec.Seq
		if r.Strand == Reverse {
			got = seq.ReverseComplement(got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("error-free read %s differs from source", r.Rec.ID)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	ref := testRef(t, 50_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 1, MedianLen: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		chrom, start, end, strand, err := ParseCoords(r.Rec.Desc)
		if err != nil {
			t.Fatal(err)
		}
		if chrom != r.Chrom || start != r.Start || end != r.End || strand != r.Strand {
			t.Fatalf("coords %d,%d,%d,%c != %d,%d,%d,%c",
				chrom, start, end, strand, r.Chrom, r.Start, r.End, r.Strand)
		}
	}
	if _, _, _, _, err := ParseCoords("no coords here"); err == nil {
		t.Error("descriptor without coords should fail")
	}
	if _, _, _, _, err := ParseCoords("chrom=x start=1 end=2 strand=+"); err == nil {
		t.Error("malformed chrom should fail")
	}
}

func TestRecordsStripsTruth(t *testing.T) {
	ref := testRef(t, 20_000)
	reads, _ := HiFi(ref, HiFiConfig{Coverage: 1, MedianLen: 1000, Seed: 8})
	recs := Records(reads)
	if len(recs) != len(reads) {
		t.Fatalf("lengths differ")
	}
	for i := range recs {
		if recs[i].ID != reads[i].Rec.ID {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadsNeverCrossChromosomes(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 100_000, Chromosomes: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := HiFi(g.Records, HiFiConfig{Coverage: 3, MedianLen: 5000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if r.End > len(g.Records[r.Chrom].Seq) {
			t.Fatalf("read %s overruns chromosome %d", r.Rec.ID, r.Chrom)
		}
	}
}

func TestReadsAvoidAssemblyGaps(t *testing.T) {
	g, err := genome.Generate(genome.Config{
		Length: 200_000, GapFraction: 0.15, GapUnit: 2000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := HiFi(g.Records, HiFiConfig{Coverage: 3, MedianLen: 3000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads sampled from gapped genome")
	}
	for _, r := range reads {
		span := g.Records[r.Chrom].Seq[r.Start:r.End]
		if seq.CountValid(span)*10 < 9*len(span) {
			t.Fatalf("read %s drawn from a gap-heavy span", r.Rec.ID)
		}
	}
	short, err := Illumina(g.Records, IlluminaConfig{Coverage: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range short {
		span := g.Records[r.Chrom].Seq[r.Start:r.End]
		if seq.CountValid(span)*10 < 9*len(span) {
			t.Fatalf("short read %s drawn from a gap-heavy span", r.Rec.ID)
		}
	}
}

func TestHiFiQualities(t *testing.T) {
	ref := testRef(t, 30_000)
	reads, err := HiFi(ref, HiFiConfig{Coverage: 1, MedianLen: 2000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if len(r.Rec.Qual) != len(r.Rec.Seq) {
			t.Fatalf("read %s: qual length %d != seq length %d", r.Rec.ID, len(r.Rec.Qual), len(r.Rec.Seq))
		}
		for _, q := range r.Rec.Qual {
			phred := int(q) - 33
			if phred < 30 || phred > 40 {
				t.Fatalf("read %s: phred %d out of [30,40]", r.Rec.ID, phred)
			}
		}
	}
}

// FuzzParseCoords asserts the coordinate parser never panics and that
// accepted values round-trip through coordDesc.
func FuzzParseCoords(f *testing.F) {
	f.Add("chrom=1 start=100 end=200 strand=+")
	f.Add("chrom=0 start=0 end=0 strand=-")
	f.Add("garbage")
	f.Add("chrom= start= end= strand=")
	f.Fuzz(func(t *testing.T, desc string) {
		chrom, start, end, strand, err := ParseCoords(desc)
		if err != nil {
			return
		}
		again, s2, e2, st2, err := ParseCoords(coordDesc(chrom, start, end, strand))
		if err != nil || again != chrom || s2 != start || e2 != end || st2 != strand {
			t.Fatalf("round trip failed for %q", desc)
		}
	})
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ { // insertion sort, test-scale inputs
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
