// Package simulate provides sequencing-read simulators standing in for
// the tools the paper used: a PacBio HiFi long-read simulator
// (substituting Sim-it) and an Illumina short-read simulator
// (substituting ART). Both record the true reference coordinates of
// every read, which the benchmark construction of §IV-B consumes.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/seq"
)

// Strand is the orientation a read was sampled in.
type Strand byte

const (
	// Forward reads match the reference orientation.
	Forward Strand = '+'
	// Reverse reads are reverse-complemented relative to the reference.
	Reverse Strand = '-'
)

// Read is a simulated read along with its ground-truth origin.
type Read struct {
	Rec seq.Record
	// Chrom is the index of the source chromosome record.
	Chrom int
	// Start and End delimit the error-free source span on the
	// chromosome, half-open.
	Start, End int
	// Strand records the sampling orientation.
	Strand Strand
}

// Records strips the ground truth, returning bare sequence records.
func Records(reads []Read) []seq.Record {
	out := make([]seq.Record, len(reads))
	for i := range reads {
		out[i] = reads[i].Rec
	}
	return out
}

// coordDesc encodes ground truth into a record description so reads
// survive a FASTA/FASTQ round trip.
func coordDesc(chrom, start, end int, strand Strand) string {
	return fmt.Sprintf("chrom=%d start=%d end=%d strand=%c", chrom, start, end, strand)
}

// ParseCoords recovers ground-truth coordinates from a record
// description written by this package.
func ParseCoords(desc string) (chrom, start, end int, strand Strand, err error) {
	strand = Forward
	seen := 0
	for _, field := range strings.Fields(desc) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch k {
		case "chrom":
			chrom, err = strconv.Atoi(v)
			seen++
		case "start":
			start, err = strconv.Atoi(v)
			seen++
		case "end":
			end, err = strconv.Atoi(v)
			seen++
		case "strand":
			if v == "-" {
				strand = Reverse
			}
			seen++
		}
		if err != nil {
			return 0, 0, 0, Forward, fmt.Errorf("simulate: bad coord field %q: %v", field, err)
		}
	}
	if seen < 4 {
		return 0, 0, 0, Forward, fmt.Errorf("simulate: description %q lacks coordinate fields", desc)
	}
	return chrom, start, end, strand, nil
}

// HiFiConfig configures the long-read simulator.
type HiFiConfig struct {
	// Coverage is the target sequencing depth (e.g. 10 for 10×).
	Coverage float64
	// MedianLen is the median read length in bases (paper: ~10 kbp
	// simulated, ~19.6 kbp real).
	MedianLen int
	// LenSigma is the log-normal shape parameter controlling length
	// spread; 0 means 0.32 (≈ the paper's ±3.4 kbp at 10.2 kbp mean).
	LenSigma float64
	// ErrorRate is the per-base error probability; 0 means 0.001
	// (HiFi 99.9 % accuracy) and negative values mean error-free.
	// Errors are 50 % substitutions, 25 % insertions, 25 % deletions.
	ErrorRate float64
	// Seed drives the generator.
	Seed int64
	// NamePrefix prefixes read IDs; "" means "hifi".
	NamePrefix string
}

func (c HiFiConfig) withDefaults() HiFiConfig {
	if c.MedianLen == 0 {
		c.MedianLen = 10000
	}
	if c.LenSigma == 0 {
		c.LenSigma = 0.32
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.001
	} else if c.ErrorRate < 0 {
		c.ErrorRate = 0
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "hifi"
	}
	return c
}

// Validate checks config sanity.
func (c HiFiConfig) Validate() error {
	if c.Coverage <= 0 {
		return fmt.Errorf("simulate: hifi coverage %v must be positive", c.Coverage)
	}
	if c.MedianLen < 0 || c.ErrorRate > 1 {
		return fmt.Errorf("simulate: invalid hifi config %+v", c)
	}
	return nil
}

// HiFi samples long reads from the chromosome records until the target
// coverage is met. Reads never span chromosome boundaries.
func HiFi(chromosomes []seq.Record, c HiFiConfig) ([]Read, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	total := seq.TotalBases(chromosomes)
	if total == 0 {
		return nil, fmt.Errorf("simulate: empty reference")
	}
	targetBases := int64(c.Coverage * float64(total))
	var reads []Read
	var sampled int64
	mu := math.Log(float64(c.MedianLen))
	for sampled < targetBases {
		chrom := pickChromosome(rng, chromosomes, total)
		ref := chromosomes[chrom].Seq
		length := int(math.Exp(rng.NormFloat64()*c.LenSigma + mu))
		if length < 100 {
			length = 100
		}
		if length > len(ref) {
			length = len(ref)
		}
		start := sampleStart(rng, ref, length)
		if start < 0 {
			sampled += int64(length) // chromosome is mostly gaps; keep progress
			continue
		}
		end := start + length
		strand := Forward
		if rng.Intn(2) == 1 {
			strand = Reverse
		}
		payload := append([]byte(nil), ref[start:end]...)
		if strand == Reverse {
			seq.ReverseComplementInPlace(payload)
		}
		payload = applyErrors(rng, payload, c.ErrorRate)
		id := fmt.Sprintf("%s_%d", c.NamePrefix, len(reads))
		reads = append(reads, Read{
			Rec: seq.Record{
				ID:   id,
				Desc: coordDesc(chrom, start, end, strand),
				Seq:  payload,
				Qual: hifiQualities(rng, len(payload)),
			},
			Chrom:  chrom,
			Start:  start,
			End:    end,
			Strand: strand,
		})
		sampled += int64(length)
	}
	return reads, nil
}

// IlluminaConfig configures the short-read simulator.
type IlluminaConfig struct {
	// Coverage is the target depth (paper used enough for Minia
	// assembly; 30× is a sensible default when 0).
	Coverage float64
	// ReadLen is the read length; 0 means 100 (paper: 100 bp).
	ReadLen int
	// ErrorRate is the substitution probability per base; <0 means 0,
	// 0 means 0.002.
	ErrorRate float64
	// Seed drives the generator.
	Seed int64
	// NamePrefix prefixes read IDs; "" means "sr".
	NamePrefix string
}

func (c IlluminaConfig) withDefaults() IlluminaConfig {
	if c.Coverage == 0 {
		c.Coverage = 30
	}
	if c.ReadLen == 0 {
		c.ReadLen = 100
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.002
	} else if c.ErrorRate < 0 {
		c.ErrorRate = 0
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "sr"
	}
	return c
}

// Illumina samples fixed-length short reads to the target coverage.
// Errors are substitutions only, as in Illumina chemistry.
func Illumina(chromosomes []seq.Record, c IlluminaConfig) ([]Read, error) {
	c = c.withDefaults()
	if c.Coverage <= 0 || c.ReadLen <= 0 {
		return nil, fmt.Errorf("simulate: invalid illumina config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	total := seq.TotalBases(chromosomes)
	if total == 0 {
		return nil, fmt.Errorf("simulate: empty reference")
	}
	n := int(c.Coverage * float64(total) / float64(c.ReadLen))
	reads := make([]Read, 0, n)
	for i := 0; i < n; i++ {
		chrom := pickChromosome(rng, chromosomes, total)
		ref := chromosomes[chrom].Seq
		length := c.ReadLen
		if length > len(ref) {
			length = len(ref)
		}
		start := sampleStart(rng, ref, length)
		if start < 0 {
			continue
		}
		end := start + length
		strand := Forward
		if rng.Intn(2) == 1 {
			strand = Reverse
		}
		payload := append([]byte(nil), ref[start:end]...)
		if strand == Reverse {
			seq.ReverseComplementInPlace(payload)
		}
		for j := range payload {
			if rng.Float64() < c.ErrorRate {
				payload[j] = mutateBase(rng, payload[j])
			}
		}
		reads = append(reads, Read{
			Rec: seq.Record{
				ID:   fmt.Sprintf("%s_%d", c.NamePrefix, i),
				Desc: coordDesc(chrom, start, end, strand),
				Seq:  payload,
			},
			Chrom:  chrom,
			Start:  start,
			End:    end,
			Strand: strand,
		})
	}
	return reads, nil
}

// hifiQualities draws plausible HiFi per-base qualities: high (Q30-40)
// with mild variation, in Phred+33.
func hifiQualities(rng *rand.Rand, n int) []byte {
	q := make([]byte, n)
	for i := range q {
		q[i] = byte(33 + 30 + rng.Intn(11)) // Q30..Q40
	}
	return q
}

// sampleStart draws a start position whose span is mostly sequenceable
// (≥90 % unambiguous bases), retrying a bounded number of times —
// sequencers do not produce reads from assembly gaps. It returns -1
// when no acceptable span is found.
func sampleStart(rng *rand.Rand, ref []byte, length int) int {
	for attempt := 0; attempt < 10; attempt++ {
		start := rng.Intn(len(ref) - length + 1)
		span := ref[start : start+length]
		if seq.CountValid(span)*10 >= 9*len(span) {
			return start
		}
	}
	return -1
}

// pickChromosome samples a chromosome index weighted by length.
func pickChromosome(rng *rand.Rand, chromosomes []seq.Record, total int64) int {
	x := rng.Int63n(total)
	for i := range chromosomes {
		l := int64(len(chromosomes[i].Seq))
		if x < l {
			return i
		}
		x -= l
	}
	return len(chromosomes) - 1
}

// applyErrors introduces substitutions, insertions and deletions at
// the given per-base rate (50/25/25 split).
func applyErrors(rng *rand.Rand, s []byte, rate float64) []byte {
	if rate <= 0 {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		if rng.Float64() >= rate {
			out = append(out, b)
			continue
		}
		switch rng.Intn(4) {
		case 0, 1: // substitution
			out = append(out, mutateBase(rng, b))
		case 2: // insertion (keep the base, add a random one)
			out = append(out, b, seq.Code2Base[rng.Intn(4)])
		case 3: // deletion (drop the base)
		}
	}
	return out
}

func mutateBase(rng *rand.Rand, b byte) byte {
	for {
		nb := seq.Code2Base[rng.Intn(4)]
		if nb != b {
			return nb
		}
	}
}
