package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/seq"
)

func buildSmallMapper(t *testing.T, seed int64) (*Mapper, []seq.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var contigs []seq.Record
	for i := 0; i < 10; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 400+rng.Intn(800)),
		})
	}
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	m.Seal()
	return m, contigs
}

// TestWriteIndexFileRoundTrip: the atomic file path round-trips and
// serves identically.
func TestWriteIndexFileRoundTrip(t *testing.T) {
	m, contigs := buildSmallMapper(t, 17)
	path := filepath.Join(t.TempDir(), "idx.jem")
	if err := m.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Sealed() {
		t.Fatal("frozen index did not load sealed")
	}
	s1, s2 := m.NewSession(), loaded.NewSession()
	for _, c := range contigs {
		seg := c.Seq[:min32(uint32(len(c.Seq)), smallParams().L)]
		h1, ok1 := s1.MapSegment(seg)
		h2, ok2 := s2.MapSegment(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("mapping diverged after reload: %v,%v != %v,%v", h1, ok1, h2, ok2)
		}
	}
}

// TestIndexChecksumDetectsCorruption: every single-byte corruption of
// a JEMIDX04 file must be rejected, and body corruptions must be
// identified as checksum mismatches (the rebuildable kind).
func TestIndexChecksumDetectsCorruption(t *testing.T) {
	m, _ := buildSmallMapper(t, 19)
	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Sanity: the clean bytes load.
	if _, err := ReadIndex(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean index rejected: %v", err)
	}
	// Corrupt a spread of offsets across the body and the footer.
	offsets := []int{8, 16, 40, len(clean) / 2, len(clean) - 5, len(clean) - 1}
	for _, off := range offsets {
		bad := append([]byte(nil), clean...)
		bad[off] ^= 0x01
		_, err := ReadIndex(bytes.NewReader(bad))
		if err == nil {
			t.Errorf("offset %d: corrupted index accepted", off)
			continue
		}
		if !errors.Is(err, ErrIndexChecksum) {
			t.Errorf("offset %d: err=%v, want ErrIndexChecksum", off, err)
		}
	}
	// Truncations (including chopping into the footer) must fail too.
	for _, n := range []int{len(clean) - 1, len(clean) - 4, len(clean) / 2, 10} {
		if _, err := ReadIndex(bytes.NewReader(clean[:n])); err == nil {
			t.Errorf("truncated to %d bytes: accepted", n)
		}
	}
}

// TestIndexLegacyJEMIDX03Load: a JEMIDX03 body is the JEMIDX04 body
// without a footer; emitting it through the shared body encoder (the
// current writer no longer produces it — sealed mappers write
// JEMIDX06) yields a valid legacy file, which must still load,
// unverified.
func TestIndexLegacyJEMIDX03Load(t *testing.T) {
	m, _ := buildSmallMapper(t, 23)
	var buf bytes.Buffer
	buf.Write(indexMagicV3[:])
	if err := m.writeIndexBody(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("JEMIDX03 load: %v", err)
	}
	if loaded.NumSubjects() != m.NumSubjects() {
		t.Fatalf("subjects %d != %d", loaded.NumSubjects(), m.NumSubjects())
	}
}

// TestWriteIndexFileAtomicOnFailure: an injected disk-full error mid
// write must leave the destination untouched — no partial index, no
// temp droppings, and any pre-existing file intact.
func TestWriteIndexFileAtomicOnFailure(t *testing.T) {
	defer fault.Reset()
	m, _ := buildSmallMapper(t, 29)
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.jem")
	if err := os.WriteFile(path, []byte("previous index"), 0o644); err != nil {
		t.Fatal(err)
	}
	// After: 0 — the buffered index body can reach the file in a single
	// flushed write, so the very first write must be the one that fails.
	fault.Set(fault.WriterENOSPC, fault.Spec{})
	err := m.WriteIndexFile(path)
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("err=%v, want injected ENOSPC", err)
	}
	fault.Reset()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "previous index" {
		t.Fatalf("pre-existing file damaged: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestIndexByteFlipCaughtAtLoad: the full corruption story — a fault
// flips one byte of the written file, the checksum catches it at load
// time, and the caller can classify the failure for rebuild.
func TestIndexByteFlipCaughtAtLoad(t *testing.T) {
	defer fault.Reset()
	m, _ := buildSmallMapper(t, 31)
	path := filepath.Join(t.TempDir(), "idx.jem")
	fault.Set(fault.IndexByteFlip, fault.Spec{})
	if err := m.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	_, err := ReadIndexFile(path)
	if err == nil {
		t.Fatal("bit-flipped index accepted")
	}
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("err=%v, want ErrIndexChecksum", err)
	}
}
