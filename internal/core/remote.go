package core

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/parallel"
	"repro/internal/sketch"
)

// ShardQuerier is the remote scatter-gather backend: something that
// can resolve one shard's probe batch — probe i being
// ⟨trials[i], words[i]⟩ — into per-probe posting lists. The concrete
// implementation is shardnet.Coordinator (a fleet of jem-shardd
// processes); core depends only on this interface so the network
// layer stays out of the mapping hot path's dependency tree.
//
// Contract: a nil error means lists[i] holds exactly the postings the
// local sharded table would have returned for probe i (nil for an
// absent word). A non-nil error means the whole batch failed
// terminally after the backend's retry/hedge budget — the session
// records the shard as lost for the query and the gather completes
// without it (the degraded-answer policy; see Session.LostShards).
// Implementations must be safe for concurrent use by many sessions.
type ShardQuerier interface {
	// NumShards returns the index's total shard count P; probes are
	// routed with sketch.ShardOf(trial, word, P).
	NumShards() int
	// QueryShard resolves one shard's probe batch under ctx.
	QueryShard(ctx context.Context, shard int, trials []int32, words []sketch.Word) ([][]sketch.Posting, error)
}

// SetRemote installs a remote scatter-gather backend as the mapper's
// serving path, replacing any local table (the typical caller holds a
// meta-only mapper from ReadIndexMetaFile, which has no postings to
// drop). Passing nil restores local serving and panics if no local
// table remains. Like SetFrozen/SetSharded it must run before
// sessions are issued.
func (m *Mapper) SetRemote(q ShardQuerier) {
	if q == nil {
		if m.table == nil && m.frozen == nil && m.sharded == nil {
			panic("core: cannot clear the remote backend of a sealed mapper (no local table remains)")
		}
		m.remote = nil
		return
	}
	m.remote = q
	m.table = nil
	m.sealed = true
	m.enableShardMetrics()
}

// Remote returns the installed remote backend, nil for local serving.
func (m *Mapper) Remote() ShardQuerier { return m.remote }

// IndexMeta identifies a sharded (JEMIDX05/06) index without its
// payloads: the shard count, the sketch/subject dimensions, and the
// manifest checksum — the fingerprint a shard-server fleet and a
// coordinator must agree on before any query flows.
type IndexMeta struct {
	// Shards is the index's shard count P.
	Shards int
	// T is the sketch trial count.
	T int
	// NumSubjects is the subject-id space size.
	NumSubjects int
	// ManifestCRC is the manifest footer checksum.
	ManifestCRC uint32
}

// ReadIndexMetaFile reads only the manifest of a sharded (JEMIDX05 or
// JEMIDX06) index: the returned mapper carries the sketch parameters
// and subject metadata but NO postings (it must be given a backend
// with SetRemote before it can serve), and the IndexMeta carries the
// fingerprint to validate a shard fleet against. Non-sharded indexes
// are rejected: remote serving requires the sharded layout.
func ReadIndexMetaFile(path string) (*Mapper, IndexMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	defer func() { _ = f.Close() }()
	br, magic, err := requireShardedMagic(f, path)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	man, err := readShardedManifest(br, magic)
	if err != nil {
		return nil, IndexMeta{}, fmt.Errorf("core: index %s: %w", path, err)
	}
	return man.m, man.meta(), nil
}

// ReadShardSubsetFile loads only the shards selected by keep from a
// sharded (JEMIDX05 or JEMIDX06) index — the shard-server loading
// path, where each process pays memory for its own shards only.
// Unselected payloads (and, in V6, the alignment padding between
// payloads) are skipped without allocation; selected ones are
// CRC-verified and decoded in parallel exactly like a full load. The
// returned map is keyed by shard id.
func ReadShardSubsetFile(path string, keep func(shard int) bool) (map[int]*sketch.FrozenTable, IndexMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	defer func() { _ = f.Close() }()
	br, magic, err := requireShardedMagic(f, path)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	man, err := readShardedManifest(br, magic)
	if err != nil {
		return nil, IndexMeta{}, fmt.Errorf("core: index %s: %w", path, err)
	}
	var kept []int
	payloads := make(map[int][]byte)
	pos := man.end // stream position past the manifest (V6 bookkeeping)
	for i := range man.lens {
		// V6 payloads are page-aligned; skip the padding gap first.
		if man.offs != nil {
			if skip := int64(man.offs[i]) - pos; skip > 0 {
				if _, err := io.CopyN(io.Discard, br, skip); err != nil {
					return nil, IndexMeta{}, fmt.Errorf("core: index %s: seeking shard %d payload: %w", path, i, err)
				}
				pos += skip
			}
		}
		if !keep(i) {
			n, err := io.CopyN(io.Discard, br, int64(man.lens[i]))
			pos += n
			if err != nil {
				return nil, IndexMeta{}, fmt.Errorf("core: index %s: skipping shard %d payload: %w", path, i, err)
			}
			continue
		}
		var buf bytes.Buffer
		n, err := io.CopyN(&buf, br, int64(man.lens[i]))
		pos += n
		if err == io.EOF && n < int64(man.lens[i]) {
			return nil, IndexMeta{}, fmt.Errorf("core: index %s: shard %d payload truncated (%d of %d bytes): %w (%w)",
				path, i, n, man.lens[i], errIndexTruncated, ErrIndexChecksum)
		}
		if err != nil {
			return nil, IndexMeta{}, fmt.Errorf("core: index %s: reading shard %d payload: %w", path, i, err)
		}
		payloads[i] = buf.Bytes()
		kept = append(kept, i)
	}
	if len(kept) == 0 {
		return nil, IndexMeta{}, fmt.Errorf("core: index %s: shard selection keeps none of %d shards", path, len(man.lens))
	}
	decode := decodeShardPayload
	if magic == indexMagicV6 {
		decode = decodeShardPayload06
	}
	tables := make(map[int]*sketch.FrozenTable, len(kept))
	decErrs := make([]error, len(kept))
	decoded := make([]*sketch.FrozenTable, len(kept))
	parallel.ForEach(len(kept), 0, func(j int) {
		i := kept[j]
		decoded[j], decErrs[j] = decode(i, payloads[i], man.crcs[i])
	})
	for j, err := range decErrs {
		if err != nil {
			return nil, IndexMeta{}, fmt.Errorf("core: index %s: %w", path, err)
		}
		tables[kept[j]] = decoded[j]
	}
	return tables, man.meta(), nil
}

// requireShardedMagic reads the index magic and rejects everything but
// the sharded layouts (JEMIDX05, JEMIDX06): only they have a manifest
// to serve shard subsets and fingerprints from. The accepted magic is
// returned so callers can parse the matching directory shape.
func requireShardedMagic(r io.Reader, path string) (*bufio.Reader, [8]byte, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, magic, fmt.Errorf("core: index %s: reading magic: %w", path, err)
	}
	switch magic {
	case indexMagicV5, indexMagicV6:
		return br, magic, nil
	case indexMagic, indexMagicV3, indexMagicLegacy:
		return nil, magic, fmt.Errorf("core: index %s: %q is not sharded; distributed serving requires a JEMIDX05/06 index (rebuild with -shards > 1)", path, magic[:])
	default:
		return nil, magic, fmt.Errorf("core: index %s: not a JEM index (magic %q)", path, magic[:])
	}
}
