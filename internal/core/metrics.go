package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Metrics bundles the serving instruments a Mapper updates on every
// session query: how many segments were looked up, how many hit a
// subject, how much posting-scan work the lookups did, and the
// per-segment lookup-latency distribution.
type Metrics struct {
	// Segments counts end segments queried (MapSegment and variants).
	Segments *obs.Counter
	// Hits and Misses split Segments by whether a subject was found.
	Hits, Misses *obs.Counter
	// Postings counts sketch-table postings examined — the dominant
	// unit of query work (§III-C's lazy-counter scan).
	Postings *obs.Counter
	// Lookup is the per-segment lookup latency in seconds.
	Lookup *obs.Histogram
	// ShardPostings, present only on a sharded mapper, splits Postings
	// by serving shard (index = shard id); it exposes routing skew.
	ShardPostings []*obs.Counter
	// reg is retained so per-shard counters can be registered when the
	// sharded table is installed after EnableMetrics (the build path:
	// the facade enables metrics before sealing).
	reg *obs.Registry
}

// EnableMetrics registers the mapper's serving instruments on reg and
// turns on per-query instrumentation for every session created
// afterwards. Call it before issuing sessions (the facade does this
// at construction); sessions capture the instrument set when they are
// created. Registration is idempotent per registry, so several
// mappers may share one registry and their counts aggregate.
func (m *Mapper) EnableMetrics(reg *obs.Registry) *Metrics {
	met := &Metrics{
		Segments: reg.Counter("jem_core_segments_total", "end segments queried"),
		Hits:     reg.Counter("jem_core_segments_mapped_total", "queried segments that hit a contig"),
		Misses:   reg.Counter("jem_core_segments_unmapped_total", "queried segments with no hit"),
		Postings: reg.Counter("jem_core_postings_scanned_total", "sketch-table postings examined by lookups"),
		Lookup:   reg.Histogram("jem_core_lookup_seconds", "per-segment lookup latency", obs.LatencyBuckets()),
		reg:      reg,
	}
	m.met = met
	m.enableShardMetrics()
	return met
}

// enableShardMetrics registers the per-shard postings counters once
// both a metrics registry and a shard-partitioned serving path — a
// local sharded table or a remote backend — are present. It runs from
// EnableMetrics (load path: table installed first) and from
// SealSharded/SetSharded/SetRemote (build path: registry installed
// first), and always before sessions exist, so sessions see a
// complete slice.
func (m *Mapper) enableShardMetrics() {
	if m.met == nil || m.met.reg == nil {
		return
	}
	var p int
	switch {
	case m.sharded != nil:
		p = m.sharded.NumShards()
	case m.remote != nil:
		p = m.remote.NumShards()
	default:
		return
	}
	if len(m.met.ShardPostings) == p {
		return
	}
	cs := make([]*obs.Counter, p)
	for i := range cs {
		cs[i] = m.met.reg.Counter(
			fmt.Sprintf("jem_core_shard%d_postings_scanned_total", i),
			fmt.Sprintf("sketch-table postings examined in shard %d", i))
	}
	m.met.ShardPostings = cs
}

// Metrics returns the instrument set installed by EnableMetrics, nil
// when metrics are disabled.
func (m *Mapper) Metrics() *Metrics { return m.met }

// observe folds one finished segment lookup into the instruments:
// a handful of atomic ops, cheap next to the lookup itself.
func (met *Metrics) observe(elapsed time.Duration, postings int64, hit bool) {
	met.Segments.Inc()
	if hit {
		met.Hits.Inc()
	} else {
		met.Misses.Inc()
	}
	met.Postings.Add(postings)
	met.Lookup.Observe(elapsed.Seconds())
}

// observeShard attributes postings scanned in one shard during a
// scatter-gather query to that shard's counter.
func (met *Metrics) observeShard(shard int, postings int64) {
	if shard < len(met.ShardPostings) {
		met.ShardPostings[shard].Add(postings)
	}
}
