// Package core implements JEM-mapper (the paper's primary
// contribution): Algorithm 2, mapping long-read end segments to
// contigs through the minimizer-based Jaccard estimator sketch of
// Algorithm 1.
//
// The flow mirrors the paper's steps: subjects (contigs) are sketched
// and inserted into a per-trial sketch table; each query (a ℓ-long end
// segment of a long read) is sketched, its T per-trial words are
// looked up, the subjects hit across trials are counted with the
// lazy-update counter array of §III-C, and the most frequent subject
// is reported as the best hit.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seq"
	"repro/internal/sketch"
)

// SegmentKind distinguishes the two end segments of a long read.
type SegmentKind uint8

const (
	// Prefix is the first ℓ bases of a read.
	Prefix SegmentKind = iota
	// Suffix is the last ℓ bases of a read.
	Suffix
)

func (k SegmentKind) String() string {
	if k == Prefix {
		return "prefix"
	}
	return "suffix"
}

// Hit is one candidate subject for a query with its trial-hit count.
type Hit struct {
	Subject int32
	Count   int32
}

// Result records the mapping of one end segment.
type Result struct {
	ReadIndex int32       // index of the read in the query set
	Kind      SegmentKind // which end
	Subject   int32       // best-hit subject id, -1 when unmapped
	Count     int32       // number of trials that hit the best subject
}

// Mapped reports whether the segment found any subject.
func (r Result) Mapped() bool { return r.Subject >= 0 }

// SubjectMeta is what the mapper retains about each subject.
type SubjectMeta struct {
	Name   string
	Length int32
}

// Mapper holds the sketch table over a subject set.
//
// A mapper starts mutable (subjects can be added) and is sealed by
// Seal before serving: sealing converts the hash-map table into the
// cache-friendly frozen sorted-array form that every lookup then uses,
// and frees the mutable table. The distributed driver reaches the same
// state through SetFrozen (its frozen table is built by the gather
// merge instead).
type Mapper struct {
	sk      *sketch.Sketcher
	table   *sketch.Table
	frozen  *sketch.FrozenTable
	sharded *sketch.ShardedFrozen
	// remote, when non-nil, replaces every local table: queries
	// scatter-gather over the wire through it (SetRemote).
	remote   ShardQuerier
	subjects []SubjectMeta
	sealed   bool
	// met, when non-nil, receives per-query observations from every
	// session created after EnableMetrics ran.
	met *Metrics
	// sessions counts sessions ever issued; once positive, the subject
	// set must not grow (sessions size their counter arrays to it).
	sessions atomic.Int32
}

// NewMapper creates a Mapper with the given sketch parameters.
func NewMapper(p sketch.Params) (*Mapper, error) {
	sk, err := sketch.NewSketcher(p)
	if err != nil {
		return nil, err
	}
	return &Mapper{sk: sk, table: sketch.NewTable(p.T)}, nil
}

// Sketcher exposes the underlying sketcher (shared with baselines and
// the distributed driver).
func (m *Mapper) Sketcher() *sketch.Sketcher { return m.sk }

// Table exposes the mutable sketch table (used by the distributed
// driver's gather step and by table-size statistics). It is nil after
// Seal, which drops the mutable form in favor of the frozen one.
func (m *Mapper) Table() *sketch.Table { return m.table }

// Frozen exposes the frozen table, nil until Seal or SetFrozen.
func (m *Mapper) Frozen() *sketch.FrozenTable { return m.frozen }

// SetFrozen installs a frozen (sorted-array) global table; subsequent
// lookups use it instead of the mutable hash table. The distributed
// driver builds it straight from the allgathered payloads.
func (m *Mapper) SetFrozen(ft *sketch.FrozenTable) {
	if ft == nil && m.table == nil {
		panic("core: cannot clear the frozen table of a sealed mapper (no mutable table remains)")
	}
	m.frozen = ft
}

// Sharded exposes the sharded frozen table, nil unless the mapper
// serves the sharded backend (SealSharded, SetSharded, or a sharded
// JEMIDX05/06 index load).
func (m *Mapper) Sharded() *sketch.ShardedFrozen { return m.sharded }

// Shards returns the number of serving shards: P for a sharded or
// remote mapper, 1 for the monolithic table forms.
func (m *Mapper) Shards() int {
	if m.remote != nil {
		return m.remote.NumShards()
	}
	if m.sharded != nil {
		return m.sharded.NumShards()
	}
	return 1
}

// IndexBytes returns the approximate total size of the serving index
// (the frozen or sharded sketch table's backing arrays), 0 for an
// unsealed mapper. A serving tier with several indexes resident uses
// this for per-index memory accounting. The total counts resident and
// mapped bytes alike; IndexMemory splits them.
func (m *Mapper) IndexBytes() int64 {
	switch {
	case m.sharded != nil:
		return m.sharded.MemBytes()
	case m.frozen != nil:
		return m.frozen.MemBytes()
	}
	return 0
}

// IndexMemory splits IndexBytes into resident (process-private heap)
// and mapped (file-backed via mmap, shareable across processes) bytes.
// A heap-loaded index is all resident; an mmap-served one is all
// mapped; a budgeted open reports both halves.
func (m *Mapper) IndexMemory() (resident, mapped int64) {
	switch {
	case m.sharded != nil:
		return m.sharded.ResidentBytes(), m.sharded.MappedBytes()
	case m.frozen != nil:
		return m.frozen.ResidentBytes(), m.frozen.MappedBytes()
	}
	return 0, 0
}

// SetSharded installs a sharded frozen table; subsequent lookups
// scatter-gather across its shards. Like SetFrozen it must run before
// sessions are issued, and clearing the only table of a sealed mapper
// is rejected.
func (m *Mapper) SetSharded(sf *sketch.ShardedFrozen) {
	if sf == nil && m.table == nil && m.frozen == nil {
		panic("core: cannot clear the sharded table of a sealed mapper (no other table remains)")
	}
	m.sharded = sf
	m.enableShardMetrics()
}

// SealSharded is Seal for the sharded serving backend: the mutable
// table is partitioned into `shards` frozen shards built concurrently
// (workers ≤0 means GOMAXPROCS), then dropped. Sharded and monolithic
// sealing produce mappers with byte-identical query results; sharding
// parallelizes the freeze, the index save/load, and bounds per-shard
// memory. SealSharded is idempotent on an already-sharded mapper and
// panics on a mapper sealed with the monolithic table (there is no
// mutable table left to partition).
func (m *Mapper) SealSharded(shards, workers int) {
	m.SealShardedTraced(shards, workers, nil)
}

// SealShardedTraced is SealSharded with a per-shard build hook (see
// sketch.FreezeShardedTraced); the facade uses it to attach per-shard
// build spans.
func (m *Mapper) SealShardedTraced(shards, workers int, trace func(shard int, fn func())) {
	if m.sealed {
		if m.sharded != nil {
			return
		}
		panic("core: SealSharded on a mapper already sealed with a monolithic table")
	}
	if m.sharded == nil {
		m.sharded = m.table.FreezeShardedTraced(shards, workers, trace)
	}
	m.table = nil
	m.sealed = true
	m.enableShardMetrics()
}

// Seal freezes the mapper for serving: the mutable hash-map table is
// converted into the frozen sorted-array form (unless SetFrozen
// already installed one) and then dropped, so every subsequent lookup
// takes the cache-friendly path. Adding subjects or merging tables
// after Seal panics. Seal is idempotent.
func (m *Mapper) Seal() {
	if m.sealed {
		return
	}
	if m.frozen == nil && m.sharded == nil {
		m.frozen = m.table.Freeze()
	}
	m.table = nil
	m.sealed = true
}

// Sealed reports whether Seal has run.
func (m *Mapper) Sealed() bool { return m.sealed }

// Entries returns the total posting count of the active table (frozen
// after Seal/SetFrozen, mutable before). A remote mapper reports 0:
// its postings are resident in the shard servers, not this process.
func (m *Mapper) Entries() int {
	if m.sharded != nil {
		return m.sharded.Entries()
	}
	if m.frozen != nil {
		return m.frozen.Entries()
	}
	if m.table != nil {
		return m.table.Entries()
	}
	return 0
}

// mutationGuard panics when the subject set may no longer grow: after
// Seal, and after any session has been issued (sessions size their
// counter arrays to the subject count at creation, so a later
// out-of-range subject id would corrupt or panic mid-query).
func (m *Mapper) mutationGuard(op string) {
	if m.sealed {
		panic(fmt.Sprintf("core: %s on a sealed mapper", op))
	}
	if m.sessions.Load() > 0 {
		panic(fmt.Sprintf("core: %s after sessions were created; the mapper must not gain subjects while sessions exist", op))
	}
}

// lookup dispatches to the active table: sharded, frozen, or mutable.
func (m *Mapper) lookup(t int, w sketch.Word) []sketch.Posting {
	if m.sharded != nil {
		return m.sharded.Lookup(t, w)
	}
	if m.frozen != nil {
		return m.frozen.Lookup(t, w)
	}
	return m.table.Lookup(t, w)
}

// NumSubjects returns the number of subjects indexed so far.
func (m *Mapper) NumSubjects() int { return len(m.subjects) }

// Subject returns metadata for subject id.
func (m *Mapper) Subject(id int32) SubjectMeta { return m.subjects[id] }

// AddSubjects sketches and indexes contigs sequentially. Subject ids
// are assigned densely in input order, continuing from any previously
// added subjects.
func (m *Mapper) AddSubjects(contigs []seq.Record) {
	m.mutationGuard("AddSubjects")
	for i := range contigs {
		id := int32(len(m.subjects))
		m.subjects = append(m.subjects, SubjectMeta{Name: contigs[i].ID, Length: int32(len(contigs[i].Seq))})
		words, anchors := m.sk.SubjectSketchPositional(contigs[i].Seq)
		m.table.InsertPositional(id, words, anchors)
	}
}

// AddSubjectsParallel sketches contigs with the given number of
// workers (≤0 means GOMAXPROCS) and inserts them in input order, so
// results are identical to AddSubjects.
func (m *Mapper) AddSubjectsParallel(contigs []seq.Record, workers int) {
	m.mutationGuard("AddSubjectsParallel")
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(contigs) < 2 {
		m.AddSubjects(contigs)
		return
	}
	sketches := make([][][]sketch.Word, len(contigs))
	anchors := make([][][]int32, len(contigs))
	var wg sync.WaitGroup
	next := make(chan int, len(contigs))
	for i := range contigs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sketches[i], anchors[i] = m.sk.SubjectSketchPositional(contigs[i].Seq)
			}
		}()
	}
	wg.Wait()
	for i := range contigs {
		id := int32(len(m.subjects))
		m.subjects = append(m.subjects, SubjectMeta{Name: contigs[i].ID, Length: int32(len(contigs[i].Seq))})
		m.table.InsertPositional(id, sketches[i], anchors[i])
	}
}

// RegisterSubjects records subject metadata without sketching,
// assigning dense ids in input order. The distributed driver uses this
// on every rank (metadata is small and replicated) while the sketch
// table itself is built per-rank and merged via MergeTable.
func (m *Mapper) RegisterSubjects(contigs []seq.Record) {
	m.mutationGuard("RegisterSubjects")
	for i := range contigs {
		m.subjects = append(m.subjects, SubjectMeta{Name: contigs[i].ID, Length: int32(len(contigs[i].Seq))})
	}
}

// MergeTable folds an externally built per-rank table into the
// mapper's global table (the union step S3 of Algorithm 2's
// parallelization).
func (m *Mapper) MergeTable(tb *sketch.Table) {
	m.mutationGuard("MergeTable")
	m.table.Merge(tb)
}

// Session carries the per-worker lazy-update counter state of §III-C:
// an array A[1..n] of ⟨count u, query id v⟩ tuples. A counter is valid
// for the current query only when its stored query id matches, which
// avoids resetting n counters per query. Sessions are cheap relative
// to the table and are NOT safe for concurrent use; create one per
// goroutine.
type Session struct {
	m       *Mapper
	met     *Metrics        // instrument set captured at creation (nil = off)
	done    <-chan struct{} // cancellation signal from WithContext (nil = never)
	ctx     context.Context // request context from WithContext (nil = none)
	count   []int32
	lastq   []int32
	qid     int32
	cand    []int32            // subjects touched by the current query
	plists  [][]sketch.Posting // per-trial postings of the current query
	scanned int64              // postings examined across all queries

	// Scatter-gather scratch for the sharded backend: per-shard lazy
	// counters (same ⟨count, qid⟩ scheme as the global arrays) that a
	// query's per-shard scans fill independently and the gather step
	// merges into the global counters. shardTrials groups the query's
	// T trials by destination shard; shardTouched lists the shards the
	// current query actually routed to.
	shards       []shardCounters
	shardTrials  [][]int32
	shardTouched []int32

	// Remote scatter-gather scratch: per-shard probe words (parallel to
	// shardTrials), per-shard RPC results/errors/durations, and the
	// cumulative set of shards whose queries failed terminally — the
	// degraded-answer record surfaced through LostShards.
	shardWords [][]sketch.Word
	remoteRes  [][][]sketch.Posting
	remoteErrs []error
	remoteDur  []time.Duration
	lostSet    map[int]struct{}

	// Per-shard work tallies for request-scoped tracing: postings are
	// accumulated always (one slice add per touched shard per query —
	// noise next to the scan itself); wall time only when timeShards is
	// set, so untraced runs never pay the clock reads.
	shardWork  []ShardWork
	timeShards bool

	// err latches the first serving-integrity failure this session hit —
	// today, a lazy shard whose fault-in CRC verification failed. The
	// query that hit it completes degraded (the failed shard contributes
	// nothing); the latch is how batch drivers surface the corruption
	// instead of silently serving partial answers.
	err error
}

// ShardWork is one shard's cumulative work as seen by one session:
// how many postings its scans examined and (when shard timing is
// enabled) how much wall time they took. It is the per-shard
// breakdown a request trace attributes scatter-gather time with.
type ShardWork struct {
	Postings int64
	Wall     time.Duration
}

// shardCounters is one shard's lazy-update counter array (§III-C,
// applied per shard). Arrays are allocated on the shard's first touch.
type shardCounters struct {
	count []int32
	lastq []int32
	cand  []int32
}

// NewSession creates a mapping session over the mapper's current
// subject set. The mapper must not gain subjects while sessions exist
// (enforced: AddSubjects and friends panic once a session has been
// issued).
func (m *Mapper) NewSession() *Session {
	m.sessions.Add(1)
	n := len(m.subjects)
	s := &Session{
		m:     m,
		met:   m.met,
		count: make([]int32, n),
		lastq: make([]int32, n),
		qid:   0,
	}
	for i := range s.lastq {
		s.lastq[i] = -1
	}
	return s
}

// WithContext attaches ctx's cancellation signal to the session and
// returns it. Long multi-segment operations (MapReadTiled) poll
// Interrupted between segments and stop early once the context is
// done; single-segment lookups always run to completion, so a
// cancelled session never leaves partial counter state behind.
func (s *Session) WithContext(ctx context.Context) *Session {
	s.ctx = ctx
	s.done = ctx.Done()
	return s
}

// context returns the request context attached via WithContext — the
// context remote shard queries inherit their deadlines from.
//
//jem:detached sessions created without WithContext have no caller context to inherit
func (s *Session) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// LostShards returns the sorted ids of shards that failed terminally
// at any point in this session's lifetime — a remote shard whose
// queries exhausted their retry/hedge budget, or a local lazy shard
// whose fault-in verification failed — the per-session degraded-answer
// record. Queries touching a lost shard completed with the surviving
// shards' postings only.
func (s *Session) LostShards() []int {
	if len(s.lostSet) == 0 {
		return nil
	}
	out := make([]int, 0, len(s.lostSet))
	for sd := range s.lostSet {
		out = append(out, sd)
	}
	sort.Ints(out)
	return out
}

// Interrupted reports whether the context attached via WithContext has
// been cancelled. Sessions without a context are never interrupted.
func (s *Session) Interrupted() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// PostingsScanned returns the cumulative number of sketch-table
// postings this session has examined — the dominant unit of query
// work, surfaced through jem.Stats for serving telemetry.
func (s *Session) PostingsScanned() int64 { return s.scanned }

// Err returns the first serving-integrity failure this session hit
// (nil when none): a lazy shard whose fault-in verification failed
// leaves its sticky error here while the queries that touched it
// complete without that shard's postings. Batch drivers check it once
// per session, after the work loop.
func (s *Session) Err() error { return s.err }

// fail latches the session's first integrity error.
func (s *Session) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// EnableShardTiming turns on per-shard wall-clock accumulation for
// this session's scatter-gather scans. Off by default: a traced
// request opts in, an untraced one never reads the clock per shard.
func (s *Session) EnableShardTiming() { s.timeShards = true }

// ShardWork returns a snapshot of the per-shard work this session has
// done (empty on an unsharded mapper or before the first sharded
// query). Wall fields are zero unless EnableShardTiming was called
// before the queries ran.
func (s *Session) ShardWork() []ShardWork {
	out := make([]ShardWork, len(s.shardWork))
	copy(out, s.shardWork)
	return out
}

// MapSegment maps one end segment and returns its best hit. ok=false
// means the segment produced no sketch or no subject was hit in any
// trial. Ties are broken toward the lower subject id for determinism.
func (s *Session) MapSegment(segment []byte) (Hit, bool) {
	if s.met == nil {
		return s.mapSegment(segment)
	}
	t0 := time.Now()
	before := s.scanned
	h, ok := s.mapSegment(segment)
	s.met.observe(time.Since(t0), s.scanned-before, ok)
	return h, ok
}

// mapSegment is the uninstrumented lookup loop: T table probes, then
// the lazy-counter candidate scan (§III-C).
//
//jem:hotpath
func (s *Session) mapSegment(segment []byte) (Hit, bool) {
	words := s.m.sk.QuerySketch(segment)
	if words == nil {
		return Hit{Subject: -1}, false
	}
	s.scanWords(words, false)
	if len(s.cand) == 0 {
		return Hit{Subject: -1}, false
	}
	return s.bestCandidate(), true
}

// scanWords runs the counting pass for one query: each of the T
// per-trial words is looked up and every posting votes for its subject
// through the lazy-update counters, leaving the query's candidate set
// in s.cand/s.count. keepLists additionally records each trial's
// posting list in s.plists[t] for the positional offset-vote pass.
// On a sharded mapper the pass scatter-gathers (scanShardedWords);
// either path leaves identical counter state.
//
//jem:hotpath
func (s *Session) scanWords(words []sketch.Word, keepLists bool) {
	s.qid++
	qid := s.qid
	s.cand = s.cand[:0]
	if keepLists {
		if cap(s.plists) < len(words) {
			s.plists = make([][]sketch.Posting, len(words))
		}
		s.plists = s.plists[:len(words)]
	} else {
		s.plists = s.plists[:0]
	}
	if q := s.m.remote; q != nil {
		s.scanRemoteWords(q, words, keepLists)
		return
	}
	if sf := s.m.sharded; sf != nil && sf.NumShards() > 1 {
		s.scanShardedWords(sf, words, keepLists)
		return
	}
	for t, w := range words {
		ps := s.m.lookup(t, w)
		if keepLists {
			s.plists[t] = ps
		}
		s.scanned += int64(len(ps))
		for _, p := range ps {
			subj := p.Subject
			if s.lastq[subj] != qid {
				s.lastq[subj] = qid
				s.count[subj] = 0
				s.cand = append(s.cand, subj)
			}
			s.count[subj]++
		}
	}
}

// scanShardedWords is the scatter-gather counting pass: the query's T
// ⟨trial, word⟩ probes are grouped by destination shard, each touched
// shard is scanned with its own lazy-update counters, and the gather
// step folds the per-shard counts into the global counters. Because
// every posting list lives in exactly one shard, the merged counts are
// identical to a monolithic scan's, and the best-hit selection over
// them is order-independent — so sharded and unsharded mapping results
// are byte-identical for any shard count.
//
//jem:hotpath
func (s *Session) scanShardedWords(sf *sketch.ShardedFrozen, words []sketch.Word, keepLists bool) {
	p := sf.NumShards()
	if len(s.shardTrials) < p {
		s.shardTrials = make([][]int32, p)
	}
	if len(s.shardWork) < p {
		s.shardWork = make([]ShardWork, p)
	}
	touched := s.shardTouched[:0]
	// Scatter: route each trial's probe to the shard owning its word.
	for t, w := range words {
		sd := sketch.ShardOf(t, w, p)
		if len(s.shardTrials[sd]) == 0 {
			touched = append(touched, int32(sd))
		}
		s.shardTrials[sd] = append(s.shardTrials[sd], int32(t))
	}
	qid := s.qid
	// Per-shard scans: each shard's probes run against that shard's
	// frozen table only, counting into the shard's own lazy counters.
	// When shard timing is on, one clock read per shard boundary
	// attributes the scan wall to the shard that just finished.
	var prevClock time.Time
	if s.timeShards {
		prevClock = time.Now()
	}
	for _, sd32 := range touched {
		sd := int(sd32)
		sc := s.shardCounter(sd)
		sc.cand = sc.cand[:0]
		ft, lerr := sf.ShardChecked(sd)
		if lerr != nil {
			// A lazy shard failed its fault-in verification. Latch the
			// error, drop the shard's probes (clearing any stale posting
			// lists the offset-vote pass would otherwise reuse), and let
			// the query complete degraded — same shape as a lost remote
			// shard.
			s.fail(lerr)
			s.noteLostShard(sd)
			if keepLists {
				for _, t32 := range s.shardTrials[sd] {
					s.plists[t32] = nil
				}
			}
			s.shardTrials[sd] = s.shardTrials[sd][:0]
			continue
		}
		var scanned int64
		for _, t32 := range s.shardTrials[sd] {
			t := int(t32)
			ps := ft.Lookup(t, words[t])
			if keepLists {
				s.plists[t] = ps
			}
			scanned += int64(len(ps))
			for _, p := range ps {
				subj := p.Subject
				if sc.lastq[subj] != qid {
					sc.lastq[subj] = qid
					sc.count[subj] = 0
					sc.cand = append(sc.cand, subj)
				}
				sc.count[subj]++
			}
		}
		s.scanned += scanned
		s.shardWork[sd].Postings += scanned
		if s.timeShards {
			now := time.Now()
			s.shardWork[sd].Wall += now.Sub(prevClock)
			prevClock = now
		}
		if s.met != nil {
			s.met.observeShard(sd, scanned)
		}
		s.shardTrials[sd] = s.shardTrials[sd][:0]
	}
	// Gather: merge per-shard counts into the global counter array.
	for _, sd32 := range touched {
		sc := &s.shards[sd32]
		for _, subj := range sc.cand {
			if s.lastq[subj] != qid {
				s.lastq[subj] = qid
				s.count[subj] = 0
				s.cand = append(s.cand, subj)
			}
			s.count[subj] += sc.count[subj]
		}
	}
	s.shardTouched = touched[:0]
}

// scanRemoteWords is the counting pass over a remote fleet: probes
// are grouped per shard by the same ShardOf routing as the local
// sharded path, each touched shard's batch goes out as one RPC (fanned
// out concurrently when several shards are touched), and the replies
// are merged into the global counters in touched order. Because the
// probes, the per-shard posting lists, and the merge order all match
// scanShardedWords exactly, a healthy fleet yields byte-identical
// results — including PostingsScanned — to the local sharded backend.
//
// The degraded-answer policy lives here: a shard whose query fails
// terminally (every retry/hedge attempt exhausted — see
// shardnet.ShardError) contributes nothing to this query. Its id is
// recorded in the session's lost set, the query completes with the
// surviving shards, and the caller reads the damage via LostShards.
func (s *Session) scanRemoteWords(q ShardQuerier, words []sketch.Word, keepLists bool) {
	p := q.NumShards()
	if len(s.shardTrials) < p {
		s.shardTrials = make([][]int32, p)
	}
	if len(s.shardWords) < p {
		s.shardWords = make([][]sketch.Word, p)
	}
	if len(s.shardWork) < p {
		s.shardWork = make([]ShardWork, p)
	}
	if len(s.remoteRes) < p {
		s.remoteRes = make([][][]sketch.Posting, p)
		s.remoteErrs = make([]error, p)
		s.remoteDur = make([]time.Duration, p)
	}
	touched := s.shardTouched[:0]
	// Scatter: route each trial's probe to the shard owning its word.
	for t, w := range words {
		sd := sketch.ShardOf(t, w, p)
		if len(s.shardTrials[sd]) == 0 {
			touched = append(touched, int32(sd))
		}
		s.shardTrials[sd] = append(s.shardTrials[sd], int32(t))
		s.shardWords[sd] = append(s.shardWords[sd], w)
	}
	ctx := s.context()
	// Fan out one RPC per touched shard. A single-shard query runs
	// inline; multi-shard queries overlap their network waits.
	if len(touched) == 1 {
		sd := int(touched[0])
		s.remoteRes[sd], s.remoteDur[sd], s.remoteErrs[sd] = s.queryRemoteShard(ctx, q, sd)
	} else {
		var wg sync.WaitGroup
		for _, sd32 := range touched {
			sd := int(sd32)
			wg.Add(1)
			go func(sd int) {
				defer wg.Done()
				s.remoteRes[sd], s.remoteDur[sd], s.remoteErrs[sd] = s.queryRemoteShard(ctx, q, sd)
			}(sd)
		}
		wg.Wait()
	}
	qid := s.qid
	// Gather: merge each shard's reply in touched order, counting
	// straight into the global counters (per-probe order inside a shard
	// matches the local per-shard scan, so the candidate set comes out
	// in the same order the local gather step produces).
	for _, sd32 := range touched {
		sd := int(sd32)
		lists, err := s.remoteRes[sd], s.remoteErrs[sd]
		s.remoteRes[sd] = nil
		if err != nil {
			s.noteLostShard(sd)
			if keepLists {
				// plists is reused across queries; a lost shard's trials
				// must not leak the previous query's posting lists into
				// this one's offset-vote pass.
				for _, t32 := range s.shardTrials[sd] {
					s.plists[t32] = nil
				}
			}
			s.shardTrials[sd] = s.shardTrials[sd][:0]
			s.shardWords[sd] = s.shardWords[sd][:0]
			continue
		}
		var scanned int64
		for i, t32 := range s.shardTrials[sd] {
			ps := lists[i]
			if keepLists {
				s.plists[t32] = ps
			}
			scanned += int64(len(ps))
			for _, pp := range ps {
				subj := pp.Subject
				if s.lastq[subj] != qid {
					s.lastq[subj] = qid
					s.count[subj] = 0
					s.cand = append(s.cand, subj)
				}
				s.count[subj]++
			}
		}
		s.scanned += scanned
		s.shardWork[sd].Postings += scanned
		if s.timeShards {
			s.shardWork[sd].Wall += s.remoteDur[sd]
		}
		if s.met != nil {
			s.met.observeShard(sd, scanned)
		}
		s.shardTrials[sd] = s.shardTrials[sd][:0]
		s.shardWords[sd] = s.shardWords[sd][:0]
	}
	s.shardTouched = touched[:0]
}

// queryRemoteShard runs one shard's RPC, timing it when shard timing
// is enabled (the wall is the RPC round-trip — the remote analogue of
// the local per-shard scan time).
func (s *Session) queryRemoteShard(ctx context.Context, q ShardQuerier, sd int) ([][]sketch.Posting, time.Duration, error) {
	if !s.timeShards {
		lists, err := q.QueryShard(ctx, sd, s.shardTrials[sd], s.shardWords[sd])
		return lists, 0, err
	}
	t0 := time.Now()
	lists, err := q.QueryShard(ctx, sd, s.shardTrials[sd], s.shardWords[sd])
	return lists, time.Since(t0), err
}

// noteLostShard records a terminal per-query shard failure in the
// session's cumulative lost set.
func (s *Session) noteLostShard(sd int) {
	if s.lostSet == nil {
		s.lostSet = make(map[int]struct{})
	}
	s.lostSet[sd] = struct{}{}
}

// shardCounter returns shard sd's counter set, allocating the arrays
// on the shard's first touch by this session.
func (s *Session) shardCounter(sd int) *shardCounters {
	if len(s.shards) == 0 {
		s.shards = make([]shardCounters, s.m.sharded.NumShards())
	}
	sc := &s.shards[sd]
	if sc.lastq == nil {
		n := len(s.m.subjects)
		sc.count = make([]int32, n)
		sc.lastq = make([]int32, n)
		for i := range sc.lastq {
			sc.lastq[i] = -1
		}
	}
	return sc
}

// bestCandidate picks the winner from the current query's candidate
// set: highest count, ties toward the lower subject id — a choice
// independent of candidate order, which keeps sharded and unsharded
// scans byte-identical.
//
//jem:hotpath
func (s *Session) bestCandidate() Hit {
	best := Hit{Subject: -1, Count: 0}
	for _, subj := range s.cand {
		c := s.count[subj]
		if c > best.Count || (c == best.Count && subj < best.Subject) {
			best = Hit{Subject: subj, Count: c}
		}
	}
	return best
}

// PositionalHit extends Hit with an approximate target location: the
// median interval anchor of the trials that hit the subject, giving
// the start of the ~ℓ-long region of the contig the segment maps to.
// This positional estimate is an extension over the paper (whose
// output is subject ids only) enabled by the positional sketch table.
type PositionalHit struct {
	Hit
	// TargetStart is the estimated start of the mapped region on the
	// subject; TargetEnd is TargetStart + len(segment) clamped to the
	// subject length. TargetStart is -1 when no positional provenance
	// exists.
	TargetStart, TargetEnd int32
	// Reverse is true when the segment maps to the subject's reverse
	// strand (decided by which offset-vote hypothesis clusters more
	// tightly).
	Reverse bool
}

// MapSegmentPositional maps a segment and estimates where on the best
// subject it landed: each trial whose sketch word hits the winning
// subject votes with the offset (target anchor − query word position),
// and the median offset is the estimated start of the mapped region.
//
//jem:hotpath
func (s *Session) MapSegmentPositional(segment []byte) (PositionalHit, bool) {
	if s.met == nil {
		return s.mapSegmentPositional(segment)
	}
	t0 := time.Now()
	before := s.scanned
	ph, ok := s.mapSegmentPositional(segment)
	s.met.observe(time.Since(t0), s.scanned-before, ok)
	return ph, ok
}

// mapSegmentPositional is the uninstrumented positional lookup loop:
// the counting pass plus the offset-vote pass over cached postings.
//
//jem:hotpath
func (s *Session) mapSegmentPositional(segment []byte) (PositionalHit, bool) {
	words, qpos := s.m.sk.QuerySketchPositional(segment)
	if words == nil {
		return PositionalHit{Hit: Hit{Subject: -1}, TargetStart: -1}, false
	}
	// keepLists caches each trial's posting list during the counting
	// pass so the offset-vote pass below can reuse the slices instead
	// of paying a second round of T table lookups.
	s.scanWords(words, true)
	if len(s.cand) == 0 {
		return PositionalHit{Hit: Hit{Subject: -1}, TargetStart: -1}, false
	}
	best := s.bestCandidate()
	// Second pass: offset votes for the winning subject under both
	// strand hypotheses. A forward pair satisfies anchor − qpos ≈
	// segment start on the subject; a reverse pair satisfies
	// anchor + qpos ≈ start + len(segment) − k. The true hypothesis
	// clusters tightly around one value while the false one spreads.
	var fwd, rev []int32
	for t := range words {
		for _, p := range s.plists[t] {
			if p.Subject == best.Subject && p.Anchor >= 0 {
				fwd = append(fwd, p.Anchor-qpos[t])
				rev = append(rev, p.Anchor+qpos[t])
			}
		}
	}
	ph := PositionalHit{Hit: best, TargetStart: -1}
	if len(fwd) == 0 {
		return ph, true
	}
	tol := int32(s.m.sk.Params().W + s.m.sk.Params().K)
	fMed, fVotes := medianCluster(fwd, tol)
	rMed, rVotes := medianCluster(rev, tol)
	var start int32
	if rVotes > fVotes {
		ph.Reverse = true
		start = rMed - int32(len(segment)) + int32(s.m.sk.Params().K)
	} else {
		start = fMed
	}
	if start < 0 {
		start = 0
	}
	ph.TargetStart = start
	ph.TargetEnd = start + int32(len(segment))
	if l := s.m.subjects[best.Subject].Length; ph.TargetEnd > l {
		ph.TargetEnd = l
	}
	return ph, true
}

// medianCluster sorts xs, takes the median, and counts values within
// ±tol of it — the cluster-size score used to pick the strand
// hypothesis. xs is modified (sorted) in place.
func medianCluster(xs []int32, tol int32) (median int32, votes int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	median = xs[len(xs)/2]
	for _, x := range xs {
		if x >= median-tol && x <= median+tol {
			votes++
		}
	}
	return median, votes
}

// MapSegmentTopK returns up to k hits ordered by descending count
// (ties toward lower subject id) — the paper's proposed top-x
// extension (§IV-C).
func (s *Session) MapSegmentTopK(segment []byte, k int) []Hit {
	if s.met == nil {
		return s.mapSegmentTopK(segment, k)
	}
	t0 := time.Now()
	before := s.scanned
	hits := s.mapSegmentTopK(segment, k)
	s.met.observe(time.Since(t0), s.scanned-before, len(hits) > 0)
	return hits
}

func (s *Session) mapSegmentTopK(segment []byte, k int) []Hit {
	words := s.m.sk.QuerySketch(segment)
	if words == nil || k <= 0 {
		return nil
	}
	s.scanWords(words, false)
	if len(s.cand) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(s.cand))
	for _, subj := range s.cand {
		hits = append(hits, Hit{Subject: subj, Count: s.count[subj]})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Count != hits[j].Count {
			return hits[i].Count > hits[j].Count
		}
		return hits[i].Subject < hits[j].Subject
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// TileHit is one interior-tile mapping: the tile's offset on the read
// plus the best hit for that tile.
type TileHit struct {
	// Offset is the tile's start position on the read.
	Offset int32
	// Length is the tile length (the last tile may be shorter than ℓ).
	Length int32
	Hit
}

// MapReadTiled maps consecutive ℓ-length tiles across the WHOLE read,
// not just its ends — the extension the paper flags (§III-B.1) for
// non-scaffolding use-cases where a contig can be contained entirely
// within a read's interior and would be invisible to end-segment
// mapping. Tiles advance by stride bases (stride ≤ 0 means ℓ, i.e.
// non-overlapping tiles; stride = ℓ/2 gives half-overlapping tiles for
// better boundary coverage). Unmapped tiles are omitted.
func (s *Session) MapReadTiled(read []byte, l, stride int) []TileHit {
	if l <= 0 || len(read) == 0 {
		return nil
	}
	if stride <= 0 {
		stride = l
	}
	var out []TileHit
	for off := 0; ; off += stride {
		if s.Interrupted() {
			return out
		}
		end := off + l
		last := false
		if end >= len(read) {
			end = len(read)
			last = true
		}
		if end-off >= s.m.sk.Params().K {
			hit, ok := s.MapSegment(read[off:end])
			if ok {
				out = append(out, TileHit{Offset: int32(off), Length: int32(end - off), Hit: hit})
			}
		}
		if last {
			break
		}
	}
	return out
}

// ContainedSubjects reports the distinct subjects hit by interior
// tiles but by neither end tile — candidates for contigs fully
// contained within the read, which end-segment mapping cannot see.
func (s *Session) ContainedSubjects(read []byte, l int) []int32 {
	tiles := s.MapReadTiled(read, l, 0)
	if len(tiles) <= 2 {
		return nil
	}
	atEnds := make(map[int32]struct{})
	readLen := int32(len(read))
	for _, th := range tiles {
		if th.Offset == 0 || th.Offset+th.Length >= readLen {
			atEnds[th.Subject] = struct{}{}
		}
	}
	seen := make(map[int32]struct{})
	var out []int32
	for _, th := range tiles {
		if th.Offset == 0 || th.Offset+th.Length >= readLen {
			continue
		}
		if _, end := atEnds[th.Subject]; end {
			continue
		}
		if _, dup := seen[th.Subject]; dup {
			continue
		}
		seen[th.Subject] = struct{}{}
		out = append(out, th.Subject)
	}
	return out
}

// EndSegments returns the prefix and suffix segments of length l of a
// read. For reads of length ≤ l a single segment (the whole read,
// reported as Prefix) is returned, matching the degenerate case where
// both ends coincide.
func EndSegments(read []byte, l int) (segments [][]byte, kinds []SegmentKind) {
	if len(read) <= l {
		return [][]byte{read}, []SegmentKind{Prefix}
	}
	return [][]byte{read[:l], read[len(read)-l:]}, []SegmentKind{Prefix, Suffix}
}

// MapReads maps the end segments of every read using `workers`
// goroutines (≤0 means GOMAXPROCS) and returns the per-segment
// results in deterministic (read, kind) order.
func (m *Mapper) MapReads(reads []seq.Record, l int, workers int) []Result {
	results, _ := m.MapReadsTimed(reads, l, workers)
	return results
}

// MapReadsTimed is MapReads plus the query-phase wall time, which the
// experiment harness uses for throughput accounting (Fig. 7b).
//
//jem:detached offline batch entry point: no request to inherit from
func (m *Mapper) MapReadsTimed(reads []seq.Record, l int, workers int) ([]Result, time.Duration) {
	start := time.Now()
	results, _ := m.MapReadsContext(context.Background(), reads, l, workers)
	return results, time.Since(start)
}

// MapReadsContext is MapReads under a cancellable context. When ctx is
// done, workers stop mapping (they drain the remaining work queue
// without touching it) and the call returns the results of every read
// completed so far — in deterministic (read, kind) order with cancelled
// reads simply absent — together with ctx.Err(). A serving-integrity
// failure any worker session latched (a lazy shard failing its
// fault-in verification) is returned ahead of cancellation. A nil
// error means the full read set was mapped against a healthy index.
func (m *Mapper) MapReadsContext(ctx context.Context, reads []seq.Record, l int, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]Result, len(reads))
	sessErrs := make([]error, workers)
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := m.NewSession().WithContext(ctx)
			for i := range idx {
				if sess.Interrupted() {
					continue // drain the queue without mapping
				}
				out[i] = mapOneRead(sess, int32(i), reads[i].Seq, l)
			}
			sessErrs[w] = sess.Err()
		}(w)
	}
	for i := range reads {
		idx <- i
	}
	close(idx)
	wg.Wait()
	flat := make([]Result, 0, 2*len(reads))
	for _, rs := range out {
		flat = append(flat, rs...)
	}
	for _, err := range sessErrs {
		if err != nil {
			return flat, err
		}
	}
	return flat, ctx.Err()
}

func mapOneRead(sess *Session, readIndex int32, read []byte, l int) []Result {
	segs, kinds := EndSegments(read, l)
	results := make([]Result, len(segs))
	for i, seg := range segs {
		hit, ok := sess.MapSegment(seg)
		r := Result{ReadIndex: readIndex, Kind: kinds[i], Subject: -1}
		if ok {
			r.Subject = hit.Subject
			r.Count = hit.Count
		}
		results[i] = r
	}
	return results
}

// MapSegments maps pre-extracted segments (the form the distributed
// driver uses, where Q already holds 2m ℓ-length sequences).
func (m *Mapper) MapSegments(segments [][]byte, workers int) []Hit {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hits := make([]Hit, len(segments))
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := m.NewSession()
			for i := range idx {
				h, ok := sess.MapSegment(segments[i])
				if !ok {
					h = Hit{Subject: -1}
				}
				hits[i] = h
			}
		}()
	}
	for i := range segments {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return hits
}

// String renders a result for diagnostics.
func (r Result) String() string {
	return fmt.Sprintf("read %d %s -> subject %d (hits %d)", r.ReadIndex, r.Kind, r.Subject, r.Count)
}
