package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sketch"
)

// JEMIDX06 is the out-of-core index layout:
//
//	magic "JEMIDX06"
//	manifest: params (6×u64), subjects, shard count (u32),
//	          payload page size (u32),
//	          per shard {file offset u64, payload length u64, CRC32 u32}
//	manifest CRC32 (u32, over magic+manifest, footer not self-included)
//	per-shard flat payloads (FrozenTable.EncodeFlat), each starting at
//	its directory offset, page-aligned, gaps zero-filled
//
// Because every payload is the flat serving layout at a page-aligned
// file offset, a reader can mmap the whole file read-only and alias
// each shard's arrays in place: no decode allocation, demand paging
// per shard, and physical pages shared between every process mapping
// the same file. The same file still loads fine through the plain
// streaming reader on hosts without mmap.
const indexPageSize = 4096

func alignPage(x int64) int64 { return (x + indexPageSize - 1) &^ (indexPageSize - 1) }

// sealedShardTables gathers the sealed mapper's per-shard tables for
// serialization: the sharded set (forcing any lazy shard in — an index
// cannot be written from payloads that fail their checksum), or the
// single frozen table as a one-shard index.
func (m *Mapper) sealedShardTables() ([]*sketch.FrozenTable, error) {
	if m.sharded != nil {
		out := make([]*sketch.FrozenTable, m.sharded.NumShards())
		for i := range out {
			ft, err := m.sharded.ShardChecked(i)
			if err != nil {
				return nil, fmt.Errorf("core: materializing shard %d for write: %w", i, err)
			}
			out[i] = ft
		}
		return out, nil
	}
	if m.frozen != nil {
		return []*sketch.FrozenTable{m.frozen}, nil
	}
	return nil, fmt.Errorf("core: mapper has no sealed table to write")
}

// writeIndex06 emits the JEMIDX06 layout. Shard payloads are encoded
// concurrently; the file ends at the last payload byte (no trailing
// pad), and the zero-filled alignment gaps cost nothing once mapped —
// untouched pages are never faulted in.
func (m *Mapper) writeIndex06(w io.Writer) error {
	tables, err := m.sealedShardTables()
	if err != nil {
		return err
	}
	n := len(tables)
	payloads := make([][]byte, n)
	parallel.ForEach(n, 0, func(i int) {
		payloads[i] = tables[i].EncodeFlat()
	})
	var metaBuf bytes.Buffer
	if err := m.writeIndexMeta(&metaBuf); err != nil {
		return err
	}
	// magic + meta + shard count + page size + n×{off,len,crc} + footer
	manifestLen := int64(8) + int64(metaBuf.Len()) + 4 + 4 + int64(n)*20 + 4
	offs := make([]uint64, n)
	off := alignPage(manifestLen)
	for i := range payloads {
		offs[i] = uint64(off)
		off += int64(len(payloads[i]))
		if i < n-1 {
			off = alignPage(off)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	h := crc32.NewIEEE()
	hw := io.MultiWriter(bw, h)
	if _, err := hw.Write(indexMagicV6[:]); err != nil {
		return err
	}
	if _, err := hw.Write(metaBuf.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(hw, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	if err := binary.Write(hw, binary.LittleEndian, uint32(indexPageSize)); err != nil {
		return err
	}
	for i, pl := range payloads {
		if err := binary.Write(hw, binary.LittleEndian, offs[i]); err != nil {
			return err
		}
		if err := binary.Write(hw, binary.LittleEndian, uint64(len(pl))); err != nil {
			return err
		}
		if err := binary.Write(hw, binary.LittleEndian, crc32.ChecksumIEEE(pl)); err != nil {
			return err
		}
	}
	// The manifest footer is NOT part of its own checksum.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	var zeros [indexPageSize]byte
	pos := manifestLen
	for i, pl := range payloads {
		for pad := int64(offs[i]) - pos; pad > 0; {
			k := pad
			if k > indexPageSize {
				k = indexPageSize
			}
			if _, err := bw.Write(zeros[:k]); err != nil {
				return err
			}
			pad -= k
			pos += k
		}
		if _, err := bw.Write(pl); err != nil {
			return err
		}
		pos += int64(len(pl))
	}
	return bw.Flush()
}

// readSharded06 decodes a JEMIDX06 stream after its magic — the plain
// heap loading path, used when the caller did not (or could not) go
// through the mmap open. Identical trust order to readShardedIndex:
// manifest verified first, payloads pulled sequentially (skipping the
// alignment gaps), then CRC-verified and decoded in parallel.
func readSharded06(br *bufio.Reader, sp *obs.Span) (*Mapper, error) {
	man, err := readShardedManifest(br, indexMagicV6)
	if err != nil {
		return nil, err
	}
	nshards := len(man.lens)
	payloads := make([][]byte, nshards)
	pos := man.end
	for i := range payloads {
		if skip := int64(man.offs[i]) - pos; skip > 0 {
			if _, err := io.CopyN(io.Discard, br, skip); err != nil {
				return nil, fmt.Errorf("core: seeking shard %d payload: %w (%w)", i, errIndexTruncated, ErrIndexChecksum)
			}
			pos += skip
		}
		var buf bytes.Buffer
		n, err := io.CopyN(&buf, br, int64(man.lens[i]))
		pos += n
		if err == io.EOF && n < int64(man.lens[i]) {
			return nil, fmt.Errorf("core: shard %d payload truncated (%d of %d bytes): %w (%w)",
				i, n, man.lens[i], errIndexTruncated, ErrIndexChecksum)
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading shard %d payload: %w", i, err)
		}
		payloads[i] = buf.Bytes()
	}
	shards := make([]*sketch.FrozenTable, nshards)
	decErrs := make([]error, nshards)
	parallel.ForEach(nshards, 0, func(i int) {
		if sp != nil {
			sp.Time(fmt.Sprintf("shard%d", i), func() {
				shards[i], decErrs[i] = decodeShardPayload06(i, payloads[i], man.crcs[i])
			})
			return
		}
		shards[i], decErrs[i] = decodeShardPayload06(i, payloads[i], man.crcs[i])
	})
	for _, err := range decErrs {
		if err != nil {
			return nil, err
		}
	}
	return finishSealed(man, shards)
}

// finishSealed installs decoded shard tables on the manifest's mapper.
// A one-shard index loads as a plain frozen mapper — structurally
// identical to the pre-sharding formats — so shard count 1 keeps the
// exact single-table lookup path.
func finishSealed(man *shardedManifest, shards []*sketch.FrozenTable) (*Mapper, error) {
	m, p := man.m, man.p
	if len(shards) == 1 {
		if shards[0].T() != p.T {
			return nil, fmt.Errorf("core: frozen table has %d trials, params say %d", shards[0].T(), p.T)
		}
		m.frozen = shards[0]
		m.table = nil
		m.sealed = true
		return m, nil
	}
	sf, err := sketch.NewShardedFrozen(shards)
	if err != nil {
		return nil, fmt.Errorf("core: assembling sharded table: %w", err)
	}
	if sf.T() != p.T {
		return nil, fmt.Errorf("core: sharded table has %d trials, params say %d", sf.T(), p.T)
	}
	m.sharded = sf
	m.table = nil
	m.sealed = true
	return m, nil
}

// decodeShardPayload06 verifies one flat shard payload against its
// manifest CRC and decodes it onto the heap. Runs on a worker
// goroutine per shard.
func decodeShardPayload06(i int, payload []byte, wantCRC uint32) (*sketch.FrozenTable, error) {
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: shard %d computed %08x, manifest says %08x", ErrIndexChecksum, i, got, wantCRC)
	}
	ft, err := sketch.DecodeFlatFrozen(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decoding shard %d: %w", i, err)
	}
	return ft, nil
}

// viewShardPayload06 verifies one flat shard payload against its
// manifest CRC and builds a zero-copy view over it (see
// sketch.ViewFlatFrozen). faultin marks the deferred verification of a
// lazy shard's first query, where the IndexFaultinByteFlip fault point
// can inject a mismatch: the mapping is read-only, so the injector
// perturbs the computed checksum instead of the bytes.
func viewShardPayload06(i int, payload []byte, wantCRC uint32, faultin bool) (*sketch.FrozenTable, error) {
	got := crc32.ChecksumIEEE(payload)
	if faultin {
		if _, ok := fault.Fire(fault.IndexFaultinByteFlip); ok {
			got ^= 0x01
		}
	}
	if got != wantCRC {
		return nil, fmt.Errorf("%w: shard %d computed %08x, manifest says %08x", ErrIndexChecksum, i, got, wantCRC)
	}
	ft, err := sketch.ViewFlatFrozen(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decoding shard %d: %w", i, err)
	}
	return ft, nil
}

// MemoryMode selects how an index open turns file bytes into serving
// structures.
type MemoryMode uint8

const (
	// MemoryAuto maps the index read-only and, under a positive
	// Budget, decodes shards onto the heap until the budget is spent —
	// the rest stay load-on-demand views. With no budget it behaves
	// like MemoryMMap. Formats without the flat layout (pre-JEMIDX06),
	// and hosts without mmap, fall back to a heap load.
	MemoryAuto MemoryMode = iota
	// MemoryHeap decodes every shard into process-private heap memory
	// at open — the classic load, fastest per lookup.
	MemoryHeap
	// MemoryMMap serves every shard as a zero-copy view over a shared
	// read-only mapping: near-zero resident cost, kernel-managed
	// faulting, pages shared across processes.
	MemoryMMap
)

func (md MemoryMode) String() string {
	switch md {
	case MemoryAuto:
		return "auto"
	case MemoryHeap:
		return "heap"
	case MemoryMMap:
		return "mmap"
	default:
		return fmt.Sprintf("MemoryMode(%d)", uint8(md))
	}
}

// MemorySpec is the byte-budget contract an index open honors.
type MemorySpec struct {
	Mode MemoryMode
	// Budget caps the resident (heap) bytes MemoryAuto may spend
	// decoding shards; ≤0 means "no heap, map everything".
	Budget int64
}

// ShardResidence records where one shard's serving structures live.
type ShardResidence uint8

const (
	// ResidenceHeap: decoded into private memory at open.
	ResidenceHeap ShardResidence = iota
	// ResidenceMapped: zero-copy view over the mapping, verified at open.
	ResidenceMapped
	// ResidenceLazy: view built — and CRC-verified — on first query.
	ResidenceLazy
)

func (sr ShardResidence) String() string {
	switch sr {
	case ResidenceHeap:
		return "heap"
	case ResidenceMapped:
		return "mapped"
	case ResidenceLazy:
		return "lazy"
	default:
		return fmt.Sprintf("ShardResidence(%d)", uint8(sr))
	}
}

// MemoryInfo reports what an index open actually did: the residence of
// each shard and the resulting split of IndexBytes into resident
// (private heap) and mapped (file-backed, shareable) bytes.
type MemoryInfo struct {
	Shards   []ShardResidence
	Resident int64
	Mapped   int64
}

// heapMemoryInfo summarizes a fully heap-loaded mapper.
func heapMemoryInfo(m *Mapper) MemoryInfo {
	var info MemoryInfo
	if m.sharded != nil {
		info.Shards = make([]ShardResidence, m.sharded.NumShards())
	} else if m.frozen != nil || m.table != nil {
		info.Shards = []ShardResidence{ResidenceHeap}
	}
	info.Resident, info.Mapped = m.IndexMemory()
	return info
}

// mappingCloser owns an index file mapping; Close releases it. It must
// not be closed while any mapper built over the mapping is still
// serving (the facade ties it to the mapper's lifetime).
type mappingCloser struct {
	data []byte
	once sync.Once
	err  error
}

func (mc *mappingCloser) Close() error {
	mc.once.Do(func() { mc.err = munmapFile(mc.data) })
	return mc.err
}

// OpenIndexFile loads an index from disk honoring a memory spec. See
// OpenIndexFileObserved.
func OpenIndexFile(path string, spec MemorySpec) (*Mapper, MemoryInfo, io.Closer, error) {
	return OpenIndexFileObserved(path, spec, nil)
}

// OpenIndexFileObserved loads the index at path honoring spec. A
// JEMIDX06 file under MemoryMMap or MemoryAuto (on a host with mmap)
// is mapped read-only and served in place; anything else — older
// formats, MemoryHeap, platforms without mmap, or a failed mapping —
// takes the streaming heap load. The returned closer, when non-nil,
// owns the mapping and must be closed after the mapper is done
// serving; sp, when non-nil, gets one child span per shard.
func OpenIndexFileObserved(path string, spec MemorySpec, sp *obs.Span) (*Mapper, MemoryInfo, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, MemoryInfo{}, nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		_ = f.Close()
		return nil, MemoryInfo{}, nil, fmt.Errorf("core: index %s: reading magic: %w", path, err)
	}
	if magic == indexMagicV6 && spec.Mode != MemoryHeap && mmapSupported {
		if st, serr := f.Stat(); serr == nil && st.Size() > 8 {
			if data, merr := mmapFile(f, st.Size()); merr == nil {
				m, info, err := buildMapped06(data, spec, sp)
				if err != nil {
					_ = munmapFile(data)
					_ = f.Close()
					return nil, MemoryInfo{}, nil, fmt.Errorf("core: index %s: %w", path, err)
				}
				// The mapping outlives the descriptor.
				_ = f.Close()
				if info.Mapped == 0 {
					// Every shard went to the heap; nothing references
					// the mapping, so release it now.
					_ = munmapFile(data)
					return m, info, nil, nil
				}
				return m, info, &mappingCloser{data: data}, nil
			}
			// mmap failed: fall through to the heap load.
		}
	}
	defer func() { _ = f.Close() }()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, MemoryInfo{}, nil, fmt.Errorf("core: index %s: %w", path, err)
	}
	m, err := ReadIndexObserved(f, sp)
	if err != nil {
		return nil, MemoryInfo{}, nil, fmt.Errorf("core: index %s: %w", path, err)
	}
	return m, heapMemoryInfo(m), nil, nil
}

// buildMapped06 builds a mapper over an mmap'd JEMIDX06 file: parse
// and verify the manifest, plan each shard's residence against the
// spec, then materialize eager shards in parallel (heap decodes and
// verified views) while lazy shards get load-on-demand slots that
// verify on first query.
func buildMapped06(data []byte, spec MemorySpec, sp *obs.Span) (*Mapper, MemoryInfo, error) {
	man, err := readShardedManifest(bufio.NewReader(bytes.NewReader(data[8:])), indexMagicV6)
	if err != nil {
		return nil, MemoryInfo{}, err
	}
	n := len(man.lens)
	for i := range man.lens {
		if end := man.offs[i] + man.lens[i]; end > uint64(len(data)) {
			return nil, MemoryInfo{}, fmt.Errorf("core: shard %d payload ends at %d but the file holds %d bytes: %w (%w)",
				i, end, len(data), errIndexTruncated, ErrIndexChecksum)
		}
	}
	res := planResidences(spec, man)
	eager := make([]*sketch.FrozenTable, n)
	lazy := make([]*sketch.LazyShard, n)
	errs := make([]error, n)
	parallel.ForEach(n, 0, func(i int) {
		payload := data[man.offs[i] : man.offs[i]+man.lens[i]]
		build := func() {
			switch res[i] {
			case ResidenceHeap:
				eager[i], errs[i] = decodeShardPayload06(i, payload, man.crcs[i])
			case ResidenceMapped:
				eager[i], errs[i] = viewShardPayload06(i, payload, man.crcs[i], false)
			case ResidenceLazy:
				// The directory peek only feeds accounting; a parse
				// failure surfaces at fault-in, where it can be
				// reported properly.
				_, entries, _ := sketch.FlatPayloadStats(payload)
				shard, crc := i, man.crcs[i]
				lazy[i] = sketch.NewLazyShard(int64(len(payload)), entries, func() (*sketch.FrozenTable, error) {
					return viewShardPayload06(shard, payload, crc, true)
				})
			}
		}
		if sp != nil {
			sp.Time(fmt.Sprintf("shard%d", i), build)
		} else {
			build()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, MemoryInfo{}, err
		}
	}
	m := man.m
	info := MemoryInfo{Shards: res}
	if n == 1 {
		if eager[0].T() != man.p.T {
			return nil, MemoryInfo{}, fmt.Errorf("core: frozen table has %d trials, params say %d", eager[0].T(), man.p.T)
		}
		m.frozen = eager[0]
		m.table = nil
		m.sealed = true
		info.Resident, info.Mapped = eager[0].ResidentBytes(), eager[0].MappedBytes()
		return m, info, nil
	}
	sf, err := sketch.NewLazyShardedFrozen(man.p.T, eager, lazy)
	if err != nil {
		return nil, MemoryInfo{}, fmt.Errorf("core: assembling sharded table: %w", err)
	}
	m.sharded = sf
	m.table = nil
	m.sealed = true
	info.Resident, info.Mapped = sf.ResidentBytes(), sf.MappedBytes()
	return m, info, nil
}

// planResidences decides each shard's residence. MemoryMMap — and
// MemoryAuto with no budget — map everything eagerly. MemoryAuto with
// a budget decodes shards onto the heap, in shard order, while the
// cumulative payload size fits, and leaves the rest load-on-demand (a
// shard not decoded is likely cold; paying its CRC pass only if it is
// ever queried is the out-of-core bargain). A single-shard index never
// goes lazy: the single-probe lookup path cannot surface a fault-in
// failure (see sketch.NewLazyShardedFrozen).
func planResidences(spec MemorySpec, man *shardedManifest) []ShardResidence {
	res := make([]ShardResidence, len(man.lens))
	if spec.Mode == MemoryMMap || spec.Budget <= 0 {
		for i := range res {
			res[i] = ResidenceMapped
		}
		return res
	}
	var resident int64
	for i := range res {
		if sz := int64(man.lens[i]); resident+sz <= spec.Budget {
			res[i] = ResidenceHeap
			resident += sz
		} else {
			res[i] = ResidenceLazy
		}
	}
	if len(res) == 1 && res[0] == ResidenceLazy {
		res[0] = ResidenceMapped
	}
	return res
}

// OpenShardSubset is ReadShardSubsetFile honoring a memory spec: on a
// JEMIDX06 index with Mode != MemoryHeap (and a host with mmap) the
// kept shards are served as zero-copy views over a shared read-only
// mapping — the jem-shardd fleet path, where every server mapping the
// same index file shares physical pages. Views are CRC-verified at
// open (a shard server has no lazy path; it will serve every kept
// shard). The returned closer, when non-nil, owns the mapping.
func OpenShardSubset(path string, keep func(shard int) bool, spec MemorySpec) (map[int]*sketch.FrozenTable, IndexMeta, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, IndexMeta{}, nil, err
	}
	var magic [8]byte
	if _, rerr := io.ReadFull(f, magic[:]); rerr == nil &&
		magic == indexMagicV6 && spec.Mode != MemoryHeap && mmapSupported {
		if st, serr := f.Stat(); serr == nil && st.Size() > 8 {
			if data, merr := mmapFile(f, st.Size()); merr == nil {
				tables, meta, berr := buildSubsetMapped06(data, keep)
				_ = f.Close()
				if berr != nil {
					_ = munmapFile(data)
					return nil, IndexMeta{}, nil, fmt.Errorf("core: index %s: %w", path, berr)
				}
				return tables, meta, &mappingCloser{data: data}, nil
			}
		}
	}
	_ = f.Close()
	tables, meta, err := ReadShardSubsetFile(path, keep)
	return tables, meta, nil, err
}

// buildSubsetMapped06 builds verified views for the kept shards of an
// mmap'd JEMIDX06 file.
func buildSubsetMapped06(data []byte, keep func(shard int) bool) (map[int]*sketch.FrozenTable, IndexMeta, error) {
	man, err := readShardedManifest(bufio.NewReader(bytes.NewReader(data[8:])), indexMagicV6)
	if err != nil {
		return nil, IndexMeta{}, err
	}
	var kept []int
	for i := range man.lens {
		if !keep(i) {
			continue
		}
		if end := man.offs[i] + man.lens[i]; end > uint64(len(data)) {
			return nil, IndexMeta{}, fmt.Errorf("core: shard %d payload ends at %d but the file holds %d bytes: %w (%w)",
				i, end, len(data), errIndexTruncated, ErrIndexChecksum)
		}
		kept = append(kept, i)
	}
	if len(kept) == 0 {
		return nil, IndexMeta{}, fmt.Errorf("core: shard selection keeps none of %d shards", len(man.lens))
	}
	decoded := make([]*sketch.FrozenTable, len(kept))
	decErrs := make([]error, len(kept))
	parallel.ForEach(len(kept), 0, func(j int) {
		i := kept[j]
		payload := data[man.offs[i] : man.offs[i]+man.lens[i]]
		decoded[j], decErrs[j] = viewShardPayload06(i, payload, man.crcs[i], false)
	})
	tables := make(map[int]*sketch.FrozenTable, len(kept))
	for j, err := range decErrs {
		if err != nil {
			return nil, IndexMeta{}, err
		}
		tables[kept[j]] = decoded[j]
	}
	return tables, man.meta(), nil
}
