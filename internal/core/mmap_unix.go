//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can serve an index from
// a read-only file mapping.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. MAP_SHARED (not
// PRIVATE) matters twice: fleet members mapping the same index file
// share one set of physical pages, and on-disk corruption that happens
// after the open is visible through the mapping — which is exactly
// what the lazy fault-in CRC verification exists to catch.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: cannot mmap %d bytes", size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("core: index size %d exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("core: mmap: %w", err)
	}
	return data, nil
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
