package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/seq"
)

// buildPair builds two mappers over the same contigs: one sealed
// monolithically, one sealed into p shards.
func buildPair(t *testing.T, contigs []seq.Record, p int) (mono, sharded *Mapper) {
	t.Helper()
	mono, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	mono.AddSubjects(contigs)
	mono.Seal()
	sharded, err = NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	sharded.AddSubjects(contigs)
	sharded.SealSharded(p, 0)
	if got := sharded.Shards(); got != p {
		t.Fatalf("Shards() = %d, want %d", got, p)
	}
	return mono, sharded
}

// TestShardedMappingEquivalence is the tentpole property: for several
// seeds and shard counts, every mapping primitive (plain, positional,
// top-k) returns identical results from the sharded and monolithic
// backends.
func TestShardedMappingEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 17, 99} {
		rng := rand.New(rand.NewSource(seed))
		_, contigs, reads, _ := makeWorld(t, rng, 20_000, 1000, 20)
		for _, p := range []int{1, 2, 3, 8} {
			mono, sharded := buildPair(t, contigs, p)
			wantRes := mono.MapReads(reads, smallParams().L, 2)
			gotRes := sharded.MapReads(reads, smallParams().L, 2)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("seed %d p=%d: MapReads diverges", seed, p)
			}
			ms, ss := mono.NewSession(), sharded.NewSession()
			for _, rd := range reads {
				seg := rd.Seq[:smallParams().L]
				wantPH, wantOK := ms.MapSegmentPositional(seg)
				gotPH, gotOK := ss.MapSegmentPositional(seg)
				if wantOK != gotOK || !reflect.DeepEqual(gotPH, wantPH) {
					t.Fatalf("seed %d p=%d: MapSegmentPositional diverges: %+v vs %+v", seed, p, gotPH, wantPH)
				}
				wantTop := ms.MapSegmentTopK(seg, 4)
				gotTop := ss.MapSegmentTopK(seg, 4)
				if !reflect.DeepEqual(gotTop, wantTop) {
					t.Fatalf("seed %d p=%d: MapSegmentTopK diverges: %v vs %v", seed, p, gotTop, wantTop)
				}
			}
			if ms.PostingsScanned() != ss.PostingsScanned() {
				t.Fatalf("seed %d p=%d: postings scanned differ: %d vs %d — sharding changed the work done",
					seed, p, ms.PostingsScanned(), ss.PostingsScanned())
			}
		}
	}
}

func TestSealShardedStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, contigs, _, _ := makeWorld(t, rng, 8_000, 1000, 1)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	m.SealSharded(4, 0)
	if !m.Sealed() || m.Sharded() == nil || m.Table() != nil {
		t.Fatalf("SealSharded left wrong state: sealed=%v sharded=%v", m.Sealed(), m.Sharded())
	}
	m.SealSharded(4, 0) // idempotent
	m.Seal()            // no-op on a sealed mapper
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d after re-seal, want 4", m.Shards())
	}

	frozen, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	frozen.AddSubjects(contigs)
	frozen.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("SealSharded on a monolithically sealed mapper did not panic")
		}
	}()
	frozen.SealSharded(2, 0)
}

// TestShardedMetricsSplitPostings checks the per-shard observability:
// the per-shard postings counters are registered and sum to the global
// postings counter.
func TestShardedMetricsSplitPostings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, contigs, reads, _ := makeWorld(t, rng, 12_000, 1000, 10)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.EnableMetrics(reg)
	m.AddSubjects(contigs)
	m.SealSharded(3, 0)
	met := m.Metrics()
	if len(met.ShardPostings) != 3 {
		t.Fatalf("ShardPostings has %d counters, want 3", len(met.ShardPostings))
	}
	sess := m.NewSession()
	for _, rd := range reads {
		sess.MapSegment(rd.Seq[:smallParams().L])
	}
	var perShard int64
	for _, c := range met.ShardPostings {
		perShard += c.Value()
	}
	if total := met.Postings.Value(); perShard != total || total == 0 {
		t.Fatalf("per-shard postings sum %d, global counter %d (want equal and non-zero)", perShard, total)
	}
}
