//go:build !unix

package core

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this platform can serve an index from
// a read-only file mapping. Non-unix builds fall back to heap loading;
// the memory-mode planner records the downgrade in MemoryInfo.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("core: mmap-backed index serving is not supported on this platform")
}

func munmapFile(data []byte) error { return nil }
