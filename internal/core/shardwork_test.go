package core

import (
	"math/rand"
	"testing"
)

// TestShardWorkAccounting pins the per-shard work tallies that request
// traces attribute scatter-gather time with: the per-shard postings
// counts always sum to the session total, wall time stays zero until
// EnableShardTiming opts in, and unsharded mappers report no shards.
func TestShardWorkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, contigs, reads, _ := makeWorld(t, rng, 20_000, 1000, 20)
	const p = 4
	mono, sharded := buildPair(t, contigs, p)

	// Unsharded mapper: no per-shard work, ever.
	ms := mono.NewSession()
	for _, rd := range reads {
		ms.MapSegment(rd.Seq[:smallParams().L])
	}
	if got := ms.ShardWork(); len(got) != 0 {
		t.Fatalf("unsharded session reports %d shards of work, want 0", len(got))
	}

	// Sharded, timing off: postings attributed per shard and summing to
	// the session total, walls all zero (the clock is never read).
	ss := sharded.NewSession()
	if got := ss.ShardWork(); len(got) != 0 {
		t.Fatalf("fresh session reports %d shards of work, want 0", len(got))
	}
	for _, rd := range reads {
		ss.MapSegment(rd.Seq[:smallParams().L])
	}
	work := ss.ShardWork()
	if len(work) != p {
		t.Fatalf("ShardWork() has %d entries, want %d", len(work), p)
	}
	var sum int64
	for i, w := range work {
		sum += w.Postings
		if w.Wall != 0 {
			t.Errorf("shard %d: wall %v without EnableShardTiming, want 0", i, w.Wall)
		}
	}
	if sum != ss.PostingsScanned() {
		t.Fatalf("per-shard postings sum %d != session total %d", sum, ss.PostingsScanned())
	}
	if sum == 0 {
		t.Fatal("no postings scanned — the fixture maps nothing, test is vacuous")
	}

	// Timing on: postings still reconcile and at least one shard
	// accumulated wall time.
	ts := sharded.NewSession()
	ts.EnableShardTiming()
	for _, rd := range reads {
		ts.MapSegment(rd.Seq[:smallParams().L])
	}
	twork := ts.ShardWork()
	sum = 0
	var wall int64
	for _, w := range twork {
		sum += w.Postings
		wall += int64(w.Wall)
	}
	if sum != ts.PostingsScanned() {
		t.Fatalf("timed per-shard postings sum %d != session total %d", sum, ts.PostingsScanned())
	}
	if wall <= 0 {
		t.Fatal("EnableShardTiming set but no shard accumulated wall time")
	}

	// The snapshot is a copy: mutating it must not corrupt the session.
	twork[0].Postings = -1
	if ts.ShardWork()[0].Postings == -1 {
		t.Fatal("ShardWork() returned the live slice, not a snapshot")
	}
}
