package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/minimizer"
	"repro/internal/sketch"
)

// Index format magics. JEMIDX03 adds a table-kind byte after the
// subject metadata so a sealed mapper serializes its frozen
// sorted-array table directly (and a distributed SetFrozen mapper no
// longer silently writes its empty mutable table — the bug JEMIDX02
// writers had). JEMIDX02 files remain readable: their body is the
// mutable-table encoding with no kind byte.
var (
	indexMagic       = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '3'}
	indexMagicLegacy = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '2'}
)

// Table-kind byte values in a JEMIDX03 body.
const (
	tableKindMutable = 0 // sketch.Table.Encode format
	tableKindFrozen  = 1 // sketch.FrozenTable.Encode format
)

// WriteIndex serializes the mapper — sketch parameters, subject
// metadata and the ACTIVE sketch table — so an index built once can be
// reused across runs (jem-mapper -save-index / -load-index). The
// active table is the frozen one when Seal or SetFrozen installed it,
// and the mutable hash table otherwise. The format is little-endian
// binary, stable across platforms.
func (m *Mapper) WriteIndex(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	p := m.sk.Params()
	for _, v := range []uint64{
		uint64(p.K), uint64(p.W), uint64(p.T), uint64(p.L),
		uint64(p.Seed), uint64(p.Order),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.subjects))); err != nil {
		return err
	}
	for _, s := range m.subjects {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(s.Length)); err != nil {
			return err
		}
	}
	if m.frozen != nil {
		if err := bw.WriteByte(tableKindFrozen); err != nil {
			return err
		}
		if err := m.frozen.Encode(bw); err != nil {
			return err
		}
	} else {
		if err := bw.WriteByte(tableKindMutable); err != nil {
			return err
		}
		if err := m.table.Encode(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIndex deserializes a mapper previously written by WriteIndex.
// Both the current JEMIDX03 format and legacy JEMIDX02 files are
// accepted. A frozen-table index loads as a sealed mapper.
func ReadIndex(r io.Reader) (*Mapper, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	legacy := magic == indexMagicLegacy
	if magic != indexMagic && !legacy {
		return nil, fmt.Errorf("core: not a JEM index (magic %q)", magic[:])
	}
	var raw [6]uint64
	for i := range raw {
		if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
			return nil, fmt.Errorf("core: reading index params: %w", err)
		}
	}
	p := sketch.Params{
		K: int(raw[0]), W: int(raw[1]), T: int(raw[2]), L: int(raw[3]),
		Seed: int64(raw[4]),
	}
	p.Order = minimizer.Ordering(raw[5])
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: index carries invalid params: %w", err)
	}
	m, err := NewMapper(p)
	if err != nil {
		return nil, err
	}
	var nsubj uint32
	if err := binary.Read(br, binary.LittleEndian, &nsubj); err != nil {
		return nil, err
	}
	if nsubj > 1<<28 {
		return nil, fmt.Errorf("core: implausible subject count %d", nsubj)
	}
	m.subjects = make([]SubjectMeta, 0, min32(nsubj, 1<<16))
	for i := uint32(0); i < nsubj; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("core: implausible subject name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var length uint32
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		m.subjects = append(m.subjects, SubjectMeta{Name: string(name), Length: int32(length)})
	}
	kind := byte(tableKindMutable)
	if !legacy {
		kind, err = br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading table kind: %w", err)
		}
	}
	switch kind {
	case tableKindMutable:
		tbl, err := sketch.DecodeTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding sketch table: %w", err)
		}
		if tbl.T() != p.T {
			return nil, fmt.Errorf("core: table has %d trials, params say %d", tbl.T(), p.T)
		}
		m.table = tbl
	case tableKindFrozen:
		ft, err := sketch.DecodeFrozenTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding frozen sketch table: %w", err)
		}
		if ft.T() != p.T {
			return nil, fmt.Errorf("core: frozen table has %d trials, params say %d", ft.T(), p.T)
		}
		m.frozen = ft
		m.table = nil
		m.sealed = true
	default:
		return nil, fmt.Errorf("core: unknown table kind %d", kind)
	}
	return m, nil
}

func min32(a uint32, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}
