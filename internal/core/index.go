package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/minimizer"
	"repro/internal/sketch"
)

// indexMagic identifies a serialized mapper index; the version is
// bumped on any format change.
var indexMagic = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '2'}

// WriteIndex serializes the mapper — sketch parameters, subject
// metadata and the sketch table — so an index built once can be reused
// across runs (jem-mapper -save-index / -load-index). The format is
// little-endian binary, stable across platforms.
func (m *Mapper) WriteIndex(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	p := m.sk.Params()
	for _, v := range []uint64{
		uint64(p.K), uint64(p.W), uint64(p.T), uint64(p.L),
		uint64(p.Seed), uint64(p.Order),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.subjects))); err != nil {
		return err
	}
	for _, s := range m.subjects {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(s.Length)); err != nil {
			return err
		}
	}
	if err := m.table.Encode(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadIndex deserializes a mapper previously written by WriteIndex.
func ReadIndex(r io.Reader) (*Mapper, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: not a JEM index (magic %q)", magic[:])
	}
	var raw [6]uint64
	for i := range raw {
		if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
			return nil, fmt.Errorf("core: reading index params: %w", err)
		}
	}
	p := sketch.Params{
		K: int(raw[0]), W: int(raw[1]), T: int(raw[2]), L: int(raw[3]),
		Seed: int64(raw[4]),
	}
	p.Order = minimizer.Ordering(raw[5])
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: index carries invalid params: %w", err)
	}
	m, err := NewMapper(p)
	if err != nil {
		return nil, err
	}
	var nsubj uint32
	if err := binary.Read(br, binary.LittleEndian, &nsubj); err != nil {
		return nil, err
	}
	if nsubj > 1<<28 {
		return nil, fmt.Errorf("core: implausible subject count %d", nsubj)
	}
	m.subjects = make([]SubjectMeta, 0, min32(nsubj, 1<<16))
	for i := uint32(0); i < nsubj; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("core: implausible subject name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var length uint32
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		m.subjects = append(m.subjects, SubjectMeta{Name: string(name), Length: int32(length)})
	}
	tbl, err := sketch.DecodeTable(br)
	if err != nil {
		return nil, fmt.Errorf("core: decoding sketch table: %w", err)
	}
	if tbl.T() != p.T {
		return nil, fmt.Errorf("core: table has %d trials, params say %d", tbl.T(), p.T)
	}
	m.table = tbl
	return m, nil
}

func min32(a uint32, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}
