package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/minimizer"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sketch"
)

// Index format magics. JEMIDX06 is the out-of-core sharded layout: the
// JEMIDX05-style CRC-footed manifest additionally records a page size
// and a per-shard absolute file offset, every shard payload is
// page-aligned and encoded in the flat (offset-table) frozen layout,
// so shards can be served directly from a read-only mmap of the index
// file — zero-copy, faulted in per shard, pages shared across
// processes. JEMIDX05 is the prior sharded layout: the same manifest
// without offsets, followed by the concatenated per-shard streaming
// payloads, so shards verify and decode in parallel and a load can
// pinpoint WHICH shard is corrupt. JEMIDX04 appends a CRC32 (IEEE)
// footer over everything before it (magic + body), so on-disk
// corruption — a flipped bit, a truncated tail, a partial overwrite —
// is detected at load time instead of silently serving wrong mappings.
// JEMIDX03 added the table-kind byte after the subject metadata so a
// sealed mapper serializes its frozen sorted-array table directly;
// JEMIDX02 bodies are the mutable-table encoding with no kind byte.
// Every older format remains readable (03/02 without checksum
// protection); sealed mappers write JEMIDX06.
var (
	indexMagicV6      = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '6'}
	indexMagicV5      = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '5'}
	indexMagic        = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '4'}
	indexMagicV3      = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '3'}
	indexMagicLegacy  = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '2'}
	errIndexTruncated = errors.New("core: index truncated: missing checksum footer")
)

// maxShardPayload bounds a single shard's serialized size as declared
// by an untrusted manifest; payloads are read with io.CopyN so a
// corrupt length fails at EOF rather than driving a giant allocation.
const maxShardPayload = 1 << 36

// ErrIndexChecksum marks a JEMIDX04 index whose body does not match
// its checksum footer — the file was corrupted after it was written.
// Callers holding the original contigs can detect this with errors.Is
// and rebuild the index from scratch.
var ErrIndexChecksum = errors.New("core: index checksum mismatch")

// Table-kind byte values in a JEMIDX03+ body.
const (
	tableKindMutable = 0 // sketch.Table.Encode format
	tableKindFrozen  = 1 // sketch.FrozenTable.Encode format
)

// WriteIndex serializes the mapper — sketch parameters, subject
// metadata and the ACTIVE sketch table — so an index built once can be
// reused across runs (jem-mapper -save-index / -load-index). A sealed
// mapper (frozen or sharded table) writes the JEMIDX06 out-of-core
// layout: page-aligned flat shard payloads a reader can serve straight
// from a read-only mmap. An unsealed mapper writes its mutable hash
// table in the JEMIDX04 layout. Both formats are little-endian binary,
// stable across platforms, and checksum-protected.
func (m *Mapper) WriteIndex(w io.Writer) error {
	if m.sharded != nil || m.frozen != nil {
		return m.writeIndex06(w)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	// Everything except the footer itself feeds the checksum; the
	// MultiWriter keeps hashing off the encoder code paths entirely.
	h := crc32.NewIEEE()
	hw := io.MultiWriter(bw, h)
	if _, err := hw.Write(indexMagic[:]); err != nil {
		return err
	}
	if err := m.writeIndexBody(hw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeIndexMeta encodes the params and subject metadata shared by the
// JEMIDX04 body and the JEMIDX05 manifest.
func (m *Mapper) writeIndexMeta(w io.Writer) error {
	p := m.sk.Params()
	for _, v := range []uint64{
		uint64(p.K), uint64(p.W), uint64(p.T), uint64(p.L),
		uint64(p.Seed), uint64(p.Order),
	} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.subjects))); err != nil {
		return err
	}
	for _, s := range m.subjects {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(s.Length)); err != nil {
			return err
		}
	}
	return nil
}

// writeIndexBody encodes params, subject metadata, table-kind byte and
// the active table — the checksummed payload between magic and footer.
func (m *Mapper) writeIndexBody(w io.Writer) error {
	if err := m.writeIndexMeta(w); err != nil {
		return err
	}
	if m.frozen != nil {
		if _, err := w.Write([]byte{tableKindFrozen}); err != nil {
			return err
		}
		return m.frozen.Encode(w)
	}
	if _, err := w.Write([]byte{tableKindMutable}); err != nil {
		return err
	}
	return m.table.Encode(w)
}

// writeShardedIndexV5 emits the JEMIDX05 layout:
//
//	magic "JEMIDX05"
//	manifest: params (6×u64), subjects, shard count (u32),
//	          per shard {payload length u64, payload CRC32 u32}
//	manifest CRC32 (u32, over magic+manifest)
//	per-shard payloads (FrozenTable.Encode), concatenated
//
// Shard payloads are encoded concurrently; the manifest's per-shard
// CRCs let the loader verify and decode shards in parallel and report
// exactly which shard a corruption hit.
//
// New indexes are written as JEMIDX06 (writeIndex06); this writer is
// retained so compatibility tests can produce real V5 files.
func (m *Mapper) writeShardedIndexV5(w io.Writer) error {
	sf := m.sharded
	n := sf.NumShards()
	payloads := make([][]byte, n)
	encErrs := make([]error, n)
	parallel.ForEach(n, 0, func(i int) {
		var buf bytes.Buffer
		encErrs[i] = sf.Shard(i).Encode(&buf)
		payloads[i] = buf.Bytes()
	})
	for i, err := range encErrs {
		if err != nil {
			return fmt.Errorf("core: encoding shard %d: %w", i, err)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	h := crc32.NewIEEE()
	hw := io.MultiWriter(bw, h)
	if _, err := hw.Write(indexMagicV5[:]); err != nil {
		return err
	}
	if err := m.writeIndexMeta(hw); err != nil {
		return err
	}
	if err := binary.Write(hw, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	for _, pl := range payloads {
		if err := binary.Write(hw, binary.LittleEndian, uint64(len(pl))); err != nil {
			return err
		}
		if err := binary.Write(hw, binary.LittleEndian, crc32.ChecksumIEEE(pl)); err != nil {
			return err
		}
	}
	// The manifest footer is NOT part of its own checksum.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	for _, pl := range payloads {
		if _, err := bw.Write(pl); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteIndexFile writes the index to path atomically: the bytes go to
// a temporary file in the same directory, are synced to stable
// storage, and only then renamed over path. A crash, disk-full error
// or kill mid-write leaves either the old file or no file — never a
// partial index that a later run would try to serve.
func (m *Mapper) WriteIndexFile(path string) (retErr error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			_ = os.Remove(tmp.Name())
		}
	}()
	// fault.Writer lets tests inject ENOSPC/stalls into the index write
	// path; it is the identity when no fault is armed.
	if err := m.WriteIndex(fault.Writer(tmp)); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// IndexByteFlip corrupts the fully written temp file before the
	// rename — the scenario the JEMIDX04 checksum exists to catch.
	if _, ok := fault.Fire(fault.IndexByteFlip); ok {
		if err := fault.FlipFileByte(tmp.Name()); err != nil {
			return err
		}
	}
	return os.Rename(tmp.Name(), path)
}

// ReadIndex deserializes a mapper previously written by WriteIndex.
// JEMIDX05 (sharded) and JEMIDX04 are checksum-verified before any
// decoding (a mismatch returns an error wrapping ErrIndexChecksum);
// legacy JEMIDX03 and JEMIDX02 files are accepted without
// verification. A frozen- or sharded-table index loads as a sealed
// mapper.
func ReadIndex(r io.Reader) (*Mapper, error) {
	return ReadIndexObserved(r, nil)
}

// ReadIndexObserved is ReadIndex with an optional span under which the
// per-shard decodes of a JEMIDX05 index are timed (one child span per
// shard); sp may be nil.
func ReadIndexObserved(r io.Reader, sp *obs.Span) (*Mapper, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	switch magic {
	case indexMagicV6:
		return readSharded06(br, sp)
	case indexMagicV5:
		return readShardedIndex(br, sp)
	case indexMagic:
		// Verify the footer before decoding anything: buffer the rest of
		// the stream (the decoded table dwarfs the file, so this does not
		// change the memory high-water mark), split off the 4-byte CRC,
		// and compare against the hash of magic+body.
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading index: %w", err)
		}
		if len(rest) < 4 {
			return nil, errIndexTruncated
		}
		body, footer := rest[:len(rest)-4], rest[len(rest)-4:]
		want := binary.LittleEndian.Uint32(footer)
		got := crc32.Update(crc32.ChecksumIEEE(magic[:]), crc32.IEEETable, body)
		if got != want {
			return nil, fmt.Errorf("%w: computed %08x, footer says %08x", ErrIndexChecksum, got, want)
		}
		return readIndexBody(bufio.NewReader(bytes.NewReader(body)), false)
	case indexMagicV3:
		return readIndexBody(br, false)
	case indexMagicLegacy:
		return readIndexBody(br, true)
	default:
		return nil, fmt.Errorf("core: not a JEM index (magic %q)", magic[:])
	}
}

// readIndexMeta decodes the params and subject metadata shared by the
// JEMIDX04 body and the JEMIDX05 manifest, returning a fresh mapper
// carrying them. It reads exact lengths only (no lookahead), so it is
// safe to run through a checksumming TeeReader.
func readIndexMeta(r io.Reader) (*Mapper, sketch.Params, error) {
	var raw [6]uint64
	for i := range raw {
		if err := binary.Read(r, binary.LittleEndian, &raw[i]); err != nil {
			return nil, sketch.Params{}, fmt.Errorf("core: reading index params: %w", err)
		}
	}
	p := sketch.Params{
		K: int(raw[0]), W: int(raw[1]), T: int(raw[2]), L: int(raw[3]),
		Seed: int64(raw[4]),
	}
	p.Order = minimizer.Ordering(raw[5])
	if err := p.Validate(); err != nil {
		return nil, p, fmt.Errorf("core: index carries invalid params: %w", err)
	}
	m, err := NewMapper(p)
	if err != nil {
		return nil, p, err
	}
	var nsubj uint32
	if err := binary.Read(r, binary.LittleEndian, &nsubj); err != nil {
		return nil, p, err
	}
	if nsubj > 1<<28 {
		return nil, p, fmt.Errorf("core: implausible subject count %d", nsubj)
	}
	m.subjects = make([]SubjectMeta, 0, min32(nsubj, 1<<16))
	for i := uint32(0); i < nsubj; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, p, err
		}
		if nameLen > 1<<16 {
			return nil, p, fmt.Errorf("core: implausible subject name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, p, err
		}
		var length uint32
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return nil, p, err
		}
		m.subjects = append(m.subjects, SubjectMeta{Name: string(name), Length: int32(length)})
	}
	return m, p, nil
}

// readIndexBody decodes the params/subjects/table payload shared by
// the pre-sharding format versions. legacy selects the JEMIDX02 body,
// which lacks the table-kind byte.
func readIndexBody(br *bufio.Reader, legacy bool) (*Mapper, error) {
	m, p, err := readIndexMeta(br)
	if err != nil {
		return nil, err
	}
	kind := byte(tableKindMutable)
	if !legacy {
		kind, err = br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading table kind: %w", err)
		}
	}
	switch kind {
	case tableKindMutable:
		tbl, err := sketch.DecodeTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding sketch table: %w", err)
		}
		if tbl.T() != p.T {
			return nil, fmt.Errorf("core: table has %d trials, params say %d", tbl.T(), p.T)
		}
		m.table = tbl
	case tableKindFrozen:
		ft, err := sketch.DecodeFrozenTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding frozen sketch table: %w", err)
		}
		if ft.T() != p.T {
			return nil, fmt.Errorf("core: frozen table has %d trials, params say %d", ft.T(), p.T)
		}
		m.frozen = ft
		m.table = nil
		m.sealed = true
	default:
		return nil, fmt.Errorf("core: unknown table kind %d", kind)
	}
	return m, nil
}

// shardedManifest is a decoded, checksum-verified JEMIDX05/06
// manifest: the meta-only mapper carrying params and subjects, the
// shard directory, and the manifest checksum — which doubles as the
// index fingerprint a distributed fleet agrees on (see IndexMeta).
// offs, page and end are populated only for JEMIDX06, whose directory
// carries an absolute file offset per shard so payloads can be
// addressed in place (offs is nil for V5, where payloads are simply
// concatenated after the footer).
type shardedManifest struct {
	m           *Mapper
	p           sketch.Params
	lens        []uint64
	crcs        []uint32
	offs        []uint64 // V6 only: absolute file offset per payload
	page        uint32   // V6 only: payload alignment the writer used
	end         int64    // V6 only: file offset just past the footer
	manifestCRC uint32
}

// meta projects the manifest onto its distributed-serving identity.
func (man *shardedManifest) meta() IndexMeta {
	return IndexMeta{
		Shards:      len(man.lens),
		T:           man.p.T,
		NumSubjects: len(man.m.subjects),
		ManifestCRC: man.manifestCRC,
	}
}

// countingReader counts the bytes consumed from the underlying reader
// so the manifest reader can report where in the file the manifest
// ends (the V6 directory offsets are absolute and must land past it).
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// readShardedManifest decodes a JEMIDX05 or JEMIDX06 manifest after
// its magic, reading through a checksumming tee and verifying the
// footer before any directory entry is trusted. The magic selects the
// directory shape: V6 adds a payload page size after the shard count
// and an absolute file offset per shard entry. On return the stream is
// positioned just past the manifest footer.
func readShardedManifest(br *bufio.Reader, magic [8]byte) (*shardedManifest, error) {
	v6 := magic == indexMagicV6
	h := crc32.NewIEEE()
	_, _ = h.Write(magic[:])
	cr := &countingReader{r: br}
	tee := io.TeeReader(cr, h)
	m, p, err := readIndexMeta(tee)
	if err != nil {
		return nil, err
	}
	var nshards uint32
	if err := binary.Read(tee, binary.LittleEndian, &nshards); err != nil {
		return nil, fmt.Errorf("core: reading shard count: %w", err)
	}
	if nshards == 0 || nshards > sketch.MaxShards {
		return nil, fmt.Errorf("core: implausible shard count %d", nshards)
	}
	var page uint32
	if v6 {
		if err := binary.Read(tee, binary.LittleEndian, &page); err != nil {
			return nil, fmt.Errorf("core: reading payload page size: %w", err)
		}
		if page == 0 || page&(page-1) != 0 || page > 1<<22 {
			return nil, fmt.Errorf("core: implausible payload page size %d", page)
		}
	}
	lens := make([]uint64, nshards)
	crcs := make([]uint32, nshards)
	var offs []uint64
	if v6 {
		offs = make([]uint64, nshards)
	}
	for i := range lens {
		if v6 {
			if err := binary.Read(tee, binary.LittleEndian, &offs[i]); err != nil {
				return nil, fmt.Errorf("core: reading shard %d directory entry: %w", i, err)
			}
		}
		if err := binary.Read(tee, binary.LittleEndian, &lens[i]); err != nil {
			return nil, fmt.Errorf("core: reading shard %d directory entry: %w", i, err)
		}
		if err := binary.Read(tee, binary.LittleEndian, &crcs[i]); err != nil {
			return nil, fmt.Errorf("core: reading shard %d directory entry: %w", i, err)
		}
		if lens[i] > maxShardPayload {
			return nil, fmt.Errorf("core: implausible shard %d payload length %d", i, lens[i])
		}
	}
	want := h.Sum32()
	var footer uint32
	// The footer is read off cr directly: counted, but it must not feed
	// the hash.
	if err := binary.Read(cr, binary.LittleEndian, &footer); err != nil {
		return nil, fmt.Errorf("core: reading manifest checksum: %w", err)
	}
	if want != footer {
		return nil, fmt.Errorf("%w: manifest computed %08x, footer says %08x", ErrIndexChecksum, want, footer)
	}
	man := &shardedManifest{m: m, p: p, lens: lens, crcs: crcs, offs: offs, page: page, manifestCRC: want}
	if v6 {
		man.end = 8 + cr.n // magic is consumed before the counter starts
		prev := uint64(man.end)
		for i, off := range offs {
			if off%8 != 0 {
				return nil, fmt.Errorf("core: shard %d payload offset %d is not 8-aligned", i, off)
			}
			if off < prev {
				return nil, fmt.Errorf("core: shard %d payload offset %d overlaps preceding data ending at %d", i, off, prev)
			}
			prev = off + lens[i]
		}
	}
	return man, nil
}

// readShardedIndex decodes a JEMIDX05 stream after its magic: the
// manifest is read through a checksumming tee and verified against its
// footer before any payload byte is trusted, then the shard payloads
// are read sequentially off the stream and CRC-verified + decoded in
// parallel. Every corruption path reports an error wrapping
// ErrIndexChecksum (so load-or-rebuild callers can detect it) and
// names the shard it hit.
func readShardedIndex(br *bufio.Reader, sp *obs.Span) (*Mapper, error) {
	man, err := readShardedManifest(br, indexMagicV5)
	if err != nil {
		return nil, err
	}
	m, p, lens, crcs := man.m, man.p, man.lens, man.crcs
	nshards := len(lens)
	// The manifest is now trusted; pull each payload off the stream.
	// io.CopyN grows the buffer with bytes actually read, so a length
	// beyond the file ends in a truncation error, not an allocation.
	payloads := make([][]byte, nshards)
	for i := range payloads {
		var buf bytes.Buffer
		n, err := io.CopyN(&buf, br, int64(lens[i]))
		if err == io.EOF && n < int64(lens[i]) {
			return nil, fmt.Errorf("core: shard %d payload truncated (%d of %d bytes): %w (%w)",
				i, n, lens[i], errIndexTruncated, ErrIndexChecksum)
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading shard %d payload: %w", i, err)
		}
		payloads[i] = buf.Bytes()
	}
	shards := make([]*sketch.FrozenTable, nshards)
	decErrs := make([]error, nshards)
	parallel.ForEach(nshards, 0, func(i int) {
		if sp != nil {
			sp.Time(fmt.Sprintf("shard%d", i), func() {
				shards[i], decErrs[i] = decodeShardPayload(i, payloads[i], crcs[i])
			})
			return
		}
		shards[i], decErrs[i] = decodeShardPayload(i, payloads[i], crcs[i])
	})
	for _, err := range decErrs {
		if err != nil {
			return nil, err
		}
	}
	sf, err := sketch.NewShardedFrozen(shards)
	if err != nil {
		return nil, fmt.Errorf("core: assembling sharded table: %w", err)
	}
	if sf.T() != p.T {
		return nil, fmt.Errorf("core: sharded table has %d trials, params say %d", sf.T(), p.T)
	}
	m.sharded = sf
	m.table = nil
	m.sealed = true
	return m, nil
}

// decodeShardPayload verifies one shard payload against its manifest
// CRC and decodes it. Runs on a worker goroutine per shard.
func decodeShardPayload(i int, payload []byte, wantCRC uint32) (*sketch.FrozenTable, error) {
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: shard %d computed %08x, manifest says %08x", ErrIndexChecksum, i, got, wantCRC)
	}
	ft, err := sketch.DecodeFrozenTable(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("core: decoding shard %d: %w", i, err)
	}
	return ft, nil
}

// ReadIndexFile loads an index from disk via ReadIndex.
func ReadIndexFile(path string) (*Mapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadIndex(f)
	if err != nil {
		return nil, fmt.Errorf("core: index %s: %w", path, err)
	}
	return m, nil
}

func min32(a uint32, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}
