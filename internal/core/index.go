package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/minimizer"
	"repro/internal/sketch"
)

// Index format magics. JEMIDX04 appends a CRC32 (IEEE) footer over
// everything before it (magic + body), so on-disk corruption — a
// flipped bit, a truncated tail, a partial overwrite — is detected at
// load time instead of silently serving wrong mappings. JEMIDX03 added
// the table-kind byte after the subject metadata so a sealed mapper
// serializes its frozen sorted-array table directly; JEMIDX02 bodies
// are the mutable-table encoding with no kind byte. Both legacy
// formats remain readable (without checksum protection).
var (
	indexMagic        = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '4'}
	indexMagicV3      = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '3'}
	indexMagicLegacy  = [8]byte{'J', 'E', 'M', 'I', 'D', 'X', '0', '2'}
	errIndexTruncated = errors.New("core: index truncated: missing checksum footer")
)

// ErrIndexChecksum marks a JEMIDX04 index whose body does not match
// its checksum footer — the file was corrupted after it was written.
// Callers holding the original contigs can detect this with errors.Is
// and rebuild the index from scratch.
var ErrIndexChecksum = errors.New("core: index checksum mismatch")

// Table-kind byte values in a JEMIDX03+ body.
const (
	tableKindMutable = 0 // sketch.Table.Encode format
	tableKindFrozen  = 1 // sketch.FrozenTable.Encode format
)

// WriteIndex serializes the mapper — sketch parameters, subject
// metadata and the ACTIVE sketch table — so an index built once can be
// reused across runs (jem-mapper -save-index / -load-index). The
// active table is the frozen one when Seal or SetFrozen installed it,
// and the mutable hash table otherwise. The format is little-endian
// binary, stable across platforms, and ends with a CRC32 footer over
// the whole preceding byte stream.
func (m *Mapper) WriteIndex(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	// Everything except the footer itself feeds the checksum; the
	// MultiWriter keeps hashing off the encoder code paths entirely.
	h := crc32.NewIEEE()
	hw := io.MultiWriter(bw, h)
	if _, err := hw.Write(indexMagic[:]); err != nil {
		return err
	}
	if err := m.writeIndexBody(hw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeIndexBody encodes params, subject metadata, table-kind byte and
// the active table — the checksummed payload between magic and footer.
func (m *Mapper) writeIndexBody(w io.Writer) error {
	p := m.sk.Params()
	for _, v := range []uint64{
		uint64(p.K), uint64(p.W), uint64(p.T), uint64(p.L),
		uint64(p.Seed), uint64(p.Order),
	} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.subjects))); err != nil {
		return err
	}
	for _, s := range m.subjects {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(s.Length)); err != nil {
			return err
		}
	}
	if m.frozen != nil {
		if _, err := w.Write([]byte{tableKindFrozen}); err != nil {
			return err
		}
		return m.frozen.Encode(w)
	}
	if _, err := w.Write([]byte{tableKindMutable}); err != nil {
		return err
	}
	return m.table.Encode(w)
}

// WriteIndexFile writes the index to path atomically: the bytes go to
// a temporary file in the same directory, are synced to stable
// storage, and only then renamed over path. A crash, disk-full error
// or kill mid-write leaves either the old file or no file — never a
// partial index that a later run would try to serve.
func (m *Mapper) WriteIndexFile(path string) (retErr error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			_ = os.Remove(tmp.Name())
		}
	}()
	// fault.Writer lets tests inject ENOSPC/stalls into the index write
	// path; it is the identity when no fault is armed.
	if err := m.WriteIndex(fault.Writer(tmp)); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// IndexByteFlip corrupts the fully written temp file before the
	// rename — the scenario the JEMIDX04 checksum exists to catch.
	if _, ok := fault.Fire(fault.IndexByteFlip); ok {
		if err := fault.FlipFileByte(tmp.Name()); err != nil {
			return err
		}
	}
	return os.Rename(tmp.Name(), path)
}

// ReadIndex deserializes a mapper previously written by WriteIndex.
// The current JEMIDX04 format is checksum-verified before any decoding
// (a mismatch returns an error wrapping ErrIndexChecksum); legacy
// JEMIDX03 and JEMIDX02 files are accepted without verification. A
// frozen-table index loads as a sealed mapper.
func ReadIndex(r io.Reader) (*Mapper, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	switch magic {
	case indexMagic:
		// Verify the footer before decoding anything: buffer the rest of
		// the stream (the decoded table dwarfs the file, so this does not
		// change the memory high-water mark), split off the 4-byte CRC,
		// and compare against the hash of magic+body.
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading index: %w", err)
		}
		if len(rest) < 4 {
			return nil, errIndexTruncated
		}
		body, footer := rest[:len(rest)-4], rest[len(rest)-4:]
		want := binary.LittleEndian.Uint32(footer)
		got := crc32.Update(crc32.ChecksumIEEE(magic[:]), crc32.IEEETable, body)
		if got != want {
			return nil, fmt.Errorf("%w: computed %08x, footer says %08x", ErrIndexChecksum, got, want)
		}
		return readIndexBody(bufio.NewReader(bytes.NewReader(body)), false)
	case indexMagicV3:
		return readIndexBody(br, false)
	case indexMagicLegacy:
		return readIndexBody(br, true)
	default:
		return nil, fmt.Errorf("core: not a JEM index (magic %q)", magic[:])
	}
}

// readIndexBody decodes the params/subjects/table payload shared by
// every format version. legacy selects the JEMIDX02 body, which lacks
// the table-kind byte.
func readIndexBody(br *bufio.Reader, legacy bool) (*Mapper, error) {
	var raw [6]uint64
	for i := range raw {
		if err := binary.Read(br, binary.LittleEndian, &raw[i]); err != nil {
			return nil, fmt.Errorf("core: reading index params: %w", err)
		}
	}
	p := sketch.Params{
		K: int(raw[0]), W: int(raw[1]), T: int(raw[2]), L: int(raw[3]),
		Seed: int64(raw[4]),
	}
	p.Order = minimizer.Ordering(raw[5])
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: index carries invalid params: %w", err)
	}
	m, err := NewMapper(p)
	if err != nil {
		return nil, err
	}
	var nsubj uint32
	if err := binary.Read(br, binary.LittleEndian, &nsubj); err != nil {
		return nil, err
	}
	if nsubj > 1<<28 {
		return nil, fmt.Errorf("core: implausible subject count %d", nsubj)
	}
	m.subjects = make([]SubjectMeta, 0, min32(nsubj, 1<<16))
	for i := uint32(0); i < nsubj; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("core: implausible subject name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var length uint32
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		m.subjects = append(m.subjects, SubjectMeta{Name: string(name), Length: int32(length)})
	}
	kind := byte(tableKindMutable)
	if !legacy {
		kind, err = br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading table kind: %w", err)
		}
	}
	switch kind {
	case tableKindMutable:
		tbl, err := sketch.DecodeTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding sketch table: %w", err)
		}
		if tbl.T() != p.T {
			return nil, fmt.Errorf("core: table has %d trials, params say %d", tbl.T(), p.T)
		}
		m.table = tbl
	case tableKindFrozen:
		ft, err := sketch.DecodeFrozenTable(br)
		if err != nil {
			return nil, fmt.Errorf("core: decoding frozen sketch table: %w", err)
		}
		if ft.T() != p.T {
			return nil, fmt.Errorf("core: frozen table has %d trials, params say %d", ft.T(), p.T)
		}
		m.frozen = ft
		m.table = nil
		m.sealed = true
	default:
		return nil, fmt.Errorf("core: unknown table kind %d", kind)
	}
	return m, nil
}

// ReadIndexFile loads an index from disk via ReadIndex.
func ReadIndexFile(path string) (*Mapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadIndex(f)
	if err != nil {
		return nil, fmt.Errorf("core: index %s: %w", path, err)
	}
	return m, nil
}

func min32(a uint32, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}
