package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/minimizer"
	"repro/internal/seq"
	"repro/internal/sketch"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func smallParams() sketch.Params {
	return sketch.Params{K: 8, W: 4, T: 8, L: 200, Seed: 3}
}

// makeWorld builds a toy reference, carves contigs from it, and
// samples error-free reads so every segment has an unambiguous best
// contig.
func makeWorld(t *testing.T, rng *rand.Rand, refLen, contigLen, nReads int) (ref []byte, contigs []seq.Record, reads []seq.Record, origin []int) {
	t.Helper()
	ref = randDNA(rng, refLen)
	for pos := 0; pos+contigLen <= refLen; pos += contigLen {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("c%d", len(contigs)),
			Seq: ref[pos : pos+contigLen],
		})
	}
	p := smallParams()
	readLen := 3 * p.L
	for i := 0; i < nReads; i++ {
		pos := rng.Intn(refLen - readLen)
		reads = append(reads, seq.Record{
			ID:  fmt.Sprintf("r%d", i),
			Seq: ref[pos : pos+readLen],
		})
		origin = append(origin, pos)
	}
	return ref, contigs, reads, origin
}

func TestEndSegments(t *testing.T) {
	read := []byte("ACGTACGTACGT") // 12 bases
	segs, kinds := EndSegments(read, 5)
	if len(segs) != 2 || len(kinds) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	if string(segs[0]) != "ACGTA" || kinds[0] != Prefix {
		t.Errorf("prefix = %q %v", segs[0], kinds[0])
	}
	if string(segs[1]) != "TACGT" || kinds[1] != Suffix {
		t.Errorf("suffix = %q %v", segs[1], kinds[1])
	}
	// Short read: single segment.
	segs, kinds = EndSegments(read, 12)
	if len(segs) != 1 || kinds[0] != Prefix || string(segs[0]) != string(read) {
		t.Errorf("short read: %q %v", segs[0], kinds)
	}
	segs, _ = EndSegments(read, 100)
	if len(segs) != 1 {
		t.Errorf("l > len: %d segments", len(segs))
	}
}

func TestMapSegmentFindsOriginContig(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, contigs, reads, origin := makeWorld(t, rng, 20_000, 1000, 30)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	sess := m.NewSession()
	correct := 0
	for i, r := range reads {
		hit, ok := sess.MapSegment(r.Seq[:smallParams().L])
		if !ok {
			continue
		}
		wantContig := int32(origin[i] / 1000) // prefix starts at origin
		// The segment may straddle two contigs; accept either side.
		if hit.Subject == wantContig || hit.Subject == wantContig+1 {
			correct++
		}
	}
	if correct < 28 {
		t.Errorf("only %d/30 segments mapped to their origin contig", correct)
	}
}

func TestMapSegmentNoSketch(t *testing.T) {
	m, _ := NewMapper(smallParams())
	m.AddSubjects([]seq.Record{{ID: "c", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGT")}})
	sess := m.NewSession()
	if _, ok := sess.MapSegment([]byte("ACG")); ok {
		t.Error("too-short segment should not map")
	}
	if _, ok := sess.MapSegment(nil); ok {
		t.Error("nil segment should not map")
	}
}

func TestMapSegmentNoSubjects(t *testing.T) {
	m, _ := NewMapper(smallParams())
	sess := m.NewSession()
	rng := rand.New(rand.NewSource(1))
	if _, ok := sess.MapSegment(randDNA(rng, 200)); ok {
		t.Error("no subjects: should not map")
	}
}

func TestLazyCountersMatchMapCounting(t *testing.T) {
	// The lazy-update counter array must produce exactly the counts a
	// plain map produces, across many consecutive queries.
	rng := rand.New(rand.NewSource(11))
	_, contigs, reads, _ := makeWorld(t, rng, 30_000, 800, 50)
	p := smallParams()
	m, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	sess := m.NewSession()
	for _, r := range reads {
		seg := r.Seq[:p.L]
		got, gotOK := sess.MapSegment(seg)

		// Naive recount.
		words := m.Sketcher().QuerySketch(seg)
		counts := map[int32]int32{}
		for tr, w := range words {
			for _, p := range m.Table().Lookup(tr, w) {
				counts[p.Subject]++
			}
		}
		want := Hit{Subject: -1}
		for subj, c := range counts {
			if c > want.Count || (c == want.Count && subj < want.Subject) {
				want = Hit{Subject: subj, Count: c}
			}
		}
		wantOK := len(counts) > 0
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("lazy %v,%v != naive %v,%v", got, gotOK, want, wantOK)
		}
	}
}

func TestMapSegmentTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	_, contigs, reads, _ := makeWorld(t, rng, 20_000, 500, 10)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	sess := m.NewSession()
	for _, r := range reads {
		seg := r.Seq[:p.L]
		hits := sess.MapSegmentTopK(seg, 3)
		if len(hits) == 0 {
			continue
		}
		if len(hits) > 3 {
			t.Fatalf("topK returned %d hits", len(hits))
		}
		for i := 1; i < len(hits); i++ {
			if hits[i].Count > hits[i-1].Count {
				t.Fatalf("topK not sorted: %v", hits)
			}
			if hits[i].Count == hits[i-1].Count && hits[i].Subject < hits[i-1].Subject {
				t.Fatalf("topK tie order wrong: %v", hits)
			}
		}
		best, ok := sess.MapSegment(seg)
		if !ok || hits[0] != best {
			t.Fatalf("topK[0] %v != best %v", hits[0], best)
		}
	}
	if got := sess.MapSegmentTopK(reads[0].Seq[:p.L], 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestAddSubjectsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var contigs []seq.Record
	for i := 0; i < 40; i++ {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", i), Seq: randDNA(rng, 300+rng.Intn(1200))})
	}
	p := smallParams()
	seqM, _ := NewMapper(p)
	seqM.AddSubjects(contigs)
	parM, _ := NewMapper(p)
	parM.AddSubjectsParallel(contigs, 4)
	if seqM.NumSubjects() != parM.NumSubjects() {
		t.Fatalf("subject counts differ")
	}
	if seqM.Table().Entries() != parM.Table().Entries() {
		t.Fatalf("table entries differ: %d vs %d", seqM.Table().Entries(), parM.Table().Entries())
	}
	// Same mapping decisions.
	s1, s2 := seqM.NewSession(), parM.NewSession()
	for i := 0; i < 30; i++ {
		seg := randDNA(rng, p.L)
		h1, ok1 := s1.MapSegment(seg)
		h2, ok2 := s2.MapSegment(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("mapping differs: %v,%v vs %v,%v", h1, ok1, h2, ok2)
		}
	}
}

func TestMapReadsDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	_, contigs, reads, _ := makeWorld(t, rng, 20_000, 1000, 20)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	r1 := m.MapReads(reads, p.L, 1)
	r2 := m.MapReads(reads, p.L, 4)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("worker count changed results")
	}
	for i, r := range r1 {
		wantRead := int32(i / 2)
		wantKind := Prefix
		if i%2 == 1 {
			wantKind = Suffix
		}
		if r.ReadIndex != wantRead || r.Kind != wantKind {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestMapSegmentsMatchesMapReads(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, contigs, reads, _ := makeWorld(t, rng, 15_000, 700, 15)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	results := m.MapReads(reads, p.L, 2)
	var segments [][]byte
	for _, r := range reads {
		segs, _ := EndSegments(r.Seq, p.L)
		segments = append(segments, segs...)
	}
	hits := m.MapSegments(segments, 2)
	if len(hits) != len(results) {
		t.Fatalf("%d hits vs %d results", len(hits), len(results))
	}
	for i := range hits {
		if hits[i].Subject != results[i].Subject {
			t.Fatalf("segment %d: %v vs %v", i, hits[i], results[i])
		}
	}
}

func TestRegisterSubjectsAndMergeTableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var contigs []seq.Record
	for i := 0; i < 20; i++ {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", i), Seq: randDNA(rng, 600)})
	}
	p := smallParams()
	direct, _ := NewMapper(p)
	direct.AddSubjects(contigs)

	split, _ := NewMapper(p)
	split.RegisterSubjects(contigs)
	// Build two partial tables as two "ranks" would.
	t1 := sketch.NewTable(p.T)
	t2 := sketch.NewTable(p.T)
	for i := range contigs {
		tbl := t1
		if i >= 10 {
			tbl = t2
		}
		tbl.Insert(int32(i), split.Sketcher().SubjectSketch(contigs[i].Seq))
	}
	split.MergeTable(t1)
	split.MergeTable(t2)

	if direct.Table().Entries() != split.Table().Entries() {
		t.Fatalf("entries differ: %d vs %d", direct.Table().Entries(), split.Table().Entries())
	}
	s1, s2 := direct.NewSession(), split.NewSession()
	for i := 0; i < 40; i++ {
		seg := randDNA(rng, p.L)
		h1, ok1 := s1.MapSegment(seg)
		h2, ok2 := s2.MapSegment(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("mapping differs after merge: %v vs %v", h1, h2)
		}
	}
}

func TestSetFrozenDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	_, contigs, reads, _ := makeWorld(t, rng, 10_000, 500, 5)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	sess := m.NewSession()
	seg := reads[0].Seq[:p.L]
	if _, ok := sess.MapSegment(seg); !ok {
		t.Fatal("baseline mapping failed")
	}
	// Freeze the real table: results must not change.
	m.SetFrozen(m.Table().Freeze())
	frozenSess := m.NewSession()
	h1, ok1 := frozenSess.MapSegment(seg)
	m.SetFrozen(nil) // back to the hash table
	hashSess := m.NewSession()
	h2, ok2 := hashSess.MapSegment(seg)
	if ok1 != ok2 || h1 != h2 {
		t.Fatalf("frozen %v,%v != hash %v,%v", h1, ok1, h2, ok2)
	}
	// An empty frozen table must shadow the hash table (proves the
	// dispatch actually switches).
	m.SetFrozen(sketch.NewTable(p.T).Freeze())
	emptySess := m.NewSession()
	if _, ok := emptySess.MapSegment(seg); ok {
		t.Error("empty frozen table still produced hits")
	}
}

func TestMapReadsTimedReportsDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_, contigs, reads, _ := makeWorld(t, rng, 10_000, 500, 5)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	results, d := m.MapReadsTimed(reads, p.L, 1)
	if len(results) != 2*len(reads) {
		t.Errorf("got %d results", len(results))
	}
	if d <= 0 {
		t.Errorf("duration %v not positive", d)
	}
}

func TestSegmentKindString(t *testing.T) {
	if Prefix.String() != "prefix" || Suffix.String() != "suffix" {
		t.Error("SegmentKind strings wrong")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ReadIndex: 3, Kind: Suffix, Subject: 7, Count: 12}
	if r.String() == "" || !r.Mapped() {
		t.Error("result rendering broken")
	}
	if (Result{Subject: -1}).Mapped() {
		t.Error("subject -1 should be unmapped")
	}
}

func TestMapSegmentPositionalEstimatesLocation(t *testing.T) {
	// One long contig; segments cut from known offsets must come back
	// with a target window containing (roughly) the cut position.
	rng := rand.New(rand.NewSource(41))
	contig := randDNA(rng, 20_000)
	// Realistic k: at k=8 the same word recurs within one contig and
	// pollutes the anchor median; k=12 collisions are rare.
	p := sketch.Params{K: 12, W: 4, T: 8, L: 200, Seed: 3}
	m, _ := NewMapper(p)
	m.AddSubjects([]seq.Record{{ID: "c", Seq: contig}})
	sess := m.NewSession()
	for trial := 0; trial < 20; trial++ {
		pos := rng.Intn(len(contig) - p.L)
		ph, ok := sess.MapSegmentPositional(contig[pos : pos+p.L])
		if !ok || ph.Subject != 0 {
			t.Fatalf("trial %d: hit %+v ok=%v", trial, ph, ok)
		}
		if ph.TargetStart < 0 {
			t.Fatalf("trial %d: no positional estimate", trial)
		}
		// The median anchor should land within ~ℓ of the true cut.
		diff := int(ph.TargetStart) - pos
		if diff < -p.L || diff > p.L {
			t.Errorf("trial %d: estimate %d vs true %d (diff %d)", trial, ph.TargetStart, pos, diff)
		}
		if ph.TargetEnd <= ph.TargetStart || ph.TargetEnd > int32(len(contig)) {
			t.Errorf("trial %d: bad window [%d,%d)", trial, ph.TargetStart, ph.TargetEnd)
		}
	}
}

func TestMapSegmentPositionalAgreesWithPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	_, contigs, reads, _ := makeWorld(t, rng, 20_000, 1000, 20)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	plain := m.NewSession()
	positional := m.NewSession()
	for _, r := range reads {
		seg := r.Seq[:p.L]
		h1, ok1 := plain.MapSegment(seg)
		h2, ok2 := positional.MapSegmentPositional(seg)
		if ok1 != ok2 || (ok1 && h1 != h2.Hit) {
			t.Fatalf("positional best hit diverges: %v vs %v", h1, h2.Hit)
		}
	}
}

func TestMapReadTiledFindsContainedContig(t *testing.T) {
	// A small contig embedded in the middle of a long read is missed
	// by end-segment mapping but found by tiled mapping — the
	// extension scenario the paper describes in §III-B.1.
	rng := rand.New(rand.NewSource(47))
	p := sketch.Params{K: 12, W: 4, T: 8, L: 300, Seed: 3}
	contained := randDNA(rng, 400)
	flankA := randDNA(rng, 2000)
	flankB := randDNA(rng, 2000)
	read := append(append(append([]byte(nil), flankA...), contained...), flankB...)

	m, _ := NewMapper(p)
	m.AddSubjects([]seq.Record{
		{ID: "left", Seq: flankA},
		{ID: "mid", Seq: contained},
		{ID: "right", Seq: flankB},
	})
	sess := m.NewSession()

	// End segments see only the flanks.
	segs, _ := EndSegments(read, p.L)
	for _, seg := range segs {
		if hit, ok := sess.MapSegment(seg); ok && hit.Subject == 1 {
			t.Fatal("end segment unexpectedly hit the contained contig")
		}
	}
	// Tiled mapping must surface the contained contig.
	contained2 := sess.ContainedSubjects(read, p.L)
	found := false
	for _, s := range contained2 {
		if s == 1 {
			found = true
		}
	}
	if !found {
		tiles := sess.MapReadTiled(read, p.L, 0)
		t.Fatalf("contained contig not found; tiles: %+v", tiles)
	}
}

func TestMapReadTiledStrideAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := smallParams()
	contig := randDNA(rng, 3000)
	m, _ := NewMapper(p)
	m.AddSubjects([]seq.Record{{ID: "c", Seq: contig}})
	sess := m.NewSession()
	tiles := sess.MapReadTiled(contig, p.L, p.L/2)
	if len(tiles) == 0 {
		t.Fatal("no tiles mapped")
	}
	for i, th := range tiles {
		if th.Offset < 0 || int(th.Offset+th.Length) > len(contig) {
			t.Fatalf("tile %d out of bounds: %+v", i, th)
		}
		if i > 0 && tiles[i].Offset <= tiles[i-1].Offset {
			t.Fatalf("tiles not advancing: %+v", tiles)
		}
	}
	if got := sess.MapReadTiled(nil, p.L, 0); got != nil {
		t.Error("nil read should map no tiles")
	}
	if got := sess.MapReadTiled(contig, 0, 0); got != nil {
		t.Error("l=0 should map no tiles")
	}
}

func TestBestHitAgreesWithBruteForceJaccard(t *testing.T) {
	// Differential test of the paper's premise: JEM's trial-count
	// best hit should usually coincide with the contig maximizing the
	// exact minimizer Jaccard against the segment. Agreement is
	// statistical (the estimator is randomized), so we demand a high
	// rate, not unanimity.
	rng := rand.New(rand.NewSource(59))
	p := sketch.Params{K: 12, W: 6, T: 24, L: 400, Seed: 2}
	mp := minimizer.Params{K: p.K, W: p.W}
	ref := randDNA(rng, 40_000)
	var contigs []seq.Record
	const contigLen = 2000
	for pos := 0; pos+contigLen <= len(ref); pos += contigLen {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("c%d", len(contigs)),
			Seq: ref[pos : pos+contigLen],
		})
	}
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	sess := m.NewSession()

	agree, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		pos := rng.Intn(len(ref) - p.L)
		seg := append([]byte(nil), ref[pos:pos+p.L]...)
		for i := range seg { // light noise
			if rng.Float64() < 0.01 {
				seg[i] = seq.Code2Base[rng.Intn(4)]
			}
		}
		hit, ok := sess.MapSegment(seg)
		if !ok {
			continue
		}
		// Brute force argmax of minimizer Jaccard.
		bestJ, bestC := -1.0, int32(-1)
		for ci := range contigs {
			j := minimizer.Jaccard(seg, contigs[ci].Seq, mp)
			if j > bestJ {
				bestJ, bestC = j, int32(ci)
			}
		}
		total++
		if hit.Subject == bestC {
			agree++
		}
	}
	if total < 30 {
		t.Fatalf("only %d segments mapped", total)
	}
	if agree*10 < total*8 {
		t.Errorf("JEM best hit agreed with brute-force Jaccard on only %d/%d segments", agree, total)
	}
}

func TestSessionQueryIDIsolation(t *testing.T) {
	// Counters from one query must never leak into the next, even
	// when the same subjects are hit (quick-checked over random
	// segment pairs).
	rng := rand.New(rand.NewSource(37))
	_, contigs, _, _ := makeWorld(t, rng, 10_000, 500, 1)
	p := smallParams()
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		segA := randDNA(r, p.L)
		segB := randDNA(r, p.L)
		fresh := m.NewSession()
		wantB, wantOK := fresh.MapSegment(segB)
		reused := m.NewSession()
		reused.MapSegment(segA)
		gotB, gotOK := reused.MapSegment(segB)
		return gotOK == wantOK && gotB == wantB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSealedMapperMatchesMutable pins the tentpole invariant: sealing
// a mapper (freezing its table in memory and dropping the hash form)
// must not change a single mapping decision.
func TestSealedMapperMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	_, contigs, reads, _ := makeWorld(t, rng, 24_000, 600, 15)
	p := smallParams()
	mut, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	mut.AddSubjects(contigs)
	sealed, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	sealed.AddSubjects(contigs)
	wantEntries := mut.Table().Entries()

	sealed.Seal()
	sealed.Seal() // idempotent
	if !sealed.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	if sealed.Table() != nil {
		t.Fatal("sealed mapper still holds its mutable table")
	}
	if sealed.Frozen() == nil {
		t.Fatal("sealed mapper has no frozen table")
	}
	if sealed.Entries() != wantEntries {
		t.Fatalf("sealing changed entry count: %d != %d", sealed.Entries(), wantEntries)
	}

	r1 := mut.MapReads(reads, p.L, 2)
	r2 := sealed.MapReads(reads, p.L, 2)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("sealed mapper maps reads differently from mutable mapper")
	}
	s1, s2 := mut.NewSession(), sealed.NewSession()
	for i := 0; i < 40; i++ {
		seg := randDNA(rng, p.L)
		h1, ok1 := s1.MapSegmentPositional(seg)
		h2, ok2 := s2.MapSegmentPositional(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("positional segment %d: %v,%v != %v,%v", i, h1, ok1, h2, ok2)
		}
	}
}

// TestSealedMapperPanicsOnMutation: every subject-growing entry point
// must refuse to run on a sealed mapper rather than desync the frozen
// table from the subject metadata.
func TestSealedMapperPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	contigs := []seq.Record{{ID: "c0", Seq: randDNA(rng, 600)}}
	p := smallParams()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a sealed mapper did not panic", name)
			}
		}()
		f()
	}
	m, _ := NewMapper(p)
	m.AddSubjects(contigs)
	m.Seal()
	mustPanic("AddSubjects", func() { m.AddSubjects(contigs) })
	mustPanic("AddSubjectsParallel", func() { m.AddSubjectsParallel(contigs, 2) })
	mustPanic("RegisterSubjects", func() { m.RegisterSubjects(contigs) })
	mustPanic("MergeTable", func() { m.MergeTable(sketch.NewTable(p.T)) })
}

// TestMutationAfterSessionPanics: sessions snapshot nothing — they
// read the live table — so growing the subject set once any session
// exists is a data race by construction and must panic loudly.
func TestMutationAfterSessionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	contigs := []seq.Record{{ID: "c0", Seq: randDNA(rng, 600)}}
	m, _ := NewMapper(smallParams())
	m.AddSubjects(contigs)
	_ = m.NewSession()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddSubjects after NewSession did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "must not gain subjects while sessions exist") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.AddSubjects(contigs)
}
