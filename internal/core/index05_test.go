package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// shardedIndexMapper builds a sharded mapper over a toy world plus the
// reads to probe it with.
func shardedIndexMapper(t *testing.T, p int) (*Mapper, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	_, contigs, reads, _ := makeWorld(t, rng, 14_000, 1000, 12)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	m.SealSharded(p, 0)
	segs := make([][]byte, len(reads))
	for i, rd := range reads {
		segs[i] = rd.Seq[:smallParams().L]
	}
	return m, segs
}

func TestShardedIndexRoundTrip(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		orig, segs := shardedIndexMapper(t, p)
		var buf bytes.Buffer
		if err := orig.WriteIndex(&buf); err != nil {
			t.Fatal(err)
		}
		if got := string(buf.Bytes()[:8]); got != "JEMIDX05" {
			t.Fatalf("sharded mapper wrote magic %q, want JEMIDX05", got)
		}
		loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !loaded.Sealed() || loaded.Shards() != p {
			t.Fatalf("p=%d: loaded mapper has %d shards, sealed=%v", p, loaded.Shards(), loaded.Sealed())
		}
		if loaded.Entries() != orig.Entries() {
			t.Fatalf("p=%d: entries %d != %d", p, loaded.Entries(), orig.Entries())
		}
		if loaded.NumSubjects() != orig.NumSubjects() {
			t.Fatalf("p=%d: subjects differ", p)
		}
		s1, s2 := orig.NewSession(), loaded.NewSession()
		for i, seg := range segs {
			h1, ok1 := s1.MapSegmentPositional(seg)
			h2, ok2 := s2.MapSegmentPositional(seg)
			if ok1 != ok2 || h1 != h2 {
				t.Fatalf("p=%d segment %d: %v,%v != %v,%v", p, i, h1, ok1, h2, ok2)
			}
		}
	}
}

// TestShardedIndexObservedLoad: the observed load path emits one child
// span per shard.
func TestShardedIndexObservedLoad(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 4)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	sp := tr.Start("read")
	if _, err := ReadIndexObserved(bytes.NewReader(buf.Bytes()), sp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if kids := sp.Children(); len(kids) != 4 {
		t.Fatalf("observed load produced %d shard spans, want 4", len(kids))
	}
}

func TestShardedIndexCorruptManifest(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	// Flip a byte inside the manifest (just past the magic: the params
	// block), which must trip the manifest CRC before any decode.
	b[10] ^= 0xff
	_, err := ReadIndex(bytes.NewReader(b))
	if err == nil {
		t.Fatal("corrupt manifest loaded")
	}
	// Either the field-level validation or the manifest checksum may
	// fire first depending on which byte flips; a flip that survives
	// field validation MUST be caught by the checksum. Flip a byte in
	// the shard directory (tail of the manifest) to force that path.
	b = append(b[:0:0], buf.Bytes()...)
	b[len(b)-int(bytesTrailing(t, orig))-5] ^= 0xff
	if _, err := ReadIndex(bytes.NewReader(b)); !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("directory corruption error = %v, want ErrIndexChecksum", err)
	}
}

// bytesTrailing returns the total payload byte count of the mapper's
// shards — everything after the manifest footer in its JEMIDX05 form.
func bytesTrailing(t *testing.T, m *Mapper) int64 {
	t.Helper()
	var n int64
	sf := m.Sharded()
	for i := 0; i < sf.NumShards(); i++ {
		var b bytes.Buffer
		if err := sf.Shard(i).Encode(&b); err != nil {
			t.Fatal(err)
		}
		n += int64(b.Len())
	}
	return n
}

func TestShardedIndexCorruptPayload(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	// Flip a byte in the last shard's payload: the manifest stays
	// valid, so the per-shard CRC must catch it.
	b[len(b)-3] ^= 0x01
	_, err := ReadIndex(bytes.NewReader(b))
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("payload corruption error = %v, want ErrIndexChecksum", err)
	}
}

func TestShardedIndexMissingShard(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Drop the final shard's bytes entirely (simulates a truncated
	// copy); the loader must fail with a checksum-class error so
	// load-or-rebuild callers rebuild.
	trunc := full[:len(full)-int(bytesTrailing(t, orig))/3]
	_, err := ReadIndex(bytes.NewReader(trunc))
	if err == nil {
		t.Fatal("truncated sharded index loaded")
	}
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("missing-shard error = %v, want ErrIndexChecksum class", err)
	}
}

// TestShardedIndexFaultInjectedFlip drives the whole on-disk path: an
// atomic WriteIndexFile with the index.byteflip fault armed must yield
// a file that ReadIndexFile rejects with ErrIndexChecksum.
func TestShardedIndexFaultInjectedFlip(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 4)
	path := filepath.Join(t.TempDir(), "sharded.idx")
	defer fault.Reset()
	fault.Set(fault.IndexByteFlip, fault.Spec{})
	if err := orig.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	_, err := ReadIndexFile(path)
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("byte-flipped sharded index error = %v, want ErrIndexChecksum", err)
	}
}
