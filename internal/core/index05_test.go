package core

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// shardedIndexMapper builds a sharded mapper over a toy world plus the
// reads to probe it with.
func shardedIndexMapper(t *testing.T, p int) (*Mapper, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	_, contigs, reads, _ := makeWorld(t, rng, 14_000, 1000, 12)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	m.SealSharded(p, 0)
	segs := make([][]byte, len(reads))
	for i, rd := range reads {
		segs[i] = rd.Seq[:smallParams().L]
	}
	return m, segs
}

// parseManifest06 re-reads the manifest of serialized JEMIDX06 bytes,
// giving corruption tests the directory offsets and the manifest end.
func parseManifest06(t *testing.T, b []byte) *shardedManifest {
	t.Helper()
	if string(b[:8]) != "JEMIDX06" {
		t.Fatalf("index magic %q, want JEMIDX06", b[:8])
	}
	man, err := readShardedManifest(bufio.NewReader(bytes.NewReader(b[8:])), indexMagicV6)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func TestShardedIndexRoundTrip(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		orig, segs := shardedIndexMapper(t, p)
		var buf bytes.Buffer
		if err := orig.WriteIndex(&buf); err != nil {
			t.Fatal(err)
		}
		if got := string(buf.Bytes()[:8]); got != "JEMIDX06" {
			t.Fatalf("sealed mapper wrote magic %q, want JEMIDX06", got)
		}
		loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !loaded.Sealed() || loaded.Shards() != p {
			t.Fatalf("p=%d: loaded mapper has %d shards, sealed=%v", p, loaded.Shards(), loaded.Sealed())
		}
		if loaded.Entries() != orig.Entries() {
			t.Fatalf("p=%d: entries %d != %d", p, loaded.Entries(), orig.Entries())
		}
		if loaded.NumSubjects() != orig.NumSubjects() {
			t.Fatalf("p=%d: subjects differ", p)
		}
		s1, s2 := orig.NewSession(), loaded.NewSession()
		for i, seg := range segs {
			h1, ok1 := s1.MapSegmentPositional(seg)
			h2, ok2 := s2.MapSegmentPositional(seg)
			if ok1 != ok2 || h1 != h2 {
				t.Fatalf("p=%d segment %d: %v,%v != %v,%v", p, i, h1, ok1, h2, ok2)
			}
		}
	}
}

// TestShardedIndexV5Compat: the retired JEMIDX05 writer still produces
// files the loader accepts, and they serve identically to the mapper
// that wrote them — the format-compatibility guarantee for indexes
// built before the out-of-core layout.
func TestShardedIndexV5Compat(t *testing.T) {
	for _, p := range []int{1, 3} {
		orig, segs := shardedIndexMapper(t, p)
		var buf bytes.Buffer
		if err := orig.writeShardedIndexV5(&buf); err != nil {
			t.Fatal(err)
		}
		if got := string(buf.Bytes()[:8]); got != "JEMIDX05" {
			t.Fatalf("V5 writer wrote magic %q", got)
		}
		loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !loaded.Sealed() || loaded.Shards() != p {
			t.Fatalf("p=%d: loaded mapper has %d shards, sealed=%v", p, loaded.Shards(), loaded.Sealed())
		}
		s1, s2 := orig.NewSession(), loaded.NewSession()
		for i, seg := range segs {
			h1, ok1 := s1.MapSegmentPositional(seg)
			h2, ok2 := s2.MapSegmentPositional(seg)
			if ok1 != ok2 || h1 != h2 {
				t.Fatalf("p=%d segment %d: %v,%v != %v,%v", p, i, h1, ok1, h2, ok2)
			}
		}
	}
}

// TestShardedIndexObservedLoad: the observed load path emits one child
// span per shard.
func TestShardedIndexObservedLoad(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 4)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	sp := tr.Start("read")
	if _, err := ReadIndexObserved(bytes.NewReader(buf.Bytes()), sp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if kids := sp.Children(); len(kids) != 4 {
		t.Fatalf("observed load produced %d shard spans, want 4", len(kids))
	}
}

func TestShardedIndexCorruptManifest(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	// Flip a byte inside the manifest (just past the magic: the params
	// block), which must trip the manifest CRC before any decode.
	b[10] ^= 0xff
	_, err := ReadIndex(bytes.NewReader(b))
	if err == nil {
		t.Fatal("corrupt manifest loaded")
	}
	// Either the field-level validation or the manifest checksum may
	// fire first depending on which byte flips; a flip that survives
	// field validation MUST be caught by the checksum. Flip a byte in
	// the shard directory (just before the manifest footer) to force
	// that path.
	man := parseManifest06(t, buf.Bytes())
	b = append(b[:0:0], buf.Bytes()...)
	b[man.end-8] ^= 0xff
	if _, err := ReadIndex(bytes.NewReader(b)); !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("directory corruption error = %v, want ErrIndexChecksum", err)
	}
}

func TestShardedIndexCorruptPayload(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	// Flip a byte in the last shard's payload (the file ends at the
	// last payload byte): the manifest stays valid, so the per-shard
	// CRC must catch it.
	b[len(b)-3] ^= 0x01
	_, err := ReadIndex(bytes.NewReader(b))
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("payload corruption error = %v, want ErrIndexChecksum", err)
	}
}

func TestShardedIndexMissingShard(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 3)
	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	man := parseManifest06(t, full)
	// Chop the file in the middle of the final shard's payload
	// (simulates a truncated copy); the loader must fail with a
	// checksum-class error so load-or-rebuild callers rebuild.
	last := man.offs[len(man.offs)-1]
	trunc := full[:int(last)+int(man.lens[len(man.lens)-1])/2]
	_, err := ReadIndex(bytes.NewReader(trunc))
	if err == nil {
		t.Fatal("truncated sharded index loaded")
	}
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("missing-shard error = %v, want ErrIndexChecksum class", err)
	}
}

// TestShardedIndexFaultInjectedFlip drives the whole on-disk path: an
// atomic WriteIndexFile with the index.byteflip fault armed must yield
// a file that ReadIndexFile rejects with ErrIndexChecksum.
func TestShardedIndexFaultInjectedFlip(t *testing.T) {
	orig, _ := shardedIndexMapper(t, 4)
	path := filepath.Join(t.TempDir(), "sharded.idx")
	defer fault.Reset()
	fault.Set(fault.IndexByteFlip, fault.Spec{})
	if err := orig.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	_, err := ReadIndexFile(path)
	if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("byte-flipped sharded index error = %v, want ErrIndexChecksum", err)
	}
}
