package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// writeIndex06Temp serializes a sharded mapper to a temp file and
// returns the path alongside the mapper and its probe segments.
func writeIndex06Temp(t *testing.T, p int) (string, *Mapper, [][]byte) {
	t.Helper()
	m, segs := shardedIndexMapper(t, p)
	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.jemidx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, m, segs
}

// assertSameAnswers maps every segment through both mappers and fails
// on the first divergence. The loaded session must also finish clean:
// no latched error, no lost shards.
func assertSameAnswers(t *testing.T, tag string, orig, loaded *Mapper, segs [][]byte) {
	t.Helper()
	s1, s2 := orig.NewSession(), loaded.NewSession()
	for i, seg := range segs {
		h1, ok1 := s1.MapSegmentPositional(seg)
		h2, ok2 := s2.MapSegmentPositional(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("%s segment %d: %v,%v != %v,%v", tag, i, h2, ok2, h1, ok1)
		}
	}
	if err := s2.Err(); err != nil {
		t.Fatalf("%s: clean session latched %v", tag, err)
	}
	if lost := s2.LostShards(); lost != nil {
		t.Fatalf("%s: clean session lost shards %v", tag, lost)
	}
}

// TestOpenIndexFileMemoryModes: every memory mode answers byte-
// identically to the mapper that wrote the index, at several shard
// counts, and the reported residences and closer obey the contract
// (heap: no closer, nothing mapped; mmap: everything mapped behind a
// closer; budgeted auto: hot prefix on the heap, the rest lazy).
func TestOpenIndexFileMemoryModes(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		path, orig, segs := writeIndex06Temp(t, p)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		man := parseManifest06(t, raw)
		cases := []struct {
			name string
			spec MemorySpec
		}{
			{"heap", MemorySpec{Mode: MemoryHeap}},
			{"mmap", MemorySpec{Mode: MemoryMMap}},
			{"auto", MemorySpec{Mode: MemoryAuto}},
			{"budgeted", MemorySpec{Mode: MemoryAuto, Budget: int64(man.lens[0])}},
		}
		for _, c := range cases {
			m, info, closer, err := OpenIndexFile(path, c.spec)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, c.name, err)
			}
			assertSameAnswers(t, c.name, orig, m, segs)
			if len(info.Shards) != p {
				t.Fatalf("p=%d %s: %d residences reported", p, c.name, len(info.Shards))
			}
			switch {
			case c.name == "heap" || !mmapSupported:
				if closer != nil || info.Mapped != 0 {
					t.Fatalf("p=%d %s: heap open left a mapping (closer=%v mapped=%d)", p, c.name, closer, info.Mapped)
				}
				for _, r := range info.Shards {
					if r != ResidenceHeap {
						t.Fatalf("p=%d %s: residence %v", p, c.name, r)
					}
				}
			case c.name == "budgeted":
				// Shard 0 fits the budget exactly; the rest are lazy —
				// except a single-shard index, which is all heap (the
				// sole shard fits) and needs no mapping.
				if p == 1 {
					if info.Shards[0] != ResidenceHeap || closer != nil {
						t.Fatalf("p=1 budgeted: %v closer=%v", info.Shards, closer)
					}
					break
				}
				if info.Shards[0] != ResidenceHeap {
					t.Fatalf("p=%d budgeted: shard 0 is %v", p, info.Shards[0])
				}
				for sd := 1; sd < p; sd++ {
					if info.Shards[sd] != ResidenceLazy {
						t.Fatalf("p=%d budgeted: shard %d is %v", p, sd, info.Shards[sd])
					}
				}
				if closer == nil || info.Resident <= 0 || info.Mapped <= 0 {
					t.Fatalf("p=%d budgeted: closer=%v resident=%d mapped=%d", p, closer, info.Resident, info.Mapped)
				}
			default: // mmap, auto with no budget
				if closer == nil || info.Mapped <= 0 {
					t.Fatalf("p=%d %s: closer=%v mapped=%d", p, c.name, closer, info.Mapped)
				}
				for _, r := range info.Shards {
					if r != ResidenceMapped {
						t.Fatalf("p=%d %s: residence %v", p, c.name, r)
					}
				}
			}
			if closer != nil {
				if err := closer.Close(); err != nil {
					t.Fatalf("p=%d %s: close: %v", p, c.name, err)
				}
			}
		}
	}
}

// TestOpenIndexFileCorruptionMatrix: every way a JEMIDX06 file can rot
// — truncated payload, flipped payload byte, corrupted manifest footer
// — is detected at open by both the heap and the mapped path, and the
// error wraps ErrIndexChecksum so load-or-rebuild callers can react.
func TestOpenIndexFileCorruptionMatrix(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string, man *shardedManifest)
	}{
		{"truncated-payload", func(t *testing.T, path string, _ *shardedManifest) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-1); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-payload-byte", func(t *testing.T, path string, _ *shardedManifest) {
			if err := fault.FlipFileByte(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest-crc-mismatch", func(t *testing.T, path string, man *shardedManifest) {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// The last manifest byte is part of the CRC footer itself:
			// flipping it breaks the footer without disturbing the
			// decodable body.
			var b [1]byte
			if _, err := f.ReadAt(b[:], man.end-1); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x40
			if _, err := f.WriteAt(b[:], man.end-1); err != nil {
				t.Fatal(err)
			}
		}},
	}
	specs := []struct {
		name string
		spec MemorySpec
	}{
		{"heap", MemorySpec{Mode: MemoryHeap}},
		{"mmap", MemorySpec{Mode: MemoryMMap}},
	}
	for _, c := range corruptions {
		for _, s := range specs {
			t.Run(c.name+"/"+s.name, func(t *testing.T) {
				path, _, _ := writeIndex06Temp(t, 3)
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				c.corrupt(t, path, parseManifest06(t, raw))
				m, _, closer, err := OpenIndexFile(path, s.spec)
				if err == nil {
					if closer != nil {
						_ = closer.Close()
					}
					t.Fatalf("corrupt index served (mapper=%v)", m != nil)
				}
				if !errors.Is(err, ErrIndexChecksum) {
					t.Fatalf("error %v does not wrap ErrIndexChecksum", err)
				}
			})
		}
	}
}

// TestLazyFaultInByteFlip: a budgeted open leaves cold shards lazy;
// when the deferred CRC verification of such a shard fails (injected
// via index.faultin.byteflip — the mapping is read-only, so the fault
// perturbs the computed checksum), the query completes degraded: the
// session latches an error wrapping ErrIndexChecksum, reports the
// shard lost, and still answers from the surviving shards.
func TestLazyFaultInByteFlip(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	const p = 4
	path, orig, segs := writeIndex06Temp(t, p)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	man := parseManifest06(t, raw)
	m, info, closer, err := OpenIndexFile(path, MemorySpec{Mode: MemoryAuto, Budget: int64(man.lens[0])})
	if err != nil {
		t.Fatal(err)
	}
	if closer != nil {
		defer closer.Close()
	}
	var lazyShards int
	for _, r := range info.Shards {
		if r == ResidenceLazy {
			lazyShards++
		}
	}
	if lazyShards == 0 {
		t.Fatalf("budget left no lazy shard: %v", info.Shards)
	}

	fault.Set(fault.IndexFaultinByteFlip, fault.Spec{})
	defer fault.Reset()
	sess := m.NewSession()
	var answered int
	for _, seg := range segs {
		if _, ok := sess.MapSegmentPositional(seg); ok {
			answered++
		}
	}
	if err := sess.Err(); err == nil {
		t.Fatal("no error latched despite poisoned fault-ins")
	} else if !errors.Is(err, ErrIndexChecksum) {
		t.Fatalf("latched %v, want ErrIndexChecksum", err)
	}
	lost := sess.LostShards()
	if len(lost) == 0 || len(lost) > lazyShards {
		t.Fatalf("lost shards %v with %d lazy", lost, lazyShards)
	}
	for _, sd := range lost {
		if info.Shards[sd] != ResidenceLazy {
			t.Fatalf("eager shard %d reported lost", sd)
		}
	}

	// The lazy slot's outcome is sticky: a second session on the same
	// mapper sees the same shards lost without re-firing the fault.
	fault.Reset()
	again := m.NewSession()
	for _, seg := range segs {
		again.MapSegmentPositional(seg)
	}
	if got := again.LostShards(); len(got) == 0 {
		t.Fatal("poisoned lazy slots forgot their outcome")
	}

	// Degraded, not wrong: a fresh open of the same (intact) file
	// serves byte-identically to the mapper that wrote it.
	m2, _, closer2, err := OpenIndexFile(path, MemorySpec{Mode: MemoryAuto, Budget: int64(man.lens[0])})
	if err != nil {
		t.Fatal(err)
	}
	if closer2 != nil {
		defer closer2.Close()
	}
	assertSameAnswers(t, "fresh reopen", orig, m2, segs)
}

// TestOpenShardSubsetMapped: the shard-server open path serves the
// kept shards from a shared mapping byte-identically to the heap
// subset reader.
func TestOpenShardSubsetMapped(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	path, _, _ := writeIndex06Temp(t, 4)
	keep := func(sd int) bool { return sd%2 == 0 }
	heapTabs, heapMeta, err := ReadShardSubsetFile(path, keep)
	if err != nil {
		t.Fatal(err)
	}
	mapTabs, mapMeta, closer, err := OpenShardSubset(path, keep, MemorySpec{Mode: MemoryMMap})
	if err != nil {
		t.Fatal(err)
	}
	if closer == nil {
		t.Fatal("mapped subset open returned no closer")
	}
	defer closer.Close()
	if heapMeta != mapMeta {
		t.Fatalf("meta %+v != %+v", mapMeta, heapMeta)
	}
	if len(mapTabs) != len(heapTabs) {
		t.Fatalf("kept %d shards, want %d", len(mapTabs), len(heapTabs))
	}
	for sd, ht := range heapTabs {
		mt, ok := mapTabs[sd]
		if !ok {
			t.Fatalf("shard %d missing from mapped subset", sd)
		}
		if mt.Entries() != ht.Entries() || mt.T() != ht.T() {
			t.Fatalf("shard %d: entries/trials differ", sd)
		}
	}
}
