package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sketch"
)

// memQuerier is an in-process ShardQuerier over a local sharded table:
// the remote merge path exercised without any network, so failures in
// these tests implicate core, not shardnet. Shards listed in fail
// answer with an error, modelling a terminally lost shard.
type memQuerier struct {
	sf *sketch.ShardedFrozen

	mu    sync.Mutex
	fail  map[int]bool
	calls int
}

func (mq *memQuerier) NumShards() int { return mq.sf.NumShards() }

func (mq *memQuerier) QueryShard(ctx context.Context, shard int, trials []int32, words []sketch.Word) ([][]sketch.Posting, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mq.mu.Lock()
	mq.calls++
	failed := mq.fail[shard]
	mq.mu.Unlock()
	if failed {
		return nil, fmt.Errorf("memQuerier: shard %d down", shard)
	}
	lists := make([][]sketch.Posting, len(trials))
	for i, t32 := range trials {
		lists[i] = mq.sf.Shard(shard).Lookup(int(t32), words[i])
	}
	return lists, nil
}

func (mq *memQuerier) setFail(shard int, down bool) {
	mq.mu.Lock()
	defer mq.mu.Unlock()
	if mq.fail == nil {
		mq.fail = map[int]bool{}
	}
	mq.fail[shard] = down
}

// remoteMapper clones a sharded mapper into a meta-only mapper served
// by a memQuerier over the original's shards, via the real on-disk
// manifest path (WriteIndexFile + ReadIndexMetaFile).
func remoteMapper(t *testing.T, local *Mapper) (*Mapper, *memQuerier, IndexMeta) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.jem")
	if err := local.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	m, meta, err := ReadIndexMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mq := &memQuerier{sf: local.Sharded()}
	m.SetRemote(mq)
	return m, mq, meta
}

// TestRemoteMatchesLocalSharded: with every shard healthy, the remote
// scatter-gather path is byte-identical to the local sharded one —
// same hits, same positions, same PostingsScanned — at several shard
// counts, for both the counting-only and positional (keepLists)
// paths.
func TestRemoteMatchesLocalSharded(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		local, segs := shardedIndexMapper(t, p)
		remote, _, meta := remoteMapper(t, local)
		if meta.Shards != p || meta.T != smallParams().T || meta.NumSubjects != local.NumSubjects() {
			t.Fatalf("p=%d: meta %+v disagrees with mapper", p, meta)
		}
		if remote.Shards() != p {
			t.Fatalf("p=%d: remote mapper reports %d shards", p, remote.Shards())
		}
		sl, sr := local.NewSession(), remote.NewSession()
		for i, seg := range segs {
			h1, ok1 := sl.MapSegment(seg)
			h2, ok2 := sr.MapSegment(seg)
			if ok1 != ok2 || h1 != h2 {
				t.Fatalf("p=%d segment %d: local %v,%v remote %v,%v", p, i, h1, ok1, h2, ok2)
			}
			p1, pok1 := sl.MapSegmentPositional(seg)
			p2, pok2 := sr.MapSegmentPositional(seg)
			if pok1 != pok2 || p1 != p2 {
				t.Fatalf("p=%d segment %d positional: local %v,%v remote %v,%v", p, i, p1, pok1, p2, pok2)
			}
		}
		if sl.PostingsScanned() != sr.PostingsScanned() {
			t.Fatalf("p=%d: postings scanned %d local != %d remote",
				p, sl.PostingsScanned(), sr.PostingsScanned())
		}
		if lost := sr.LostShards(); lost != nil {
			t.Fatalf("p=%d: healthy fleet reported lost shards %v", p, lost)
		}
	}
}

// TestRemoteDegradedAnswer: a terminally failing shard is recorded in
// LostShards, the query still completes on the survivors, and once the
// shard recovers fresh queries are exact again (and in particular do
// not leak the previous query's posting lists into the positional
// pass).
func TestRemoteDegradedAnswer(t *testing.T) {
	const p = 4
	local, segs := shardedIndexMapper(t, p)
	remote, mq, _ := remoteMapper(t, local)
	sess := remote.NewSession()
	// Warm the plists scratch with healthy positional queries first so a
	// stale-slice leak from the lost shard would be visible.
	for _, seg := range segs {
		sess.MapSegmentPositional(seg)
	}
	if sess.LostShards() != nil {
		t.Fatal("healthy warmup lost shards")
	}
	mq.setFail(1, true)
	for _, seg := range segs {
		sess.MapSegmentPositional(seg) // must complete, degraded
	}
	lost := sess.LostShards()
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("LostShards = %v, want [1]", lost)
	}
	mq.setFail(1, false)
	// A recovered fleet must be exact again on a FRESH session (the lost
	// set is a session-cumulative damage record).
	sl, sr := local.NewSession(), remote.NewSession()
	for i, seg := range segs {
		p1, ok1 := sl.MapSegmentPositional(seg)
		p2, ok2 := sr.MapSegmentPositional(seg)
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("segment %d after recovery: local %v,%v remote %v,%v", i, p1, ok1, p2, ok2)
		}
	}
	if sr.LostShards() != nil {
		t.Fatal("recovered fleet reported lost shards")
	}
}

// TestRemoteAllShardsLost: even with the whole fleet down every query
// completes (as a miss) and names every touched shard.
func TestRemoteAllShardsLost(t *testing.T) {
	const p = 2
	local, segs := shardedIndexMapper(t, p)
	remote, mq, _ := remoteMapper(t, local)
	for sd := 0; sd < p; sd++ {
		mq.setFail(sd, true)
	}
	sess := remote.NewSession()
	for _, seg := range segs {
		if _, ok := sess.MapSegment(seg); ok {
			t.Fatal("query against a fully lost fleet reported a hit")
		}
	}
	if lost := sess.LostShards(); len(lost) != p {
		t.Fatalf("LostShards = %v, want all %d shards", lost, p)
	}
	if sess.PostingsScanned() != 0 {
		t.Fatalf("lost fleet scanned %d postings", sess.PostingsScanned())
	}
}

// TestRemoteContextCancelled: a session context cancelled before the
// query turns every touched shard into a lost shard rather than a
// hang or a panic.
func TestRemoteContextCancelled(t *testing.T) {
	local, segs := shardedIndexMapper(t, 2)
	remote, _, _ := remoteMapper(t, local)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := remote.NewSession().WithContext(ctx)
	if _, ok := sess.MapSegment(segs[0]); ok {
		t.Fatal("cancelled query reported a hit")
	}
	if len(sess.LostShards()) == 0 {
		t.Fatal("cancelled query recorded no lost shards")
	}
}

// TestReadShardSubsetFile: a subset load yields exactly the kept
// shards, each lookup-identical to the full load's shard, and the
// manifest fingerprint matches the full read's.
func TestReadShardSubsetFile(t *testing.T) {
	const p = 4
	local, _ := shardedIndexMapper(t, p)
	path := filepath.Join(t.TempDir(), "idx.jem")
	if err := local.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	_, fullMeta, err := ReadIndexMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := func(sd int) bool { return sd%2 == 0 }
	tables, meta, err := ReadShardSubsetFile(path, keep)
	if err != nil {
		t.Fatal(err)
	}
	if meta != fullMeta {
		t.Fatalf("subset meta %+v != full meta %+v", meta, fullMeta)
	}
	if len(tables) != p/2 {
		t.Fatalf("subset kept %d shards, want %d", len(tables), p/2)
	}
	sf := local.Sharded()
	for sd, ft := range tables {
		if !keep(sd) {
			t.Fatalf("subset contains unkept shard %d", sd)
		}
		if ft.Entries() != sf.Shard(sd).Entries() {
			t.Fatalf("shard %d: subset entries %d != full %d", sd, ft.Entries(), sf.Shard(sd).Entries())
		}
	}
	if _, _, err := ReadShardSubsetFile(path, func(int) bool { return false }); err == nil {
		t.Fatal("keep-none selection did not error")
	}
}

// TestReadIndexMetaRejectsUnsharded: meta/subset loading requires a
// sharded layout (JEMIDX05/06); a mutable-table JEMIDX04 file is
// refused with a pointed message, not misparsed.
func TestReadIndexMetaRejectsUnsharded(t *testing.T) {
	m := buildTinyMapper(t)
	path := filepath.Join(t.TempDir(), "flat.jem")
	if err := m.WriteIndexFile(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadIndexMetaFile(path); err == nil {
		t.Fatal("ReadIndexMetaFile accepted an unsharded index")
	}
	if _, _, err := ReadShardSubsetFile(path, func(int) bool { return true }); err == nil {
		t.Fatal("ReadShardSubsetFile accepted an unsharded index")
	}
	if _, _, err := ReadIndexMetaFile(filepath.Join(t.TempDir(), "missing.jem")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want ErrNotExist", err)
	}
}

// TestSetRemoteGuards: clearing the backend of a meta-only mapper
// panics (there is no local table to fall back to), and installing a
// remote marks the mapper sealed with zero local entries.
func TestSetRemoteGuards(t *testing.T) {
	local, _ := shardedIndexMapper(t, 2)
	remote, _, _ := remoteMapper(t, local)
	if !remote.Sealed() {
		t.Fatal("remote mapper not sealed")
	}
	if remote.Entries() != 0 {
		t.Fatalf("meta-only mapper reports %d local entries", remote.Entries())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetRemote(nil) on a meta-only mapper did not panic")
		}
	}()
	remote.SetRemote(nil)
}

// buildTinyMapper builds a minimal UNSEALED mapper for format
// rejection tests: a mutable mapper writes the JEMIDX04 layout, the
// only current format without a shard manifest (sealed mappers write
// JEMIDX06, which always has one).
func buildTinyMapper(t *testing.T) *Mapper {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	_, contigs, _, _ := makeWorld(t, rng, 6000, 1000, 2)
	m, err := NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	return m
}
