package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	var contigs []seq.Record
	for i := 0; i < 25; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 400+rng.Intn(1500)),
		})
	}
	p := smallParams()
	orig, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	orig.AddSubjects(contigs)

	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSubjects() != orig.NumSubjects() {
		t.Fatalf("subjects %d != %d", loaded.NumSubjects(), orig.NumSubjects())
	}
	for i := int32(0); int(i) < orig.NumSubjects(); i++ {
		if loaded.Subject(i) != orig.Subject(i) {
			t.Fatalf("subject %d metadata differs", i)
		}
	}
	if loaded.Table().Entries() != orig.Table().Entries() {
		t.Fatalf("entries %d != %d", loaded.Table().Entries(), orig.Table().Entries())
	}
	if loaded.Sketcher().Params() != orig.Sketcher().Params() {
		t.Fatalf("params differ")
	}
	// Identical mapping decisions, including positional ones.
	s1, s2 := orig.NewSession(), loaded.NewSession()
	for i := 0; i < 40; i++ {
		var seg []byte
		if i%2 == 0 {
			c := contigs[rng.Intn(len(contigs))].Seq
			off := rng.Intn(len(c)/2 + 1)
			end := off + p.L
			if end > len(c) {
				end = len(c)
			}
			seg = c[off:end]
		} else {
			seg = randDNA(rng, p.L)
		}
		h1, ok1 := s1.MapSegmentPositional(seg)
		h2, ok2 := s2.MapSegmentPositional(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("segment %d: %v,%v != %v,%v", i, h1, ok1, h2, ok2)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("NOTANINDEXATALL!"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadIndex(&buf); err == nil {
		t.Error("truncated index should fail")
	}
}

func TestReadIndexRejectsBadParams(t *testing.T) {
	m, _ := NewMapper(smallParams())
	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt K (first param word after the 8-byte magic) to zero.
	for i := 8; i < 16; i++ {
		b[i] = 0
	}
	if _, err := ReadIndex(bytes.NewReader(b)); err == nil {
		t.Error("invalid params should fail")
	}
}
