package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/sketch"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	var contigs []seq.Record
	for i := 0; i < 25; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 400+rng.Intn(1500)),
		})
	}
	p := smallParams()
	orig, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	orig.AddSubjects(contigs)

	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSubjects() != orig.NumSubjects() {
		t.Fatalf("subjects %d != %d", loaded.NumSubjects(), orig.NumSubjects())
	}
	for i := int32(0); int(i) < orig.NumSubjects(); i++ {
		if loaded.Subject(i) != orig.Subject(i) {
			t.Fatalf("subject %d metadata differs", i)
		}
	}
	if loaded.Table().Entries() != orig.Table().Entries() {
		t.Fatalf("entries %d != %d", loaded.Table().Entries(), orig.Table().Entries())
	}
	if loaded.Sketcher().Params() != orig.Sketcher().Params() {
		t.Fatalf("params differ")
	}
	// Identical mapping decisions, including positional ones.
	s1, s2 := orig.NewSession(), loaded.NewSession()
	for i := 0; i < 40; i++ {
		var seg []byte
		if i%2 == 0 {
			c := contigs[rng.Intn(len(contigs))].Seq
			off := rng.Intn(len(c)/2 + 1)
			end := off + p.L
			if end > len(c) {
				end = len(c)
			}
			seg = c[off:end]
		} else {
			seg = randDNA(rng, p.L)
		}
		h1, ok1 := s1.MapSegmentPositional(seg)
		h2, ok2 := s2.MapSegmentPositional(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("segment %d: %v,%v != %v,%v", i, h1, ok1, h2, ok2)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("NOTANINDEXATALL!"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadIndex(&buf); err == nil {
		t.Error("truncated index should fail")
	}
}

func TestReadIndexRejectsBadParams(t *testing.T) {
	m, _ := NewMapper(smallParams())
	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt K (first param word after the 8-byte magic) to zero.
	for i := 8; i < 16; i++ {
		b[i] = 0
	}
	if _, err := ReadIndex(bytes.NewReader(b)); err == nil {
		t.Error("invalid params should fail")
	}
}

// TestIndexRoundTripSealed: a sealed mapper writes the frozen-kind
// JEMIDX03 body and loads back as a sealed mapper with identical
// mapping behaviour.
func TestIndexRoundTripSealed(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	var contigs []seq.Record
	for i := 0; i < 25; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 400+rng.Intn(1500)),
		})
	}
	p := smallParams()
	orig, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	orig.AddSubjects(contigs)
	orig.Seal()

	var buf bytes.Buffer
	if err := orig.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Sealed() || loaded.Frozen() == nil || loaded.Table() != nil {
		t.Fatal("frozen-kind index did not load as a sealed mapper")
	}
	if loaded.Entries() != orig.Entries() {
		t.Fatalf("entries %d != %d", loaded.Entries(), orig.Entries())
	}
	if loaded.NumSubjects() != orig.NumSubjects() {
		t.Fatalf("subjects %d != %d", loaded.NumSubjects(), orig.NumSubjects())
	}
	compareMappers(t, rng, contigs, orig, loaded)
}

// TestIndexRoundTripDistributedFrozen is the regression test for the
// empty-index bug: a driver that registers subjects, gathers per-rank
// payloads and installs the merged result with SetFrozen used to save
// an index whose table section was the untouched (empty) mutable
// table. The full gather -> save -> load -> map loop must now work.
func TestIndexRoundTripDistributedFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	var contigs []seq.Record
	for i := 0; i < 24; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 500+rng.Intn(1000)),
		})
	}
	p := smallParams()
	m, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterSubjects(contigs)
	// Two "ranks" sketch half the contigs each; their encoded payloads
	// are allgathered and merged, exactly as internal/dist does it.
	var payloads [][]byte
	for r := 0; r < 2; r++ {
		tb := sketch.NewTable(p.T)
		for i := r * 12; i < (r+1)*12; i++ {
			tb.Insert(int32(i), m.Sketcher().SubjectSketch(contigs[i].Seq))
		}
		var pb bytes.Buffer
		if err := tb.Encode(&pb); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, pb.Bytes())
	}
	ft, err := sketch.FreezePayloads(p.T, payloads)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozen(ft)

	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries() == 0 {
		t.Fatal("regression: saved index lost the gathered table (0 entries)")
	}
	if loaded.Entries() != ft.Entries() {
		t.Fatalf("entries %d != gathered %d", loaded.Entries(), ft.Entries())
	}
	compareMappers(t, rng, contigs, m, loaded)
}

// TestIndexLegacyJEMIDX02Load: files written by the previous format
// (no table-kind byte, mutable-table body) must still load and map
// identically to the mapper that would have written them.
func TestIndexLegacyJEMIDX02Load(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	var contigs []seq.Record
	for i := 0; i < 15; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("contig_%d", i),
			Seq: randDNA(rng, 400+rng.Intn(800)),
		})
	}
	p := smallParams()
	orig, err := NewMapper(p)
	if err != nil {
		t.Fatal(err)
	}
	orig.AddSubjects(contigs)

	// Hand-write the legacy layout: magic, 6 param words, subject
	// metadata, then the mutable table with no kind byte.
	var buf bytes.Buffer
	buf.Write(indexMagicLegacy[:])
	for _, v := range []uint64{
		uint64(p.K), uint64(p.W), uint64(p.T), uint64(p.L),
		uint64(p.Seed), uint64(p.Order),
	} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(orig.NumSubjects())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.NumSubjects(); i++ {
		s := orig.Subject(int32(i))
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(s.Name))); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(s.Name)
		if err := binary.Write(&buf, binary.LittleEndian, uint32(s.Length)); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Table().Encode(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("legacy index rejected: %v", err)
	}
	if loaded.Sealed() {
		t.Fatal("legacy index must load unsealed (mutable table)")
	}
	if loaded.Table().Entries() != orig.Table().Entries() {
		t.Fatalf("entries %d != %d", loaded.Table().Entries(), orig.Table().Entries())
	}
	compareMappers(t, rng, contigs, orig, loaded)
}

// compareMappers asserts two mappers agree on a mix of on-contig and
// random segments, positionally.
func compareMappers(t *testing.T, rng *rand.Rand, contigs []seq.Record, a, b *Mapper) {
	t.Helper()
	p := a.Sketcher().Params()
	s1, s2 := a.NewSession(), b.NewSession()
	for i := 0; i < 40; i++ {
		var seg []byte
		if i%2 == 0 {
			c := contigs[rng.Intn(len(contigs))].Seq
			off := rng.Intn(len(c)/2 + 1)
			end := off + p.L
			if end > len(c) {
				end = len(c)
			}
			seg = c[off:end]
		} else {
			seg = randDNA(rng, p.L)
		}
		h1, ok1 := s1.MapSegmentPositional(seg)
		h2, ok2 := s2.MapSegmentPositional(seg)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("segment %d: %v,%v != %v,%v", i, h1, ok1, h2, ok2)
		}
	}
}
