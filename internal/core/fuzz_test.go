package core

import (
	"bytes"
	"testing"
)

// FuzzReadIndex asserts the index deserializer never panics or
// over-allocates on arbitrary bytes and that accepted indexes
// round-trip.
func FuzzReadIndex(f *testing.F) {
	m, err := NewMapper(smallParams())
	if err != nil {
		f.Fatal(err)
	}
	m.RegisterSubjects(nil)
	var buf bytes.Buffer
	if err := m.WriteIndex(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A sealed (frozen-table) index exercises the JEMIDX03 kind byte.
	m.Seal()
	var frozenBuf bytes.Buffer
	if err := m.WriteIndex(&frozenBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(frozenBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("JEMIDX02"))
	f.Add([]byte("JEMIDX03"))
	f.Add(bytes.Repeat([]byte{0xFF}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteIndex(&out); err != nil {
			t.Fatalf("re-encode of accepted index failed: %v", err)
		}
		again, err := ReadIndex(&out)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if again.NumSubjects() != got.NumSubjects() ||
			again.Entries() != got.Entries() ||
			again.Sketcher().Params() != got.Sketcher().Params() {
			t.Fatal("unstable index round trip")
		}
	})
}
