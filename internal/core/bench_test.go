package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/sketch"
)

func benchMapper(b *testing.B, nContigs, contigLen int) (*Mapper, []byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	p := sketch.Defaults()
	m, err := NewMapper(p)
	if err != nil {
		b.Fatal(err)
	}
	var contigs []seq.Record
	ref := randDNA(rng, nContigs*contigLen)
	for i := 0; i < nContigs; i++ {
		contigs = append(contigs, seq.Record{
			ID:  fmt.Sprintf("c%d", i),
			Seq: ref[i*contigLen : (i+1)*contigLen],
		})
	}
	m.AddSubjects(contigs)
	pos := rng.Intn(len(ref) - p.L)
	return m, ref[pos : pos+p.L]
}

func BenchmarkMapSegment(b *testing.B) {
	m, seg := benchMapper(b, 500, 3000)
	sess := m.NewSession()
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.MapSegment(seg)
	}
}

func BenchmarkMapSegmentPositional(b *testing.B) {
	m, seg := benchMapper(b, 500, 3000)
	sess := m.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.MapSegmentPositional(seg)
	}
}

func BenchmarkMapSegmentFrozen(b *testing.B) {
	m, seg := benchMapper(b, 500, 3000)
	m.SetFrozen(m.Table().Freeze())
	sess := m.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.MapSegment(seg)
	}
}

func BenchmarkAddSubjects(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var contigs []seq.Record
	var bases int64
	for i := 0; i < 100; i++ {
		n := 2000 + rng.Intn(4000)
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", i), Seq: randDNA(rng, n)})
		bases += int64(n)
	}
	b.SetBytes(bases)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMapper(sketch.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		m.AddSubjects(contigs)
	}
}
