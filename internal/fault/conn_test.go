package fault

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestParseNetworkPoints(t *testing.T) {
	defer Reset()
	err := Parse("conn.dial.err:times=2; conn.read.stall:delay=5ms ;conn.write.err:after=1;shard.down")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ConnDialErr, ConnReadStall, ConnWriteErr, ShardDown} {
		if !Enabled(name) {
			t.Errorf("%s not armed", name)
		}
	}
	if sp, ok := Fire(ConnReadStall); !ok || sp.Delay != 5*time.Millisecond {
		t.Fatalf("conn.read.stall: ok=%v delay=%v", ok, sp.Delay)
	}
	if _, ok := Fire(ConnWriteErr); ok {
		t.Fatal("after=1 fired on first hit")
	}
	if _, ok := Fire(ConnWriteErr); !ok {
		t.Fatal("after=1 did not fire on second hit")
	}
	Fire(ConnDialErr)
	Fire(ConnDialErr)
	if _, ok := Fire(ConnDialErr); ok {
		t.Fatal("times=2 fired a third time")
	}
}

func TestConnWrapper(t *testing.T) {
	defer Reset()
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	// Disarmed: Conn must return its argument unchanged.
	if c := Conn(a); c != net.Conn(a) {
		t.Fatal("disarmed Conn wrapped anyway")
	}

	// Write error: injected without touching the wire.
	Set(ConnWriteErr, Spec{})
	c := Conn(a)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err=%v, want ErrInjectedWrite", err)
	}
	Reset()

	// Read stall: the read still succeeds but only after Spec.Delay.
	Set(ConnReadStall, Spec{Delay: 30 * time.Millisecond})
	c = Conn(a)
	go func() { _, _ = b.Write([]byte("y")) }()
	start := time.Now()
	buf := make([]byte, 1)
	n, err := c.Read(buf)
	if err != nil || n != 1 || buf[0] != 'y' {
		t.Fatalf("read: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("read returned after %v, want >= 30ms stall", d)
	}
}
