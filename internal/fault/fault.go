// Package fault is the repository's deterministic fault-injection
// registry: named injection points compiled into production code paths
// (the streaming pipeline, the index writer) that stay dormant until a
// test — or the JEM_FAULTS environment variable — arms them.
//
// Every fault is deterministic: a point triggers after a fixed number
// of hits (Spec.After) and for a fixed number of times (Spec.Times),
// so a failing test replays identically. There is no randomness and no
// timing dependence beyond Spec.Delay, which only ever adds latency.
//
// The disarmed fast path is one atomic load (Active), so leaving the
// injection points compiled into release binaries costs nothing
// measurable.
//
// Arming from the environment:
//
//	JEM_FAULTS="worker.panic:after=2;writer.slow:delay=10ms,times=100"
//
// is a semicolon-separated list of point[:key=value,...] specs, parsed
// at process start. Tests arm points programmatically with Set and
// must Reset when done (the registry is process-global).
package fault

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The injection points wired into the serving pipeline. Each name is
// the stable identifier used in JEM_FAULTS and in Set calls.
const (
	// ReaderShort makes the wrapped input stream report EOF early — a
	// truncated download or chopped file.
	ReaderShort = "reader.short"
	// ReaderErr makes the wrapped input stream fail with ErrInjectedRead
	// — a dropped NFS mount or dying disk mid-read.
	ReaderErr = "reader.err"
	// WriterENOSPC makes the wrapped output stream fail with a
	// disk-full error (wraps syscall.ENOSPC).
	WriterENOSPC = "writer.enospc"
	// WriterSlow stalls each wrapped write by Spec.Delay — a congested
	// pipe or throttled volume.
	WriterSlow = "writer.slow"
	// WorkerPanic panics inside a MapStream worker goroutine, proving
	// the recover-to-batch-error conversion.
	WorkerPanic = "worker.panic"
	// IndexByteFlip flips one byte of a fully written index temp file
	// before it is renamed into place — on-disk corruption the JEMIDX04
	// checksum must catch at load time.
	IndexByteFlip = "index.byteflip"
	// IndexFaultinByteFlip simulates a flipped payload byte during the
	// lazy fault-in CRC verification of a load-on-demand (JEMIDX06)
	// shard — corruption that happens after the index was opened, which
	// only the first query against that shard can detect. The mapping
	// is PROT_READ, so the injector perturbs the computed checksum
	// rather than the mapped bytes; the effect is identical.
	IndexFaultinByteFlip = "index.faultin.byteflip"
)

// Spec configures one armed injection point.
type Spec struct {
	// After is the number of Fire calls that pass through before the
	// point starts triggering (0 = trigger on the first call).
	After int
	// Times bounds how many times the point triggers before disarming
	// itself (0 = every call once reached).
	Times int
	// Delay is the stall injected by latency points (WriterSlow).
	Delay time.Duration
}

type point struct {
	spec Spec
	hits int // Fire calls seen so far
	done int // triggers delivered so far
}

var (
	mu     sync.Mutex
	points map[string]*point
	armed  atomic.Bool
)

func init() {
	if env := os.Getenv("JEM_FAULTS"); env != "" {
		if err := Parse(env); err != nil {
			// A malformed fault spec means the test harness is broken;
			// fail loudly rather than silently running fault-free.
			panic(fmt.Sprintf("fault: bad JEM_FAULTS: %v", err))
		}
	}
}

// Active reports whether any injection point is armed. It is the cheap
// guard production code uses before paying for wrapping or Fire calls.
func Active() bool { return armed.Load() }

// Set arms the named point with the given spec, replacing any previous
// arming (and resetting its counters).
func Set(name string, s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = &point{spec: s}
	armed.Store(true)
}

// Clear disarms one point.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every point. Tests that Set must defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Enabled reports whether the named point is currently armed (whether
// or not it has started triggering).
func Enabled(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[name]
	return ok
}

// Fire records one hit on the named point and reports whether the
// fault triggers on this hit, returning the point's Spec so latency
// points can read their Delay. Disarmed points never trigger.
func Fire(name string) (Spec, bool) {
	if !armed.Load() {
		return Spec{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return Spec{}, false
	}
	p.hits++
	if p.hits <= p.spec.After {
		return Spec{}, false
	}
	if p.spec.Times > 0 && p.done >= p.spec.Times {
		return Spec{}, false
	}
	p.done++
	return p.spec, true
}

// Parse arms points from a JEM_FAULTS-format string:
// "name[:key=value[,key=value...]][;name...]" with keys after (int),
// times (int) and delay (time.Duration).
func Parse(s string) error {
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, args, _ := strings.Cut(item, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("empty fault name in %q", item)
		}
		var spec Spec
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return fmt.Errorf("fault %s: %q is not key=value", name, kv)
				}
				switch strings.TrimSpace(key) {
				case "after":
					n, err := strconv.Atoi(strings.TrimSpace(val))
					if err != nil {
						return fmt.Errorf("fault %s: after=%q: %v", name, val, err)
					}
					spec.After = n
				case "times":
					n, err := strconv.Atoi(strings.TrimSpace(val))
					if err != nil {
						return fmt.Errorf("fault %s: times=%q: %v", name, val, err)
					}
					spec.Times = n
				case "delay":
					d, err := time.ParseDuration(strings.TrimSpace(val))
					if err != nil {
						return fmt.Errorf("fault %s: delay=%q: %v", name, val, err)
					}
					spec.Delay = d
				default:
					return fmt.Errorf("fault %s: unknown key %q", name, key)
				}
			}
		}
		Set(name, spec)
	}
	return nil
}

// FlipFileByte flips one bit of the first nonzero byte at or past the
// middle of the file at path — the IndexByteFlip corruption. The file
// size is unchanged, so only a content check (an index checksum) can
// notice. Zero bytes are skipped because the out-of-core index layout
// zero-pads between page-aligned payloads, and a flipped pad byte is
// semantically invisible — not the corruption this fault exists to
// model.
func FlipFileByte(path string) (retErr error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return fmt.Errorf("fault: cannot corrupt empty file %s", path)
	}
	off := st.Size() / 2
	var b [1]byte
	for {
		if _, err := f.ReadAt(b[:], off); err != nil {
			return err
		}
		if b[0] != 0 || off == st.Size()-1 {
			break
		}
		off++
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return nil
}

// ErrInjectedRead is the error delivered by the ReaderErr point.
var ErrInjectedRead = fmt.Errorf("fault: injected read error")

// ErrNoSpace is the disk-full error delivered by the WriterENOSPC
// point; it wraps syscall.ENOSPC so errors.Is sees the real errno.
var ErrNoSpace = fmt.Errorf("fault: injected write failure: %w", syscall.ENOSPC)

// Reader wraps r with the ReaderShort and ReaderErr points, counting
// one hit per Read call. When no fault is armed at wrap time the
// original reader is returned unchanged (zero overhead).
func Reader(r io.Reader) io.Reader {
	if !Active() {
		return r
	}
	return &faultReader{r: r}
}

type faultReader struct{ r io.Reader }

func (f *faultReader) Read(p []byte) (int, error) {
	if _, ok := Fire(ReaderShort); ok {
		return 0, io.EOF
	}
	if _, ok := Fire(ReaderErr); ok {
		return 0, ErrInjectedRead
	}
	return f.r.Read(p)
}

// Writer wraps w with the WriterENOSPC and WriterSlow points, counting
// one hit per Write call. When no fault is armed at wrap time the
// original writer is returned unchanged.
func Writer(w io.Writer) io.Writer {
	if !Active() {
		return w
	}
	return &faultWriter{w: w}
}

type faultWriter struct{ w io.Writer }

func (f *faultWriter) Write(p []byte) (int, error) {
	if sp, ok := Fire(WriterSlow); ok {
		time.Sleep(sp.Delay)
	}
	if _, ok := Fire(WriterENOSPC); ok {
		return 0, ErrNoSpace
	}
	return f.w.Write(p)
}
