package fault

import (
	"fmt"
	"net"
	"time"
)

// The network-class injection points wired into the distributed shard
// serving path (internal/shardnet). They follow the same contract as
// the I/O points in fault.go: dormant until armed, deterministic
// after/times counting, and identity wrappers when disarmed.
const (
	// ConnDialErr makes the coordinator's next dial attempt fail with
	// ErrInjectedDial — an unreachable shard server or refused port.
	ConnDialErr = "conn.dial.err"
	// ConnReadStall stalls each wrapped connection read by Spec.Delay —
	// a congested link or a shard server stuck in GC. The read still
	// completes, so this exercises deadline and hedge paths rather than
	// error paths.
	ConnReadStall = "conn.read.stall"
	// ConnWriteErr makes a wrapped connection write fail with
	// ErrInjectedWrite — a peer that closed mid-request.
	ConnWriteErr = "conn.write.err"
	// ShardDown is fired by the shard server's query handler: when it
	// triggers, the server drops the connection without replying, as a
	// crashed shard process would. The coordinator sees an abrupt EOF
	// and must retry, hedge, or degrade.
	ShardDown = "shard.down"
)

// ErrInjectedDial is the error delivered by the ConnDialErr point.
var ErrInjectedDial = fmt.Errorf("fault: injected dial error")

// ErrInjectedWrite is the error delivered by the ConnWriteErr point.
var ErrInjectedWrite = fmt.Errorf("fault: injected connection write error")

// Conn wraps c with the ConnReadStall and ConnWriteErr points,
// counting one hit per Read/Write call. When no fault is armed at wrap
// time the original connection is returned unchanged (zero overhead).
func Conn(c net.Conn) net.Conn {
	if !Active() {
		return c
	}
	return &faultConn{Conn: c}
}

type faultConn struct{ net.Conn }

func (f *faultConn) Read(p []byte) (int, error) {
	if sp, ok := Fire(ConnReadStall); ok {
		time.Sleep(sp.Delay)
	}
	return f.Conn.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) {
	if _, ok := Fire(ConnWriteErr); ok {
		return 0, ErrInjectedWrite
	}
	return f.Conn.Write(p)
}
