package fault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestFireAfterTimes(t *testing.T) {
	defer Reset()
	Set("p", Spec{After: 2, Times: 3})
	var fired []bool
	for i := 0; i < 8; i++ {
		_, ok := Fire("p")
		fired = append(fired, ok)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d: fired=%v want %v (all: %v)", i+1, fired[i], want[i], fired)
		}
	}
}

func TestFireUnlimitedTimes(t *testing.T) {
	defer Reset()
	Set("p", Spec{After: 1})
	if _, ok := Fire("p"); ok {
		t.Fatal("fired before After was reached")
	}
	for i := 0; i < 5; i++ {
		if _, ok := Fire("p"); !ok {
			t.Fatalf("hit %d after threshold did not fire", i)
		}
	}
}

func TestActiveAndReset(t *testing.T) {
	defer Reset()
	if Active() {
		t.Fatal("registry armed before any Set")
	}
	Set("a", Spec{})
	Set("b", Spec{})
	if !Active() || !Enabled("a") {
		t.Fatal("Set did not arm the registry")
	}
	Clear("a")
	if Enabled("a") || !Active() {
		t.Fatal("Clear removed too much or too little")
	}
	Reset()
	if Active() || Enabled("b") {
		t.Fatal("Reset left the registry armed")
	}
	if _, ok := Fire("b"); ok {
		t.Fatal("disarmed point fired")
	}
}

func TestParse(t *testing.T) {
	defer Reset()
	err := Parse("worker.panic:after=2,times=1; writer.slow:delay=10ms ;reader.err")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{WorkerPanic, WriterSlow, ReaderErr} {
		if !Enabled(name) {
			t.Errorf("%s not armed", name)
		}
	}
	if _, ok := Fire(WorkerPanic); ok {
		t.Fatal("after=2 fired on first hit")
	}
	Fire(WorkerPanic)
	if sp, ok := Fire(WorkerPanic); !ok || sp.Times != 1 {
		t.Fatalf("third hit: ok=%v spec=%+v", ok, sp)
	}
	if sp, ok := Fire(WriterSlow); !ok || sp.Delay != 10*time.Millisecond {
		t.Fatalf("writer.slow: ok=%v delay=%v", ok, sp.Delay)
	}
}

func TestParseErrors(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"p:after=x",
		"p:delay=fast",
		"p:bogus=1",
		"p:after",
		":after=1",
	} {
		if err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestReaderWrappers(t *testing.T) {
	defer Reset()
	// Disarmed: Reader must return its argument unchanged.
	src := strings.NewReader("hello")
	if r := Reader(src); r != io.Reader(src) {
		t.Fatal("disarmed Reader wrapped anyway")
	}
	// Short read: EOF after one Read call.
	Set(ReaderShort, Spec{After: 1})
	r := Reader(io.MultiReader(strings.NewReader("aaaa"), strings.NewReader("bbbb")))
	buf := make([]byte, 4)
	if n, err := r.Read(buf); err != nil || n != 4 {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("second read: err=%v, want injected EOF", err)
	}
	Reset()
	// Read error.
	Set(ReaderErr, Spec{})
	r = Reader(strings.NewReader("aaaa"))
	if _, err := r.Read(buf); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("err=%v, want ErrInjectedRead", err)
	}
}

func TestWriterWrappers(t *testing.T) {
	defer Reset()
	var dst bytes.Buffer
	if w := Writer(&dst); w != io.Writer(&dst) {
		t.Fatal("disarmed Writer wrapped anyway")
	}
	Set(WriterENOSPC, Spec{After: 1})
	w := Writer(&dst)
	if _, err := w.Write([]byte("row1\n")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err := w.Write([]byte("row2\n"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err=%v, want ENOSPC", err)
	}
	if dst.String() != "row1\n" {
		t.Fatalf("dst=%q", dst.String())
	}
}

func TestFlipFileByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	orig := []byte("0123456789")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipFileByte(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("size changed: %d -> %d", len(orig), len(got))
	}
	if bytes.Equal(got, orig) {
		t.Fatal("file unchanged")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
}
