package sketch

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/kmer"
)

// Flat frozen-table payload: the out-of-core (JEMIDX06) encoding of a
// FrozenTable, laid out so the serving structures can be built over
// the raw bytes with zero copies. Where the streaming encoding
// (FrozenTable.Encode) is a compact wire format that must be decoded
// into freshly allocated arrays — and rebuilds the radix bucket
// directory afterwards — the flat payload IS the serving layout:
//
//	u32  trial count T
//	T ×  48-byte trial directory entry:
//	       u32 nwords   u32 npostings   u32 nbuckets   u32 shift
//	       u64 wordsOff u64 offsetsOff  u64 postingsOff u64 bucketsOff
//	8-aligned sections, offsets relative to the payload start:
//	       words     nwords   × u64
//	       offsets   nwords+1 × u32   (full array, leading 0 included)
//	       postings  npostings × {u32 subject, u32 anchor}
//	       buckets   nbuckets × u32   (the radix directory, serialized)
//
// Every section offset is 8-byte aligned, so when the payload itself
// sits at an aligned file offset (JEMIDX06 page-aligns each shard) an
// mmap'd view can alias the words/offsets/postings/buckets arrays
// directly — including the bucket directory, which the streaming
// format rebuilds on the heap at every load. On little-endian hosts a
// view therefore allocates nothing proportional to the table.
const (
	flatDirEntrySize = 48
	flatAlign        = 8
)

// flatTrialDir is one decoded directory entry.
type flatTrialDir struct {
	nwords    uint32
	npostings uint32
	nbuckets  uint32
	shift     uint32
	wordsOff  uint64
	offsets   uint64
	postings  uint64
	buckets   uint64
}

func align8(x int64) int64 { return (x + flatAlign - 1) &^ (flatAlign - 1) }

// flatLayout computes the directory and total payload size for this
// table. Shared by FlatSize and EncodeFlat so the two cannot drift.
func (ft *FrozenTable) flatLayout() ([]flatTrialDir, int64) {
	t := len(ft.trials)
	dirs := make([]flatTrialDir, t)
	off := align8(int64(4 + flatDirEntrySize*t))
	for i := range ft.trials {
		fb := &ft.trials[i]
		d := &dirs[i]
		d.nwords = uint32(len(fb.words))
		d.npostings = uint32(len(fb.postings))
		d.nbuckets = uint32(len(fb.buckets))
		d.shift = uint32(fb.shift)
		d.wordsOff = uint64(off)
		off += int64(len(fb.words)) * 8
		d.offsets = uint64(off)
		off = align8(off + int64(len(fb.offsets))*4)
		d.postings = uint64(off)
		off += int64(len(fb.postings)) * 8
		d.buckets = uint64(off)
		off = align8(off + int64(len(fb.buckets))*4)
	}
	return dirs, off
}

// FlatSize returns the exact byte size of EncodeFlat's output.
func (ft *FrozenTable) FlatSize() int64 {
	_, n := ft.flatLayout()
	return n
}

// EncodeFlat serializes the table into the flat payload layout,
// returning the backing buffer (alignment padding is zeroed).
func (ft *FrozenTable) EncodeFlat() []byte {
	dirs, size := ft.flatLayout()
	buf := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(buf, uint32(len(ft.trials)))
	for i := range dirs {
		d := &dirs[i]
		p := 4 + flatDirEntrySize*i
		le.PutUint32(buf[p:], d.nwords)
		le.PutUint32(buf[p+4:], d.npostings)
		le.PutUint32(buf[p+8:], d.nbuckets)
		le.PutUint32(buf[p+12:], d.shift)
		le.PutUint64(buf[p+16:], d.wordsOff)
		le.PutUint64(buf[p+24:], d.offsets)
		le.PutUint64(buf[p+32:], d.postings)
		le.PutUint64(buf[p+40:], d.buckets)
	}
	for i := range ft.trials {
		fb := &ft.trials[i]
		d := &dirs[i]
		p := int(d.wordsOff)
		for _, w := range fb.words {
			le.PutUint64(buf[p:], uint64(w))
			p += 8
		}
		p = int(d.offsets)
		for _, off := range fb.offsets {
			le.PutUint32(buf[p:], uint32(off))
			p += 4
		}
		p = int(d.postings)
		for _, pp := range fb.postings {
			le.PutUint32(buf[p:], uint32(pp.Subject))
			le.PutUint32(buf[p+4:], uint32(pp.Anchor))
			p += 8
		}
		p = int(d.buckets)
		for _, b := range fb.buckets {
			le.PutUint32(buf[p:], uint32(b))
			p += 4
		}
	}
	return buf
}

// parseFlatDirs decodes and bounds-checks the payload directory: every
// section must lie inside the payload, aligned sections must be
// aligned, and the counts must be mutually consistent. It does NOT
// validate section contents (validateFlatTrial does).
func parseFlatDirs(buf []byte) ([]flatTrialDir, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("sketch: flat payload too short (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	t := le.Uint32(buf)
	if t == 0 || t > 1<<20 {
		return nil, fmt.Errorf("sketch: implausible trial count %d", t)
	}
	if int64(len(buf)) < int64(4)+flatDirEntrySize*int64(t) {
		return nil, fmt.Errorf("sketch: flat payload truncated inside directory")
	}
	size := uint64(len(buf))
	dirs := make([]flatTrialDir, t)
	for i := range dirs {
		p := 4 + flatDirEntrySize*i
		d := &dirs[i]
		d.nwords = le.Uint32(buf[p:])
		d.npostings = le.Uint32(buf[p+4:])
		d.nbuckets = le.Uint32(buf[p+8:])
		d.shift = le.Uint32(buf[p+12:])
		d.wordsOff = le.Uint64(buf[p+16:])
		d.offsets = le.Uint64(buf[p+24:])
		d.postings = le.Uint64(buf[p+32:])
		d.buckets = le.Uint64(buf[p+40:])
		if d.nwords > 1<<31 || d.npostings > 1<<31 || d.nbuckets > 1<<31 || d.shift > 64 {
			return nil, fmt.Errorf("sketch: flat trial %d has implausible counts", i)
		}
		if d.wordsOff%flatAlign != 0 || d.postings%flatAlign != 0 {
			return nil, fmt.Errorf("sketch: flat trial %d sections misaligned", i)
		}
		nw, np, nb := uint64(d.nwords), uint64(d.npostings), uint64(d.nbuckets)
		if d.wordsOff+nw*8 > size ||
			d.offsets+((nw+1)*4) > size ||
			d.postings+np*8 > size ||
			d.buckets+nb*4 > size {
			return nil, fmt.Errorf("sketch: flat trial %d sections exceed payload (%d bytes)", i, size)
		}
	}
	return dirs, nil
}

// validateFlatTrial enforces the invariants Lookup relies on — words
// strictly sorted, offsets monotone and ending at npostings, bucket
// bounds inside the word array — so a corrupt payload fails the load
// instead of panicking mid-query. The full pass costs one read of the
// sections, which the CRC verification pays anyway.
func validateFlatTrial(ti int, fb *frozenBin, np uint32) error {
	for i := 1; i < len(fb.words); i++ {
		if fb.words[i-1] >= fb.words[i] {
			return fmt.Errorf("sketch: flat trial %d words not strictly sorted", ti)
		}
	}
	if len(fb.offsets) != len(fb.words)+1 {
		return fmt.Errorf("sketch: flat trial %d has %d offsets for %d words", ti, len(fb.offsets), len(fb.words))
	}
	if fb.offsets[0] != 0 {
		return fmt.Errorf("sketch: flat trial %d offsets do not start at 0", ti)
	}
	for i := 1; i < len(fb.offsets); i++ {
		if fb.offsets[i] < fb.offsets[i-1] || uint32(fb.offsets[i]) > np {
			return fmt.Errorf("sketch: flat trial %d offsets not monotone", ti)
		}
	}
	if fb.offsets[len(fb.offsets)-1] != int32(np) {
		return fmt.Errorf("sketch: flat trial %d offsets end at %d, want %d", ti, fb.offsets[len(fb.offsets)-1], np)
	}
	if n := len(fb.buckets); n > 0 {
		if fb.buckets[0] != 0 || fb.buckets[n-1] != int32(len(fb.words)) {
			return fmt.Errorf("sketch: flat trial %d bucket bounds out of range", ti)
		}
		for i := 1; i < n; i++ {
			if fb.buckets[i] < fb.buckets[i-1] || int(fb.buckets[i]) > len(fb.words) {
				return fmt.Errorf("sketch: flat trial %d buckets not monotone", ti)
			}
		}
	} else if len(fb.words) > 0 {
		return fmt.Errorf("sketch: flat trial %d has words but no bucket directory", ti)
	}
	return nil
}

// FlatPayloadStats reads the trial and posting counts out of a flat
// payload's directory without building a table — the accounting peek
// a lazy (load-on-demand) shard uses before its first fault-in. The
// directory is bounds-checked but not checksum-verified; a corrupt
// payload either fails here or at fault-in, never silently.
func FlatPayloadStats(buf []byte) (trials, entries int, err error) {
	dirs, err := parseFlatDirs(buf)
	if err != nil {
		return 0, 0, err
	}
	for i := range dirs {
		entries += int(dirs[i].npostings)
	}
	return len(dirs), entries, nil
}

// hostLittleEndian reports whether this host matches the on-disk byte
// order; only then can a view alias the payload bytes directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ViewFlatFrozen builds a FrozenTable whose arrays alias buf — the
// zero-copy path over an mmap'd shard payload. buf must stay valid and
// immutable for the table's lifetime (the caller owns the mapping) and
// must be 8-byte aligned (mmap regions are page-aligned; JEMIDX06
// page-aligns every shard payload within the file). On big-endian
// hosts, or for an unaligned buffer, it falls back to the copying
// decoder — correctness is identical either way, only residency
// differs. The returned table reports its bytes as mapped, not
// resident (see MappedBytes).
func ViewFlatFrozen(buf []byte) (*FrozenTable, error) {
	if !hostLittleEndian || len(buf) == 0 ||
		uintptr(unsafe.Pointer(&buf[0]))%flatAlign != 0 {
		return DecodeFlatFrozen(buf)
	}
	dirs, err := parseFlatDirs(buf)
	if err != nil {
		return nil, err
	}
	ft := &FrozenTable{trials: make([]frozenBin, len(dirs)), mapped: true}
	for ti := range dirs {
		d := &dirs[ti]
		fb := &ft.trials[ti]
		fb.shift = uint(d.shift)
		if d.nwords > 0 {
			fb.words = unsafe.Slice((*kmer.Word)(unsafe.Pointer(&buf[d.wordsOff])), d.nwords)
		}
		fb.offsets = unsafe.Slice((*int32)(unsafe.Pointer(&buf[d.offsets])), d.nwords+1)
		if d.npostings > 0 {
			fb.postings = unsafe.Slice((*Posting)(unsafe.Pointer(&buf[d.postings])), d.npostings)
		}
		if d.nbuckets > 0 {
			fb.buckets = unsafe.Slice((*int32)(unsafe.Pointer(&buf[d.buckets])), d.nbuckets)
		}
		if err := validateFlatTrial(ti, fb, d.npostings); err != nil {
			return nil, err
		}
		ft.entries += int(d.npostings)
	}
	return ft, nil
}

// DecodeFlatFrozen decodes a flat payload into an owned, heap-resident
// FrozenTable (the memory-budget "heap" choice, and the portable
// fallback for hosts where views cannot alias the bytes).
func DecodeFlatFrozen(buf []byte) (*FrozenTable, error) {
	dirs, err := parseFlatDirs(buf)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	ft := &FrozenTable{trials: make([]frozenBin, len(dirs))}
	for ti := range dirs {
		d := &dirs[ti]
		fb := &ft.trials[ti]
		fb.shift = uint(d.shift)
		fb.words = make([]kmer.Word, d.nwords)
		for i := range fb.words {
			fb.words[i] = kmer.Word(le.Uint64(buf[d.wordsOff+uint64(i)*8:]))
		}
		fb.offsets = make([]int32, d.nwords+1)
		for i := range fb.offsets {
			fb.offsets[i] = int32(le.Uint32(buf[d.offsets+uint64(i)*4:]))
		}
		fb.postings = make([]Posting, d.npostings)
		for i := range fb.postings {
			p := d.postings + uint64(i)*8
			fb.postings[i] = Posting{
				Subject: int32(le.Uint32(buf[p:])),
				Anchor:  int32(le.Uint32(buf[p+4:])),
			}
		}
		fb.buckets = make([]int32, d.nbuckets)
		for i := range fb.buckets {
			fb.buckets[i] = int32(le.Uint32(buf[d.buckets+uint64(i)*4:]))
		}
		if d.nbuckets == 0 {
			fb.buckets = nil
		}
		if err := validateFlatTrial(ti, fb, d.npostings); err != nil {
			return nil, err
		}
		ft.entries += int(d.npostings)
	}
	return ft, nil
}
