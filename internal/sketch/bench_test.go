package sketch

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/kmer"
)

func benchSketcher(b *testing.B) *Sketcher {
	b.Helper()
	sk, err := NewSketcher(Defaults())
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func BenchmarkHashFamily(b *testing.B) {
	hf := NewHashFamily(30, 1)
	x := kmer.Word(0x1234_5678_9abc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 30; t++ {
			_ = hf.Hash(t, x)
		}
	}
}

func BenchmarkSubjectSketch(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(2))
	s := randDNA(rng, 100_000) // a long contig
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.SubjectSketch(s)
	}
}

func BenchmarkQuerySketch(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(3))
	seg := randDNA(rng, 1000) // one end segment
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.QuerySketch(seg)
	}
}

func benchPayloads(b *testing.B, ranks, subjectsPerRank int) (int, [][]byte) {
	b.Helper()
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(4))
	var payloads [][]byte
	subj := int32(0)
	for r := 0; r < ranks; r++ {
		tb := NewTable(sk.Params().T)
		for s := 0; s < subjectsPerRank; s++ {
			words, anchors := sk.SubjectSketchPositional(randDNA(rng, 3000))
			tb.InsertPositional(subj, words, anchors)
			subj++
		}
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		payloads = append(payloads, buf.Bytes())
	}
	return sk.Params().T, payloads
}

func BenchmarkFreezePayloads(b *testing.B) {
	t, payloads := benchPayloads(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FreezePayloads(t, payloads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeMergeHashTable(b *testing.B) {
	// The hash-map alternative to FreezePayloads, for comparison.
	t, payloads := benchPayloads(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable(t)
		for _, p := range payloads {
			if err := tb.DecodeInto(bytes.NewReader(p)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFrozenLookup(b *testing.B) {
	t, payloads := benchPayloads(b, 4, 16)
	ft, err := FreezePayloads(t, payloads)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	words := make([]kmer.Word, 1024)
	for i := range words {
		words[i] = kmer.Word(rng.Uint64() & (1<<32 - 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(i%t, words[i%len(words)])
	}
}
