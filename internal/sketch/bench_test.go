package sketch

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kmer"
)

func benchSketcher(b *testing.B) *Sketcher {
	b.Helper()
	sk, err := NewSketcher(Defaults())
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func BenchmarkHashFamily(b *testing.B) {
	hf := NewHashFamily(30, 1)
	x := kmer.Word(0x1234_5678_9abc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < 30; t++ {
			_ = hf.Hash(t, x)
		}
	}
}

func BenchmarkSubjectSketch(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(2))
	s := randDNA(rng, 100_000) // a long contig
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.SubjectSketch(s)
	}
}

func BenchmarkQuerySketch(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(3))
	seg := randDNA(rng, 1000) // one end segment
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.QuerySketch(seg)
	}
}

func benchPayloads(b *testing.B, ranks, subjectsPerRank int) (int, [][]byte) {
	b.Helper()
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(4))
	var payloads [][]byte
	subj := int32(0)
	for r := 0; r < ranks; r++ {
		tb := NewTable(sk.Params().T)
		for s := 0; s < subjectsPerRank; s++ {
			words, anchors := sk.SubjectSketchPositional(randDNA(rng, 3000))
			tb.InsertPositional(subj, words, anchors)
			subj++
		}
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		payloads = append(payloads, buf.Bytes())
	}
	return sk.Params().T, payloads
}

func BenchmarkFreezePayloads(b *testing.B) {
	t, payloads := benchPayloads(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FreezePayloads(t, payloads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeMergeHashTable(b *testing.B) {
	// The hash-map alternative to FreezePayloads, for comparison.
	t, payloads := benchPayloads(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable(t)
		for _, p := range payloads {
			if err := tb.DecodeInto(bytes.NewReader(p)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLookupFrozenVsMutable compares the two serving layouts on
// the same table at production-ish scale (≥100 indexed contigs): the
// sorted-array frozen form the sealed mapper serves from must not be
// slower than the Go-map form it replaced. The word mix is half hits
// (words actually in the table) and half misses, the realistic query
// profile.
func BenchmarkLookupFrozenVsMutable(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(6))
	tb := NewTable(sk.Params().T)
	for s := 0; s < 128; s++ {
		words, anchors := sk.SubjectSketchPositional(randDNA(rng, 3000))
		tb.InsertPositional(int32(s), words, anchors)
	}
	ft := tb.Freeze()
	var present []kmer.Word
	for t := 0; t < tb.T(); t++ {
		for w := range tb.trials[t] {
			present = append(present, w)
			if len(present) >= 512 {
				break
			}
		}
	}
	probes := make([]kmer.Word, 1024)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = present[rng.Intn(len(present))]
		} else {
			probes[i] = kmer.Word(rng.Uint64() & (1<<32 - 1))
		}
	}
	b.Run("mutable", func(b *testing.B) {
		var total int
		for i := 0; i < b.N; i++ {
			total += len(tb.Lookup(i%tb.T(), probes[i%len(probes)]))
		}
		_ = total
	})
	b.Run("frozen", func(b *testing.B) {
		var total int
		for i := 0; i < b.N; i++ {
			total += len(ft.Lookup(i%ft.T(), probes[i%len(probes)]))
		}
		_ = total
	})
}

// BenchmarkFreezeDirect measures the in-memory sealing path (what
// core.Mapper.Seal pays once at the end of indexing).
func BenchmarkFreezeDirect(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(7))
	tb := NewTable(sk.Params().T)
	for s := 0; s < 64; s++ {
		words, anchors := sk.SubjectSketchPositional(randDNA(rng, 3000))
		tb.InsertPositional(int32(s), words, anchors)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Freeze()
	}
}

func BenchmarkFrozenLookup(b *testing.B) {
	t, payloads := benchPayloads(b, 4, 16)
	ft, err := FreezePayloads(t, payloads)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	words := make([]kmer.Word, 1024)
	for i := range words {
		words[i] = kmer.Word(rng.Uint64() & (1<<32 - 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(i%t, words[i%len(words)])
	}
}

// BenchmarkShardedBuild measures FreezeSharded across shard counts —
// the concurrent partition+build path behind Options.Shards (compare
// the 1-shard row against BenchmarkFreezeDirect for the router's
// overhead).
func BenchmarkShardedBuild(b *testing.B) {
	sk := benchSketcher(b)
	rng := rand.New(rand.NewSource(7))
	tb := NewTable(sk.Params().T)
	for s := 0; s < 64; s++ {
		words, anchors := sk.SubjectSketchPositional(randDNA(rng, 3000))
		tb.InsertPositional(int32(s), words, anchors)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.FreezeSharded(p, 0)
			}
		})
	}
}
