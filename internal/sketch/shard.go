package sketch

import (
	"fmt"
	"sort"

	"repro/internal/kmer"
	"repro/internal/parallel"
)

// MaxShards bounds the shard count of a sharded sketch index. The
// bound exists for the same reason the other decode limits do: a shard
// count deserialized from an untrusted index file must not drive
// unbounded allocation. It is far above any useful partitioning (the
// paper's largest runs use 64 ranks).
const MaxShards = 1024

// ShardOf is the deterministic shard router: it maps a ⟨trial, word⟩
// lookup key to the shard that owns its posting list. The routing is a
// pure function of the key and the shard count — no registry, no
// rendezvous state — so a query side and an index built anywhere agree
// on placement as long as they agree on P. The hash is a splitmix64
// finalizer over the word XOR a trial-salted odd constant, giving a
// near-uniform spread even though sketch words share long prefixes.
//
//jem:hotpath
func ShardOf(t int, w kmer.Word, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(w) ^ (uint64(t)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ShardedFrozen is the partitioned form of the frozen sketch table:
// P independent FrozenTables, each owning the ⟨trial, word⟩ keys that
// ShardOf routes to it. Every posting list lives in exactly one shard,
// so a sharded table answers Lookup identically to the monolithic
// frozen table it was partitioned from; what sharding buys is
// parallelism (shards freeze, serialize, and load independently) and
// bounded per-shard memory.
type ShardedFrozen struct {
	shards []*FrozenTable
}

// NewShardedFrozen assembles a sharded table from per-shard frozen
// tables (the index loader's path). Every shard must carry the same
// trial count.
func NewShardedFrozen(shards []*FrozenTable) (*ShardedFrozen, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sketch: sharded table needs at least one shard")
	}
	if len(shards) > MaxShards {
		return nil, fmt.Errorf("sketch: %d shards exceeds limit %d", len(shards), MaxShards)
	}
	t := shards[0].T()
	for i, ft := range shards {
		if ft == nil {
			return nil, fmt.Errorf("sketch: shard %d is nil", i)
		}
		if ft.T() != t {
			return nil, fmt.Errorf("sketch: shard %d has %d trials, shard 0 has %d", i, ft.T(), t)
		}
	}
	return &ShardedFrozen{shards: shards}, nil
}

// NumShards returns the shard count P.
func (sf *ShardedFrozen) NumShards() int { return len(sf.shards) }

// T returns the number of trial bins (identical across shards).
func (sf *ShardedFrozen) T() int { return sf.shards[0].T() }

// Entries returns the total posting count across all shards.
func (sf *ShardedFrozen) Entries() int {
	n := 0
	for _, ft := range sf.shards {
		n += ft.Entries()
	}
	return n
}

// MemBytes returns the approximate resident size across all shards
// (see FrozenTable.MemBytes).
func (sf *ShardedFrozen) MemBytes() int64 {
	var n int64
	for _, ft := range sf.shards {
		n += ft.MemBytes()
	}
	return n
}

// Shard returns shard i's frozen table (for serialization and for the
// scatter-gather query path, which batches lookups per shard).
func (sf *ShardedFrozen) Shard(i int) *FrozenTable { return sf.shards[i] }

// Lookup routes ⟨t, w⟩ to its shard and returns the posting list (nil
// when absent). The returned slice must not be modified.
//
//jem:hotpath
func (sf *ShardedFrozen) Lookup(t int, w kmer.Word) []Posting {
	return sf.shards[ShardOf(t, w, len(sf.shards))].Lookup(t, w)
}

// FreezeSharded partitions the mutable table into `shards` frozen
// shards built concurrently with up to `workers` goroutines (≤0 means
// GOMAXPROCS). Each ⟨trial, word⟩ posting list is routed to exactly
// one shard by ShardOf, so for any P the sharded table answers every
// lookup with byte-identical postings to Freeze's monolithic result.
func (tb *Table) FreezeSharded(shards, workers int) *ShardedFrozen {
	return tb.FreezeShardedTraced(shards, workers, nil)
}

// FreezeShardedTraced is FreezeSharded with a per-shard observation
// hook: when trace is non-nil each shard's build runs inside
// trace(shard, fn) on its worker goroutine, which is how the facade
// attaches per-shard build spans without this package knowing about
// the observability layer.
func (tb *Table) FreezeShardedTraced(shards, workers int, trace func(shard int, fn func())) *ShardedFrozen {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	t := tb.T()
	// Partition pass: per trial, split the word set by destination
	// shard. Trials are independent, so the pass parallelizes over
	// trials; distinct goroutines write distinct parts[*][ti] slots.
	parts := make([][][]kmer.Word, shards)
	for s := range parts {
		parts[s] = make([][]kmer.Word, t)
	}
	parallel.ForEach(t, workers, func(ti int) {
		for w := range tb.trials[ti] {
			sd := ShardOf(ti, w, shards)
			parts[sd][ti] = append(parts[sd][ti], w)
		}
	})
	// Build pass: shards are disjoint, so they freeze concurrently.
	out := make([]*FrozenTable, shards)
	parallel.ForEach(shards, workers, func(sd int) {
		if trace != nil {
			trace(sd, func() { out[sd] = tb.freezeSubset(parts[sd]) })
		} else {
			out[sd] = tb.freezeSubset(parts[sd])
		}
	})
	return &ShardedFrozen{shards: out}
}

// freezeSubset freezes the given per-trial word subsets (which it
// sorts in place) into one FrozenTable, pulling posting lists from the
// mutable table. Freeze and FreezeSharded both bottom out here.
func (tb *Table) freezeSubset(words [][]kmer.Word) *FrozenTable {
	ft := &FrozenTable{trials: make([]frozenBin, tb.T())}
	for ti := range tb.trials {
		bin := tb.trials[ti]
		ws := words[ti]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		n := 0
		for _, w := range ws {
			n += len(bin[w])
		}
		fb := &ft.trials[ti]
		fb.words = ws
		fb.offsets = make([]int32, 1, len(ws)+1)
		fb.postings = make([]Posting, 0, n)
		for _, w := range ws {
			fb.postings = append(fb.postings, bin[w]...)
			fb.offsets = append(fb.offsets, int32(len(fb.postings)))
		}
		fb.buildIndex()
		ft.entries += len(fb.postings)
	}
	return ft
}
