package sketch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kmer"
	"repro/internal/parallel"
)

// MaxShards bounds the shard count of a sharded sketch index. The
// bound exists for the same reason the other decode limits do: a shard
// count deserialized from an untrusted index file must not drive
// unbounded allocation. It is far above any useful partitioning (the
// paper's largest runs use 64 ranks).
const MaxShards = 1024

// ShardOf is the deterministic shard router: it maps a ⟨trial, word⟩
// lookup key to the shard that owns its posting list. The routing is a
// pure function of the key and the shard count — no registry, no
// rendezvous state — so a query side and an index built anywhere agree
// on placement as long as they agree on P. The hash is a splitmix64
// finalizer over the word XOR a trial-salted odd constant, giving a
// near-uniform spread even though sketch words share long prefixes.
//
//jem:hotpath
func ShardOf(t int, w kmer.Word, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(w) ^ (uint64(t)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ShardedFrozen is the partitioned form of the frozen sketch table:
// P independent FrozenTables, each owning the ⟨trial, word⟩ keys that
// ShardOf routes to it. Every posting list lives in exactly one shard,
// so a sharded table answers Lookup identically to the monolithic
// frozen table it was partitioned from; what sharding buys is
// parallelism (shards freeze, serialize, and load independently) and
// bounded per-shard memory.
type ShardedFrozen struct {
	shards []*FrozenTable
	// lazy, when non-nil, is parallel to shards: position i holds either
	// a materialized table in shards[i] (lazy[i] nil) or a load-on-demand
	// slot in lazy[i] (shards[i] nil) that faults the shard in — CRC
	// verification included — on its first query. Built by
	// NewLazyShardedFrozen for the memory-budgeted index open.
	lazy []*LazyShard
	// trials caches T so a lazy table answers T() without faulting a
	// shard in; 0 means "ask shard 0" (the fully materialized case).
	trials int
}

// LazyShard is one load-on-demand shard slot: the loader runs exactly
// once, on the shard's first query, and its outcome — table or error —
// is sticky for the table's lifetime. bytes and entries carry the
// accounting the slot reports before materialization (the mapped
// payload size and the directory's posting count).
type LazyShard struct {
	load    func() (*FrozenTable, error)
	bytes   int64
	entries int

	once sync.Once
	done atomic.Bool
	ft   *FrozenTable
	err  error
}

// NewLazyShard builds a load-on-demand slot. load must be safe to call
// from any goroutine (it runs under the slot's once) and should verify
// the payload's checksum before building the table.
func NewLazyShard(bytes int64, entries int, load func() (*FrozenTable, error)) *LazyShard {
	return &LazyShard{load: load, bytes: bytes, entries: entries}
}

// materialize runs the loader once and returns the sticky outcome.
func (ls *LazyShard) materialize() (*FrozenTable, error) {
	ls.once.Do(func() {
		ls.ft, ls.err = ls.load()
		ls.done.Store(true)
	})
	return ls.ft, ls.err
}

// snapshot returns the slot's table when already materialized (nil
// otherwise) without triggering a fault-in — the accounting read.
func (ls *LazyShard) snapshot() (*FrozenTable, bool) {
	if !ls.done.Load() {
		return nil, false
	}
	return ls.ft, true
}

// NewShardedFrozen assembles a sharded table from per-shard frozen
// tables (the index loader's path). Every shard must carry the same
// trial count.
func NewShardedFrozen(shards []*FrozenTable) (*ShardedFrozen, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sketch: sharded table needs at least one shard")
	}
	if len(shards) > MaxShards {
		return nil, fmt.Errorf("sketch: %d shards exceeds limit %d", len(shards), MaxShards)
	}
	t := shards[0].T()
	for i, ft := range shards {
		if ft == nil {
			return nil, fmt.Errorf("sketch: shard %d is nil", i)
		}
		if ft.T() != t {
			return nil, fmt.Errorf("sketch: shard %d has %d trials, shard 0 has %d", i, ft.T(), t)
		}
	}
	return &ShardedFrozen{shards: shards, trials: t}, nil
}

// NewLazyShardedFrozen assembles a sharded table in which each
// position holds either an eagerly materialized table (eager[i]) or a
// load-on-demand slot (lazy[i]) — exactly one of the two. trials is
// the trial count every shard must carry (taken from the index
// manifest, since lazy shards cannot be asked before fault-in). A
// single-shard table must not be lazy: the non-scatter-gather lookup
// path has no way to surface a fault-in failure (callers enforce this;
// see core's memory-mode planner).
func NewLazyShardedFrozen(trials int, eager []*FrozenTable, lazy []*LazyShard) (*ShardedFrozen, error) {
	if len(eager) != len(lazy) {
		return nil, fmt.Errorf("sketch: eager/lazy shard slices disagree: %d vs %d", len(eager), len(lazy))
	}
	if len(eager) == 0 {
		return nil, fmt.Errorf("sketch: sharded table needs at least one shard")
	}
	if len(eager) > MaxShards {
		return nil, fmt.Errorf("sketch: %d shards exceeds limit %d", len(eager), MaxShards)
	}
	if trials <= 0 {
		return nil, fmt.Errorf("sketch: lazy sharded table needs a positive trial count, got %d", trials)
	}
	anyLazy := false
	for i := range eager {
		switch {
		case eager[i] != nil && lazy[i] != nil:
			return nil, fmt.Errorf("sketch: shard %d is both eager and lazy", i)
		case eager[i] == nil && lazy[i] == nil:
			return nil, fmt.Errorf("sketch: shard %d is neither eager nor lazy", i)
		case eager[i] != nil && eager[i].T() != trials:
			return nil, fmt.Errorf("sketch: shard %d has %d trials, manifest says %d", i, eager[i].T(), trials)
		case lazy[i] != nil:
			anyLazy = true
		}
	}
	if !anyLazy {
		return NewShardedFrozen(eager)
	}
	return &ShardedFrozen{shards: eager, lazy: lazy, trials: trials}, nil
}

// NumShards returns the shard count P.
func (sf *ShardedFrozen) NumShards() int { return len(sf.shards) }

// T returns the number of trial bins (identical across shards).
func (sf *ShardedFrozen) T() int {
	if sf.trials > 0 {
		return sf.trials
	}
	return sf.shards[0].T()
}

// Entries returns the total posting count across all shards. Lazy
// shards report their directory's count without faulting in.
func (sf *ShardedFrozen) Entries() int {
	n := 0
	for i, ft := range sf.shards {
		if ft != nil {
			n += ft.Entries()
			continue
		}
		if sf.lazy != nil && sf.lazy[i] != nil {
			n += sf.lazy[i].entries
		}
	}
	return n
}

// MemBytes returns the approximate total size across all shards,
// resident and mapped together (see FrozenTable.MemBytes). Reading it
// never faults a lazy shard in.
func (sf *ShardedFrozen) MemBytes() int64 {
	return sf.ResidentBytes() + sf.MappedBytes()
}

// ResidentBytes returns the private heap portion of the table: decoded
// shards count fully, mapped views and unfaulted lazy shards count 0.
func (sf *ShardedFrozen) ResidentBytes() int64 {
	var n int64
	for i, ft := range sf.shards {
		if ft != nil {
			n += ft.ResidentBytes()
			continue
		}
		if sf.lazy == nil || sf.lazy[i] == nil {
			continue
		}
		if mt, ok := sf.lazy[i].snapshot(); ok && mt != nil {
			n += mt.ResidentBytes()
		}
	}
	return n
}

// MappedBytes returns the mmap-aliasing portion of the table: each
// mapped view's arrays, plus the full payload size of every lazy slot
// (materialized or not — the mapping exists either way).
func (sf *ShardedFrozen) MappedBytes() int64 {
	var n int64
	for i, ft := range sf.shards {
		if ft != nil {
			n += ft.MappedBytes()
			continue
		}
		if sf.lazy != nil && sf.lazy[i] != nil {
			n += sf.lazy[i].bytes
		}
	}
	return n
}

// Shard returns shard i's frozen table (for serialization and for the
// scatter-gather query path, which batches lookups per shard). On a
// lazy table it forces the shard's fault-in and returns nil when that
// fails; error-aware callers use ShardChecked.
func (sf *ShardedFrozen) Shard(i int) *FrozenTable {
	ft, _ := sf.ShardChecked(i)
	return ft
}

// ShardChecked returns shard i's frozen table, materializing a lazy
// shard on first use. A fault-in failure (checksum mismatch, corrupt
// payload) is sticky: every subsequent call for that shard returns the
// same error.
func (sf *ShardedFrozen) ShardChecked(i int) (*FrozenTable, error) {
	if sf.lazy != nil {
		if ls := sf.lazy[i]; ls != nil {
			return ls.materialize()
		}
	}
	return sf.shards[i], nil
}

// Lookup routes ⟨t, w⟩ to its shard and returns the posting list (nil
// when absent). The returned slice must not be modified. Only the
// scatter-gather path (which uses ShardChecked directly) can surface a
// lazy fault-in failure; this single-probe path treats a failed shard
// as absent — acceptable because single-shard tables are never built
// lazy and multi-shard queries do not come through here.
//
//jem:hotpath
func (sf *ShardedFrozen) Lookup(t int, w kmer.Word) []Posting {
	ft, err := sf.ShardChecked(ShardOf(t, w, len(sf.shards)))
	if err != nil || ft == nil {
		return nil
	}
	return ft.Lookup(t, w)
}

// FreezeSharded partitions the mutable table into `shards` frozen
// shards built concurrently with up to `workers` goroutines (≤0 means
// GOMAXPROCS). Each ⟨trial, word⟩ posting list is routed to exactly
// one shard by ShardOf, so for any P the sharded table answers every
// lookup with byte-identical postings to Freeze's monolithic result.
func (tb *Table) FreezeSharded(shards, workers int) *ShardedFrozen {
	return tb.FreezeShardedTraced(shards, workers, nil)
}

// FreezeShardedTraced is FreezeSharded with a per-shard observation
// hook: when trace is non-nil each shard's build runs inside
// trace(shard, fn) on its worker goroutine, which is how the facade
// attaches per-shard build spans without this package knowing about
// the observability layer.
func (tb *Table) FreezeShardedTraced(shards, workers int, trace func(shard int, fn func())) *ShardedFrozen {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	t := tb.T()
	// Partition pass: per trial, split the word set by destination
	// shard. Trials are independent, so the pass parallelizes over
	// trials; distinct goroutines write distinct parts[*][ti] slots.
	parts := make([][][]kmer.Word, shards)
	for s := range parts {
		parts[s] = make([][]kmer.Word, t)
	}
	parallel.ForEach(t, workers, func(ti int) {
		for w := range tb.trials[ti] {
			sd := ShardOf(ti, w, shards)
			parts[sd][ti] = append(parts[sd][ti], w)
		}
	})
	// Build pass: shards are disjoint, so they freeze concurrently.
	out := make([]*FrozenTable, shards)
	parallel.ForEach(shards, workers, func(sd int) {
		if trace != nil {
			trace(sd, func() { out[sd] = tb.freezeSubset(parts[sd]) })
		} else {
			out[sd] = tb.freezeSubset(parts[sd])
		}
	})
	return &ShardedFrozen{shards: out, trials: t}
}

// freezeSubset freezes the given per-trial word subsets (which it
// sorts in place) into one FrozenTable, pulling posting lists from the
// mutable table. Freeze and FreezeSharded both bottom out here.
func (tb *Table) freezeSubset(words [][]kmer.Word) *FrozenTable {
	ft := &FrozenTable{trials: make([]frozenBin, tb.T())}
	for ti := range tb.trials {
		bin := tb.trials[ti]
		ws := words[ti]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		n := 0
		for _, w := range ws {
			n += len(bin[w])
		}
		fb := &ft.trials[ti]
		fb.words = ws
		fb.offsets = make([]int32, 1, len(ws)+1)
		fb.postings = make([]Posting, 0, n)
		for _, w := range ws {
			fb.postings = append(fb.postings, bin[w]...)
			fb.offsets = append(fb.offsets, int32(len(fb.postings)))
		}
		fb.buildIndex()
		ft.entries += len(fb.postings)
	}
	return ft
}
