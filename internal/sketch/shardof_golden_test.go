package sketch

import (
	"testing"

	"repro/internal/kmer"
)

// TestShardOfGolden pins ShardOf's exact outputs. The routing is a
// distributed placement contract, not an implementation detail: a
// coordinator and a jem-shardd fleet built from the same index must
// agree on which server owns every ⟨trial, word⟩ key, and every
// JEMIDX05 index ever written bakes the placement into its shard
// payloads. Changing the hash silently would make old indexes and
// running fleets route probes to shards that do not own them — this
// test makes such a change loud. If you MUST change the routing, bump
// the index format magic so old layouts are not misread.
func TestShardOfGolden(t *testing.T) {
	trials := []int{0, 1, 7, 29}
	words := []kmer.Word{0, 1, 0xdeadbeef, 0x123456789abcdef0 & ((1 << 62) - 1), 42}
	golden := []struct {
		shards int
		want   []int
	}{
		{2, []int{1, 0, 1, 1, 1, 0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1}},
		{4, []int{3, 0, 1, 3, 1, 0, 3, 2, 3, 0, 0, 1, 1, 1, 3, 2, 2, 1, 2, 1}},
		{8, []int{7, 0, 1, 3, 5, 4, 7, 6, 7, 0, 4, 5, 5, 5, 3, 2, 2, 1, 6, 5}},
		{64, []int{47, 32, 1, 59, 21, 52, 39, 22, 55, 48, 60, 53, 13, 45, 3, 50, 10, 49, 38, 45}},
		{1024, []int{431, 32, 129, 443, 661, 500, 103, 598, 695, 432, 828, 373, 973, 365, 451, 114, 906, 625, 486, 45}},
	}
	for _, g := range golden {
		i := 0
		for _, tr := range trials {
			for _, w := range words {
				if got := ShardOf(tr, w, g.shards); got != g.want[i] {
					t.Errorf("ShardOf(%d, %#x, %d) = %d, want %d (routing contract broken — see test comment)",
						tr, uint64(w), g.shards, got, g.want[i])
				}
				i++
			}
		}
	}
	// Degenerate shard counts route everything to shard 0.
	for _, p := range []int{0, 1, -3} {
		if got := ShardOf(5, 12345, p); got != 0 {
			t.Errorf("ShardOf(5, 12345, %d) = %d, want 0", p, got)
		}
	}
}
