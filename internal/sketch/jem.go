package sketch

import (
	"fmt"

	"repro/internal/kmer"
	"repro/internal/minimizer"
)

// Word is the packed-k-mer type sketches are made of, re-exported so
// callers of this package do not need to import kmer directly.
type Word = kmer.Word

// Params configures the JEM sketcher. The defaults mirror the paper's
// software configuration (§IV-A): k=16, w=100, T=30, ℓ=1000.
type Params struct {
	K    int   // k-mer size
	W    int   // minimizer window size (in k-mers)
	T    int   // number of random trials / hash functions
	L    int   // interval and end-segment length ℓ, in bases
	Seed int64 // RNG seed for the hash family
	// Order is the minimizer ordering (default minimizer.OrderLex,
	// the paper's lexicographic choice; OrderHash is exposed for
	// ablation).
	Order minimizer.Ordering
}

// Defaults returns the paper's default parameters.
func Defaults() Params {
	return Params{K: 16, W: 100, T: 30, L: 1000, Seed: 1}
}

// Validate checks parameter sanity. Upper bounds exist so that
// parameters deserialized from an untrusted index file cannot drive
// unbounded allocations: T sizes the hash family and every sketch
// (the paper uses ≤ 150), and W/L only make sense at genomic scales.
func (p Params) Validate() error {
	if err := (minimizer.Params{K: p.K, W: p.W}).Validate(); err != nil {
		return err
	}
	if p.T <= 0 || p.T > 1<<16 {
		return fmt.Errorf("sketch: T=%d out of range [1,%d]", p.T, 1<<16)
	}
	if p.W > 1<<26 {
		return fmt.Errorf("sketch: w=%d implausibly large", p.W)
	}
	if p.L < p.K || p.L > 1<<30 {
		return fmt.Errorf("sketch: interval length l=%d out of range [k=%d,2^30]", p.L, p.K)
	}
	return nil
}

// Sketcher turns sequences into JEM sketches. It is safe for
// concurrent use: all state is immutable after construction except the
// scratch buffers, which live in per-call stack frames.
type Sketcher struct {
	p  Params
	mp minimizer.Params
	hf *HashFamily
}

// NewSketcher builds a Sketcher, generating the T-hash family from
// p.Seed.
func NewSketcher(p Params) (*Sketcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sketcher{
		p:  p,
		mp: minimizer.Params{K: p.K, W: p.W, Order: p.Order},
		hf: NewHashFamily(p.T, p.Seed),
	}, nil
}

// Params returns the sketcher's configuration.
func (s *Sketcher) Params() Params { return s.p }

// Family exposes the underlying hash family (shared with baselines so
// comparisons use identical trials).
func (s *Sketcher) Family() *HashFamily { return s.hf }

// SubjectSketch implements Algorithm 1 (Sketch_byJEM) for a subject
// sequence: it slides an interval of ℓ bases over the position-sorted
// minimizer list Mo(s,w) — one interval anchored at each minimizer —
// and for every trial t records the k-mer minimizing h_t within the
// interval. The result is one slice of sketch words per trial, each
// free of consecutive duplicates (and, by the contiguity of a
// minimizer's reign as interval minimum, free of duplicates entirely
// for a fixed originating position).
//
// The per-trial sliding minimum is computed with a monotone deque, so
// the whole sketch costs O(|Mo|·T) instead of the naive
// O(|Mo|·T·interval) — this is the "efficient implementation" the
// paper's complexity analysis assumes.
func (s *Sketcher) SubjectSketch(sequence []byte) [][]kmer.Word {
	words, _ := s.sketchTuples(minimizer.Extract(sequence, s.mp))
	return words
}

// SubjectSketchPositional is SubjectSketch plus, per emitted word, the
// position of the interval anchor (the minimizer at which the word
// first became the interval minimum). The two return values are
// parallel per trial.
func (s *Sketcher) SubjectSketchPositional(sequence []byte) (words [][]kmer.Word, anchors [][]int32) {
	return s.sketchTuples(minimizer.Extract(sequence, s.mp))
}

// SubjectSketchTuples is SubjectSketch for a caller that already has
// the minimizer list (avoids re-extraction in pipelines that need both).
func (s *Sketcher) SubjectSketchTuples(tuples []minimizer.Tuple) [][]kmer.Word {
	words, _ := s.sketchTuples(tuples)
	return words
}

type hentry struct {
	h   uint64
	w   kmer.Word
	idx int
}

func less(a, b hentry) bool {
	if a.h != b.h {
		return a.h < b.h
	}
	return a.w < b.w
}

// sketchTuples is the shared subject-sketch inner loop: per trial, a
// monotone-deque sliding minimum over the interval windows.
//
//jem:hotpath
func (s *Sketcher) sketchTuples(tuples []minimizer.Tuple) ([][]kmer.Word, [][]int32) {
	out := make([][]kmer.Word, s.p.T)
	anchors := make([][]int32, s.p.T)
	if len(tuples) == 0 {
		return out, anchors
	}
	n := len(tuples)
	// end[i] = one past the last tuple with Pos <= Pos[i] + L.
	end := make([]int, n)
	j := 0
	for i := 0; i < n; i++ {
		if j < i {
			j = i
		}
		limit := tuples[i].Pos + int32(s.p.L)
		for j < n && tuples[j].Pos <= limit {
			j++
		}
		end[i] = j
	}

	hashes := make([]uint64, n)
	var deque []hentry
	for t := 0; t < s.p.T; t++ {
		for i, tp := range tuples {
			hashes[i] = s.hf.Hash(t, tp.Kmer)
		}
		deque = deque[:0]
		head := 0
		filled := 0 // tuples pushed so far
		var last kmer.Word
		haveLast := false
		for i := 0; i < n; i++ {
			// Extend the window to end[i].
			for ; filled < end[i]; filled++ {
				e := hentry{h: hashes[filled], w: tuples[filled].Kmer, idx: filled}
				for len(deque) > head && !less(deque[len(deque)-1], e) {
					deque = deque[:len(deque)-1]
				}
				deque = append(deque, e)
			}
			// Drop candidates before the window start i.
			for head < len(deque) && deque[head].idx < i {
				head++
			}
			if head > 64 && head*2 > len(deque) {
				m := copy(deque, deque[head:])
				deque = deque[:m]
				head = 0
			}
			min := deque[head].w
			if !haveLast || min != last {
				out[t] = append(out[t], min)
				// Anchor the sketch word at its own minimizer
				// position (not the interval start): position votes
				// against the query-side word position then localize
				// the mapping directly.
				anchors[t] = append(anchors[t], tuples[deque[head].idx].Pos)
				last, haveLast = min, true
			}
		}
	}
	return out, anchors
}

// subjectSketchNaive is the direct transliteration of Algorithm 1,
// kept as the reference implementation the optimized path is tested
// against.
func (s *Sketcher) subjectSketchNaive(sequence []byte) [][]kmer.Word {
	tuples := minimizer.Extract(sequence, s.mp)
	out := make([][]kmer.Word, s.p.T)
	for i, anchor := range tuples {
		limit := anchor.Pos + int32(s.p.L)
		var interval []minimizer.Tuple
		for j := i; j < len(tuples) && tuples[j].Pos <= limit; j++ {
			interval = append(interval, tuples[j])
		}
		for t := 0; t < s.p.T; t++ {
			best := hentry{h: ^uint64(0), w: ^kmer.Word(0)}
			for _, tp := range interval {
				e := hentry{h: s.hf.Hash(t, tp.Kmer), w: tp.Kmer}
				if less(e, best) {
					best = e
				}
			}
			m := len(out[t])
			if m == 0 || out[t][m-1] != best.w {
				out[t] = append(out[t], best.w)
			}
		}
	}
	return out
}

// QuerySketch sketches a query end segment. A query is at most ℓ bases
// long, so its minimizer list forms a single interval: the sketch is
// exactly one word per trial — the k-mer minimizing h_t over all query
// minimizers. It returns nil when the segment yields no minimizers
// (e.g. shorter than k+w-1 bases or all-ambiguous).
func (s *Sketcher) QuerySketch(segment []byte) []kmer.Word {
	tuples := minimizer.Extract(segment, s.mp)
	return s.QuerySketchTuples(tuples)
}

// QuerySketchTuples is QuerySketch over a pre-extracted minimizer list.
func (s *Sketcher) QuerySketchTuples(tuples []minimizer.Tuple) []kmer.Word {
	words, _ := s.querySketchTuples(tuples)
	return words
}

// QuerySketchPositional is QuerySketch plus, per trial, the position
// on the segment of the selected sketch k-mer. Positional hits use
// target-anchor − query-position offset votes to localize a mapping.
func (s *Sketcher) QuerySketchPositional(segment []byte) ([]kmer.Word, []int32) {
	return s.querySketchTuples(minimizer.Extract(segment, s.mp))
}

// querySketchTuples is the query-sketch inner loop: per trial, one
// linear minimum over the segment's minimizers.
//
//jem:hotpath
func (s *Sketcher) querySketchTuples(tuples []minimizer.Tuple) ([]kmer.Word, []int32) {
	if len(tuples) == 0 {
		return nil, nil
	}
	out := make([]kmer.Word, s.p.T)
	pos := make([]int32, s.p.T)
	for t := 0; t < s.p.T; t++ {
		// Seed from the first tuple, not a ⟨max,max⟩ sentinel: a
		// sentinel is never replaced when every candidate ties it
		// exactly (possible with a degenerate hash family), which left
		// idx at -1 and panicked on the tuples[best.idx] below.
		best := hentry{h: s.hf.Hash(t, tuples[0].Kmer), w: tuples[0].Kmer, idx: 0}
		for i := 1; i < len(tuples); i++ {
			e := hentry{h: s.hf.Hash(t, tuples[i].Kmer), w: tuples[i].Kmer, idx: i}
			if less(e, best) {
				best = e
			}
		}
		out[t] = best.w
		pos[t] = tuples[best.idx].Pos
	}
	return out, pos
}

// MinHashSketch computes the classical MinHash sketch of a sequence:
// for each trial t, the canonical k-mer of the whole sequence
// minimizing h_t. This is the "classical MinHash" baseline of Fig. 6.
// It returns nil when the sequence has no valid k-mers.
func (s *Sketcher) MinHashSketch(sequence []byte) []kmer.Word {
	it := kmer.NewIterator(sequence, s.p.K)
	best := make([]hentry, s.p.T)
	for t := range best {
		best[t] = hentry{h: ^uint64(0), w: ^kmer.Word(0)}
	}
	any := false
	for {
		_, canon, _, ok := it.Next()
		if !ok {
			break
		}
		any = true
		for t := 0; t < s.p.T; t++ {
			e := hentry{h: s.hf.Hash(t, canon), w: canon}
			if less(e, best[t]) {
				best[t] = e
			}
		}
	}
	if !any {
		return nil
	}
	out := make([]kmer.Word, s.p.T)
	for t := range out {
		out[t] = best[t].w
	}
	return out
}
