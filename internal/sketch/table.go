package sketch

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/kmer"
)

// Posting is one sketch-table entry: the subject that produced a
// sketch word, plus the position of the ℓ-interval anchor the word was
// drawn from. The paper's table stores subject ids only; carrying the
// anchor is this implementation's positional extension — it enables
// approximate target coordinates (PAF output, scaffold gap estimates)
// at the cost of 4 extra bytes per entry in the allgathered payload
// (the communication model charges the real encoded size either way).
// Anchor is -1 for sketches without positional provenance (classical
// MinHash baselines).
type Posting struct {
	Subject int32
	Anchor  int32
}

// Table is the sketch data structure S of Algorithm 2: one bin per
// trial, each mapping a sketch k-mer to the posting list of subjects
// that produced it.
//
// Table is not safe for concurrent mutation; the parallel drivers
// build per-process tables and merge them (the Allgatherv step).
type Table struct {
	trials  []map[kmer.Word][]Posting
	entries int
}

// NewTable creates an empty table with t trial bins.
func NewTable(t int) *Table {
	tb := &Table{trials: make([]map[kmer.Word][]Posting, t)}
	for i := range tb.trials {
		tb.trials[i] = make(map[kmer.Word][]Posting)
	}
	return tb
}

// T returns the number of trial bins.
func (tb *Table) T() int { return len(tb.trials) }

// Entries returns the total number of ⟨trial, word, posting⟩ entries.
func (tb *Table) Entries() int { return tb.entries }

// Insert adds a subject's per-trial sketch words without positional
// provenance (Anchor=-1). Duplicate words for the same subject within
// a trial are collapsed (subjects are inserted one at a time, so it
// suffices to check the tail of each posting list).
func (tb *Table) Insert(subject int32, perTrial [][]kmer.Word) {
	if len(perTrial) != len(tb.trials) {
		panic(fmt.Sprintf("sketch: sketch has %d trials, table has %d", len(perTrial), len(tb.trials)))
	}
	for t, words := range perTrial {
		bin := tb.trials[t]
		for _, w := range words {
			list := bin[w]
			if n := len(list); n > 0 && list[n-1].Subject == subject {
				continue
			}
			bin[w] = append(list, Posting{Subject: subject, Anchor: -1})
			tb.entries++
		}
	}
}

// InsertPositional adds a subject's per-trial sketch words with their
// interval anchors (parallel slices, as produced by
// Sketcher.SubjectSketchPositional). Duplicate words keep their first
// anchor.
func (tb *Table) InsertPositional(subject int32, perTrial [][]kmer.Word, anchors [][]int32) {
	if len(perTrial) != len(tb.trials) || len(anchors) != len(tb.trials) {
		panic(fmt.Sprintf("sketch: sketch has %d/%d trials, table has %d",
			len(perTrial), len(anchors), len(tb.trials)))
	}
	for t, words := range perTrial {
		bin := tb.trials[t]
		for i, w := range words {
			list := bin[w]
			if n := len(list); n > 0 && list[n-1].Subject == subject {
				continue
			}
			bin[w] = append(list, Posting{Subject: subject, Anchor: anchors[t][i]})
			tb.entries++
		}
	}
}

// InsertQueryWords adds exactly one word per trial (the query-style
// sketch shape); used for whole-sequence MinHash subjects.
func (tb *Table) InsertQueryWords(subject int32, words []kmer.Word) {
	perTrial := make([][]kmer.Word, len(tb.trials))
	for t := range perTrial {
		if t < len(words) {
			perTrial[t] = words[t : t+1]
		}
	}
	tb.Insert(subject, perTrial)
}

// Lookup returns the posting list for word w in trial t (nil when
// absent). The returned slice must not be modified.
func (tb *Table) Lookup(t int, w kmer.Word) []Posting {
	return tb.trials[t][w]
}

// Merge folds other into tb. Posting lists are concatenated; the
// caller guarantees subject-id spaces are identical (they are global
// ids in the distributed setting) and that a subject was sketched by
// exactly one process, so no dedup is needed.
func (tb *Table) Merge(other *Table) {
	if other.T() != tb.T() {
		panic(fmt.Sprintf("sketch: merging table with %d trials into table with %d", other.T(), tb.T()))
	}
	for t, bin := range other.trials {
		dst := tb.trials[t]
		for w, list := range bin {
			dst[w] = append(dst[w], list...)
			tb.entries += len(list)
		}
	}
}

// Words returns the number of distinct sketch words in trial t.
func (tb *Table) Words(t int) int { return len(tb.trials[t]) }

// EncodedSize returns the exact number of bytes Encode would emit —
// the Allgatherv payload size used by the communication-cost model.
func (tb *Table) EncodedSize() int {
	// Header: uint32 T. Per trial: uint32 #words. Per word: uint64
	// word + uint32 list length + 8 bytes per posting.
	n := 4
	for _, bin := range tb.trials {
		n += 4
		for _, list := range bin {
			n += 8 + 4 + 8*len(list)
		}
	}
	return n
}

// Encode serializes the table deterministically (words sorted within
// each trial) in little-endian binary.
func (tb *Table) Encode(w io.Writer) error {
	bw := newByteWriter(w)
	bw.u32(uint32(len(tb.trials)))
	for _, bin := range tb.trials {
		bw.u32(uint32(len(bin)))
		words := make([]kmer.Word, 0, len(bin))
		for word := range bin {
			words = append(words, word)
		}
		sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
		for _, word := range words {
			bw.u64(uint64(word))
			list := bin[word]
			bw.u32(uint32(len(list)))
			for _, p := range list {
				bw.u32(uint32(p.Subject))
				bw.u32(uint32(p.Anchor))
			}
		}
	}
	return bw.flush()
}

// DecodeTable reads a table previously written by Encode.
func DecodeTable(r io.Reader) (*Table, error) {
	br := byteReader{r: r}
	t, err := br.u32()
	if err != nil {
		return nil, err
	}
	if t == 0 || t > 1<<20 {
		return nil, fmt.Errorf("sketch: implausible trial count %d", t)
	}
	tb := NewTable(int(t))
	if err := tb.decodeInto(&br, true); err != nil {
		return nil, err
	}
	return tb, nil
}

// DecodeInto merges an encoded table directly into tb, skipping the
// intermediate table DecodeTable+Merge would build — this is the hot
// path of the distributed gather step, where every rank folds p
// encoded payloads into its global table. Unlike DecodeTable it
// tolerates words already present in tb (postings are appended), since
// different ranks legitimately sketch the same word.
func (tb *Table) DecodeInto(r io.Reader) error {
	br := byteReader{r: r}
	t, err := br.u32()
	if err != nil {
		return err
	}
	if int(t) != tb.T() {
		return fmt.Errorf("sketch: payload has %d trials, table has %d", t, tb.T())
	}
	return tb.decodeInto(&br, false)
}

// decodeInto reads trial bins from br into tb. strictDup rejects
// duplicate words within one payload's trial (single-table decode
// invariant); merge mode appends instead.
func (tb *Table) decodeInto(br *byteReader, strictDup bool) error {
	t := tb.T()
	for ti := 0; ti < t; ti++ {
		nw, err := br.u32()
		if err != nil {
			return err
		}
		bin := tb.trials[ti]
		for i := 0; i < int(nw); i++ {
			word, err := br.u64()
			if err != nil {
				return err
			}
			list, present := bin[kmer.Word(word)]
			if present && strictDup {
				return fmt.Errorf("sketch: duplicate word %d in trial %d", word, ti)
			}
			ln, err := br.u32()
			if err != nil {
				return err
			}
			// Never trust ln for allocation: a corrupt stream could
			// claim 2^32 postings. Grow with the bytes actually read.
			if list == nil {
				capHint := int(ln)
				if capHint > 4096 {
					capHint = 4096
				}
				list = make([]Posting, 0, capHint)
			}
			for j := 0; j < int(ln); j++ {
				s, err := br.u32()
				if err != nil {
					return err
				}
				a, err := br.u32()
				if err != nil {
					return err
				}
				list = append(list, Posting{Subject: int32(s), Anchor: int32(a)})
				tb.entries++
			}
			bin[kmer.Word(word)] = list
		}
	}
	return nil
}

type byteWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func newByteWriter(w io.Writer) *byteWriter {
	return &byteWriter{w: w, buf: make([]byte, 0, 1<<15)}
}

func (bw *byteWriter) u32(v uint32) {
	bw.buf = binary.LittleEndian.AppendUint32(bw.buf, v)
	bw.maybeFlush()
}

func (bw *byteWriter) u64(v uint64) {
	bw.buf = binary.LittleEndian.AppendUint64(bw.buf, v)
	bw.maybeFlush()
}

func (bw *byteWriter) maybeFlush() {
	if len(bw.buf) >= 1<<15-16 && bw.err == nil {
		_, bw.err = bw.w.Write(bw.buf)
		bw.buf = bw.buf[:0]
	}
}

func (bw *byteWriter) flush() error {
	if bw.err == nil && len(bw.buf) > 0 {
		_, bw.err = bw.w.Write(bw.buf)
		bw.buf = bw.buf[:0]
	}
	return bw.err
}

type byteReader struct {
	r   io.Reader
	tmp [8]byte
}

func (br *byteReader) u32() (uint32, error) {
	if _, err := io.ReadFull(br.r, br.tmp[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(br.tmp[:4]), nil
}

func (br *byteReader) u64() (uint64, error) {
	if _, err := io.ReadFull(br.r, br.tmp[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(br.tmp[:8]), nil
}
