package sketch

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrozenTable asserts the frozen-table decoder never panics
// on arbitrary bytes and that every accepted table re-encodes to an
// equivalent decodable form.
func FuzzDecodeFrozenTable(f *testing.F) {
	tb := NewTable(2)
	tb.InsertPositional(1, [][]Word{{5}, {6, 7}}, [][]int32{{10}, {20, 30}})
	var buf bytes.Buffer
	if err := tb.Freeze().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeFrozenTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted frozen table failed: %v", err)
		}
		again, err := DecodeFrozenTable(&out)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if again.Entries() != got.Entries() || again.T() != got.T() {
			t.Fatalf("unstable round trip: %d/%d vs %d/%d",
				again.Entries(), again.T(), got.Entries(), got.T())
		}
	})
}

// FuzzQuerySketch asserts query sketching never panics on arbitrary
// segments. The corpus seeds cover the pathological shapes around the
// former querySketchTuples sentinel bug: homopolymer runs whose packed
// k-mers sit at the extremes of the word space (all-A canonical 0,
// poly-T canonicalizing onto it) where hash/word ties concentrate.
func FuzzQuerySketch(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGTACGT"))
	f.Add(bytes.Repeat([]byte{'T'}, 64)) // max packed word pre-canonicalization
	f.Add(bytes.Repeat([]byte{'A'}, 64)) // min packed word
	f.Add(bytes.Repeat([]byte{'G'}, 12))
	f.Add([]byte("NNNNNNNNNNNN"))
	f.Add([]byte{})
	sk, err := NewSketcher(Params{K: 8, W: 4, T: 4, L: 200, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, segment []byte) {
		words, pos := sk.QuerySketchPositional(segment)
		if (words == nil) != (pos == nil) {
			t.Fatal("words/pos nilness differs")
		}
		if words != nil && (len(words) != sk.Params().T || len(pos) != sk.Params().T) {
			t.Fatalf("got %d words / %d positions, want %d", len(words), len(pos), sk.Params().T)
		}
	})
}

// FuzzDecodeTable asserts the binary decoder never panics on arbitrary
// bytes and that every accepted table re-encodes to a decodable form.
func FuzzDecodeTable(f *testing.F) {
	// Seed with a real encoding.
	tb := NewTable(2)
	tb.InsertPositional(1, [][]Word{{5}, {6, 7}}, [][]int32{{10}, {20, 30}})
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted table failed: %v", err)
		}
		if out.Len() != got.EncodedSize() {
			t.Fatalf("EncodedSize %d != re-encoded %d", got.EncodedSize(), out.Len())
		}
		again, err := DecodeTable(&out)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if again.Entries() != got.Entries() || again.T() != got.T() {
			t.Fatalf("unstable round trip: %d/%d vs %d/%d",
				again.Entries(), again.T(), got.Entries(), got.T())
		}
	})
}
