package sketch

import (
	"bytes"
	"testing"
)

// FuzzDecodeTable asserts the binary decoder never panics on arbitrary
// bytes and that every accepted table re-encodes to a decodable form.
func FuzzDecodeTable(f *testing.F) {
	// Seed with a real encoding.
	tb := NewTable(2)
	tb.InsertPositional(1, [][]Word{{5}, {6, 7}}, [][]int32{{10}, {20, 30}})
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted table failed: %v", err)
		}
		if out.Len() != got.EncodedSize() {
			t.Fatalf("EncodedSize %d != re-encoded %d", got.EncodedSize(), out.Len())
		}
		again, err := DecodeTable(&out)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if again.Entries() != got.Entries() || again.T() != got.T() {
			t.Fatalf("unstable round trip: %d/%d vs %d/%d",
				again.Entries(), again.T(), got.Entries(), got.T())
		}
	})
}
