// Package sketch implements the sketching machinery of JEM-mapper:
// the per-trial linear-congruential hash family, classical MinHash
// sketches, and the minimizer-based Jaccard estimator (JEM) interval
// sketch of Algorithm 1.
package sketch

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/kmer"
)

// primes61 is a fixed list of 61-bit primes from which the per-trial
// modulus P_t is drawn. All exceed 4^31, so every packed k-mer rank is
// a valid input value.
var primes61 = []uint64{
	2305843009213693951, // 2^61 - 1 (Mersenne)
	2305843009213693669,
	2305843009213693613,
	2305843009213693561,
	2305843009213693549,
	2305843009213693487,
	2305843009213693381,
	2305843009213693331,
}

// HashFamily is a set of T independent hash functions of the linear
// congruential form h_t(x) = (A_t·x + B_t) mod P_t, with the constants
// generated a priori from a seeded RNG (paper §III-B implementation
// notes). The same seed reproduces the same family, which is what
// makes subject and query sketches comparable across processes.
type HashFamily struct {
	A []uint64
	B []uint64
	P []uint64
}

// NewHashFamily generates a family of T hash functions from seed.
// It panics when T is not positive; configuration errors are expected
// to be caught by parameter validation before reaching this
// constructor.
func NewHashFamily(t int, seed int64) *HashFamily {
	if t <= 0 {
		panic(fmt.Sprintf("sketch: number of trials T=%d must be positive", t))
	}
	rng := rand.New(rand.NewSource(seed))
	hf := &HashFamily{
		A: make([]uint64, t),
		B: make([]uint64, t),
		P: make([]uint64, t),
	}
	for i := 0; i < t; i++ {
		p := primes61[rng.Intn(len(primes61))]
		// A in [1, P-1], B in [0, P-1]: the standard universal-hash
		// parameter ranges.
		hf.A[i] = 1 + uint64(rng.Int63n(int64(p-1)))
		hf.B[i] = uint64(rng.Int63n(int64(p)))
		hf.P[i] = p
	}
	return hf
}

// T returns the number of trials (hash functions) in the family.
func (hf *HashFamily) T() int { return len(hf.A) }

// Hash evaluates h_t(x) = (A_t·x + B_t) mod P_t.
//
//jem:hotpath
func (hf *HashFamily) Hash(t int, x kmer.Word) uint64 {
	p := hf.P[t]
	v := mulmod(hf.A[t], uint64(x), p) + hf.B[t]
	if v >= p {
		v -= p
	}
	return v
}

// mulmod computes (a*b) mod m exactly via a 128-bit intermediate.
// Requires a < m < 2^61 and b < 2^62 so that the 128-bit product's
// high word stays below m (making the division well-defined); both
// bounds hold for LCG constants and packed k-mers.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}
