package sketch

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/kmer"
)

// FrozenTable is the read-only form of the sketch table used after the
// gather step: per trial, a sorted unique word array with a flat
// posting array indexed by prefix offsets. It matches the paper's
// picture of S_global as "T lists" more closely than a hash map, and
// it can be built from the allgathered payloads by a k-way merge in
// O(entries · log p) without any hashing — which is what keeps the S3
// merge cost from dominating the distributed runtime.
type FrozenTable struct {
	trials  []frozenBin
	entries int
	// mapped marks a zero-copy view whose arrays alias an mmap'd flat
	// payload (ViewFlatFrozen) rather than heap allocations; it flips
	// the table's bytes from the resident to the mapped column of the
	// memory accounting.
	mapped bool
}

type frozenBin struct {
	words    []kmer.Word
	offsets  []int32 // len(words)+1; postings[offsets[i]:offsets[i+1]]
	postings []Posting

	// Radix bucket directory over words: bucket b spans the words whose
	// value >> shift equals b, so buckets[b]..buckets[b+1] is a
	// near-singleton range and Lookup is O(1) expected instead of a
	// full log2(words) binary search. Rebuilt after decode, never
	// serialized.
	buckets []int32 // len nbuckets+1; lower bounds into words
	shift   uint
}

// buildIndex attaches the bucket directory. Sized at ~4 buckets per
// word (rounded to a power of two), it costs about twice the memory of
// the word array and leaves almost every bucket a singleton, making
// the frozen path as fast as the hash map it replaces.
func (fb *frozenBin) buildIndex() {
	n := len(fb.words)
	if n == 0 {
		fb.buckets = nil
		fb.shift = 0
		return
	}
	bitlen := bits.Len64(uint64(fb.words[n-1]))
	b := bits.Len(uint(4*n - 1))
	if b > bitlen {
		b = bitlen
	}
	fb.shift = uint(bitlen - b)
	nb := 1 << b
	fb.buckets = make([]int32, nb+1)
	idx := 0
	for v := 0; v <= nb; v++ {
		for idx < n && int(uint64(fb.words[idx])>>fb.shift) < v {
			idx++
		}
		fb.buckets[v] = int32(idx)
	}
}

// T returns the number of trial bins.
func (ft *FrozenTable) T() int { return len(ft.trials) }

// Entries returns the total posting count.
func (ft *FrozenTable) Entries() int { return ft.entries }

// Words returns the number of distinct words in trial t.
func (ft *FrozenTable) Words(t int) int { return len(ft.trials[t].words) }

// MemBytes returns the approximate resident size of the frozen table:
// the backing arrays of every trial bin (words, offsets, postings and
// the radix bucket directory). Struct headers and allocator slack are
// not charged — this is the memory-accounting figure a server reports
// per loaded index, where the arrays dominate by orders of magnitude.
func (ft *FrozenTable) MemBytes() int64 {
	var n int64
	for i := range ft.trials {
		b := &ft.trials[i]
		n += int64(len(b.words)) * 8    // kmer.Word = uint64
		n += int64(len(b.offsets)) * 4  // int32
		n += int64(len(b.postings)) * 8 // Posting = 2×int32
		n += int64(len(b.buckets)) * 4  // int32
	}
	return n
}

// Mapped reports whether this table is a zero-copy view over an
// mmap'd flat payload (its arrays alias the mapping) rather than a
// heap-resident decode.
func (ft *FrozenTable) Mapped() bool { return ft.mapped }

// ResidentBytes returns the part of MemBytes that is private heap
// memory: the whole table for a decoded one, 0 for a mapped view
// (whose pages are file-backed, evictable, and shared across
// processes mapping the same index).
func (ft *FrozenTable) ResidentBytes() int64 {
	if ft.mapped {
		return 0
	}
	return ft.MemBytes()
}

// MappedBytes returns the part of MemBytes that aliases an mmap'd
// payload: the whole table for a view, 0 for a heap decode.
func (ft *FrozenTable) MappedBytes() int64 {
	if !ft.mapped {
		return 0
	}
	return ft.MemBytes()
}

// Lookup returns the posting list for word w in trial t (nil when
// absent). The returned slice must not be modified.
func (ft *FrozenTable) Lookup(t int, w kmer.Word) []Posting {
	bin := &ft.trials[t]
	nb := len(bin.buckets)
	if nb == 0 {
		return nil
	}
	bi := uint64(w) >> bin.shift
	if bi >= uint64(nb-1) {
		return nil // beyond the largest indexed word
	}
	words := bin.words
	lo, hi := int(bin.buckets[bi]), int(bin.buckets[bi+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if words[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(words) || words[lo] != w {
		return nil
	}
	return bin.postings[bin.offsets[lo]:bin.offsets[lo+1]]
}

// payloadCursor walks one encoded payload (as written by
// Table.Encode) via direct slice access: within each trial its words
// arrive sorted.
type payloadCursor struct {
	buf       []byte
	off       int
	remaining int       // words left in the current trial
	word      kmer.Word // current word (valid after a true nextWord)
	listLen   int       // postings pending for the current word
}

func (c *payloadCursor) u32() (uint32, error) {
	if c.off+4 > len(c.buf) {
		return 0, fmt.Errorf("sketch: truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v, nil
}

func (c *payloadCursor) u64() (uint64, error) {
	if c.off+8 > len(c.buf) {
		return 0, fmt.Errorf("sketch: truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v, nil
}

func (c *payloadCursor) nextWord() (bool, error) {
	if c.remaining == 0 {
		return false, nil
	}
	w, err := c.u64()
	if err != nil {
		return false, err
	}
	ln, err := c.u32()
	if err != nil {
		return false, err
	}
	c.word = kmer.Word(w)
	c.listLen = int(ln)
	c.remaining--
	return true, nil
}

// cursorHeap orders cursors by current word (ties by index for
// determinism).
type cursorHeap struct {
	cs  []*payloadCursor
	idx []int
}

func (h *cursorHeap) Len() int { return len(h.cs) }
func (h *cursorHeap) Less(i, j int) bool {
	if h.cs[i].word != h.cs[j].word {
		return h.cs[i].word < h.cs[j].word
	}
	return h.idx[i] < h.idx[j]
}
func (h *cursorHeap) Swap(i, j int) {
	h.cs[i], h.cs[j] = h.cs[j], h.cs[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *cursorHeap) Push(x any) { panic("cursorHeap: push unused") }
func (h *cursorHeap) Pop() any {
	n := len(h.cs) - 1
	c := h.cs[n]
	h.cs = h.cs[:n]
	h.idx = h.idx[:n]
	return c
}

// FreezePayloads k-way merges encoded table payloads (one per rank,
// each produced by Table.Encode) into a FrozenTable. Every payload
// must carry the same trial count t.
func FreezePayloads(t int, payloads [][]byte) (*FrozenTable, error) {
	if t <= 0 {
		return nil, fmt.Errorf("sketch: freeze with t=%d", t)
	}
	cursors := make([]*payloadCursor, len(payloads))
	for i, p := range payloads {
		c := &payloadCursor{buf: p}
		pt, err := c.u32()
		if err != nil {
			return nil, fmt.Errorf("sketch: payload %d: %w", i, err)
		}
		if int(pt) != t {
			return nil, fmt.Errorf("sketch: payload %d has %d trials, want %d", i, pt, t)
		}
		cursors[i] = c
	}
	ft := &FrozenTable{trials: make([]frozenBin, t)}
	for ti := 0; ti < t; ti++ {
		// Load this trial's word counts and first words.
		h := &cursorHeap{}
		for i, c := range cursors {
			nw, err := c.u32()
			if err != nil {
				return nil, fmt.Errorf("sketch: payload %d trial %d: %w", i, ti, err)
			}
			c.remaining = int(nw)
			ok, err := c.nextWord()
			if err != nil {
				return nil, err
			}
			if ok {
				h.cs = append(h.cs, c)
				h.idx = append(h.idx, i)
			}
		}
		heap.Init(h)
		bin := &ft.trials[ti]
		bin.offsets = append(bin.offsets, 0)
		for h.Len() > 0 {
			c := h.cs[0]
			w := c.word
			if n := len(bin.words); n == 0 || bin.words[n-1] != w {
				if len(bin.words) > 0 {
					bin.offsets = append(bin.offsets, int32(len(bin.postings)))
				}
				bin.words = append(bin.words, w)
			}
			if c.off+8*c.listLen > len(c.buf) {
				return nil, fmt.Errorf("sketch: truncated posting list at offset %d", c.off)
			}
			for j := 0; j < c.listLen; j++ {
				s := binary.LittleEndian.Uint32(c.buf[c.off:])
				a := binary.LittleEndian.Uint32(c.buf[c.off+4:])
				c.off += 8
				bin.postings = append(bin.postings, Posting{Subject: int32(s), Anchor: int32(a)})
			}
			ok, err := c.nextWord()
			if err != nil {
				return nil, err
			}
			if ok {
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
		bin.offsets = append(bin.offsets, int32(len(bin.postings)))
		bin.buildIndex()
		ft.entries += len(bin.postings)
	}
	return ft, nil
}

// Freeze converts a mutable Table into its frozen form directly in
// memory: per trial, the words are sorted and the posting lists laid
// out contiguously. This is the shared-memory sealing path (the
// distributed driver uses FreezePayloads instead); it allocates the
// three flat arrays exactly once per trial and never serializes. The
// sharded counterpart is FreezeSharded; both bottom out in
// freezeSubset, so a 1-shard sharded table is bit-for-bit this one.
func (tb *Table) Freeze() *FrozenTable {
	words := make([][]kmer.Word, tb.T())
	for ti, bin := range tb.trials {
		ws := make([]kmer.Word, 0, len(bin))
		for w := range bin {
			ws = append(ws, w)
		}
		words[ti] = ws
	}
	return tb.freezeSubset(words)
}

// Encode serializes the frozen table in its own flat little-endian
// layout (the JEMIDX03 table section): per trial, the sorted word
// array, the posting-count prefix offsets, and the flat posting array
// are written contiguously, so decoding is three bulk reads per trial
// instead of per-word list parsing.
func (ft *FrozenTable) Encode(w io.Writer) error {
	bw := newByteWriter(w)
	bw.u32(uint32(len(ft.trials)))
	for i := range ft.trials {
		fb := &ft.trials[i]
		bw.u32(uint32(len(fb.words)))
		bw.u32(uint32(len(fb.postings)))
		for _, word := range fb.words {
			bw.u64(uint64(word))
		}
		// offsets[0] is always 0; store the len(words) tail.
		for _, off := range fb.offsets[1:] {
			bw.u32(uint32(off))
		}
		for _, p := range fb.postings {
			bw.u32(uint32(p.Subject))
			bw.u32(uint32(p.Anchor))
		}
	}
	return bw.flush()
}

// DecodeFrozenTable reads a frozen table written by
// FrozenTable.Encode, validating the sorted-word and monotone-offset
// invariants so a corrupt stream cannot produce a table that panics on
// Lookup.
func DecodeFrozenTable(r io.Reader) (*FrozenTable, error) {
	br := byteReader{r: r}
	t, err := br.u32()
	if err != nil {
		return nil, err
	}
	if t == 0 || t > 1<<20 {
		return nil, fmt.Errorf("sketch: implausible trial count %d", t)
	}
	ft := &FrozenTable{trials: make([]frozenBin, t)}
	for ti := 0; ti < int(t); ti++ {
		nw, err := br.u32()
		if err != nil {
			return nil, err
		}
		np, err := br.u32()
		if err != nil {
			return nil, err
		}
		fb := &ft.trials[ti]
		// Never trust counts for allocation: grow with the bytes
		// actually read (a corrupt stream could claim 2^32 entries).
		fb.words = make([]kmer.Word, 0, capHint(nw))
		for i := 0; i < int(nw); i++ {
			w, err := br.u64()
			if err != nil {
				return nil, err
			}
			if n := len(fb.words); n > 0 && fb.words[n-1] >= kmer.Word(w) {
				return nil, fmt.Errorf("sketch: frozen trial %d words not strictly sorted", ti)
			}
			fb.words = append(fb.words, kmer.Word(w))
		}
		fb.offsets = make([]int32, 1, capHint(nw)+1)
		for i := 0; i < int(nw); i++ {
			off, err := br.u32()
			if err != nil {
				return nil, err
			}
			if int32(off) < fb.offsets[len(fb.offsets)-1] || off > np {
				return nil, fmt.Errorf("sketch: frozen trial %d offsets not monotone", ti)
			}
			fb.offsets = append(fb.offsets, int32(off))
		}
		if fb.offsets[len(fb.offsets)-1] != int32(np) {
			return nil, fmt.Errorf("sketch: frozen trial %d offsets end at %d, want %d",
				ti, fb.offsets[len(fb.offsets)-1], np)
		}
		fb.postings = make([]Posting, 0, capHint(np))
		for i := 0; i < int(np); i++ {
			s, err := br.u32()
			if err != nil {
				return nil, err
			}
			a, err := br.u32()
			if err != nil {
				return nil, err
			}
			fb.postings = append(fb.postings, Posting{Subject: int32(s), Anchor: int32(a)})
		}
		fb.buildIndex()
		ft.entries += len(fb.postings)
	}
	return ft, nil
}

func capHint(n uint32) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}
