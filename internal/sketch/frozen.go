package sketch

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"

	"repro/internal/kmer"
)

// FrozenTable is the read-only form of the sketch table used after the
// gather step: per trial, a sorted unique word array with a flat
// posting array indexed by prefix offsets. It matches the paper's
// picture of S_global as "T lists" more closely than a hash map, and
// it can be built from the allgathered payloads by a k-way merge in
// O(entries · log p) without any hashing — which is what keeps the S3
// merge cost from dominating the distributed runtime.
type FrozenTable struct {
	trials  []frozenBin
	entries int
}

type frozenBin struct {
	words    []kmer.Word
	offsets  []int32 // len(words)+1; postings[offsets[i]:offsets[i+1]]
	postings []Posting
}

// T returns the number of trial bins.
func (ft *FrozenTable) T() int { return len(ft.trials) }

// Entries returns the total posting count.
func (ft *FrozenTable) Entries() int { return ft.entries }

// Words returns the number of distinct words in trial t.
func (ft *FrozenTable) Words(t int) int { return len(ft.trials[t].words) }

// Lookup returns the posting list for word w in trial t (nil when
// absent). The returned slice must not be modified.
func (ft *FrozenTable) Lookup(t int, w kmer.Word) []Posting {
	bin := &ft.trials[t]
	words := bin.words
	lo, hi := 0, len(words)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if words[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(words) || words[lo] != w {
		return nil
	}
	return bin.postings[bin.offsets[lo]:bin.offsets[lo+1]]
}

// payloadCursor walks one encoded payload (as written by
// Table.Encode) via direct slice access: within each trial its words
// arrive sorted.
type payloadCursor struct {
	buf       []byte
	off       int
	remaining int       // words left in the current trial
	word      kmer.Word // current word (valid after a true nextWord)
	listLen   int       // postings pending for the current word
}

func (c *payloadCursor) u32() (uint32, error) {
	if c.off+4 > len(c.buf) {
		return 0, fmt.Errorf("sketch: truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v, nil
}

func (c *payloadCursor) u64() (uint64, error) {
	if c.off+8 > len(c.buf) {
		return 0, fmt.Errorf("sketch: truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v, nil
}

func (c *payloadCursor) nextWord() (bool, error) {
	if c.remaining == 0 {
		return false, nil
	}
	w, err := c.u64()
	if err != nil {
		return false, err
	}
	ln, err := c.u32()
	if err != nil {
		return false, err
	}
	c.word = kmer.Word(w)
	c.listLen = int(ln)
	c.remaining--
	return true, nil
}

// cursorHeap orders cursors by current word (ties by index for
// determinism).
type cursorHeap struct {
	cs  []*payloadCursor
	idx []int
}

func (h *cursorHeap) Len() int { return len(h.cs) }
func (h *cursorHeap) Less(i, j int) bool {
	if h.cs[i].word != h.cs[j].word {
		return h.cs[i].word < h.cs[j].word
	}
	return h.idx[i] < h.idx[j]
}
func (h *cursorHeap) Swap(i, j int) {
	h.cs[i], h.cs[j] = h.cs[j], h.cs[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *cursorHeap) Push(x any) { panic("cursorHeap: push unused") }
func (h *cursorHeap) Pop() any {
	n := len(h.cs) - 1
	c := h.cs[n]
	h.cs = h.cs[:n]
	h.idx = h.idx[:n]
	return c
}

// FreezePayloads k-way merges encoded table payloads (one per rank,
// each produced by Table.Encode) into a FrozenTable. Every payload
// must carry the same trial count t.
func FreezePayloads(t int, payloads [][]byte) (*FrozenTable, error) {
	if t <= 0 {
		return nil, fmt.Errorf("sketch: freeze with t=%d", t)
	}
	cursors := make([]*payloadCursor, len(payloads))
	for i, p := range payloads {
		c := &payloadCursor{buf: p}
		pt, err := c.u32()
		if err != nil {
			return nil, fmt.Errorf("sketch: payload %d: %w", i, err)
		}
		if int(pt) != t {
			return nil, fmt.Errorf("sketch: payload %d has %d trials, want %d", i, pt, t)
		}
		cursors[i] = c
	}
	ft := &FrozenTable{trials: make([]frozenBin, t)}
	for ti := 0; ti < t; ti++ {
		// Load this trial's word counts and first words.
		h := &cursorHeap{}
		for i, c := range cursors {
			nw, err := c.u32()
			if err != nil {
				return nil, fmt.Errorf("sketch: payload %d trial %d: %w", i, ti, err)
			}
			c.remaining = int(nw)
			ok, err := c.nextWord()
			if err != nil {
				return nil, err
			}
			if ok {
				h.cs = append(h.cs, c)
				h.idx = append(h.idx, i)
			}
		}
		heap.Init(h)
		bin := &ft.trials[ti]
		bin.offsets = append(bin.offsets, 0)
		for h.Len() > 0 {
			c := h.cs[0]
			w := c.word
			if n := len(bin.words); n == 0 || bin.words[n-1] != w {
				if len(bin.words) > 0 {
					bin.offsets = append(bin.offsets, int32(len(bin.postings)))
				}
				bin.words = append(bin.words, w)
			}
			if c.off+8*c.listLen > len(c.buf) {
				return nil, fmt.Errorf("sketch: truncated posting list at offset %d", c.off)
			}
			for j := 0; j < c.listLen; j++ {
				s := binary.LittleEndian.Uint32(c.buf[c.off:])
				a := binary.LittleEndian.Uint32(c.buf[c.off+4:])
				c.off += 8
				bin.postings = append(bin.postings, Posting{Subject: int32(s), Anchor: int32(a)})
			}
			ok, err := c.nextWord()
			if err != nil {
				return nil, err
			}
			if ok {
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
		bin.offsets = append(bin.offsets, int32(len(bin.postings)))
		ft.entries += len(bin.postings)
	}
	return ft, nil
}

// Freeze converts a mutable Table into its frozen form (primarily for
// tests and single-process callers that want the compact layout).
func (tb *Table) Freeze() *FrozenTable {
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		// bytes.Buffer writes cannot fail.
		panic(err)
	}
	ft, err := FreezePayloads(tb.T(), [][]byte{buf.Bytes()})
	if err != nil {
		panic(err)
	}
	return ft
}
