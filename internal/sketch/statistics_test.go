package sketch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/minimizer"
	"repro/internal/seq"
)

// TestMinHashCollisionApproximatesJaccard checks Broder's theorem on
// our hash family: across T independent trials, the fraction in which
// two sequences produce the same minhash estimates their (k-mer)
// Jaccard similarity. We verify the estimate lands within a
// statistically reasonable distance of the exact value.
func TestMinHashCollisionApproximatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const k = 12
	p := Params{K: k, W: 4, T: 400, L: 100, Seed: 77}
	sk, err := NewSketcher(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutRate := range []float64{0.005, 0.02, 0.08} {
		a := randDNA(rng, 4000)
		b := append([]byte(nil), a...)
		for i := range b {
			if rng.Float64() < mutRate {
				b[i] = seq.Code2Base[rng.Intn(4)]
			}
		}
		exact := exactKmerJaccard(a, b, k)
		sa := sk.MinHashSketch(a)
		sb := sk.MinHashSketch(b)
		coll := 0
		for tr := range sa {
			if sa[tr] == sb[tr] {
				coll++
			}
		}
		est := float64(coll) / float64(p.T)
		// Binomial std dev with T=400 is ≤ 0.025; allow 5 sigma plus a
		// small bias term.
		if math.Abs(est-exact) > 0.15 {
			t.Errorf("mut=%v: collision estimate %.3f vs exact Jaccard %.3f", mutRate, est, exact)
		}
		// And the estimator must order pairs correctly: more mutation,
		// lower estimate (checked across the loop via monotonicity).
	}
}

func exactKmerJaccard(a, b []byte, k int) float64 {
	sa := map[uint64]struct{}{}
	sb := map[uint64]struct{}{}
	collect := func(s []byte, dst map[uint64]struct{}) {
		for i := 0; i+k <= len(s); i++ {
			var w uint64
			ok := true
			for j := 0; j < k; j++ {
				c, valid := seq.Code(s[i+j])
				if !valid {
					ok = false
					break
				}
				w = w<<2 | uint64(c)
			}
			if ok {
				dst[w] = struct{}{}
			}
		}
	}
	collect(a, sa)
	collect(b, sb)
	inter := 0
	for w := range sa {
		if _, hit := sb[w]; hit {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TestJEMTracksMinimizerJaccard checks the paper's core premise on the
// query side: segments more similar to a subject (higher minimizer
// Jaccard) collide in more trials.
func TestJEMTracksMinimizerJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	p := Params{K: 12, W: 6, T: 64, L: 500, Seed: 5}
	sk, err := NewSketcher(p)
	if err != nil {
		t.Fatal(err)
	}
	subject := randDNA(rng, 500)
	subjWords := sk.QuerySketch(subject)
	prevCollisions := p.T + 1
	prevJaccard := 1.1
	for _, mutRate := range []float64{0.01, 0.05, 0.20} {
		query := append([]byte(nil), subject...)
		for i := range query {
			if rng.Float64() < mutRate {
				query[i] = seq.Code2Base[rng.Intn(4)]
			}
		}
		qWords := sk.QuerySketch(query)
		coll := 0
		for tr := range qWords {
			if qWords[tr] == subjWords[tr] {
				coll++
			}
		}
		jac := minimizer.Jaccard(subject, query, minimizer.Params{K: p.K, W: p.W})
		if coll >= prevCollisions {
			t.Errorf("mut=%v: collisions %d did not fall below %d", mutRate, coll, prevCollisions)
		}
		if jac >= prevJaccard {
			t.Errorf("mut=%v: jaccard %v did not fall below %v", mutRate, jac, prevJaccard)
		}
		prevCollisions, prevJaccard = coll, jac
	}
}
