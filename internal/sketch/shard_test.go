package sketch

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kmer"
)

// shardTestTable builds a small mutable table with deterministic
// pseudo-random postings across every trial.
func shardTestTable(t *testing.T, trials, subjects, wordsPerSubject int) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	tb := NewTable(trials)
	for subj := 0; subj < subjects; subj++ {
		words := make([][]Word, trials)
		anchors := make([][]int32, trials)
		for ti := 0; ti < trials; ti++ {
			for j := 0; j < wordsPerSubject; j++ {
				words[ti] = append(words[ti], Word(rng.Uint64()>>8))
				anchors[ti] = append(anchors[ti], int32(rng.Intn(1<<20)))
			}
		}
		tb.InsertPositional(int32(subj), words, anchors)
	}
	return tb
}

func TestShardOfRangeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		ti := rng.Intn(64)
		w := kmer.Word(rng.Uint64())
		for _, p := range []int{1, 2, 3, 8, 17, MaxShards} {
			sd := ShardOf(ti, w, p)
			if sd < 0 || sd >= p {
				t.Fatalf("ShardOf(%d, %d, %d) = %d out of range", ti, w, p, sd)
			}
			if again := ShardOf(ti, w, p); again != sd {
				t.Fatalf("ShardOf not deterministic: %d then %d", sd, again)
			}
		}
		if ShardOf(ti, w, 1) != 0 || ShardOf(ti, w, 0) != 0 {
			t.Fatalf("shards <= 1 must route to shard 0")
		}
	}
}

// TestShardOfTrialSalting checks that the router actually uses the
// trial: the same word must not land on one shard for every trial, or
// per-trial bins would skew onto the same shards.
func TestShardOfTrialSalting(t *testing.T) {
	w := kmer.Word(0x1234_5678_9abc)
	seen := map[int]bool{}
	for ti := 0; ti < 64; ti++ {
		seen[ShardOf(ti, w, 8)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 trials of one word all routed to a single shard of 8")
	}
}

// TestShardOfSpread sanity-checks routing balance: over many random
// words every shard should receive a reasonable share.
func TestShardOfSpread(t *testing.T) {
	const n, p = 64_000, 8
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, p)
	for i := 0; i < n; i++ {
		counts[ShardOf(i%32, kmer.Word(rng.Uint64()), p)]++
	}
	want := n / p
	for sd, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d got %d of %d postings (want ~%d)", sd, c, n, want)
		}
	}
}

func TestFreezeShardedMatchesFreeze(t *testing.T) {
	tb := shardTestTable(t, 6, 10, 40)
	ft := tb.Freeze()
	for _, p := range []int{1, 2, 3, 8} {
		sf := tb.FreezeSharded(p, 0)
		if sf.NumShards() != p {
			t.Fatalf("NumShards = %d, want %d", sf.NumShards(), p)
		}
		if sf.T() != tb.T() {
			t.Fatalf("T = %d, want %d", sf.T(), tb.T())
		}
		if sf.Entries() != ft.Entries() {
			t.Fatalf("p=%d: Entries = %d, want %d", p, sf.Entries(), ft.Entries())
		}
		// Every key the monolithic table answers must answer identically
		// through the sharded router, and live in exactly one shard.
		for ti := 0; ti < tb.T(); ti++ {
			for w := range tb.trials[ti] {
				want := ft.Lookup(ti, w)
				got := sf.Lookup(ti, w)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("p=%d trial %d word %d: sharded lookup diverges", p, ti, w)
				}
				owners := 0
				for sd := 0; sd < p; sd++ {
					if sf.Shard(sd).Lookup(ti, w) != nil {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("p=%d trial %d word %d: posting list in %d shards, want exactly 1", p, ti, w, owners)
				}
			}
		}
	}
}

// TestFreezeShardedSingleShardBitIdentical pins the stronger claim the
// index format relies on: a 1-shard sharded freeze serializes to the
// same bytes as the monolithic freeze.
func TestFreezeShardedSingleShardBitIdentical(t *testing.T) {
	tb := shardTestTable(t, 5, 8, 30)
	var mono, single bytes.Buffer
	if err := tb.Freeze().Encode(&mono); err != nil {
		t.Fatal(err)
	}
	if err := tb.FreezeSharded(1, 0).Shard(0).Encode(&single); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mono.Bytes(), single.Bytes()) {
		t.Fatalf("1-shard freeze is not bit-identical to monolithic freeze")
	}
}

func TestFreezeShardedWorkersIrrelevant(t *testing.T) {
	tb := shardTestTable(t, 4, 6, 25)
	a := tb.FreezeSharded(3, 1)
	b := tb.FreezeSharded(3, 4)
	for sd := 0; sd < 3; sd++ {
		var ba, bb bytes.Buffer
		if err := a.Shard(sd).Encode(&ba); err != nil {
			t.Fatal(err)
		}
		if err := b.Shard(sd).Encode(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("shard %d differs between 1-worker and 4-worker builds", sd)
		}
	}
}

func TestFreezeShardedTraceHookRunsPerShard(t *testing.T) {
	tb := shardTestTable(t, 4, 6, 25)
	seen := make([]bool, 5)
	tb.FreezeShardedTraced(5, 1, func(shard int, fn func()) {
		seen[shard] = true
		fn()
	})
	for sd, ok := range seen {
		if !ok {
			t.Fatalf("trace hook never ran for shard %d", sd)
		}
	}
}

func TestFreezeShardedClampsShardCount(t *testing.T) {
	tb := shardTestTable(t, 2, 2, 5)
	if got := tb.FreezeSharded(-3, 0).NumShards(); got != 1 {
		t.Fatalf("shards=-3 built %d shards, want 1", got)
	}
	if got := tb.FreezeSharded(MaxShards+5, 0).NumShards(); got != MaxShards {
		t.Fatalf("shards over limit built %d shards, want %d", got, MaxShards)
	}
}

func TestNewShardedFrozenValidates(t *testing.T) {
	tb := shardTestTable(t, 3, 4, 10)
	sf := tb.FreezeSharded(2, 0)
	if _, err := NewShardedFrozen(nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewShardedFrozen([]*FrozenTable{sf.Shard(0), nil}); err == nil {
		t.Error("nil shard accepted")
	}
	other := shardTestTable(t, 5, 4, 10).Freeze()
	if _, err := NewShardedFrozen([]*FrozenTable{sf.Shard(0), other}); err == nil {
		t.Error("trial-count mismatch accepted")
	}
	if got, err := NewShardedFrozen([]*FrozenTable{sf.Shard(0), sf.Shard(1)}); err != nil || got.NumShards() != 2 {
		t.Errorf("valid shard list rejected: %v", err)
	}
}
