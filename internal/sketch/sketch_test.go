package sketch

import (
	"bytes"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/kmer"
	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func TestMulmodMatchesBigInt(t *testing.T) {
	f := func(a, b uint64, pi uint8) bool {
		m := primes61[int(pi)%len(primes61)]
		a %= m
		b &= 1<<62 - 1
		want := new(big.Int).Mul(big.NewInt(0).SetUint64(a), big.NewInt(0).SetUint64(b))
		want.Mod(want, big.NewInt(0).SetUint64(m))
		return mulmod(a, b, m) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashFamilyDeterministicPerSeed(t *testing.T) {
	h1 := NewHashFamily(16, 42)
	h2 := NewHashFamily(16, 42)
	h3 := NewHashFamily(16, 43)
	if !reflect.DeepEqual(h1, h2) {
		t.Error("same seed produced different families")
	}
	if reflect.DeepEqual(h1, h3) {
		t.Error("different seeds produced identical families")
	}
	for tr := 0; tr < h1.T(); tr++ {
		if h1.Hash(tr, 12345) != h2.Hash(tr, 12345) {
			t.Fatalf("trial %d: hash mismatch across identical families", tr)
		}
	}
}

func TestHashBounds(t *testing.T) {
	hf := NewHashFamily(8, 7)
	f := func(x uint64) bool {
		w := kmer.Word(x & (1<<62 - 1))
		for tr := 0; tr < hf.T(); tr++ {
			if hf.Hash(tr, w) >= hf.P[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewHashFamilyPanicsOnZeroT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHashFamily(0, 1)
}

func TestParamsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Params{
		{K: 0, W: 100, T: 30, L: 1000},
		{K: 16, W: 0, T: 30, L: 1000},
		{K: 16, W: 100, T: 0, L: 1000},
		{K: 16, W: 100, T: 30, L: 8},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func smallParams() Params {
	return Params{K: 8, W: 4, T: 6, L: 100, Seed: 5}
}

func TestSubjectSketchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sk, err := NewSketcher(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		s := randDNA(rng, 50+rng.Intn(2000))
		got := sk.SubjectSketch(s)
		want := sk.subjectSketchNaive(s)
		if len(got) != len(want) {
			t.Fatalf("trial counts differ: %d vs %d", len(got), len(want))
		}
		for tr := range got {
			if !reflect.DeepEqual(got[tr], want[tr]) {
				t.Fatalf("trial %d (len %d): optimized %v != naive %v", tr, len(s), got[tr], want[tr])
			}
		}
	}
}

func TestSubjectSketchEmptyInput(t *testing.T) {
	sk, _ := NewSketcher(smallParams())
	got := sk.SubjectSketch(nil)
	if len(got) != smallParams().T {
		t.Fatalf("want %d empty trials, got %d", smallParams().T, len(got))
	}
	for _, words := range got {
		if len(words) != 0 {
			t.Errorf("empty input produced words %v", words)
		}
	}
}

func TestQuerySketchShape(t *testing.T) {
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(23))
	seg := randDNA(rng, p.L)
	words := sk.QuerySketch(seg)
	if len(words) != p.T {
		t.Fatalf("got %d words want %d", len(words), p.T)
	}
	if sk.QuerySketch([]byte("ACG")) != nil {
		t.Error("too-short segment should yield nil sketch")
	}
	if sk.QuerySketch(nil) != nil {
		t.Error("nil segment should yield nil sketch")
	}
}

func TestQuerySketchIsSubjectIntervalMin(t *testing.T) {
	// For a segment no longer than L, the query sketch for trial t
	// must equal the first interval's sketch of the subject sketch —
	// both are the argmin over all the segment's minimizers.
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		seg := randDNA(rng, p.L)
		q := sk.QuerySketch(seg)
		s := sk.SubjectSketch(seg)
		for tr := 0; tr < p.T; tr++ {
			if len(s[tr]) == 0 {
				t.Fatalf("trial %d: subject sketch empty", tr)
			}
			if q[tr] != s[tr][0] {
				t.Fatalf("trial %d: query %v != first interval %v", tr, q[tr], s[tr][0])
			}
		}
	}
}

func TestSketchDeterminism(t *testing.T) {
	p := smallParams()
	sk1, _ := NewSketcher(p)
	sk2, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(31))
	s := randDNA(rng, 1500)
	if !reflect.DeepEqual(sk1.SubjectSketch(s), sk2.SubjectSketch(s)) {
		t.Error("same params produced different subject sketches")
	}
	if !reflect.DeepEqual(sk1.QuerySketch(s[:p.L]), sk2.QuerySketch(s[:p.L])) {
		t.Error("same params produced different query sketches")
	}
}

func TestSketchStrandInvariance(t *testing.T) {
	// Query sketches of a segment and its reverse complement must be
	// identical sets of words per trial (canonical k-mers), which is
	// what makes mapping strand-oblivious.
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		seg := randDNA(rng, p.L)
		q1 := sk.QuerySketch(seg)
		q2 := sk.QuerySketch(seq.ReverseComplement(seg))
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("strand variance: %v vs %v", q1, q2)
		}
	}
}

func TestMinHashSketch(t *testing.T) {
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(41))
	s := randDNA(rng, 3000)
	mh := sk.MinHashSketch(s)
	if len(mh) != p.T {
		t.Fatalf("got %d words", len(mh))
	}
	// Each trial's word must be the argmin of h_t over all canonical
	// k-mers.
	for tr := 0; tr < p.T; tr++ {
		it := kmer.NewIterator(s, p.K)
		best := ^uint64(0)
		var bestW kmer.Word
		first := true
		for {
			_, canon, _, ok := it.Next()
			if !ok {
				break
			}
			h := sk.Family().Hash(tr, canon)
			if first || h < best || (h == best && canon < bestW) {
				best, bestW, first = h, canon, false
			}
		}
		if mh[tr] != bestW {
			t.Fatalf("trial %d: %v != %v", tr, mh[tr], bestW)
		}
	}
	if sk.MinHashSketch([]byte("NNNNNNNNNNNN")) != nil {
		t.Error("all-ambiguous input should yield nil")
	}
}

func TestMinHashStrandInvariance(t *testing.T) {
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(43))
	s := randDNA(rng, 800)
	if !reflect.DeepEqual(sk.MinHashSketch(s), sk.MinHashSketch(seq.ReverseComplement(s))) {
		t.Error("MinHash sketch differs across strands")
	}
}

func TestTableInsertLookup(t *testing.T) {
	tb := NewTable(3)
	tb.Insert(7, [][]kmer.Word{{1, 2}, {3}, {}})
	tb.Insert(9, [][]kmer.Word{{1}, {}, {4}})
	if got := tb.Lookup(0, 1); len(got) != 2 || got[0].Subject != 7 || got[1].Subject != 9 {
		t.Errorf("lookup(0,1) = %v", got)
	}
	if got := tb.Lookup(1, 3); len(got) != 1 || got[0].Subject != 7 {
		t.Errorf("lookup(1,3) = %v", got)
	}
	if got := tb.Lookup(2, 99); got != nil {
		t.Errorf("lookup miss = %v", got)
	}
	if tb.Entries() != 5 {
		t.Errorf("entries = %d want 5", tb.Entries())
	}
}

func TestTableInsertCollapsesDuplicates(t *testing.T) {
	tb := NewTable(1)
	tb.Insert(3, [][]kmer.Word{{5, 5, 5, 6, 5}})
	got := tb.Lookup(0, 5)
	// Consecutive duplicates collapse; the non-consecutive repeat is
	// also collapsed because the tail is still subject 3.
	if len(got) != 1 || got[0].Subject != 3 {
		t.Errorf("lookup = %v", got)
	}
	if tb.Words(0) != 2 {
		t.Errorf("words = %d want 2", tb.Words(0))
	}
}

func TestTableInsertPanicsOnTrialMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTable(2).Insert(0, [][]kmer.Word{{1}})
}

func TestTableMerge(t *testing.T) {
	a := NewTable(2)
	a.Insert(0, [][]kmer.Word{{10}, {20}})
	b := NewTable(2)
	b.Insert(1, [][]kmer.Word{{10}, {30}})
	a.Merge(b)
	if got := a.Lookup(0, 10); len(got) != 2 {
		t.Errorf("merged lookup = %v", got)
	}
	if a.Entries() != 4 {
		t.Errorf("entries = %d", a.Entries())
	}
}

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tb := NewTable(4)
	for subj := int32(0); subj < 50; subj++ {
		perTrial := make([][]kmer.Word, 4)
		for tr := range perTrial {
			n := rng.Intn(5)
			for i := 0; i < n; i++ {
				perTrial[tr] = append(perTrial[tr], kmer.Word(rng.Intn(1000)))
			}
		}
		tb.Insert(subj, perTrial)
	}
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != tb.EncodedSize() {
		t.Errorf("EncodedSize %d != actual %d", tb.EncodedSize(), buf.Len())
	}
	got, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries() != tb.Entries() || got.T() != tb.T() {
		t.Fatalf("decoded entries=%d T=%d; want %d,%d", got.Entries(), got.T(), tb.Entries(), tb.T())
	}
	for tr := 0; tr < tb.T(); tr++ {
		if got.Words(tr) != tb.Words(tr) {
			t.Errorf("trial %d words %d != %d", tr, got.Words(tr), tb.Words(tr))
		}
	}
}

func TestDecodeTableRejectsGarbage(t *testing.T) {
	if _, err := DecodeTable(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("truncated header should fail")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // implausible trial count
	if _, err := DecodeTable(&buf); err == nil {
		t.Error("absurd trial count should fail")
	}
}

func TestSubjectSketchPositionalAnchors(t *testing.T) {
	p := smallParams()
	sk, _ := NewSketcher(p)
	rng := rand.New(rand.NewSource(53))
	s := randDNA(rng, 2500)
	words, anchors := sk.SubjectSketchPositional(s)
	plain := sk.SubjectSketch(s)
	for tr := range words {
		if !reflect.DeepEqual(words[tr], plain[tr]) {
			t.Fatalf("trial %d: positional words differ from plain", tr)
		}
		if len(anchors[tr]) != len(words[tr]) {
			t.Fatalf("trial %d: %d anchors for %d words", tr, len(anchors[tr]), len(words[tr]))
		}
		for i := 1; i < len(anchors[tr]); i++ {
			if anchors[tr][i] < anchors[tr][i-1] {
				t.Fatalf("trial %d: anchors not nondecreasing: %v", tr, anchors[tr])
			}
		}
		for _, a := range anchors[tr] {
			if a < 0 || int(a) >= len(s) {
				t.Fatalf("trial %d: anchor %d out of range", tr, a)
			}
		}
	}
}

func TestInsertPositionalKeepsAnchors(t *testing.T) {
	tb := NewTable(2)
	tb.InsertPositional(4,
		[][]kmer.Word{{10, 11}, {12}},
		[][]int32{{100, 900}, {250}})
	got := tb.Lookup(0, 10)
	if len(got) != 1 || got[0] != (Posting{Subject: 4, Anchor: 100}) {
		t.Errorf("lookup = %v", got)
	}
	if got := tb.Lookup(1, 12); got[0].Anchor != 250 {
		t.Errorf("anchor = %v", got)
	}
}

func TestPositionalEncodeRoundTrip(t *testing.T) {
	tb := NewTable(1)
	tb.InsertPositional(3, [][]kmer.Word{{7}}, [][]int32{{1234}})
	tb.Insert(5, [][]kmer.Word{{7}}) // anchor -1
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != tb.EncodedSize() {
		t.Errorf("EncodedSize %d != actual %d", tb.EncodedSize(), buf.Len())
	}
	got, err := DecodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	list := got.Lookup(0, 7)
	if len(list) != 2 || list[0] != (Posting{3, 1234}) || list[1] != (Posting{5, -1}) {
		t.Errorf("decoded = %v", list)
	}
}

func TestDecodeIntoEqualsDecodeThenMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	mk := func(subjects []int32) (*Table, []byte) {
		tb := NewTable(3)
		for _, s := range subjects {
			perTrial := make([][]kmer.Word, 3)
			anchors := make([][]int32, 3)
			for tr := range perTrial {
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					perTrial[tr] = append(perTrial[tr], kmer.Word(rng.Intn(50)))
					anchors[tr] = append(anchors[tr], int32(rng.Intn(10000)))
				}
			}
			tb.InsertPositional(s, perTrial, anchors)
		}
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return tb, buf.Bytes()
	}
	_, b1 := mk([]int32{0, 1, 2})
	_, b2 := mk([]int32{3, 4})

	viaMerge := NewTable(3)
	for _, b := range [][]byte{b1, b2} {
		dec, err := DecodeTable(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		viaMerge.Merge(dec)
	}
	viaInto := NewTable(3)
	for _, b := range [][]byte{b1, b2} {
		if err := viaInto.DecodeInto(bytes.NewReader(b)); err != nil {
			t.Fatal(err)
		}
	}
	if viaInto.Entries() != viaMerge.Entries() {
		t.Fatalf("entries %d != %d", viaInto.Entries(), viaMerge.Entries())
	}
	for tr := 0; tr < 3; tr++ {
		if viaInto.Words(tr) != viaMerge.Words(tr) {
			t.Fatalf("trial %d words %d != %d", tr, viaInto.Words(tr), viaMerge.Words(tr))
		}
		for w := kmer.Word(0); w < 50; w++ {
			a, b := viaInto.Lookup(tr, w), viaMerge.Lookup(tr, w)
			if len(a) != len(b) {
				t.Fatalf("trial %d word %d: %v vs %v", tr, w, a, b)
			}
			// Same multiset (order may differ across merge strategies
			// only when payload order differs — here it is identical).
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d word %d posting %d: %v vs %v", tr, w, i, a, b)
				}
			}
		}
	}
	if err := viaInto.DecodeInto(bytes.NewReader([]byte{9, 0, 0, 0})); err == nil {
		t.Error("trial-count mismatch should fail")
	}
}

func TestFrozenTableMatchesHashTable(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// Build a reference hash table from three "rank" tables, and the
	// frozen table from their encodings.
	full := NewTable(4)
	var payloads [][]byte
	subj := int32(0)
	for rank := 0; rank < 3; rank++ {
		local := NewTable(4)
		for s := 0; s < 20; s++ {
			perTrial := make([][]kmer.Word, 4)
			anchors := make([][]int32, 4)
			for tr := range perTrial {
				n := rng.Intn(6)
				for i := 0; i < n; i++ {
					perTrial[tr] = append(perTrial[tr], kmer.Word(rng.Intn(200)))
					anchors[tr] = append(anchors[tr], int32(rng.Intn(100000)))
				}
			}
			local.InsertPositional(subj, perTrial, anchors)
			full.InsertPositional(subj, perTrial, anchors)
			subj++
		}
		var buf bytes.Buffer
		if err := local.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, buf.Bytes())
	}
	ft, err := FreezePayloads(4, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Entries() != full.Entries() {
		t.Fatalf("entries %d != %d", ft.Entries(), full.Entries())
	}
	for tr := 0; tr < 4; tr++ {
		if ft.Words(tr) != full.Words(tr) {
			t.Fatalf("trial %d words %d != %d", tr, ft.Words(tr), full.Words(tr))
		}
		for w := kmer.Word(0); w < 220; w++ {
			got := ft.Lookup(tr, w)
			want := full.Lookup(tr, w)
			if len(got) != len(want) {
				t.Fatalf("trial %d word %d: %d postings vs %d", tr, w, len(got), len(want))
			}
			// Multiset equality: both orderings list subjects in
			// ascending-rank insertion order here because ranks own
			// disjoint ascending subject ranges.
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d word %d posting %d: %v vs %v", tr, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFreezeEmptyAndErrors(t *testing.T) {
	ft, err := FreezePayloads(2, nil)
	if err != nil || ft.Entries() != 0 {
		t.Errorf("empty freeze: %v %v", ft, err)
	}
	if ft.Lookup(0, 42) != nil {
		t.Error("lookup in empty frozen table")
	}
	if _, err := FreezePayloads(0, nil); err == nil {
		t.Error("t=0 should fail")
	}
	// Payload with wrong trial count.
	tb := NewTable(3)
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := FreezePayloads(2, [][]byte{buf.Bytes()}); err == nil {
		t.Error("trial mismatch should fail")
	}
	// Truncated payload.
	if _, err := FreezePayloads(3, [][]byte{buf.Bytes()[:5]}); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestTableFreezeRoundTrip(t *testing.T) {
	tb := NewTable(2)
	tb.InsertPositional(9, [][]kmer.Word{{3, 5}, {4}}, [][]int32{{11, 22}, {33}})
	ft := tb.Freeze()
	if ft.Entries() != tb.Entries() {
		t.Fatalf("entries %d != %d", ft.Entries(), tb.Entries())
	}
	got := ft.Lookup(0, 5)
	if len(got) != 1 || got[0] != (Posting{9, 22}) {
		t.Errorf("lookup = %v", got)
	}
	if ft.Lookup(1, 99) != nil {
		t.Error("missing word should be nil")
	}
}

func TestInsertQueryWords(t *testing.T) {
	tb := NewTable(3)
	tb.InsertQueryWords(5, []kmer.Word{7, 8, 9})
	for tr, w := range []kmer.Word{7, 8, 9} {
		if got := tb.Lookup(tr, w); len(got) != 1 || got[0].Subject != 5 {
			t.Errorf("trial %d lookup = %v", tr, got)
		}
	}
}

// randomTable builds a table with random positional sketches over
// nSubjects synthetic contigs (shared by the direct-freeze tests).
func randomTable(t testing.TB, rng *rand.Rand, trials, nSubjects int) *Table {
	t.Helper()
	tb := NewTable(trials)
	for s := 0; s < nSubjects; s++ {
		perTrial := make([][]kmer.Word, trials)
		anchors := make([][]int32, trials)
		for tr := range perTrial {
			n := rng.Intn(8)
			for i := 0; i < n; i++ {
				perTrial[tr] = append(perTrial[tr], kmer.Word(rng.Intn(300)))
				anchors[tr] = append(anchors[tr], int32(rng.Intn(100000)))
			}
		}
		tb.InsertPositional(int32(s), perTrial, anchors)
	}
	return tb
}

// TestFreezeDirectMatchesPayloadMerge pins that the in-memory Freeze
// produces exactly the table the encode→FreezePayloads path would —
// the two construction routes of the frozen serving table must agree.
func TestFreezeDirectMatchesPayloadMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tb := randomTable(t, rng, 4, 30)

	direct := tb.Freeze()
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	viaPayload, err := FreezePayloads(tb.T(), [][]byte{buf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Entries() != viaPayload.Entries() || direct.Entries() != tb.Entries() {
		t.Fatalf("entries: direct %d, payload %d, table %d",
			direct.Entries(), viaPayload.Entries(), tb.Entries())
	}
	for tr := 0; tr < tb.T(); tr++ {
		if direct.Words(tr) != viaPayload.Words(tr) {
			t.Fatalf("trial %d words %d != %d", tr, direct.Words(tr), viaPayload.Words(tr))
		}
		for w := kmer.Word(0); w < 320; w++ {
			if !reflect.DeepEqual(direct.Lookup(tr, w), viaPayload.Lookup(tr, w)) {
				t.Fatalf("trial %d word %d postings differ", tr, w)
			}
		}
	}
}

// TestFrozenEncodeDecodeRoundTrip pins the JEMIDX03 table section:
// encode a frozen table, decode it, and compare every lookup.
func TestFrozenEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, nSubjects := range []int{0, 1, 25} {
		ft := randomTable(t, rng, 3, nSubjects).Freeze()
		var buf bytes.Buffer
		if err := ft.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrozenTable(&buf)
		if err != nil {
			t.Fatalf("nSubjects=%d: %v", nSubjects, err)
		}
		if got.Entries() != ft.Entries() || got.T() != ft.T() {
			t.Fatalf("nSubjects=%d: entries/T %d/%d != %d/%d",
				nSubjects, got.Entries(), got.T(), ft.Entries(), ft.T())
		}
		for tr := 0; tr < ft.T(); tr++ {
			for w := kmer.Word(0); w < 320; w++ {
				if !reflect.DeepEqual(got.Lookup(tr, w), ft.Lookup(tr, w)) {
					t.Fatalf("trial %d word %d postings differ after round trip", tr, w)
				}
			}
		}
	}
}

// TestDecodeFrozenTableRejectsCorrupt checks the decoder's structural
// validation: unsorted words and non-monotone offsets must fail, not
// produce a table that breaks binary search.
func TestDecodeFrozenTableRejectsCorrupt(t *testing.T) {
	ft := NewTable(1)
	ft.InsertPositional(1, [][]kmer.Word{{5, 9}}, [][]int32{{10, 20}})
	var buf bytes.Buffer
	if err := ft.Freeze().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Layout: u32 T, u32 nwords, u32 npostings, 2×u64 words, 2×u32
	// offsets, postings. Swap the two words to break sortedness.
	corrupt := append([]byte(nil), good...)
	copy(corrupt[12:20], good[20:28])
	copy(corrupt[20:28], good[12:20])
	if _, err := DecodeFrozenTable(bytes.NewReader(corrupt)); err == nil {
		t.Error("unsorted words should fail")
	}
	// Decrease the final offset below the posting count.
	corrupt = append([]byte(nil), good...)
	corrupt[32] = 1 // offsets[2] (was 2): now ends short of npostings
	if _, err := DecodeFrozenTable(bytes.NewReader(corrupt)); err == nil {
		t.Error("offset/posting-count mismatch should fail")
	}
	// Truncate.
	if _, err := DecodeFrozenTable(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated stream should fail")
	}
}

// TestQuerySketchDegenerateHashFamily regresses the sentinel bug in
// querySketchTuples: with a constant hash family every candidate ties
// on the hash, and the former ⟨max,max⟩ sentinel seed left idx at -1
// (panicking on tuples[best.idx]) whenever a candidate also tied the
// sentinel word. Seeding from the first tuple keeps the index valid
// and breaks ties toward the smallest word.
func TestQuerySketchDegenerateHashFamily(t *testing.T) {
	sk, err := NewSketcher(Params{K: 8, W: 4, T: 2, L: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A=0 makes h(x) = B for every x: all candidates tie on the hash.
	p := primes61[0]
	sk.hf = &HashFamily{A: []uint64{0, 0}, B: []uint64{7, 7}, P: []uint64{p, p}}
	rng := rand.New(rand.NewSource(9))
	seg := randDNA(rng, 150)
	words, pos := sk.QuerySketchPositional(seg)
	if words == nil {
		t.Fatal("segment produced no sketch")
	}
	for tr := range words {
		// The tie-break must select the minimum word among the
		// segment's minimizers, and pos must point at a real tuple.
		if pos[tr] < 0 || int(pos[tr]) >= len(seg) {
			t.Fatalf("trial %d: position %d out of segment range", tr, pos[tr])
		}
		if tr > 0 && words[tr] != words[0] {
			t.Fatalf("constant family must pick the same word per trial: %d vs %d", words[tr], words[0])
		}
	}
}
