package seedchain

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func world(t *testing.T) (ref []byte, contigs []seq.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	ref = randDNA(rng, 30_000)
	for pos := 0; pos+1500 <= len(ref); pos += 1500 {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+1500]})
	}
	return ref, contigs
}

func TestMapSegmentFindsOrigin(t *testing.T) {
	ref, contigs := world(t)
	m := NewMapper(contigs, Defaults(), 1)
	rng := rand.New(rand.NewSource(92))
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		pos := rng.Intn(len(ref) - 600)
		chain, ok := m.MapSegment(ref[pos : pos+600])
		if !ok {
			continue
		}
		want := int32(pos / 1500)
		if chain.Subject == want || chain.Subject == want+1 {
			correct++
		}
	}
	if correct < trials-2 {
		t.Errorf("only %d/%d segments chained to origin", correct, trials)
	}
}

func TestChainPositionsAndStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	subject := randDNA(rng, 20_000)
	m := NewMapper([]seq.Record{{ID: "s", Seq: subject}}, Defaults(), 1)
	for trial := 0; trial < 20; trial++ {
		pos := rng.Intn(len(subject) - 800)
		seg := subject[pos : pos+800]
		chain, ok := m.MapSegment(seg)
		if !ok {
			t.Fatalf("trial %d: no chain", trial)
		}
		if chain.Reverse {
			t.Fatalf("trial %d: forward segment chained as reverse", trial)
		}
		if int(chain.TStart) < pos-50 || int(chain.TEnd) > pos+850 {
			t.Fatalf("trial %d: span [%d,%d) vs true [%d,%d)", trial, chain.TStart, chain.TEnd, pos, pos+800)
		}
		// Reverse complement must chain as reverse at the same locus.
		rcChain, ok := m.MapSegment(seq.ReverseComplement(seg))
		if !ok || !rcChain.Reverse {
			t.Fatalf("trial %d: revcomp chain = %+v ok=%v", trial, rcChain, ok)
		}
		if abs32(rcChain.TStart-chain.TStart) > 100 {
			t.Fatalf("trial %d: revcomp span start %d vs %d", trial, rcChain.TStart, chain.TStart)
		}
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMapSegmentToleratesIndels(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	subject := randDNA(rng, 10_000)
	m := NewMapper([]seq.Record{{ID: "s", Seq: subject}}, Defaults(), 1)
	// Segment with small indels relative to the subject.
	seg := append([]byte(nil), subject[2000:2300]...)
	seg = append(seg, subject[2310:2700]...) // 10-base deletion
	seg = append(seg, randDNA(rng, 5)...)    // small insertion
	seg = append(seg, subject[2700:3000]...)
	chain, ok := m.MapSegment(seg)
	if !ok {
		t.Fatal("indel segment did not chain")
	}
	if chain.TStart > 2100 || chain.TEnd < 2900 {
		t.Errorf("chain span [%d,%d) misses the locus", chain.TStart, chain.TEnd)
	}
}

func TestMapSegmentRejectsUnrelated(t *testing.T) {
	_, contigs := world(t)
	m := NewMapper(contigs, Defaults(), 1)
	rng := rand.New(rand.NewSource(95))
	falseHits := 0
	for i := 0; i < 20; i++ {
		if _, ok := m.MapSegment(randDNA(rng, 600)); ok {
			falseHits++
		}
	}
	if falseHits > 1 {
		t.Errorf("%d/20 unrelated segments chained", falseHits)
	}
}

func TestRepeatMasking(t *testing.T) {
	// A seed occurring everywhere must be dropped by MaxOccurrence,
	// not chained into a false hit.
	rng := rand.New(rand.NewSource(96))
	unit := randDNA(rng, 40)
	var repetitive []byte
	for i := 0; i < 200; i++ {
		repetitive = append(repetitive, unit...)
	}
	contigs := []seq.Record{
		{ID: "repeat", Seq: repetitive},
		{ID: "normal", Seq: randDNA(rng, 5000)},
	}
	p := Defaults()
	p.MaxOccurrence = 8
	m := NewMapper(contigs, p, 1)
	seg := contigs[1].Seq[1000:1600]
	chain, ok := m.MapSegment(seg)
	if !ok || chain.Subject != 1 {
		t.Errorf("chain = %+v ok=%v (want subject 1)", chain, ok)
	}
}

func TestMapReadsShapeAndDeterminism(t *testing.T) {
	ref, contigs := world(t)
	m := NewMapper(contigs, Defaults(), 2)
	rng := rand.New(rand.NewSource(97))
	var reads []seq.Record
	for i := 0; i < 12; i++ {
		pos := rng.Intn(len(ref) - 2000)
		reads = append(reads, seq.Record{ID: fmt.Sprintf("r%d", i), Seq: ref[pos : pos+2000]})
	}
	r1 := m.MapReads(reads, 600, 1)
	r2 := m.MapReads(reads, 600, 4)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("worker count changed results")
	}
	if len(r1) != 2*len(reads) {
		t.Fatalf("got %d results", len(r1))
	}
	for i, r := range r1 {
		if r.ReadIndex != int32(i/2) {
			t.Fatalf("result order broken at %d: %+v", i, r)
		}
		if (i%2 == 0) != (r.Kind == core.Prefix) {
			t.Fatalf("kind order broken at %d", i)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	m := NewMapper(nil, Defaults(), 1)
	if _, ok := m.MapSegment([]byte("ACGTACGTACGTACGTACGT")); ok {
		t.Error("empty index should not map")
	}
	_, contigs := world(t)
	m = NewMapper(contigs, Defaults(), 1)
	if _, ok := m.MapSegment(nil); ok {
		t.Error("nil segment should not map")
	}
	if m.IndexEntries() == 0 {
		t.Error("index is empty")
	}
}

func TestMinChainFilter(t *testing.T) {
	_, contigs := world(t)
	p := Defaults()
	p.MinChain = 1_000
	m := NewMapper(contigs, p, 1)
	if _, ok := m.MapSegment(contigs[0].Seq[:600]); ok {
		t.Error("absurd MinChain should reject everything")
	}
}
