package seedchain

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func benchWorld(b *testing.B) (*Mapper, []byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ref := randDNA(rng, 200_000)
	var contigs []seq.Record
	for pos := 0; pos+4000 <= len(ref); pos += 4000 {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+4000]})
	}
	m := NewMapper(contigs, Defaults(), 0)
	pos := rng.Intn(len(ref) - 1000)
	return m, ref[pos : pos+1000]
}

func BenchmarkSeedChainMapSegment(b *testing.B) {
	m, seg := benchWorld(b)
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MapSegment(seg)
	}
}

func BenchmarkSeedChainIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var contigs []seq.Record
	var bases int64
	for i := 0; i < 50; i++ {
		n := 2000 + rng.Intn(4000)
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", i), Seq: randDNA(rng, n)})
		bases += int64(n)
	}
	b.SetBytes(bases)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMapper(contigs, Defaults(), 1)
	}
}
