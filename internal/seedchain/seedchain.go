// Package seedchain implements a seed-and-chain mapper in the style of
// Minimap2 (Li 2018), the third tool the paper's evaluation discusses:
// minimizer seeds are matched against an index that records positions
// and orientations, co-linear anchors are chained with a gap-penalized
// dynamic program, and the best chain names the mapped subject. The
// paper could not compare against Minimap2 head-to-head because it
// reports multiple hits per query; this implementation adapts the
// approach to the best-hit protocol so all three strategies (JEM,
// Mashmap-style windowing, seed-and-chain) are measurable on the same
// benchmark.
package seedchain

import (
	"sort"

	"repro/internal/core"
	"repro/internal/kmer"
	"repro/internal/minimizer"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Params configures the mapper.
type Params struct {
	K int // k-mer size (default 16)
	W int // minimizer window (default 10; chaining wants denser seeds than JEM)
	// MaxGap is the largest allowed gap between chained anchors on
	// either sequence (default 500).
	MaxGap int
	// MinChain is the minimum number of anchors in a reportable chain
	// (default 3).
	MinChain int
	// MaxOccurrence drops seeds occurring more often than this in the
	// index (repeat masking; default 64).
	MaxOccurrence int
}

// Defaults returns sensible defaults for end-segment mapping.
func Defaults() Params {
	return Params{K: 16, W: 10, MaxGap: 500, MinChain: 3, MaxOccurrence: 64}
}

func (p Params) withDefaults() Params {
	d := Defaults()
	if p.K == 0 {
		p.K = d.K
	}
	if p.W == 0 {
		p.W = d.W
	}
	if p.MaxGap == 0 {
		p.MaxGap = d.MaxGap
	}
	if p.MinChain == 0 {
		p.MinChain = d.MinChain
	}
	if p.MaxOccurrence == 0 {
		p.MaxOccurrence = d.MaxOccurrence
	}
	return p
}

// loc is one indexed minimizer occurrence. fwd records whether the
// subject's forward k-mer at pos is the canonical form.
type loc struct {
	subject int32
	pos     int32
	fwd     bool
}

// Mapper is the seed-and-chain index.
type Mapper struct {
	p     Params
	mp    minimizer.Params
	index map[kmer.Word][]loc
	nsubj int
}

// NewMapper indexes contigs.
func NewMapper(contigs []seq.Record, p Params, workers int) *Mapper {
	p = p.withDefaults()
	m := &Mapper{
		p:     p,
		mp:    minimizer.Params{K: p.K, W: p.W},
		index: make(map[kmer.Word][]loc),
		nsubj: len(contigs),
	}
	lists := make([][]minimizer.Tuple, len(contigs))
	parallel.ForEach(len(contigs), workers, func(i int) {
		lists[i] = minimizer.Extract(contigs[i].Seq, m.mp)
	})
	for i, tuples := range lists {
		for _, t := range tuples {
			m.index[t.Kmer] = append(m.index[t.Kmer], loc{int32(i), t.Pos, t.FwdIsCanon})
		}
	}
	return m
}

// anchor is a seed match: query position q, target position t (both
// minimizer start positions), on a subject, with relative strand.
type anchor struct {
	subject int32
	rev     bool
	q, t    int32
}

// Chain is the result of chaining one subject/strand bucket.
type Chain struct {
	Subject int32
	Reverse bool
	// Anchors is the chain length; Score the DP score.
	Anchors int
	Score   int32
	// TStart/TEnd span the chained anchors on the subject.
	TStart, TEnd int32
}

// MapSegment maps one end segment, returning the best chain.
// ok=false when no chain reaches MinChain anchors.
func (m *Mapper) MapSegment(segment []byte) (Chain, bool) {
	tuples := minimizer.Extract(segment, m.mp)
	if len(tuples) == 0 {
		return Chain{Subject: -1}, false
	}
	var anchors []anchor
	for _, t := range tuples {
		locs := m.index[t.Kmer]
		if len(locs) == 0 || len(locs) > m.p.MaxOccurrence {
			continue
		}
		for _, l := range locs {
			anchors = append(anchors, anchor{
				subject: l.subject,
				rev:     l.fwd != t.FwdIsCanon,
				q:       t.Pos,
				t:       l.pos,
			})
		}
	}
	if len(anchors) == 0 {
		return Chain{Subject: -1}, false
	}
	// Bucket by (subject, strand) and chain each bucket.
	sort.Slice(anchors, func(i, j int) bool {
		a, b := anchors[i], anchors[j]
		if a.subject != b.subject {
			return a.subject < b.subject
		}
		if a.rev != b.rev {
			return !a.rev && b.rev
		}
		if a.t != b.t {
			return a.t < b.t
		}
		return a.q < b.q
	})
	best := Chain{Subject: -1}
	for i := 0; i < len(anchors); {
		j := i
		for j < len(anchors) && anchors[j].subject == anchors[i].subject && anchors[j].rev == anchors[i].rev {
			j++
		}
		c := m.chainBucket(anchors[i:j])
		if c.Anchors >= m.p.MinChain &&
			(c.Score > best.Score || (c.Score == best.Score && c.Subject < best.Subject)) {
			best = c
		}
		i = j
	}
	if best.Subject < 0 {
		return Chain{Subject: -1}, false
	}
	return best, true
}

// chainBucket runs the co-linear chaining DP over one subject/strand
// bucket (anchors sorted by target position). Forward chains require
// query positions to increase with target positions; reverse chains
// require them to decrease.
func (m *Mapper) chainBucket(as []anchor) Chain {
	n := len(as)
	score := make([]int32, n)
	count := make([]int16, n)
	back := make([]int32, n)
	const lookback = 40
	var bestIdx int
	rev := as[0].rev
	for i := 0; i < n; i++ {
		score[i] = int32(m.p.K) // a chain of one anchor scores k
		count[i] = 1
		back[i] = -1
		lo := i - lookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			dt := as[i].t - as[j].t
			if dt <= 0 {
				continue
			}
			if int(dt) > m.p.MaxGap {
				break // sorted by t: all earlier j are farther
			}
			var dq int32
			if !rev {
				dq = as[i].q - as[j].q
			} else {
				dq = as[j].q - as[i].q
			}
			if dq <= 0 || int(dq) > m.p.MaxGap {
				continue
			}
			gap := dt - dq
			if gap < 0 {
				gap = -gap
			}
			match := int32(m.p.K)
			if dt < match {
				match = dt
			}
			if dq < match {
				match = dq
			}
			s := score[j] + match - gap/8
			if s > score[i] {
				score[i] = s
				count[i] = count[j] + 1
				back[i] = int32(j)
			}
		}
		if score[i] > score[bestIdx] {
			bestIdx = i
		}
	}
	// Walk back for the span.
	tEnd := as[bestIdx].t + int32(m.p.K)
	tStart := as[bestIdx].t
	for i := int32(bestIdx); i >= 0; i = back[i] {
		tStart = as[i].t
		if back[i] < 0 {
			break
		}
	}
	return Chain{
		Subject: as[0].subject,
		Reverse: rev,
		Anchors: int(count[bestIdx]),
		Score:   score[bestIdx],
		TStart:  tStart,
		TEnd:    tEnd,
	}
}

// MapReads maps the end segments of every read, producing results in
// the shared core.Result shape so the common evaluator applies.
func (m *Mapper) MapReads(reads []seq.Record, l int, workers int) []core.Result {
	out := make([][]core.Result, len(reads))
	parallel.ForEach(len(reads), workers, func(i int) {
		segs, kinds := core.EndSegments(reads[i].Seq, l)
		rs := make([]core.Result, len(segs))
		for s, seg := range segs {
			chain, ok := m.MapSegment(seg)
			r := core.Result{ReadIndex: int32(i), Kind: kinds[s], Subject: -1}
			if ok {
				r.Subject = chain.Subject
				r.Count = int32(chain.Anchors)
			}
			rs[s] = r
		}
		out[i] = rs
	})
	flat := make([]core.Result, 0, 2*len(reads))
	for _, rs := range out {
		flat = append(flat, rs...)
	}
	return flat
}

// IndexEntries reports the index size.
func (m *Mapper) IndexEntries() int {
	n := 0
	for _, l := range m.index {
		n += len(l)
	}
	return n
}
