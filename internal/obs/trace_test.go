package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("index.build")
	sk := root.Child("sketch")
	time.Sleep(time.Millisecond)
	sk.End()
	root.Time("freeze", func() { time.Sleep(time.Millisecond) })
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "index.build" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "sketch" || kids[1].Name() != "freeze" {
		t.Fatalf("children = %v", kids)
	}
	for _, s := range kids {
		if !s.Ended() || s.Duration() <= 0 {
			t.Errorf("span %s: ended=%v duration=%v", s.Name(), s.Ended(), s.Duration())
		}
	}
	if roots[0].Duration() < kids[0].Duration() {
		t.Error("root shorter than its child")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	d1 := s.End()
	time.Sleep(2 * time.Millisecond)
	if d2 := s.End(); d2 != d1 {
		t.Errorf("second End changed duration: %v != %v", d2, d1)
	}
}

// TestTracerConcurrentRanks models the distributed driver: one root
// per rank started from parallel goroutines, each nesting its own
// phase children, while another goroutine renders the live tree.
func TestTracerConcurrentRanks(t *testing.T) {
	tr := NewTracer()
	stop := make(chan struct{})
	var render sync.WaitGroup
	render.Add(1)
	go func() {
		defer render.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				_ = tr.Render(&buf)
			}
		}
	}()
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			root := tr.Start("rank")
			for _, phase := range []string{"sketch", "gather", "map"} {
				root.Child(phase).End()
			}
			root.End()
		}(rank)
	}
	wg.Wait()
	close(stop)
	render.Wait()
	if len(tr.Roots()) != 8 {
		t.Errorf("roots = %d, want 8", len(tr.Roots()))
	}
}

func TestRenderIndentation(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	root.Child("inner").End()
	root.End()
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "root") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  inner") {
		t.Errorf("line 1 = %q", lines[1])
	}
}
