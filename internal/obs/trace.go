package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer records trees of named phase spans. It is safe for
// concurrent use: the distributed driver starts one root per rank
// from parallel goroutines, and each goroutine then nests children
// under its own root.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start begins a root span. End it with Span.End.
func (t *Tracer) Start(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns a snapshot of the root spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed phase. Spans are safe for concurrent use: a
// goroutine may End a span while another renders the tree, and
// children of one parent may be created from multiple goroutines.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	d        time.Duration
	ended    bool
	children []*Span
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Child begins a nested span under s.
func (s *Span) Child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span and returns its duration. End is idempotent;
// the first call wins.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.d = time.Since(s.start)
		s.ended = true
	}
	return s.d
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration returns the span's length: its final duration once ended,
// or the elapsed time so far while still open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.d
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the nested spans in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Time runs fn inside a child span of s — the convenience form for
// phase-timing a function call.
func (s *Span) Time(name string, fn func()) time.Duration {
	c := s.Child(name)
	fn()
	return c.End()
}

// Render writes the span forest as an indented tree, one span per
// line with its duration, e.g.
//
//	rank00            12.1ms
//	  sketch           8.0ms
//	  gather           1.2ms
//	  map              2.9ms
func (t *Tracer) Render(w io.Writer) error {
	for _, root := range t.Roots() {
		if err := renderSpan(w, root, 0); err != nil {
			return err
		}
	}
	return nil
}

func renderSpan(w io.Writer, s *Span, depth int) error {
	if _, err := fmt.Fprintf(w, "%*s%-*s %v\n", 2*depth, "", 24-2*depth, s.name,
		s.Duration().Round(time.Microsecond)); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := renderSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
