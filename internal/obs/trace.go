package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// defaultTracerRoots is how many root span trees a Tracer retains.
// Build/load/save spans and per-rank distributed spans arrive at a few
// per run, so 256 covers many runs of history; what matters is that a
// long-lived process (jem-serve) cannot accumulate roots without
// bound — before the cap, every request-scoped root leaked forever.
const defaultTracerRoots = 256

// Tracer records trees of named phase spans. It is safe for
// concurrent use: the distributed driver starts one root per rank
// from parallel goroutines, and each goroutine then nests children
// under its own root.
//
// Retention is bounded: once the root ring is full, starting a new
// root evicts the oldest one (Dropped counts evictions). Completed
// request traces that need richer retention policy live in a
// TraceRing instead; the Tracer ring is the keep-the-recent-history
// view rendered on /statusz.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	roots   []*Span // circular once len(roots) == cap
	next    int     // insertion point once circular
	dropped int64
}

// NewTracer creates an empty tracer with the default root retention.
func NewTracer() *Tracer { return &Tracer{cap: defaultTracerRoots} }

// NewTracerCap creates a tracer retaining at most n root spans
// (n <= 0 falls back to the default).
func NewTracerCap(n int) *Tracer {
	if n <= 0 {
		n = defaultTracerRoots
	}
	return &Tracer{cap: n}
}

// Start begins a root span. End it with Span.End. Once the tracer
// holds its retention cap of roots, the oldest is evicted.
func (t *Tracer) Start(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	if t.cap <= 0 {
		t.cap = defaultTracerRoots
	}
	if len(t.roots) < t.cap {
		t.roots = append(t.roots, s)
	} else {
		t.roots[t.next] = s
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
	return s
}

// Roots returns a snapshot of the retained root spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.roots))
	out = append(out, t.roots[t.next:]...)
	out = append(out, t.roots[:t.next]...)
	return out
}

// Dropped returns how many root spans retention has evicted.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Attr is one key/value annotation on a span: run stats, shard ids,
// statuses — whatever attributes the phase with context.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed phase. Spans are safe for concurrent use: a
// goroutine may End a span while another renders the tree, and
// children of one parent may be created from multiple goroutines.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	d        time.Duration
	ended    bool
	children []*Span
	attrs    []Attr
}

// NewSpan begins a standalone root span outside any Tracer — the form
// request-scoped tracing uses, where retention is the TraceRing's job
// and tying the span to the process-wide tracer would double-retain.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Child begins a nested span under s.
func (s *Span) Child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddTimed attaches an already-measured phase as an ended child span
// of duration d. Pipelined phases (read/sketch/gather/write overlap
// in wall time) are measured as per-phase wall accumulators while the
// run executes; AddTimed is how those totals become spans in the
// request's tree after the run completes.
func (s *Span) AddTimed(name string, d time.Duration) *Span {
	c := &Span{name: name, start: time.Now().Add(-d), d: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr sets a key/value attribute on the span, replacing any
// earlier value for the same key.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attrs returns a snapshot of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// End closes the span and returns its duration. End is idempotent;
// the first call wins.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.d = time.Since(s.start)
		s.ended = true
	}
	return s.d
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration returns the span's length: its final duration once ended,
// or the elapsed time so far while still open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.d
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the nested spans in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Time runs fn inside a child span of s — the convenience form for
// phase-timing a function call.
func (s *Span) Time(name string, fn func()) time.Duration {
	c := s.Child(name)
	fn()
	return c.End()
}

// Render writes the span forest as an indented tree, one span per
// line with its duration and attributes, e.g.
//
//	rank00            12.1ms
//	  sketch           8.0ms
//	  gather           1.2ms  shards=4
//	  map              2.9ms
func (t *Tracer) Render(w io.Writer) error {
	for _, root := range t.Roots() {
		if err := RenderSpan(w, root, 0); err != nil {
			return err
		}
	}
	return nil
}

// RenderSpan writes one span subtree as an indented text tree rooted
// at depth — shared by the tracer's /statusz rendering and the trace
// ring's /debug/traces rendering.
func RenderSpan(w io.Writer, s *Span, depth int) error {
	if _, err := fmt.Fprintf(w, "%*s%-*s %v%s\n", 2*depth, "", 24-2*depth, s.name,
		s.Duration().Round(time.Microsecond), attrSuffix(s.Attrs())); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := RenderSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// attrSuffix renders a span's attributes as "  k=v k=v" (empty when
// there are none).
func attrSuffix(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" ")
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	return b.String()
}
