package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"time"
)

// FlightSnapshot is one point-in-time capture taken when a request
// exceeded the slow-request threshold: what the process looked like
// at the moment the slowness was observed. Unlike a trace (which says
// where the request's own time went), a flight snapshot says what
// else was happening — goroutines, admission pressure, the in-flight
// table — which is usually where the answer to "why was it slow" is.
type FlightSnapshot struct {
	Time     time.Time
	TraceID  TraceID
	Reason   string
	Duration time.Duration
	// Attrs are caller-supplied point-in-time numbers: admission-queue
	// depth, in-flight count, the rendered in-flight table.
	Attrs []Attr
	// SpanTree is the slow request's span tree rendered at capture.
	SpanTree string
	// Goroutines is the goroutine profile (pprof "goroutine", debug=1)
	// at capture, truncated to goroutineDumpLimit.
	Goroutines string
}

// goroutineDumpLimit bounds one snapshot's goroutine dump so a
// thousand-goroutine process cannot turn the flight ring into a
// memory hog (the ring bound times this is the worst case).
const goroutineDumpLimit = 64 << 10

// FlightRecorder keeps a bounded ring of flight snapshots. Captures
// are rate-limited (minGap between captures) because slow requests
// arrive in bursts exactly when the process is least able to afford
// goroutine dumps; the suppressed count says how many a burst cost.
type FlightRecorder struct {
	threshold time.Duration
	minGap    time.Duration

	mu         sync.Mutex
	cap        int
	buf        []*FlightSnapshot
	next       int
	last       time.Time
	captures   int64
	suppressed int64
}

// NewFlightRecorder creates a recorder that considers requests slower
// than threshold capture-worthy (threshold <= 0 disables capturing),
// retains at most capacity snapshots, and takes at most one capture
// per minGap.
func NewFlightRecorder(threshold time.Duration, capacity int, minGap time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = 16
	}
	return &FlightRecorder{threshold: threshold, minGap: minGap, cap: capacity}
}

// Threshold returns the slow-request threshold (0 = disabled).
func (f *FlightRecorder) Threshold() time.Duration { return f.threshold }

// Exceeded reports whether a request of duration d crosses the
// capture threshold.
func (f *FlightRecorder) Exceeded(d time.Duration) bool {
	return f.threshold > 0 && d >= f.threshold
}

// Capture takes a snapshot for trace t (rendering its span tree and
// the goroutine profile) with the caller's point-in-time attrs, and
// retains it unless the rate limit suppresses it. It reports whether
// a snapshot was taken.
func (f *FlightRecorder) Capture(t *Trace, attrs []Attr) bool {
	now := time.Now()
	f.mu.Lock()
	if f.minGap > 0 && !f.last.IsZero() && now.Sub(f.last) < f.minGap {
		f.suppressed++
		f.mu.Unlock()
		return false
	}
	f.last = now
	f.mu.Unlock()

	// The expensive part — goroutine dump and tree render — runs
	// outside the lock so readers are never blocked behind it.
	snap := &FlightSnapshot{
		Time:     now,
		TraceID:  t.ID,
		Reason:   fmt.Sprintf("request exceeded slow threshold %v (took %v)", f.threshold, t.Duration.Round(time.Microsecond)),
		Duration: t.Duration,
		Attrs:    attrs,
	}
	var tree bytes.Buffer
	_ = RenderSpan(&tree, t.Root, 0)
	snap.SpanTree = tree.String()
	var g bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&g, 1)
	}
	dump := g.Bytes()
	if len(dump) > goroutineDumpLimit {
		dump = append(dump[:goroutineDumpLimit:goroutineDumpLimit], "\n... (truncated)\n"...)
	}
	snap.Goroutines = string(dump)

	f.mu.Lock()
	f.captures++
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, snap)
	} else {
		f.buf[f.next] = snap
		f.next = (f.next + 1) % f.cap
	}
	f.mu.Unlock()
	return true
}

// Captures returns how many snapshots have been taken.
func (f *FlightRecorder) Captures() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.captures
}

// Suppressed returns how many capture-worthy requests the rate limit
// skipped.
func (f *FlightRecorder) Suppressed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.suppressed
}

// Len returns how many snapshots the ring currently retains.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Snapshots returns the retained snapshots oldest-first.
func (f *FlightRecorder) Snapshots() []*FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FlightSnapshot, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// WriteText renders the retained snapshots oldest-first.
func (f *FlightRecorder) WriteText(w io.Writer) error {
	snaps := f.Snapshots()
	if _, err := fmt.Fprintf(w, "# %d flight snapshots retained (%d captured, %d suppressed by rate limit, threshold %v)\n",
		len(snaps), f.Captures(), f.Suppressed(), f.Threshold()); err != nil {
		return err
	}
	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "\n=== flight %s  trace=%s  dur=%v\n%s\n",
			s.Time.Format(time.RFC3339Nano), s.TraceID, s.Duration.Round(time.Microsecond), s.Reason); err != nil {
			return err
		}
		for _, a := range s.Attrs {
			if _, err := fmt.Fprintf(w, "%s: %v\n", a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "--- span tree\n%s--- goroutines\n%s", s.SpanTree, s.Goroutines); err != nil {
			return err
		}
	}
	return nil
}

// flightJSON is the NDJSON shape of one snapshot (the goroutine dump
// is included verbatim; it is already size-bounded).
type flightJSON struct {
	Time       string         `json:"time"`
	TraceID    string         `json:"trace_id"`
	Reason     string         `json:"reason"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	SpanTree   string         `json:"span_tree"`
	Goroutines string         `json:"goroutines"`
}

// WriteNDJSON renders the retained snapshots oldest-first as one JSON
// object per line.
func (f *FlightRecorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range f.Snapshots() {
		out := flightJSON{
			Time:       s.Time.Format(time.RFC3339Nano),
			TraceID:    s.TraceID.String(),
			Reason:     s.Reason,
			DurationNS: s.Duration.Nanoseconds(),
			SpanTree:   s.SpanTree,
			Goroutines: s.Goroutines,
		}
		if len(s.Attrs) > 0 {
			out.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				out.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}
