package obs

import (
	"math"
	"strings"
	"testing"
)

// expSamples returns n deterministic samples of an Exponential(rate)
// distribution via the inverse CDF over an evenly spaced grid — a
// known distribution with known quantiles, no RNG flakiness.
func expSamples(n int, rate float64) []float64 {
	out := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		u := (float64(i) - 0.5) / float64(n)
		out = append(out, -math.Log(1-u)/rate)
	}
	return out
}

// expQuantile is the exact q-quantile of Exponential(rate).
func expQuantile(q, rate float64) float64 { return -math.Log(1-q) / rate }

// TestHistogramExponentialAccuracy checks percentile estimation on a
// known skewed distribution: Exponential(100) — mean 10ms — observed
// into the latency buckets. The estimate interpolates inside a
// bucket, so the tolerance is the width of the bucket holding the
// true quantile.
func TestHistogramExponentialAccuracy(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	const rate = 100.0
	for _, v := range expSamples(100000, rate) {
		h.Observe(v)
	}
	bounds := h.Bounds()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := expQuantile(q, rate)
		got := h.Quantile(q)
		// Tolerance: the bucket holding the true value.
		lo, hi := 0.0, bounds[len(bounds)-1]
		for i, ub := range bounds {
			if truth <= ub {
				hi = ub
				if i > 0 {
					lo = bounds[i-1]
				}
				break
			}
		}
		if got < lo || got > hi {
			t.Errorf("q=%.2f: estimate %.5f outside bucket [%.5f, %.5f] holding the true %.5f",
				q, got, lo, hi, truth)
		}
	}
}

// TestHistogramMerge pins merge behavior: two histograms over halves
// of a distribution merge into exactly the whole — same counts, same
// sum, same quantile estimates as observing everything into one.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(LatencyBuckets())
	a := NewHistogram(LatencyBuckets())
	b := NewHistogram(LatencyBuckets())
	samples := expSamples(10000, 100)
	for i, v := range samples {
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole %d", a.Count(), whole.Count())
	}
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum %g != whole %g", a.Sum(), whole.Sum())
	}
	ac, wc := a.BucketCounts(), whole.BucketCounts()
	for i := range ac {
		if ac[i] != wc[i] {
			t.Fatalf("bucket %d: merged %d != whole %d", i, ac[i], wc[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%.2f: merged %g != whole %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 2}).Merge(NewHistogram([]float64{1, 3}))
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.07, "trace-b") // same bucket: latest wins
	h.ObserveExemplar(50, "trace-inf") // overflow bucket
	h.Observe(0.5)                     // unlabeled: no exemplar
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(ex), ex)
	}
	if ex[0].Label != "trace-b" || ex[0].UpperBound != 0.1 || ex[0].Value != 0.07 {
		t.Errorf("bucket exemplar wrong: %+v", ex[0])
	}
	if ex[1].Label != "trace-inf" || !math.IsInf(ex[1].UpperBound, 1) {
		t.Errorf("overflow exemplar wrong: %+v", ex[1])
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4 (exemplar observations count)", h.Count())
	}

	// Exemplars surface in the statusz table.
	reg := NewRegistry()
	rh := reg.Histogram("test_seconds", "help", []float64{0.01, 0.1, 1})
	rh.ObserveExemplar(0.05, "deadbeefdeadbeef")
	var sb strings.Builder
	if err := reg.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deadbeefdeadbeef") {
		t.Errorf("statusz table missing the exemplar:\n%s", sb.String())
	}
}
