package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID identifies one request's span tree: 8 random-looking bytes
// rendered as 16 lowercase hex digits. IDs are unique within a
// process (and collision-unlikely across processes: the sequence is
// seeded from crypto/rand at startup) without paying a syscall or an
// allocation per request — generation is one atomic add and a mix.
type TraceID [8]byte

// traceIDState is the generator state: a crypto/rand-seeded counter
// whose increments are whitened through the splitmix64 finalizer, the
// same mixer the sketch shard router trusts for uniformity.
var traceIDState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		traceIDState.Store(binary.LittleEndian.Uint64(seed[:]))
	}
}

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() TraceID {
	x := traceIDState.Add(0x9E3779B97F4A7C15) // golden-ratio increment
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	var id TraceID
	binary.BigEndian.PutUint64(id[:], x)
	return id
}

// String renders the ID as 16 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the zero value (no trace).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses a 16-hex-digit trace ID, the wire form of the
// X-JEM-Trace-Id header.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, fmt.Errorf("obs: trace id %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %v", s, err)
	}
	return id, nil
}

// spanCtxKey keys the active request span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the active span.
// Layers below the request handler (the facade's Stream, the core
// session path) pick it up with SpanFromContext and attach their
// phase children to it — the propagation channel that turns one HTTP
// request into one span tree without threading a tracer through
// every signature.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil when
// the caller is not being traced. A nil result is the fast path:
// untraced runs skip all span work.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
