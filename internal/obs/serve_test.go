package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeEndpoints stands the side server up on an ephemeral port
// and checks every endpoint answers: the Prometheus exposition, the
// human statusz, expvar, and the pprof index/cmdline handlers.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jem_test_total", "a counter").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "jem_test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "go_goroutines") {
		t.Errorf("/metrics missing runtime gauges:\n%s", body)
	}
	if body := get("/statusz"); !strings.Contains(body, "jem_test_total") {
		t.Errorf("/statusz missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats:\n%s", body[:min(len(body), 200)])
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%s", body[:min(len(body), 200)])
	}
	get("/debug/pprof/cmdline") // must simply answer 200
}
