package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndpoints stands the side server up on an ephemeral port
// and checks every endpoint answers: the Prometheus exposition, the
// human statusz, expvar, and the pprof index/cmdline handlers.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jem_test_total", "a counter").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "jem_test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "go_goroutines") {
		t.Errorf("/metrics missing runtime gauges:\n%s", body)
	}
	if body := get("/statusz"); !strings.Contains(body, "jem_test_total") {
		t.Errorf("/statusz missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats:\n%s", body[:min(len(body), 200)])
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%s", body[:min(len(body), 200)])
	}
	get("/debug/pprof/cmdline") // must simply answer 200
}

// TestServerCloseWaitsForServeGoroutine is the regression test for
// the unsupervised-goroutine fix: Close must not return until the
// side serve goroutine has exited, so a caller tearing down the
// process observes the listener fully released.
func TestServerCloseWaitsForServeGoroutine(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-s.done:
	default:
		t.Fatal("Close returned before the serve goroutine exited")
	}
}

// TestServerShutdownWaitsForServeGoroutine: the graceful path makes
// the same guarantee when the context allows it.
func TestServerShutdownWaitsForServeGoroutine(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-s.done:
	default:
		t.Fatal("Shutdown returned before the serve goroutine exited")
	}
}
