package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace is one completed request: its span tree plus the routing
// metadata the retention policy and the /debug/traces renderings key
// on.
type Trace struct {
	ID       TraceID
	Root     *Span
	Status   int    // HTTP status (0 when not applicable)
	Err      string // terse error classification, "" on success
	Start    time.Time
	Duration time.Duration
	// Kept records why the ring retained the trace ("error", "slow",
	// "p99", "sampled"); set by TraceRing.Add.
	Kept string
}

// TraceRing retains completed traces in a bounded ring with
// tail-sampling: every error (status >= 400 or a classified error)
// is kept, every request over the slow threshold is kept, the
// estimated-p99 latency tail is kept, and the remaining ok-and-fast
// majority is sampled 1-in-N. Memory is bounded twice over — by the
// sampling and by the ring capacity — so a long-lived server can
// leave it on forever.
type TraceRing struct {
	mu      sync.Mutex
	cap     int
	sampleN int
	slow    time.Duration
	buf     []*Trace
	next    int
	seq     int64 // ok-and-fast traces seen, for 1-in-N sampling
	seen    int64
	kept    int64
	lat     *Histogram // duration distribution driving the p99 tail keep
}

// p99MinSamples is how many completed traces the ring must have seen
// before the p99-tail keep engages: a quantile over a handful of
// samples is noise and would defeat the sampling.
const p99MinSamples = 100

// NewTraceRing creates a ring retaining at most capacity traces,
// sampling 1 in sampleN of the ok-and-fast traces (sampleN <= 1 keeps
// all of them), and always keeping traces at least slow long
// (slow <= 0 disables the threshold keep; the p99 tail keep still
// applies).
func NewTraceRing(capacity, sampleN int, slow time.Duration) *TraceRing {
	if capacity <= 0 {
		capacity = 256
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &TraceRing{
		cap:     capacity,
		sampleN: sampleN,
		slow:    slow,
		lat:     NewHistogram(LatencyBuckets()),
	}
}

// Add applies the tail-sampling policy to t and retains it when the
// policy keeps it, evicting the oldest retained trace once the ring
// is full. It reports whether t was kept and records the reason in
// t.Kept.
func (r *TraceRing) Add(t *Trace) bool {
	r.lat.Observe(t.Duration.Seconds())
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	switch {
	case t.Status >= 400 || t.Err != "":
		t.Kept = "error"
	case r.slow > 0 && t.Duration >= r.slow:
		t.Kept = "slow"
	case r.lat.Count() >= p99MinSamples && t.Duration.Seconds() >= r.lat.Quantile(0.99):
		t.Kept = "p99"
	default:
		r.seq++
		if r.seq%int64(r.sampleN) != 0 {
			return false
		}
		t.Kept = "sampled"
	}
	r.kept++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % r.cap
	}
	return true
}

// Len returns how many traces the ring currently retains.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Seen returns how many traces have been offered to the ring.
func (r *TraceRing) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Kept returns how many offered traces the policy retained (some may
// since have been evicted by the ring bound).
func (r *TraceRing) Kept() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kept
}

// Snapshot returns the retained traces oldest-first.
func (r *TraceRing) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Find returns the retained trace with the given ID, nil when absent
// (never offered, sampled out, or already evicted).
func (r *TraceRing) Find(id TraceID) *Trace {
	for _, t := range r.Snapshot() {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// WriteText renders the retained traces oldest-first as indented span
// trees, one header line per trace:
//
//	trace 9c4e6a2b8f01d37e  status=200  dur=12.3ms  kept=sampled
//	  request               12.3ms  reads=100
//	    admission           11µs
//	    ...
func (r *TraceRing) WriteText(w io.Writer) error {
	traces := r.Snapshot()
	if _, err := fmt.Fprintf(w, "# %d traces retained of %d seen (%d kept by policy)\n",
		len(traces), r.Seen(), r.Kept()); err != nil {
		return err
	}
	for _, t := range traces {
		if err := t.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders one trace: a header line with its identity and
// outcome, then the indented span tree.
func (t *Trace) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace %s  status=%d  dur=%v  kept=%s  start=%s\n",
		t.ID, t.Status, t.Duration.Round(time.Microsecond), t.Kept,
		t.Start.Format(time.RFC3339Nano)); err != nil {
		return err
	}
	if t.Err != "" {
		if _, err := fmt.Fprintf(w, "  error: %s\n", t.Err); err != nil {
			return err
		}
	}
	return RenderSpan(w, t.Root, 1)
}

// WriteJSON renders one trace as a single JSON object, the same shape
// as one WriteNDJSON line.
func (t *Trace) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.toJSON())
}

func (t *Trace) toJSON() traceJSON {
	return traceJSON{
		TraceID:    t.ID.String(),
		Status:     t.Status,
		Err:        t.Err,
		Start:      t.Start.Format(time.RFC3339Nano),
		DurationNS: t.Duration.Nanoseconds(),
		Kept:       t.Kept,
		Root:       spanToJSON(t.Root),
	}
}

// spanJSON is the NDJSON shape of one span subtree.
type spanJSON struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []spanJSON     `json:"children,omitempty"`
}

func spanToJSON(s *Span) spanJSON {
	out := spanJSON{Name: s.Name(), DurationNS: s.Duration().Nanoseconds()}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

// traceJSON is the NDJSON shape of one retained trace.
type traceJSON struct {
	TraceID    string   `json:"trace_id"`
	Status     int      `json:"status,omitempty"`
	Err        string   `json:"error,omitempty"`
	Start      string   `json:"start"`
	DurationNS int64    `json:"duration_ns"`
	Kept       string   `json:"kept"`
	Root       spanJSON `json:"root"`
}

// WriteNDJSON renders the retained traces oldest-first as one JSON
// object per line — the machine-readable face of /debug/traces.
func (r *TraceRing) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, t := range r.Snapshot() {
		if err := enc.Encode(t.toJSON()); err != nil {
			return err
		}
	}
	return nil
}
