package obs

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/stats"
)

// Histogram is a concurrency-safe fixed-boundary histogram in the
// Prometheus style: observations are counted into buckets whose upper
// bounds are set at construction, plus an implicit +Inf overflow
// bucket, and the sum of all observations is tracked so both rates
// and percentile estimates can be derived from a scrape.
type Histogram struct {
	bounds []float64 // strictly increasing finite upper bounds
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on an empty or unsorted bound list — a
// programming error, matching internal/stats.NewHistogram.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LatencyBuckets returns the default bounds for lookup-latency
// histograms: roughly exponential from 1µs to 10s, in seconds.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// Observe counts one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts; the last
// entry is the +Inf overflow bucket. Concurrent observations may land
// between bucket loads, so the snapshot is only weakly consistent —
// fine for scraping and percentile estimates.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Values beyond
// the largest finite bound clamp to it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	return stats.QuantileFromBuckets(h.bounds, h.BucketCounts(), q)
}
