package obs

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/stats"
)

// Histogram is a concurrency-safe fixed-boundary histogram in the
// Prometheus style: observations are counted into buckets whose upper
// bounds are set at construction, plus an implicit +Inf overflow
// bucket, and the sum of all observations is tracked so both rates
// and percentile estimates can be derived from a scrape.
type Histogram struct {
	bounds []float64 // strictly increasing finite upper bounds
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// ex holds one exemplar per bucket (latest labeled observation to
	// land there), linking the latency distribution back to concrete
	// trace IDs; see ObserveExemplar.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar ties one bucket of a histogram to a concrete observation:
// the value and an opaque label, by convention a trace ID — the hook
// that turns "p99 is 80ms" into "and here is an 80ms request to look
// at in /debug/traces".
type Exemplar struct {
	UpperBound float64 // the bucket's upper bound; +Inf for overflow
	Value      float64
	Label      string
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on an empty or unsorted bound list — a
// programming error, matching internal/stats.NewHistogram.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// LatencyBuckets returns the default bounds for lookup-latency
// histograms: roughly exponential from 1µs to 10s, in seconds.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// Observe counts one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveExemplar counts one observation and, when label is
// non-empty, stores it as the landing bucket's exemplar (latest
// wins). The store is one atomic pointer swap, so exemplars cost
// nothing measurable on the request path.
func (h *Histogram) ObserveExemplar(v float64, label string) {
	h.Observe(v)
	if label == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	ub := math.Inf(1)
	if i < len(h.bounds) {
		ub = h.bounds[i]
	}
	h.ex[i].Store(&Exemplar{UpperBound: ub, Value: v, Label: label})
}

// Exemplars returns the buckets' current exemplars (buckets that
// never saw a labeled observation are omitted), in bucket order.
func (h *Histogram) Exemplars() []Exemplar {
	out := make([]Exemplar, 0, 4)
	for i := range h.ex {
		if e := h.ex[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Merge folds o's observations into h. The two histograms must share
// identical bounds (a programming error otherwise, and it panics like
// NewHistogram does). Exemplars transfer too: o's exemplar wins where
// h's bucket has none. Merge is how per-run or per-worker histograms
// fold into a fleet view without re-observing every sample.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("obs: merging histograms with different bucket counts")
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			panic("obs: merging histograms with different bounds")
		}
	}
	var total int64
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
			total += c
		}
		if e := o.ex[i].Load(); e != nil && h.ex[i].Load() == nil {
			h.ex[i].Store(e)
		}
	}
	h.n.Add(total)
	add := o.Sum()
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + add)
		if h.sum.CompareAndSwap(old, nv) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts; the last
// entry is the +Inf overflow bucket. Concurrent observations may land
// between bucket loads, so the snapshot is only weakly consistent —
// fine for scraping and percentile estimates.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Values beyond
// the largest finite bound clamp to it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	return stats.QuantileFromBuckets(h.bounds, h.BucketCounts(), q)
}
