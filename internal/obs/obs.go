// Package obs is the repository's observability layer: a small,
// dependency-free (standard library only) metrics and tracing toolkit
// shared by the mapper core, the streaming pipeline, the distributed
// driver and the CLIs.
//
// It provides three things:
//
//   - Instruments — atomic Counter and Gauge, and a fixed-boundary
//     latency Histogram with percentile estimation (the bucket math
//     lives in internal/stats).
//   - A Registry that names instruments, renders them as a human
//     table or Prometheus-style text exposition, and owns a Tracer
//     for nested phase spans (index build → freeze → query;
//     reader → map → write; per-rank sketch → gather → map).
//   - Serve, which exposes a registry on an HTTP side goroutine:
//     /metrics (text exposition), /debug/vars (expvar) and
//     /debug/pprof/* — so a long run can be watched and profiled
//     live (jem-mapper -metrics-addr, jem-bench -metrics-addr).
//
// All instruments are safe for concurrent use; updates are single
// atomic operations so they can sit on query hot paths.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be ≥ 0 to keep the counter monotonic; this is
// not enforced, matching Prometheus client conventions' cheap path).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Wall is a cumulative wall-clock instrument backed by an integer
// nanosecond count. It renders as a float-seconds gauge (the
// Prometheus convention) but, unlike accumulating float seconds in a
// Gauge, integer addition never loses precision: a float64 gauge that
// has grown large absorbs small additions into rounding error, so a
// long-lived server's wall counters would drift low. Int64 nanoseconds
// overflow after ~292 years of accumulated wall time.
type Wall struct {
	ns atomic.Int64
}

// Add folds one measured duration into the total.
func (w *Wall) Add(d time.Duration) { w.ns.Add(int64(d)) }

// Duration returns the exact accumulated wall time.
func (w *Wall) Duration() time.Duration { return time.Duration(w.ns.Load()) }

// Seconds returns the total as float seconds (the render-time
// conversion; the stored value stays integer).
func (w *Wall) Seconds() float64 { return float64(w.ns.Load()) / float64(time.Second) }

// Gauge is a float64 metric that can go up and down (also used for
// cumulative wall-clock seconds, where float keeps the Prometheus
// seconds convention).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
