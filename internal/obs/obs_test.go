package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this doubles as the data-race check,
// and the totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	const goroutines, perG = 16, 10_000
	reg := NewRegistry()
	c := reg.Counter("c_total", "hammered counter")
	g := reg.Gauge("g", "hammered gauge")
	h := reg.Histogram("h_seconds", "hammered histogram", []float64{0.25, 0.5, 0.75, 1})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(j%4) * 0.25)
			}
		}(i)
	}
	wg.Wait()

	if got, want := c.Value(), int64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), 0.5*goroutines*perG; math.Abs(got-want) > 1e-6 {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	wantSum := float64(goroutines) * perG / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
	var n int64
	for _, b := range h.BucketCounts() {
		n += b
	}
	if n != int64(goroutines*perG) {
		t.Errorf("bucket counts sum to %d, want %d", n, goroutines*perG)
	}
}

// TestHistogramQuantileAccuracy observes a known uniform distribution
// and checks the interpolated percentiles land within one bucket width
// of the true values.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := make([]float64, 20) // uniform bounds 0.05..1.0
	for i := range bounds {
		bounds[i] = float64(i+1) * 0.05
	}
	h := NewHistogram(bounds)
	const n = 100_000
	for i := 0; i < n; i++ {
		h.Observe(float64(i) / n) // uniform on [0,1)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.05 {
			t.Errorf("Quantile(%v) = %v, want within one bucket (0.05) of %v", q, got, q)
		}
	}
	if got := h.Quantile(0); got < 0 || got > 0.05 {
		t.Errorf("Quantile(0) = %v, want inside the first bucket", got)
	}
	if got := h.Quantile(1); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Quantile(1) = %v, want 1.0", got)
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
	counts := h.BucketCounts()
	if counts[2] != 1 {
		t.Errorf("overflow bucket = %d, want 1", counts[2])
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestWritePrometheusGolden pins the exact text exposition of a small
// registry: sorted by name, HELP/TYPE headers, cumulative buckets.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jem_segments_total", "segments mapped").Add(7)
	reg.Gauge("jem_read_wall_seconds", "reader wall time").Set(1.5)
	h := reg.Histogram("jem_lookup_seconds", "lookup latency", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(1.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP jem_lookup_seconds lookup latency`,
		`# TYPE jem_lookup_seconds histogram`,
		`jem_lookup_seconds_bucket{le="0.5"} 2`,
		`jem_lookup_seconds_bucket{le="2"} 3`,
		`jem_lookup_seconds_bucket{le="+Inf"} 4`,
		`jem_lookup_seconds_sum 7`,
		`jem_lookup_seconds_count 4`,
		`# HELP jem_read_wall_seconds reader wall time`,
		`# TYPE jem_read_wall_seconds gauge`,
		`jem_read_wall_seconds 1.5`,
		`# HELP jem_segments_total segments mapped`,
		`# TYPE jem_segments_total counter`,
		`jem_segments_total 7`,
		``,
	}, "\n")
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Error("re-registering a counter returned a new instrument")
	}
	h1 := reg.Histogram("h", "", []float64{1, 2})
	h2 := reg.Histogram("h", "", []float64{9}) // bounds ignored on re-register
	if h1 != h2 {
		t.Error("re-registering a histogram returned a new instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(3)
	reg.Gauge("g", "").Set(2.5)
	reg.GaugeFunc("fn", "", func() float64 { return 42 })
	h := reg.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"c_total": 3, "g": 2.5, "fn": 42, "h_count": 2, "h_sum": 3.5,
	} {
		if snap[name] != want {
			t.Errorf("snapshot[%q] = %v, want %v", name, snap[name], want)
		}
	}
}

func TestWriteTableRenders(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(1)
	reg.Histogram("h", "", []float64{1}).Observe(0.5)
	sp := reg.Tracer().Start("root")
	sp.Child("phase").End()
	sp.End()
	var buf bytes.Buffer
	if err := reg.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"c_total", "histogram", "spans:", "root", "phase"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
