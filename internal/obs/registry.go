package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/stats"
)

// Kind distinguishes instrument types in a Registry.
type Kind uint8

const (
	// KindCounter is a monotonically increasing int64.
	KindCounter Kind = iota
	// KindGauge is a settable float64 (or a scrape-time callback).
	KindGauge
	// KindHistogram is a fixed-boundary latency histogram.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	wall       *Wall
	hist       *Histogram
}

// gaugeValue reads a KindGauge entry whatever its backing form: a
// settable Gauge, a render-time callback, or an integer-nanosecond
// Wall rendered as seconds.
func (e *entry) gaugeValue() float64 {
	switch {
	case e.gaugeFn != nil:
		return e.gaugeFn()
	case e.wall != nil:
		return e.wall.Seconds()
	default:
		return e.gauge.Value()
	}
}

// Registry names instruments and renders them. Registration is
// idempotent: asking for an existing name returns the existing
// instrument (and panics if the kind differs — a naming bug).
// Each Registry also owns a Tracer for phase spans, so one handle
// carries both metrics and timing breakdowns.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	tracer  *Tracer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry), tracer: NewTracer()}
}

// Tracer returns the registry's phase tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }

func (r *Registry) get(name string, kind Kind) *entry {
	e, ok := r.entries[name]
	if !ok {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: %q already registered as a %s, requested as a %s", name, e.kind, kind))
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.get(name, KindCounter); e != nil {
		return e.counter
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: KindCounter, counter: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.get(name, KindGauge); e != nil {
		if e.gauge == nil {
			panic(fmt.Sprintf("obs: %q is not a settable gauge", name))
		}
		return e.gauge
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: KindGauge, gauge: g}
	return g
}

// Wall returns the wall-clock instrument registered under name,
// creating it on first use. It renders as a float-seconds gauge but
// accumulates integer nanoseconds (see the Wall type).
func (r *Registry) Wall(name, help string) *Wall {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.get(name, KindGauge); e != nil {
		if e.wall == nil {
			panic(fmt.Sprintf("obs: %q is not a wall gauge", name))
		}
		return e.wall
	}
	w := &Wall{}
	r.entries[name] = &entry{name: name, help: help, kind: KindGauge, wall: w}
	return w
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time (e.g. runtime stats). Re-registering an existing name keeps the
// original callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.get(name, KindGauge); e != nil {
		return
	}
	r.entries[name] = &entry{name: name, help: help, kind: KindGauge, gaugeFn: fn}
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls ignore the
// bounds argument and return the existing instrument).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.get(name, KindHistogram); e != nil {
		return e.hist
	}
	h := NewHistogram(bounds)
	r.entries[name] = &entry{name: name, help: help, kind: KindHistogram, hist: h}
	return h
}

// sorted returns the entries ordered by name (stable render output).
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, counter and
// gauge samples, and cumulative le-labelled histogram buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.sorted() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		var err error
		switch e.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Value())
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.gaugeValue()))
		case KindHistogram:
			counts := e.hist.BucketCounts()
			var cum int64
			for i, ub := range e.hist.Bounds() {
				cum += counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(ub), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", e.name, formatFloat(e.hist.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", e.name, cum)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the registry as a fixed-width human table
// (histograms show count, mean and p50/p95/p99 estimates), followed
// by the tracer's span tree when any spans were recorded.
func (r *Registry) WriteTable(w io.Writer) error {
	tb := stats.NewTable("metric", "kind", "value")
	for _, e := range r.sorted() {
		switch e.kind {
		case KindCounter:
			tb.AddRow(e.name, "counter", fmt.Sprintf("%d", e.counter.Value()))
		case KindGauge:
			tb.AddRow(e.name, "gauge", formatFloat(e.gaugeValue()))
		case KindHistogram:
			h := e.hist
			mean := 0.0
			if n := h.Count(); n > 0 {
				mean = h.Sum() / float64(n)
			}
			tb.AddRow(e.name, "histogram", fmt.Sprintf(
				"n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g",
				h.Count(), mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)))
			for _, ex := range h.Exemplars() {
				tb.AddRow(e.name, "exemplar", fmt.Sprintf(
					"le=%.3g v=%.3g trace=%s", ex.UpperBound, ex.Value, ex.Label))
			}
		}
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	if len(r.tracer.Roots()) > 0 {
		if _, err := io.WriteString(w, "\nspans:\n"); err != nil {
			return err
		}
		return r.tracer.Render(w)
	}
	return nil
}

// Snapshot returns a flat name → value view of the registry: counters
// and gauges under their own names, histograms as name_count and
// name_sum. It backs both the expvar exposition and the derivation of
// jem.Stats from the registry.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.sorted() {
		switch e.kind {
		case KindCounter:
			out[e.name] = float64(e.counter.Value())
		case KindGauge:
			out[e.name] = e.gaugeValue()
		case KindHistogram:
			out[e.name+"_count"] = float64(e.hist.Count())
			out[e.name+"_sum"] = e.hist.Sum()
		}
	}
	return out
}
