package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("trace id %q: want 16 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: got %s want %s", back, id)
	}
	for _, bad := range []string{"", "xyz", "0123456789abcde", "0123456789abcdeg", "0123456789abcdef0"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted a malformed id", bad)
		}
	}
}

func TestTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestTracerRootsBounded pins the satellite fix: a long-lived process
// starting one root per request must not accumulate roots without
// bound. 10k starts on a small-cap tracer retain exactly the cap,
// newest last.
func TestTracerRootsBounded(t *testing.T) {
	tr := NewTracerCap(16)
	for i := 0; i < 10000; i++ {
		tr.Start(fmt.Sprintf("req%05d", i)).End()
	}
	roots := tr.Roots()
	if len(roots) != 16 {
		t.Fatalf("retained %d roots, want the cap of 16", len(roots))
	}
	if got := roots[len(roots)-1].Name(); got != "req09999" {
		t.Errorf("newest retained root = %s, want req09999", got)
	}
	if got := roots[0].Name(); got != "req09984" {
		t.Errorf("oldest retained root = %s, want req09984", got)
	}
	if d := tr.Dropped(); d != 10000-16 {
		t.Errorf("Dropped = %d, want %d", d, 10000-16)
	}
	// The default constructor is bounded too. The spans are begun and
	// deliberately dropped: the assertion below is that the ring stays
	// bounded no matter how many roots are abandoned.
	def := NewTracer()
	for i := 0; i < 2*defaultTracerRoots; i++ {
		def.Start("r") //jem:nolint(spanend) bounding test leaks on purpose
	}
	if n := len(def.Roots()); n != defaultTracerRoots {
		t.Errorf("default tracer retained %d roots, want %d", n, defaultTracerRoots)
	}
}

func TestSpanAttrsAndAddTimed(t *testing.T) {
	s := NewSpan("request")
	s.SetAttr("reads", 100)
	s.SetAttr("index", "ecoli")
	s.SetAttr("reads", 200) // replaces
	c := s.AddTimed("read", 42*time.Millisecond)
	if !c.Ended() || c.Duration() != 42*time.Millisecond {
		t.Fatalf("AddTimed child: ended=%v dur=%v, want ended 42ms", c.Ended(), c.Duration())
	}
	s.End()

	attrs := s.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("got %d attrs, want 2 (SetAttr must replace same-key)", len(attrs))
	}
	if attrs[0].Key != "reads" || attrs[0].Value != 200 {
		t.Errorf("attrs[0] = %+v, want reads=200", attrs[0])
	}

	var buf bytes.Buffer
	if err := RenderSpan(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reads=200", "index=ecoli", "read", "42ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
}

// TestSpanConcurrentBuildRender hammers one span tree from parallel
// goroutines — children, attrs, AddTimed, End — while another
// goroutine renders it continuously. Run under -race this pins the
// satellite requirement that concurrent build and render are safe.
func TestSpanConcurrentBuildRender(t *testing.T) {
	root := NewSpan("request")
	stop := make(chan struct{})
	var renders sync.WaitGroup
	renders.Add(1)
	go func() {
		defer renders.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sink bytes.Buffer
				_ = RenderSpan(&sink, root, 0)
				_ = spanToJSON(root)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := root.Child(fmt.Sprintf("g%d.%d", g, i))
				c.SetAttr("i", i)
				c.AddTimed("sub", time.Microsecond)
				c.End()
				root.SetAttr(fmt.Sprintf("k%d", g), i)
			}
		}(g)
	}
	wg.Wait()
	root.End()
	close(stop)
	renders.Wait()
	if got := len(root.Children()); got != 8*200 {
		t.Fatalf("children = %d, want %d", got, 8*200)
	}
}

func mkTrace(status int, errMsg string, d time.Duration) *Trace {
	root := NewSpan("request")
	root.End()
	return &Trace{ID: NewTraceID(), Root: root, Status: status, Err: errMsg,
		Start: time.Now(), Duration: d}
}

func TestTraceRingTailSampling(t *testing.T) {
	// Sampling 1-in-1000 so ok-and-fast traces are effectively never
	// kept in a 200-trace test; errors and slow traces must be.
	r := NewTraceRing(64, 1000, 50*time.Millisecond)
	var errKept, slowKept, okKept int
	for i := 0; i < 200; i++ {
		switch {
		case i%50 == 7: // a few errors
			if r.Add(mkTrace(504, "deadline exceeded", time.Millisecond)) {
				errKept++
			}
		case i%50 == 9: // a few slow successes
			if r.Add(mkTrace(200, "", 80*time.Millisecond)) {
				slowKept++
			}
		default:
			if r.Add(mkTrace(200, "", time.Millisecond)) {
				okKept++
			}
		}
	}
	if errKept != 4 {
		t.Errorf("kept %d error traces, want all 4", errKept)
	}
	if slowKept != 4 {
		t.Errorf("kept %d slow traces, want all 4", slowKept)
	}
	if okKept != 0 {
		t.Errorf("kept %d ok-and-fast traces at 1-in-1000 sampling, want 0", okKept)
	}
	for _, tr := range r.Snapshot() {
		switch {
		case tr.Status >= 400 && tr.Kept != "error":
			t.Errorf("error trace kept as %q", tr.Kept)
		case tr.Status < 400 && tr.Kept != "slow":
			t.Errorf("slow trace kept as %q", tr.Kept)
		}
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewTraceRing(8, 1, 0)
	for i := 0; i < 1000; i++ {
		r.Add(mkTrace(200, "", time.Millisecond))
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d traces, want cap 8", r.Len())
	}
	if r.Seen() != 1000 || r.Kept() != 1000 {
		t.Errorf("seen=%d kept=%d, want 1000/1000 at sampleN=1", r.Seen(), r.Kept())
	}
}

func TestTraceRingP99Tail(t *testing.T) {
	// No slow threshold, heavy sampling: after enough fast traces the
	// p99 keep must still catch an outlier.
	r := NewTraceRing(64, 1_000_000, 0)
	for i := 0; i < 300; i++ {
		r.Add(mkTrace(200, "", time.Millisecond))
	}
	out := mkTrace(200, "", 2*time.Second)
	if !r.Add(out) {
		t.Fatal("p99 outlier was not kept")
	}
	if out.Kept != "p99" {
		t.Fatalf("outlier kept as %q, want p99", out.Kept)
	}
}

func TestTraceRingRenderings(t *testing.T) {
	r := NewTraceRing(8, 1, 0)
	tr := mkTrace(200, "", 3*time.Millisecond)
	tr.Root.SetAttr("reads", 5)
	tr.Root.AddTimed("read", time.Millisecond)
	r.Add(tr)
	if got := r.Find(tr.ID); got != tr {
		t.Fatal("Find did not return the retained trace")
	}
	if got := r.Find(NewTraceID()); got != nil {
		t.Fatal("Find returned a trace for an unknown ID")
	}

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{tr.ID.String(), "status=200", "kept=sampled", "reads=5"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text rendering missing %q:\n%s", want, text.String())
		}
	}

	var nd bytes.Buffer
	if err := r.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	var obj traceJSON
	if err := json.Unmarshal(nd.Bytes(), &obj); err != nil {
		t.Fatalf("NDJSON line does not parse: %v\n%s", err, nd.String())
	}
	if obj.TraceID != tr.ID.String() || obj.Status != 200 || obj.Root.Name != "request" {
		t.Errorf("NDJSON fields wrong: %+v", obj)
	}
	if len(obj.Root.Children) != 1 || obj.Root.Children[0].Name != "read" {
		t.Errorf("NDJSON children wrong: %+v", obj.Root.Children)
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(10*time.Millisecond, 4, 0)
	if f.Exceeded(5 * time.Millisecond) {
		t.Error("5ms exceeded a 10ms threshold")
	}
	if !f.Exceeded(20 * time.Millisecond) {
		t.Error("20ms did not exceed a 10ms threshold")
	}
	tr := mkTrace(200, "", 20*time.Millisecond)
	if !f.Capture(tr, []Attr{{Key: "inflight", Value: 3}}) {
		t.Fatal("capture refused with no rate limit")
	}
	snaps := f.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.TraceID != tr.ID || s.SpanTree == "" {
		t.Errorf("snapshot incomplete: %+v", s)
	}
	if !strings.Contains(s.Goroutines, "goroutine") {
		t.Errorf("snapshot carries no goroutine profile:\n%.200s", s.Goroutines)
	}

	var text bytes.Buffer
	if err := f.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{tr.ID.String(), "inflight: 3", "span tree"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("flight text missing %q", want)
		}
	}

	// Ring bound: 100 captures retain 4.
	for i := 0; i < 100; i++ {
		f.Capture(mkTrace(200, "", 20*time.Millisecond), nil)
	}
	if f.Len() != 4 {
		t.Errorf("flight ring holds %d, want cap 4", f.Len())
	}
}

func TestFlightRecorderRateLimit(t *testing.T) {
	f := NewFlightRecorder(time.Millisecond, 4, time.Hour)
	if !f.Capture(mkTrace(200, "", time.Second), nil) {
		t.Fatal("first capture refused")
	}
	if f.Capture(mkTrace(200, "", time.Second), nil) {
		t.Fatal("second capture inside the gap was not suppressed")
	}
	if f.Suppressed() != 1 || f.Captures() != 1 {
		t.Errorf("captures=%d suppressed=%d, want 1/1", f.Captures(), f.Suppressed())
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := NewFlightRecorder(0, 4, 0)
	if f.Exceeded(time.Hour) {
		t.Error("threshold 0 must disable Exceeded")
	}
}

func TestRequestLogSamplingAndBound(t *testing.T) {
	var lines bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lines, nil))
	// Sample 1-in-10 ok lines; errors always emit; ring holds 32.
	l := NewRequestLog(logger, 10, 32, 50*time.Millisecond)
	for i := 0; i < 100; i++ {
		l.Record(context.Background(), RequestLogEntry{Time: time.Now(), TraceID: NewTraceID(),
			Status: 200, Reads: 1, Duration: time.Millisecond})
	}
	l.Record(context.Background(), RequestLogEntry{Time: time.Now(), TraceID: NewTraceID(),
		Status: 504, Err: "deadline", Duration: time.Millisecond})
	l.Record(context.Background(), RequestLogEntry{Time: time.Now(), TraceID: NewTraceID(),
		Status: 200, Duration: 80 * time.Millisecond}) // slow → always emitted

	if l.Len() != 32 {
		t.Errorf("ring holds %d entries, want cap 32", l.Len())
	}
	if l.Seen() != 102 {
		t.Errorf("seen = %d, want 102", l.Seen())
	}
	// 10 sampled ok lines + 1 error + 1 slow.
	if l.Logged() != 12 {
		t.Errorf("logged = %d, want 12", l.Logged())
	}
	emitted := strings.Count(lines.String(), "\n")
	if emitted != 12 {
		t.Errorf("slog emitted %d lines, want 12", emitted)
	}
	if !strings.Contains(lines.String(), `"status":504`) {
		t.Error("error line was not emitted")
	}

	var nd bytes.Buffer
	if err := l.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(nd.String(), "\n"); got != 32 {
		t.Errorf("NDJSON rendered %d lines, want 32", got)
	}
	var obj reqLogJSON
	if err := json.Unmarshal([]byte(strings.SplitN(nd.String(), "\n", 2)[0]), &obj); err != nil {
		t.Fatalf("NDJSON line does not parse: %v", err)
	}
}

func TestRequestLogNilLogger(t *testing.T) {
	l := NewRequestLog(nil, 1, 8, 0)
	l.Record(context.Background(), RequestLogEntry{Status: 500, Err: "boom"})
	if l.Logged() != 0 {
		t.Error("nil logger must not count emitted lines")
	}
	if l.Len() != 1 {
		t.Error("ring must retain entries even without a logger")
	}
}

// ctxCapturingHandler records the context each slog record arrives
// with, so tests can prove what Record hands the handler.
type ctxCapturingHandler struct {
	mu   sync.Mutex
	ctxs []context.Context
}

func (h *ctxCapturingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *ctxCapturingHandler) Handle(ctx context.Context, _ slog.Record) error {
	h.mu.Lock()
	h.ctxs = append(h.ctxs, ctx)
	h.mu.Unlock()
	return nil
}
func (h *ctxCapturingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *ctxCapturingHandler) WithGroup(string) slog.Handler      { return h }

// TestRequestLogRecordPassesCallerContext is the regression test for
// the detached-context fix: Record used to log with a fresh
// context.Background(), dropping any request-scoped correlation the
// slog handler could have read. It must hand the handler the caller's
// context — including one whose cancellation was stripped with
// context.WithoutCancel after the request finished.
func TestRequestLogRecordPassesCallerContext(t *testing.T) {
	type key struct{}
	h := &ctxCapturingHandler{}
	l := NewRequestLog(slog.New(h), 1, 8, 0)

	reqCtx, cancel := context.WithCancel(context.WithValue(context.Background(), key{}, "req-77"))
	logCtx := context.WithoutCancel(reqCtx)
	cancel() // request finished before its log line was emitted

	l.Record(logCtx, RequestLogEntry{Status: 200})

	if len(h.ctxs) != 1 {
		t.Fatalf("handler saw %d records, want 1", len(h.ctxs))
	}
	got := h.ctxs[0]
	if v, _ := got.Value(key{}).(string); v != "req-77" {
		t.Errorf("handler ctx lost the request value: got %q, want \"req-77\"", v)
	}
	if err := got.Err(); err != nil {
		t.Errorf("handler ctx is canceled (%v); WithoutCancel should have stripped that", err)
	}
}
