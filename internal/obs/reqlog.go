package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// RequestLogEntry is one request's structured log record: identity,
// outcome, the per-phase wall breakdown and the admission wait — the
// numbers needed to answer "what did this request cost and where"
// from the log line alone, with the trace ID linking to the full
// span tree in /debug/traces.
type RequestLogEntry struct {
	Time    time.Time
	TraceID TraceID
	Index   string
	Status  int
	Err     string
	Reads   int
	Mapped  int
	Bad     int

	Postings int64

	AdmissionWait time.Duration
	ReadWall      time.Duration
	MapWall       time.Duration
	WriteWall     time.Duration
	Duration      time.Duration
}

// reqLogJSON is the NDJSON wire shape of an entry (durations in
// integer nanoseconds, the trace ID in hex).
type reqLogJSON struct {
	Time            string `json:"time"`
	TraceID         string `json:"trace_id"`
	Index           string `json:"index,omitempty"`
	Status          int    `json:"status"`
	Err             string `json:"error,omitempty"`
	Reads           int    `json:"reads"`
	Mapped          int    `json:"mapped"`
	Bad             int    `json:"bad_records,omitempty"`
	Postings        int64  `json:"postings_scanned"`
	AdmissionWaitNS int64  `json:"admission_wait_ns"`
	ReadWallNS      int64  `json:"read_wall_ns"`
	MapWallNS       int64  `json:"map_wall_ns"`
	WriteWallNS     int64  `json:"write_wall_ns"`
	DurationNS      int64  `json:"duration_ns"`
}

// RequestLog is the serving tier's sampled structured request log.
// Every entry lands in a bounded in-memory ring (served at
// /debug/requests); a sampled subset — plus every error and every
// slow request — is additionally emitted through the slog.Logger as
// one structured line. The split keeps production log volume
// proportional to errors rather than traffic while the ring keeps
// the full recent history inspectable.
type RequestLog struct {
	logger  *slog.Logger
	sampleN int
	slow    time.Duration

	mu     sync.Mutex
	cap    int
	buf    []RequestLogEntry
	next   int
	seq    int64
	seen   int64
	logged int64
}

// NewRequestLog creates a request log ringing the last capacity
// entries and emitting 1 in sampleN ok lines to logger (sampleN <= 1
// emits all; logger nil emits none — ring only). Entries with an
// error status or slower than slow are always emitted.
func NewRequestLog(logger *slog.Logger, sampleN, capacity int, slow time.Duration) *RequestLog {
	if capacity <= 0 {
		capacity = 256
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &RequestLog{logger: logger, sampleN: sampleN, slow: slow, cap: capacity}
}

// Record rings e and emits it through the logger when the sampling
// policy selects it. The caller's ctx is handed to the slog handler,
// which may carry request-scoped correlation values; Record itself
// does not block on it. Callers logging after the request is done
// should pass context.WithoutCancel of the request context rather
// than a detached Background.
func (l *RequestLog) Record(ctx context.Context, e RequestLogEntry) {
	l.mu.Lock()
	l.seen++
	emit := false
	if l.logger != nil {
		switch {
		case e.Status >= 400 || e.Err != "":
			emit = true
		case l.slow > 0 && e.Duration >= l.slow:
			emit = true
		default:
			l.seq++
			emit = l.seq%int64(l.sampleN) == 0
		}
	}
	if emit {
		l.logged++
	}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % l.cap
	}
	l.mu.Unlock()

	if emit {
		l.logger.LogAttrs(ctx, levelFor(e.Status), "map request",
			slog.String("trace_id", e.TraceID.String()),
			slog.String("index", e.Index),
			slog.Int("status", e.Status),
			slog.String("error", e.Err),
			slog.Int("reads", e.Reads),
			slog.Int("mapped", e.Mapped),
			slog.Int("bad_records", e.Bad),
			slog.Int64("postings_scanned", e.Postings),
			slog.Duration("admission_wait", e.AdmissionWait),
			slog.Duration("read_wall", e.ReadWall),
			slog.Duration("map_wall", e.MapWall),
			slog.Duration("write_wall", e.WriteWall),
			slog.Duration("duration", e.Duration),
		)
	}
}

// levelFor maps an HTTP status to a log level: 5xx are errors, 4xx
// warnings, everything else info.
func levelFor(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

// Seen returns how many entries have been recorded.
func (l *RequestLog) Seen() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Logged returns how many entries the sampling emitted to the logger.
func (l *RequestLog) Logged() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.logged
}

// Len returns how many entries the ring currently retains.
func (l *RequestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Snapshot returns the ringed entries oldest-first.
func (l *RequestLog) Snapshot() []RequestLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RequestLogEntry, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// WriteNDJSON renders the ringed entries oldest-first as one JSON
// object per line — the /debug/requests body.
func (l *RequestLog) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Snapshot() {
		if err := enc.Encode(reqLogJSON{
			Time:            e.Time.Format(time.RFC3339Nano),
			TraceID:         e.TraceID.String(),
			Index:           e.Index,
			Status:          e.Status,
			Err:             e.Err,
			Reads:           e.Reads,
			Mapped:          e.Mapped,
			Bad:             e.Bad,
			Postings:        e.Postings,
			AdmissionWaitNS: e.AdmissionWait.Nanoseconds(),
			ReadWallNS:      e.ReadWall.Nanoseconds(),
			MapWallNS:       e.MapWall.Nanoseconds(),
			WriteWallNS:     e.WriteWall.Nanoseconds(),
			DurationNS:      e.Duration.Nanoseconds(),
		}); err != nil {
			return err
		}
	}
	return nil
}
