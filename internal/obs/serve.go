package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
)

// Server is a live observability endpoint over one Registry.
type Server struct {
	lis net.Listener
	srv *http.Server
	// done closes when the serve goroutine exits, so Close/Shutdown
	// can wait for it instead of abandoning it mid-accept.
	done chan struct{}
}

// expvarOnce guards the process-global expvar name: the first served
// registry is published under "jem_metrics" (expvar.Publish panics on
// duplicates, and expvar names cannot be unpublished).
var expvarOnce sync.Once

// Serve exposes reg over HTTP on addr (e.g. ":9090" or
// "127.0.0.1:0") from a side goroutine and returns immediately.
//
//	/metrics        Prometheus text exposition
//	/statusz        human-readable table + span tree
//	/debug/vars     expvar (memstats, cmdline, jem_metrics snapshot)
//	/debug/pprof/*  CPU/heap/goroutine/... profiles
//
// It also registers scrape-time runtime gauges (goroutines, heap
// bytes, GC cycles) on reg. Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	Mount(mux, reg)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{lis: lis, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately (in-flight scrapes are cut) and
// waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown stops the server gracefully: the listener closes at once
// but in-flight scrapes finish (or ctx expires, whichever is first).
// The run epilogue uses this so a scraper mid-collection at exit gets
// a complete response instead of a reset connection. The serve
// goroutine has exited by the time Shutdown returns without error.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

// Mount registers the observability endpoints on an existing mux —
// the hook a daemon with its own HTTP surface (jem-serve) uses to
// carry /metrics, /statusz, /debug/vars and /debug/pprof/* alongside
// its API, instead of running a second listener via Serve. It also
// installs the scrape-time runtime gauges on reg and publishes the
// first mounted registry as the process-wide "jem_metrics" expvar.
func Mount(mux *http.ServeMux, reg *Registry) {
	registerRuntimeGauges(reg)
	expvarOnce.Do(func() {
		expvar.Publish("jem_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteTable(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// registerRuntimeGauges adds scrape-time process gauges so even an
// otherwise-empty registry (jem-bench) exposes something useful.
func registerRuntimeGauges(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "number of live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "bytes of allocated heap objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("go_gc_cycles_total", "completed GC cycles",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
