// Package dist drives JEM-mapper through the distributed-memory steps
// S1–S4 of §III-C on the simulated MPI runtime:
//
//	S1 (load input)      block-partition queries and subjects by bases
//	S2 (sketch subjects) each rank sketches its local contigs
//	S3 (gather sketch)   allgather the per-rank tables into S_global
//	S4 (map queries)     each rank maps its local query segments
//
// The output mapping is bit-identical to the shared-memory path for
// any p (ties are broken by subject id, and the table's posting-list
// order does not influence best-hit selection), which the tests
// assert.
package dist

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/sketch"
)

// Config configures a distributed run.
type Config struct {
	// P is the number of simulated ranks.
	P int
	// Params are the JEM sketch parameters; Params.L doubles as the
	// end-segment length, as in the paper.
	Params sketch.Params
	// Model is the communication cost model; zero value means the
	// paper's 10 Gbps Ethernet.
	Model mpi.CostModel
	// MaxParallel bounds physical concurrency during simulation (≤0 =
	// GOMAXPROCS).
	MaxParallel int
	// Tracer, when non-nil, receives one root span per rank
	// ("rank00", "rank01", …) with child spans named after the
	// paper's phase breakdown: sketch (S2), gather (S3 serialize),
	// map (S4). Spans record real wall time on this rank's goroutine,
	// complementing the Timeline's simulated clock.
	Tracer *obs.Tracer
}

// Output bundles the mapping and its simulated timeline.
type Output struct {
	Results  []core.Result
	Timeline mpi.Timeline
	// QuerySegments is the number of end segments mapped (the unit of
	// Fig. 7b's throughput).
	QuerySegments int
	// TableBytes is the allgathered sketch payload size.
	TableBytes int64
	// Trace is the tracer the run reported its per-rank phase spans
	// to (Config.Tracer if set, otherwise a run-private tracer).
	Trace *obs.Tracer
}

// Throughput returns query segments per second of simulated S4 time.
func (o *Output) Throughput() float64 {
	st := o.Timeline.Step("S4 map queries")
	if st == nil || st.Sim == 0 {
		return 0
	}
	return float64(o.QuerySegments) / st.Sim.Seconds()
}

// Run executes the distributed JEM-mapper.
func Run(contigs, reads []seq.Record, cfg Config) (*Output, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("dist: p=%d must be positive", cfg.P)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == (mpi.CostModel{}) {
		cfg.Model = mpi.Ethernet10G()
	}
	sim := mpi.New(cfg.P, cfg.Model, cfg.MaxParallel)

	// One root span per rank; each simulated step adds a child named
	// after the paper's phase breakdown (sketch, gather, map). These
	// record real wall time per rank goroutine — the skew a live
	// /statusz render shows is the load imbalance Fig. 6 discusses.
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer()
	}
	ranks := make([]*obs.Span, cfg.P)
	for r := 0; r < cfg.P; r++ {
		ranks[r] = tracer.Start(fmt.Sprintf("rank%02d", r))
	}
	defer func() {
		for _, sp := range ranks {
			sp.End()
		}
	}()

	mapper, err := core.NewMapper(cfg.Params)
	if err != nil {
		return nil, err
	}

	// S1: load input. Partition subjects and queries into contiguous
	// byte-balanced rank shares and register global subject metadata.
	subjParts := make([][2]int, cfg.P)
	readParts := make([][2]int, cfg.P)
	sim.Step("S1 load input", func(rank int) {
		subjParts[rank] = partitionByBases(contigs, cfg.P, rank)
		readParts[rank] = partitionByBases(reads, cfg.P, rank)
	})
	mapper.RegisterSubjects(contigs)

	// S2: sketch subjects into per-rank local tables.
	locals := make([]*sketch.Table, cfg.P)
	sim.Step("S2 sketch subjects", func(rank int) {
		ranks[rank].Time("sketch", func() {
			tbl := sketch.NewTable(cfg.Params.T)
			lo, hi := subjParts[rank][0], subjParts[rank][1]
			for i := lo; i < hi; i++ {
				tbl.Insert(int32(i), mapper.Sketcher().SubjectSketch(contigs[i].Seq))
			}
			locals[rank] = tbl
		})
	})

	// S3: gather. Serialize per rank (real work), charge the modeled
	// allgather, then build S_global (executed once, counted as the
	// per-rank merge every process performs).
	encoded := make([][]byte, cfg.P)
	sim.Step("S3 serialize sketch", func(rank int) {
		ranks[rank].Time("gather", func() {
			var buf bytes.Buffer
			if err := locals[rank].Encode(&buf); err != nil {
				panic(err) // bytes.Buffer writes cannot fail
			}
			encoded[rank] = buf.Bytes()
		})
	})
	var total int64
	for _, b := range encoded {
		total += int64(len(b))
	}
	sim.Allgather("S3 allgather sketch", total)
	// Every rank turns the gathered payloads into its S_global. The
	// sorted payload format admits a k-way merge into a frozen
	// sorted-array table — no hashing — which keeps this step from
	// dominating the runtime the way a hash-map rebuild would.
	var mergeErr error
	sim.SequentialStep("S3 merge sketch", func() {
		ft, err := sketch.FreezePayloads(cfg.Params.T, encoded)
		if err != nil {
			mergeErr = err
			return
		}
		mapper.SetFrozen(ft)
	})
	if mergeErr != nil {
		return nil, fmt.Errorf("dist: gather: %w", mergeErr)
	}

	// S4: map local queries.
	perRank := make([][]core.Result, cfg.P)
	segCounts := make([]int, cfg.P)
	sim.Step("S4 map queries", func(rank int) {
		ranks[rank].Time("map", func() {
			sess := mapper.NewSession()
			lo, hi := readParts[rank][0], readParts[rank][1]
			var out []core.Result
			for i := lo; i < hi; i++ {
				segs, kinds := core.EndSegments(reads[i].Seq, cfg.Params.L)
				for s, seg := range segs {
					hit, ok := sess.MapSegment(seg)
					r := core.Result{ReadIndex: int32(i), Kind: kinds[s], Subject: -1}
					if ok {
						r.Subject = hit.Subject
						r.Count = hit.Count
					}
					out = append(out, r)
					segCounts[rank]++
				}
			}
			perRank[rank] = out
		})
	})

	var results []core.Result
	segments := 0
	for rank := 0; rank < cfg.P; rank++ {
		results = append(results, perRank[rank]...)
		segments += segCounts[rank]
	}
	// Ranks hold contiguous read ranges, so concatenation is already
	// (read, kind)-ordered; keep the sort as a safety net for callers
	// that rely on the ordering contract.
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].ReadIndex != results[j].ReadIndex {
			return results[i].ReadIndex < results[j].ReadIndex
		}
		return results[i].Kind < results[j].Kind
	})

	return &Output{
		Results:       results,
		Timeline:      sim.Timeline(),
		QuerySegments: segments,
		TableBytes:    total,
		Trace:         tracer,
	}, nil
}

// partitionByBases returns rank r's contiguous share of records,
// balanced by total bases rather than record count (the paper's S1
// gives each process O(N/p) subject and O(M/p) query bases).
func partitionByBases(records []seq.Record, p, r int) [2]int {
	var total int64
	for i := range records {
		total += int64(len(records[i].Seq))
	}
	targetLo := total * int64(r) / int64(p)
	targetHi := total * int64(r+1) / int64(p)
	lo, hi := len(records), len(records)
	var acc int64
	for i := range records {
		if acc >= targetLo && lo == len(records) {
			lo = i
		}
		if acc >= targetHi {
			hi = i
			break
		}
		acc += int64(len(records[i].Seq))
	}
	if lo > hi {
		lo = hi
	}
	return [2]int{lo, hi}
}
