package dist

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/sketch"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func smallParams() sketch.Params {
	return sketch.Params{K: 8, W: 4, T: 6, L: 150, Seed: 9}
}

func world(t *testing.T) (contigs, reads []seq.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	ref := randDNA(rng, 30_000)
	for pos := 0; pos+700 <= len(ref); pos += 700 {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+700]})
	}
	for i := 0; i < 40; i++ {
		pos := rng.Intn(len(ref) - 1500)
		reads = append(reads, seq.Record{ID: fmt.Sprintf("r%d", i), Seq: ref[pos : pos+1500]})
	}
	return contigs, reads
}

func sharedMemoryResults(t *testing.T, contigs, reads []seq.Record) []core.Result {
	t.Helper()
	m, err := core.NewMapper(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	m.AddSubjects(contigs)
	return m.MapReads(reads, smallParams().L, 1)
}

func TestDistributedMatchesSharedMemoryForAnyP(t *testing.T) {
	contigs, reads := world(t)
	want := sharedMemoryResults(t, contigs, reads)
	for _, p := range []int{1, 2, 3, 5, 8, 16, 41} {
		out, err := Run(contigs, reads, Config{P: p, Params: smallParams()})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(out.Results, want) {
			t.Fatalf("p=%d: distributed results differ from shared-memory", p)
		}
	}
}

func TestTimelineStructure(t *testing.T) {
	contigs, reads := world(t)
	out, err := Run(contigs, reads, Config{P: 4, Params: smallParams()})
	if err != nil {
		t.Fatal(err)
	}
	tl := out.Timeline
	for _, name := range []string{"S1 load input", "S2 sketch subjects", "S3 serialize sketch", "S3 allgather sketch", "S3 merge sketch", "S4 map queries"} {
		if tl.Step(name) == nil {
			t.Errorf("missing step %q", name)
		}
	}
	if tl.Total() <= 0 {
		t.Error("zero total simulated time")
	}
	if out.TableBytes <= 0 {
		t.Error("no gathered bytes")
	}
	if out.QuerySegments != 2*len(reads) {
		t.Errorf("segments = %d want %d", out.QuerySegments, 2*len(reads))
	}
	if out.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
}

func TestPartitionByBasesCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var records []seq.Record
	for i := 0; i < 57; i++ {
		records = append(records, seq.Record{ID: fmt.Sprintf("x%d", i), Seq: randDNA(rng, 1+rng.Intn(900))})
	}
	for _, p := range []int{1, 2, 5, 13, 57, 100} {
		covered := make([]bool, len(records))
		prevHi := 0
		for r := 0; r < p; r++ {
			part := partitionByBases(records, p, r)
			lo, hi := part[0], part[1]
			if lo != prevHi {
				t.Fatalf("p=%d rank %d: gap/overlap at %d (expected %d)", p, r, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
			prevHi = hi
		}
		if prevHi != len(records) {
			t.Fatalf("p=%d: partition ends at %d of %d", p, prevHi, len(records))
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("p=%d: record %d not covered", p, i)
			}
		}
	}
}

func TestPartitionByBasesRoughBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	var records []seq.Record
	var total int64
	for i := 0; i < 500; i++ {
		n := 100 + rng.Intn(400)
		records = append(records, seq.Record{Seq: randDNA(rng, n)})
		total += int64(n)
	}
	const p = 8
	for r := 0; r < p; r++ {
		part := partitionByBases(records, p, r)
		var bases int64
		for i := part[0]; i < part[1]; i++ {
			bases += int64(len(records[i].Seq))
		}
		share := float64(bases) / float64(total)
		if share < 0.08 || share > 0.18 {
			t.Errorf("rank %d holds %.1f%% of bases", r, 100*share)
		}
	}
}

func TestRunValidation(t *testing.T) {
	contigs, reads := world(t)
	if _, err := Run(contigs, reads, Config{P: 0, Params: smallParams()}); err == nil {
		t.Error("p=0 should fail")
	}
	bad := smallParams()
	bad.T = 0
	if _, err := Run(contigs, reads, Config{P: 2, Params: bad}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestRunEmptyInputs(t *testing.T) {
	out, err := Run(nil, nil, Config{P: 3, Params: smallParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 || out.QuerySegments != 0 {
		t.Errorf("empty run produced %d results", len(out.Results))
	}
}

func TestMorePRanksThanWork(t *testing.T) {
	contigs, reads := world(t)
	out, err := Run(contigs[:2], reads[:1], Config{P: 16, Params: smallParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Errorf("got %d results", len(out.Results))
	}
}

// TestPerRankPhaseSpans asserts that a run reports one root span per
// rank with child spans matching the paper's phase breakdown —
// sketch (S2), gather (S3 serialize), map (S4) — whether the caller
// supplies a tracer or not.
func TestPerRankPhaseSpans(t *testing.T) {
	contigs, reads := world(t)
	tr := obs.NewTracer()
	out, err := Run(contigs, reads, Config{P: 3, Params: smallParams(), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace != tr {
		t.Error("Output.Trace should be the supplied tracer")
	}
	roots := tr.Roots()
	if len(roots) != 3 {
		t.Fatalf("got %d root spans, want one per rank", len(roots))
	}
	for r, root := range roots {
		if want := fmt.Sprintf("rank%02d", r); root.Name() != want {
			t.Errorf("root %d named %q, want %q", r, root.Name(), want)
		}
		if !root.Ended() {
			t.Errorf("%s not ended", root.Name())
		}
		var names []string
		for _, c := range root.Children() {
			names = append(names, c.Name())
			if !c.Ended() {
				t.Errorf("%s/%s not ended", root.Name(), c.Name())
			}
			if c.Duration() < 0 {
				t.Errorf("%s/%s negative duration", root.Name(), c.Name())
			}
		}
		if want := []string{"sketch", "gather", "map"}; !reflect.DeepEqual(names, want) {
			t.Errorf("%s children = %v, want %v", root.Name(), names, want)
		}
	}

	// Without a caller-supplied tracer the run still traces into a
	// private one exposed on the Output.
	out2, err := Run(contigs, reads, Config{P: 2, Params: smallParams()})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Trace == nil || len(out2.Trace.Roots()) != 2 {
		t.Error("run without Config.Tracer should still expose per-rank spans")
	}
}
