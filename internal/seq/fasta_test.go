package seq

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFASTA(t *testing.T) {
	in := ">r1 first record\nACGT\nACGT\n>r2\nTTTT\n\n>r3\nGG\n"
	r := NewReader(strings.NewReader(in))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatFASTA {
		t.Errorf("format = %v", r.Format())
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "r1" || recs[0].Desc != "first record" || string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[1].ID != "r2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("rec1 = %+v", recs[1])
	}
	if string(recs[2].Seq) != "GG" {
		t.Errorf("rec2 = %+v", recs[2])
	}
}

func TestReadFASTALowercaseUppercased(t *testing.T) {
	recs, err := NewReader(strings.NewReader(">x\nacgt\n")).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
}

func TestReadFASTQ(t *testing.T) {
	in := "@q1 desc here\nACGT\n+\nIIII\n@q2\nGG\n+q2\nJJ\n"
	r := NewReader(strings.NewReader(in))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != FormatFASTQ {
		t.Errorf("format = %v", r.Format())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "q1" || recs[0].Desc != "desc here" || string(recs[0].Qual) != "IIII" {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if string(recs[1].Seq) != "GG" || string(recs[1].Qual) != "JJ" {
		t.Errorf("rec1 = %+v", recs[1])
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := NewReader(strings.NewReader("")).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: recs=%v err=%v", recs, err)
	}
	recs, err = NewReader(strings.NewReader("\n\n\n")).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("blank input: recs=%v err=%v", recs, err)
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"ACGT\n",             // no header
		"@q1\nACGT\nIIII\n",  // missing '+' line
		"@q1\nACGT\n+\nII\n", // qual length mismatch
	}
	for _, in := range cases {
		if _, err := NewReader(strings.NewReader(in)).ReadAll(); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestStrictRejectsAmbiguity(t *testing.T) {
	r := NewReader(strings.NewReader(">x\nACGNT\n"))
	r.Strict = true
	if _, err := r.ReadAll(); err == nil {
		t.Error("strict reader should reject N")
	}
	r2 := NewReader(strings.NewReader(">x\nACGNT\n"))
	recs, err := r2.ReadAll()
	if err != nil || string(recs[0].Seq) != "ACGNT" {
		t.Errorf("lenient reader: %v %q", err, recs)
	}
}

func TestCRLFHandling(t *testing.T) {
	in := ">r1\r\nACGT\r\n>r2\r\nTT\r\n"
	recs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" || string(recs[1].Seq) != "TT" {
		t.Errorf("recs = %+v", recs)
	}
}

func TestWriteFASTAWidths(t *testing.T) {
	recs := []Record{{ID: "a", Desc: "d", Seq: []byte("ACGTACGTAC")}}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs, 4); err != nil {
		t.Fatal(err)
	}
	want := ">a d\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
	buf.Reset()
	if err := WriteFASTA(&buf, recs, 0); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ">a d\nACGTACGTAC\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{
			ID:  "rec" + string(rune('a'+i)),
			Seq: randDNA(rng, 1+rng.Intn(500)),
		})
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs, 60); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "q1", Desc: "hello world", Seq: []byte("ACGT"), Qual: []byte("IJKL")},
		{ID: "q2", Seq: []byte("GGCC")}, // no qual: writer synthesizes Q40
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Desc != "hello world" || string(got[0].Qual) != "IJKL" {
		t.Errorf("rec0 = %+v", got[0])
	}
	if string(got[1].Qual) != "IIII" {
		t.Errorf("rec1 qual = %q", got[1].Qual)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fasta")
	recs := []Record{{ID: "a", Seq: []byte("ACGT")}}
	if err := WriteFASTAFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 1 || string(got[0].Seq) != "ACGT" {
		t.Errorf("got %v err %v", got, err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.fasta")); err == nil {
		t.Error("missing file should error")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(15))
	recs := []Record{
		{ID: "g1", Seq: randDNA(rng, 1000)},
		{ID: "g2", Desc: "compressed", Seq: randDNA(rng, 257)},
	}
	for _, name := range []string{"x.fasta.gz", "x.fastq.gz"} {
		path := filepath.Join(dir, name)
		var err error
		if strings.HasSuffix(name, "fasta.gz") {
			err = WriteFASTAFile(path, recs)
		} else {
			err = WriteFASTQFile(path, recs)
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 2 || got[0].ID != "g1" || !bytes.Equal(got[1].Seq, recs[1].Seq) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	// A .gz path with non-gzip content must error, not garbage-parse.
	bad := filepath.Join(dir, "bad.fasta.gz")
	if err := WriteFASTAFile(filepath.Join(dir, "plain.fasta"), recs); err != nil {
		t.Fatal(err)
	}
	if err := copyFile(filepath.Join(dir, "plain.fasta"), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("mislabeled gzip should fail")
	}
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

func TestFormatString(t *testing.T) {
	if FormatFASTA.String() != "fasta" || FormatFASTQ.String() != "fastq" || FormatUnknown.String() != "unknown" {
		t.Error("format strings wrong")
	}
}

func TestSniffRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("garbage\n")).ReadAll(); err == nil {
		t.Error("unsniffable input should fail")
	}
	// Leading whitespace before a valid header is tolerated.
	recs, err := NewReader(strings.NewReader("\n  \n>ok\nACGT\n")).ReadAll()
	if err != nil || len(recs) != 1 || recs[0].ID != "ok" {
		t.Errorf("recs=%v err=%v", recs, err)
	}
}

func TestRejectsHeaderInsideSequence(t *testing.T) {
	// A '>' preceded by whitespace on a sequence line is malformed and
	// must not silently corrupt the stream (fuzz regression).
	if _, err := NewReader(strings.NewReader(">a\nACGT\n >b\nTTTT\n")).ReadAll(); err == nil {
		t.Error("indented header should be rejected")
	}
}

func TestReaderStreaming(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAC\n>b\nGT\n"))
	r1, err := r.Read()
	if err != nil || r1.ID != "a" {
		t.Fatalf("first read: %v %v", r1, err)
	}
	r2, err := r.Read()
	if err != nil || r2.ID != "b" {
		t.Fatalf("second read: %v %v", r2, err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
