package seq

import (
	"bytes"
	"testing"
)

// FuzzReader asserts the parser never panics and that whatever it
// accepts survives a write/re-read round trip.
func FuzzReader(f *testing.F) {
	f.Add([]byte(">r1 desc\nACGT\nACGT\n"))
	f.Add([]byte("@q1\nACGT\n+\nIIII\n"))
	f.Add([]byte(">only-header\n"))
	f.Add([]byte("@broken\nACGT\nIIII\n"))
	f.Add([]byte("\n\n>x\nNNNN\n"))
	f.Add([]byte(">a\nacgt\n>b\nTTTT"))
	f.Add([]byte{0, '>', 0xFF, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		for i := range recs {
			if recs[i].Qual != nil && len(recs[i].Qual) != len(recs[i].Seq) {
				t.Fatalf("accepted record with mismatched qual: %+v", recs[i])
			}
		}
		// Round trip what was accepted.
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs, 60); err != nil {
			t.Fatal(err)
		}
		again, err := NewReader(&buf).ReadAll()
		if err != nil && len(recs) > 0 {
			// Records with empty IDs or empty sequences may not round
			// trip cleanly; only structural panics are bugs.
			return
		}
		if len(again) > len(recs) {
			t.Fatalf("round trip grew records: %d -> %d", len(recs), len(again))
		}
	})
}
