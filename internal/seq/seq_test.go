package seq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCode(t *testing.T) {
	cases := []struct {
		b    byte
		code byte
		ok   bool
	}{
		{'A', 0, true}, {'C', 1, true}, {'G', 2, true}, {'T', 3, true},
		{'a', 0, true}, {'c', 1, true}, {'g', 2, true}, {'t', 3, true},
		{'N', 0, false}, {'x', 0, false}, {0, 0, false}, {'-', 0, false},
	}
	for _, c := range cases {
		code, ok := Code(c.b)
		if ok != c.ok || (ok && code != c.code) {
			t.Errorf("Code(%q) = %d,%v want %d,%v", c.b, code, ok, c.code, c.ok)
		}
	}
}

func TestBaseCodeRoundTrip(t *testing.T) {
	for c := byte(0); c < 4; c++ {
		got, ok := Code(Base(c))
		if !ok || got != c {
			t.Errorf("Code(Base(%d)) = %d,%v", c, got, ok)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'a': 't', 'g': 'c'}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%q) = %q want %q", b, got, want)
		}
	}
	if got := Complement('N'); got != 'N' {
		t.Errorf("Complement(N) = %q want N", got)
	}
	if got := Complement('Z'); got != 'N' {
		t.Errorf("Complement(Z) = %q want N", got)
	}
}

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = Code2Base[rng.Intn(4)]
	}
	return s
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, int(n))
		rc := ReverseComplement(s)
		rcrc := ReverseComplement(rc)
		return bytes.Equal(s, rcrc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInPlaceMatchesCopy(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, int(n))
		want := ReverseComplement(s)
		got := append([]byte(nil), s...)
		ReverseComplementInPlace(got)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementKnown(t *testing.T) {
	if got := ReverseComplement([]byte("ACGTT")); string(got) != "AACGT" {
		t.Errorf("got %q want AACGT", got)
	}
	if got := ReverseComplement(nil); len(got) != 0 {
		t.Errorf("revcomp(nil) = %q", got)
	}
}

func TestUpper(t *testing.T) {
	s := []byte("acgtNnACGT")
	Upper(s)
	if string(s) != "ACGTNNACGT" {
		t.Errorf("Upper = %q", s)
	}
}

func TestIsValidAndCount(t *testing.T) {
	if !IsValid([]byte("ACGTacgt")) {
		t.Error("ACGTacgt should be valid")
	}
	if IsValid([]byte("ACGNT")) {
		t.Error("ACGNT should be invalid")
	}
	if IsValid([]byte("AC GT")) {
		t.Error("spaces should be invalid")
	}
	if got := CountValid([]byte("ACNNGT")); got != 4 {
		t.Errorf("CountValid = %d want 4", got)
	}
	if !IsValid(nil) {
		t.Error("empty sequence is vacuously valid")
	}
}

func TestGC(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"GGCC", 1}, {"AATT", 0}, {"ACGT", 0.5}, {"", 0}, {"NNNN", 0}, {"GN", 1},
	}
	for _, c := range cases {
		if got := GC([]byte(c.s)); got != c.want {
			t.Errorf("GC(%q) = %v want %v", c.s, got, c.want)
		}
	}
}

func TestRecordValidate(t *testing.T) {
	if err := (&Record{ID: "r", Seq: []byte("ACGT")}).Validate(); err != nil {
		t.Errorf("valid record: %v", err)
	}
	if err := (&Record{Seq: []byte("ACGT")}).Validate(); err == nil {
		t.Error("empty ID should fail")
	}
	if err := (&Record{ID: "r", Seq: []byte("ACGT"), Qual: []byte("II")}).Validate(); err == nil {
		t.Error("qual length mismatch should fail")
	}
}

func TestSubsequenceClamps(t *testing.T) {
	r := &Record{ID: "r", Seq: []byte("ACGTACGT")}
	if got := r.Subsequence(-5, 4); string(got) != "ACGT" {
		t.Errorf("got %q", got)
	}
	if got := r.Subsequence(6, 100); string(got) != "GT" {
		t.Errorf("got %q", got)
	}
	if got := r.Subsequence(5, 5); got != nil {
		t.Errorf("empty range should be nil, got %q", got)
	}
	if got := r.Subsequence(7, 2); got != nil {
		t.Errorf("inverted range should be nil, got %q", got)
	}
}

func TestTotalBases(t *testing.T) {
	recs := []Record{{Seq: []byte("ACGT")}, {Seq: []byte("AA")}, {}}
	if got := TotalBases(recs); got != 6 {
		t.Errorf("TotalBases = %d want 6", got)
	}
}
