package seq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// RecordError is a structural parse error in FASTA/FASTQ input — a
// malformed or truncated record — as opposed to an I/O failure of the
// underlying stream. Streaming callers use the distinction to skip or
// quarantine bad records and continue (via Resync); an error that is
// NOT a RecordError means the stream itself is broken and cannot be
// resumed.
type RecordError struct {
	// Line is the 1-based input line where the problem was detected.
	Line int
	// ID is the record's ID when the header had been parsed, else "".
	ID string
	// Msg describes the structural problem.
	Msg string
}

func (e *RecordError) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("seq: line %d: record %q: %s", e.Line, e.ID, e.Msg)
	}
	return fmt.Sprintf("seq: line %d: %s", e.Line, e.Msg)
}

// IsRecordError reports whether err is (or wraps) a RecordError.
func IsRecordError(err error) bool {
	var re *RecordError
	return errors.As(err, &re)
}

// Format identifies a sequence file format.
type Format int

const (
	// FormatUnknown is returned when the format cannot be sniffed.
	FormatUnknown Format = iota
	// FormatFASTA is the '>'-header format.
	FormatFASTA
	// FormatFASTQ is the 4-line '@'-header format.
	FormatFASTQ
)

func (f Format) String() string {
	switch f {
	case FormatFASTA:
		return "fasta"
	case FormatFASTQ:
		return "fastq"
	default:
		return "unknown"
	}
}

// Reader streams Records from FASTA or FASTQ input. The format is
// sniffed from the first non-empty byte.
type Reader struct {
	br     *bufio.Reader
	format Format
	line   int
	// Strict causes Read to fail on ambiguous (non-ACGT) bases. When
	// false (the default) such bases are preserved verbatim.
	Strict bool
}

// NewReader wraps r in a sequence Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Format returns the sniffed format, available after the first Read.
func (r *Reader) Format() Format { return r.format }

// Line returns the 1-based number of the last input line consumed —
// after a failed Read, the line where the problem was detected.
func (r *Reader) Line() int { return r.line }

func (r *Reader) sniff() error {
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return err
		}
		switch b {
		case '\n', '\r', ' ', '\t':
			continue
		case '>':
			r.format = FormatFASTA
		case '@':
			r.format = FormatFASTQ
		default:
			return &RecordError{Line: r.line + 1, Msg: fmt.Sprintf("cannot sniff format: leading byte %q", b)}
		}
		return r.br.UnreadByte()
	}
}

// Resync discards input up to the next plausible record start — a line
// beginning with the format's header byte ('>' for FASTA, '@' for
// FASTQ, either while the format is still unknown) — so a caller that
// chose to skip a malformed record (Read returned a RecordError) can
// continue reading. Returns io.EOF when the input ends first.
//
// Resynchronization is best-effort: a FASTQ quality line may
// legitimately begin with '@', so Resync can land on a non-header
// line. The next Read then reports another RecordError and the caller
// may Resync again; every failed Read/Resync pair consumes at least
// one line (or one byte), so the skip loop always terminates.
func (r *Reader) Resync() error {
	for {
		peek, err := r.br.Peek(1)
		if err != nil {
			return err // io.EOF at clean end of input
		}
		switch b := peek[0]; {
		case r.format == FormatFASTA && b == '>':
			return nil
		case r.format == FormatFASTQ && b == '@':
			return nil
		case r.format == FormatUnknown && (b == '>' || b == '@'):
			return nil
		}
		if _, err := r.readLine(); err != nil && err != io.EOF {
			return err
		}
	}
}

func splitHeader(line string) (id, desc string) {
	line = strings.TrimSpace(line)
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

// readLine reads one line, stripping the trailing newline and CR.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) > 0 {
		r.line++
		line = bytes.TrimRight(line, "\r\n")
		if err == io.EOF {
			err = nil
		}
	}
	return line, err
}

// Read returns the next record, or io.EOF when the input is exhausted.
func (r *Reader) Read() (Record, error) {
	if r.format == FormatUnknown {
		if err := r.sniff(); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, err
		}
	}
	switch r.format {
	case FormatFASTA:
		return r.readFASTA()
	default:
		return r.readFASTQ()
	}
}

func (r *Reader) readFASTA() (Record, error) {
	// Find the header line.
	var header []byte
	for {
		line, err := r.readLine()
		if err != nil {
			if err == io.EOF && len(line) == 0 {
				return Record{}, io.EOF
			}
			if err != nil && len(line) == 0 {
				return Record{}, err
			}
		}
		if len(line) == 0 {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			continue
		}
		if line[0] != '>' {
			return Record{}, &RecordError{Line: r.line, Msg: fmt.Sprintf("expected FASTA header, got %q", line)}
		}
		header = line
		break
	}
	rec := Record{}
	rec.ID, rec.Desc = splitHeader(string(header[1:]))
	var sb bytes.Buffer
	atEOF := false
	for {
		peek, err := r.br.Peek(1)
		if err == io.EOF {
			atEOF = true
			break
		}
		if err != nil {
			return Record{}, err
		}
		if peek[0] == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil && err != io.EOF {
			return Record{}, err
		}
		payload := bytes.TrimSpace(line)
		// A '>' inside sequence data means a malformed record (e.g. a
		// header preceded by whitespace); accepting it would corrupt
		// the stream on a write/read round trip.
		if bytes.IndexByte(payload, '>') >= 0 {
			return Record{}, &RecordError{Line: r.line, ID: rec.ID, Msg: "'>' inside sequence data"}
		}
		sb.Write(payload)
		if err == io.EOF {
			atEOF = true
			break
		}
	}
	// A header whose sequence never arrived before EOF is a truncated
	// record (chopped download, partial write) — reporting it beats
	// silently serving an empty sequence.
	if atEOF && sb.Len() == 0 {
		return Record{}, &RecordError{Line: r.line, ID: rec.ID,
			Msg: "truncated FASTA record: header without sequence data at EOF"}
	}
	rec.Seq = Upper(sb.Bytes())
	if err := r.check(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func (r *Reader) readFASTQ() (Record, error) {
	var header []byte
	for {
		line, err := r.readLine()
		if err != nil {
			if len(line) == 0 {
				if err == io.EOF {
					return Record{}, io.EOF
				}
				return Record{}, err
			}
		}
		if len(line) == 0 {
			continue
		}
		if line[0] != '@' {
			return Record{}, &RecordError{Line: r.line, Msg: fmt.Sprintf("expected FASTQ header, got %q", line)}
		}
		header = line
		break
	}
	rec := Record{}
	rec.ID, rec.Desc = splitHeader(string(header[1:]))

	// A FASTQ record is exactly four lines. EOF before all four exist
	// is a truncated final record and must be an error, not a silent
	// accept (e.g. "@r\n\n+\n" used to parse as an empty record) or a
	// confusing structural message. readLine signals a missing line as
	// (empty, io.EOF); a present-but-empty line comes back (empty, nil).
	truncated := func(missing string) error {
		return &RecordError{Line: r.line, ID: rec.ID,
			Msg: fmt.Sprintf("truncated FASTQ record: unexpected EOF before %s line", missing)}
	}
	seqLine, err := r.readLine()
	if err != nil && err != io.EOF {
		return Record{}, err
	}
	if err == io.EOF && len(seqLine) == 0 {
		return Record{}, truncated("sequence")
	}
	plus, err := r.readLine()
	if err != nil && err != io.EOF {
		return Record{}, err
	}
	if err == io.EOF && len(plus) == 0 {
		return Record{}, truncated("'+' separator")
	}
	if len(plus) == 0 || plus[0] != '+' {
		return Record{}, &RecordError{Line: r.line, ID: rec.ID, Msg: "expected '+' separator"}
	}
	qualLine, err := r.readLine()
	if err != nil && err != io.EOF {
		return Record{}, err
	}
	if err == io.EOF && len(qualLine) == 0 {
		return Record{}, truncated("quality")
	}
	rec.Seq = Upper(append([]byte(nil), bytes.TrimSpace(seqLine)...))
	rec.Qual = append([]byte(nil), bytes.TrimSpace(qualLine)...)
	if len(rec.Qual) != len(rec.Seq) {
		return Record{}, &RecordError{Line: r.line, ID: rec.ID,
			Msg: fmt.Sprintf("qual length %d != seq length %d", len(rec.Qual), len(rec.Seq))}
	}
	if err := r.check(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func (r *Reader) check(rec Record) error {
	if r.Strict && !IsValid(rec.Seq) {
		return &RecordError{Line: r.line, ID: rec.ID, Msg: "contains non-ACGT bases"}
	}
	return nil
}

// ReadAll reads every record from r until EOF.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadFile reads all records from a FASTA or FASTQ file on disk.
// Files ending in ".gz" are decompressed transparently.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("seq: %s: %w", path, err)
		}
		defer gz.Close()
		src = gz
	}
	recs, err := NewReader(src).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("seq: %s: %w", path, err)
	}
	return recs, nil
}

// WriteFASTA writes records in FASTA format with the given line width
// (width <= 0 means a single line per sequence).
func WriteFASTA(w io.Writer, records []Record, width int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range records {
		rec := &records[i]
		if rec.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.ID, rec.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.ID)
		}
		s := rec.Seq
		if width <= 0 {
			bw.Write(s)
			bw.WriteByte('\n')
			continue
		}
		for len(s) > 0 {
			n := width
			if n > len(s) {
				n = len(s)
			}
			bw.Write(s[:n])
			bw.WriteByte('\n')
			s = s[n:]
		}
	}
	return bw.Flush()
}

// WriteFASTQ writes records in FASTQ format. Records lacking qualities
// get a constant high quality ('I', Q40).
func WriteFASTQ(w io.Writer, records []Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range records {
		rec := &records[i]
		if rec.Desc != "" {
			fmt.Fprintf(bw, "@%s %s\n", rec.ID, rec.Desc)
		} else {
			fmt.Fprintf(bw, "@%s\n", rec.ID)
		}
		bw.Write(rec.Seq)
		bw.WriteString("\n+\n")
		if rec.Qual != nil {
			bw.Write(rec.Qual)
		} else {
			for range rec.Seq {
				bw.WriteByte('I')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteFASTAFile writes records to path in FASTA format (80-col
// lines), gzip-compressed when path ends in ".gz".
func WriteFASTAFile(path string, records []Record) error {
	return writeFile(path, func(w io.Writer) error { return WriteFASTA(w, records, 80) })
}

// WriteFASTQFile writes records to path in FASTQ format,
// gzip-compressed when path ends in ".gz".
func WriteFASTQFile(path string, records []Record) error {
	return writeFile(path, func(w io.Writer) error { return WriteFASTQ(w, records) })
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var dst io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		dst = gz
	}
	if err := write(dst); err != nil {
		if gz != nil {
			_ = gz.Close() // the write error is the one to report
		}
		_ = f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			_ = f.Close() // the gzip-flush error is the one to report
			return err
		}
	}
	return f.Close()
}
