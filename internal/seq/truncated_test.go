package seq

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestTruncatedFinalRecord pins the contract that EOF in the middle of
// a record is an error, never a silent accept or drop.
func TestTruncatedFinalRecord(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
		wantIDs []string // records accepted before the error / EOF
	}{
		// FASTA.
		{"fasta complete", ">a\nACGT\n", false, []string{"a"}},
		{"fasta complete no trailing newline", ">a\nACGT", false, []string{"a"}},
		{"fasta header only", ">a\n", true, nil},
		{"fasta header only no newline", ">a", true, nil},
		{"fasta header then blank at EOF", ">a\n\n", true, nil},
		{"fasta good then truncated", ">a\nACGT\n>b\n", true, []string{"a"}},
		{"fasta mid-file empty record", ">a\n>b\nACGT\n", false, []string{"a", "b"}},

		// FASTQ.
		{"fastq complete", "@q\nACGT\n+\nIIII\n", false, []string{"q"}},
		{"fastq complete no trailing newline", "@q\nACGT\n+\nIIII", false, []string{"q"}},
		{"fastq header only", "@q\n", true, nil},
		{"fastq missing plus and qual", "@q\nACGT\n", true, nil},
		{"fastq missing qual", "@q\nACGT\n+\n", true, nil},
		{"fastq empty seq missing qual", "@q\n\n+\n", true, nil},
		{"fastq empty record complete", "@q\n\n+\n\n", false, []string{"q"}},
		{"fastq good then truncated", "@a\nAC\n+\nII\n@b\nAC\n", true, []string{"a"}},
		{"fastq truncated qual line", "@q\nACGT\n+\nII\n", true, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.in))
			var ids []string
			var err error
			for {
				var rec Record
				rec, err = r.Read()
				if err != nil {
					break
				}
				ids = append(ids, rec.ID)
			}
			if tc.wantErr {
				if err == io.EOF {
					t.Fatalf("input %q: accepted cleanly (records %v), want truncation error", tc.in, ids)
				}
				if !IsRecordError(err) {
					t.Fatalf("input %q: error %v is not a RecordError", tc.in, err)
				}
			} else if err != io.EOF {
				t.Fatalf("input %q: unexpected error %v", tc.in, err)
			}
			if len(ids) != len(tc.wantIDs) {
				t.Fatalf("input %q: accepted %v, want %v", tc.in, ids, tc.wantIDs)
			}
			for i := range ids {
				if ids[i] != tc.wantIDs[i] {
					t.Fatalf("input %q: accepted %v, want %v", tc.in, ids, tc.wantIDs)
				}
			}
		})
	}
}

// TestRecordErrorClassification: structural problems are RecordErrors
// (skippable); underlying I/O failures are not.
func TestRecordErrorClassification(t *testing.T) {
	structural := []string{
		"x not a header\n",
		">a\nAC>GT\nACGT\n", // '>' inside payload line
		"@q\nACGT\nIIII\n",  // missing '+' separator
		"@q\nACGT\n+\nII\n", // qual length mismatch
	}
	for _, in := range structural {
		_, err := NewReader(strings.NewReader(in)).ReadAll()
		if err == nil {
			t.Errorf("input %q: no error", in)
			continue
		}
		if !IsRecordError(err) {
			t.Errorf("input %q: %v should be a RecordError", in, err)
		}
	}
	// An I/O error from the stream must NOT classify as a RecordError.
	ioErr := io.ErrUnexpectedEOF
	r := NewReader(io.MultiReader(strings.NewReader(">a\nACGT\n"), errReader{ioErr}))
	_, err := r.ReadAll()
	if err == nil || IsRecordError(err) {
		t.Errorf("I/O failure classified as record error: %v", err)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// TestResync proves a reader can skip past a malformed record and keep
// going — the quarantine path's resynchronization primitive.
func TestResync(t *testing.T) {
	t.Run("fastq", func(t *testing.T) {
		in := "@good1\nACGT\n+\nIIII\n" +
			"@bad\nACGT\nIIII\n" + // missing '+': error consumes 3 lines
			"@good2\nTTTT\n+\nIIII\n"
		r := NewReader(strings.NewReader(in))
		rec, err := r.Read()
		if err != nil || rec.ID != "good1" {
			t.Fatalf("first: %v %v", rec.ID, err)
		}
		if _, err := r.Read(); !IsRecordError(err) {
			t.Fatalf("bad record: err=%v", err)
		}
		if err := r.Resync(); err != nil {
			t.Fatalf("Resync: %v", err)
		}
		rec, err = r.Read()
		if err != nil || rec.ID != "good2" {
			t.Fatalf("after resync: %q %v", rec.ID, err)
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	})
	t.Run("fasta", func(t *testing.T) {
		in := ">good1\nACGT\n>bad\nAC>GT\n>good2\nTTTT\n"
		r := NewReader(strings.NewReader(in))
		if rec, err := r.Read(); err != nil || rec.ID != "good1" {
			t.Fatalf("first: %v", err)
		}
		if _, err := r.Read(); !IsRecordError(err) {
			t.Fatalf("bad record: err=%v", err)
		}
		if err := r.Resync(); err != nil {
			t.Fatalf("Resync: %v", err)
		}
		if rec, err := r.Read(); err != nil || rec.ID != "good2" {
			t.Fatalf("after resync: %q %v", rec.ID, err)
		}
	})
	t.Run("resync at EOF", func(t *testing.T) {
		r := NewReader(strings.NewReader("@bad\nACGT\n"))
		if _, err := r.Read(); !IsRecordError(err) {
			t.Fatalf("want RecordError, got %v", err)
		}
		if err := r.Resync(); err != io.EOF {
			t.Fatalf("Resync at EOF: %v", err)
		}
	})
	t.Run("repeated resync terminates", func(t *testing.T) {
		// Garbage that repeatedly resyncs onto non-header '@' lines must
		// still drain to EOF in bounded steps.
		in := "@a\n@@@\n@@@\n@@@\n@@@\nzz\n"
		r := NewReader(strings.NewReader(in))
		for i := 0; i < 100; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err == nil {
				continue
			}
			if rerr := r.Resync(); rerr == io.EOF {
				return
			} else if rerr != nil {
				t.Fatalf("Resync: %v", rerr)
			}
		}
		t.Fatal("skip loop did not terminate")
	})
}

// TestTruncationRoundTripStability: whatever the writer emits, the
// reader must accept — truncation errors must not reject well-formed
// output of our own writers.
func TestTruncationRoundTripStability(t *testing.T) {
	recs := []Record{
		{ID: "a", Seq: []byte("ACGTACGT")},
		{ID: "b", Desc: "desc here", Seq: []byte("TT"), Qual: []byte("II")},
	}
	var fa bytes.Buffer
	if err := WriteFASTA(&fa, recs, 4); err != nil {
		t.Fatal(err)
	}
	if got, err := NewReader(&fa).ReadAll(); err != nil || len(got) != 2 {
		t.Fatalf("FASTA round trip: %d records, err=%v", len(got), err)
	}
	var fq bytes.Buffer
	if err := WriteFASTQ(&fq, recs); err != nil {
		t.Fatal(err)
	}
	if got, err := NewReader(&fq).ReadAll(); err != nil || len(got) != 2 {
		t.Fatalf("FASTQ round trip: %d records, err=%v", len(got), err)
	}
}
