// Package seq provides DNA sequence primitives shared by every other
// package in the repository: the 2-bit nucleotide encoding, reverse
// complementation, validation, and FASTA/FASTQ input and output.
//
// Sequences are represented as plain []byte over the alphabet
// {a,c,g,t} (lower or upper case accepted on input; internal
// representation is upper case A,C,G,T). Ambiguity codes (N and IUPAC
// letters) are tolerated by the parsers and either preserved or
// rejected depending on the caller's choice.
package seq

import (
	"fmt"
)

// Alphabet size of DNA.
const AlphabetSize = 4

// Code2Base maps a 2-bit code (0..3) to its upper-case base letter.
// The ordering a < c < g < t makes numeric comparisons of packed
// k-mers equivalent to lexicographic comparison of the underlying
// strings, which the JEM sketch relies on.
var Code2Base = [4]byte{'A', 'C', 'G', 'T'}

// base2Code maps an ASCII byte to its 2-bit code, or 0xFF when the
// byte is not one of acgtACGT.
var base2Code [256]byte

// complement maps an ASCII base to its complement, preserving case for
// acgtACGT and mapping everything else to 'N'.
var complement [256]byte

func init() {
	for i := range base2Code {
		base2Code[i] = 0xFF
		complement[i] = 'N'
	}
	for code, b := range Code2Base {
		base2Code[b] = byte(code)
		base2Code[b+'a'-'A'] = byte(code)
	}
	pairs := []struct{ a, b byte }{{'A', 'T'}, {'C', 'G'}, {'a', 't'}, {'c', 'g'}}
	for _, p := range pairs {
		complement[p.a] = p.b
		complement[p.b] = p.a
	}
}

// Code returns the 2-bit code of base b and whether b is a valid
// unambiguous DNA base (acgtACGT).
func Code(b byte) (byte, bool) {
	c := base2Code[b]
	return c, c != 0xFF
}

// Base returns the upper-case letter for 2-bit code c (c must be 0..3).
func Base(c byte) byte { return Code2Base[c&3] }

// Complement returns the complement of a single base, preserving case.
// Non-ACGT bytes complement to 'N'.
func Complement(b byte) byte { return complement[b] }

// ReverseComplement returns a newly allocated reverse complement of s.
func ReverseComplement(s []byte) []byte {
	rc := make([]byte, len(s))
	for i, b := range s {
		rc[len(s)-1-i] = complement[b]
	}
	return rc
}

// ReverseComplementInPlace reverse-complements s in place.
func ReverseComplementInPlace(s []byte) {
	i, j := 0, len(s)-1
	for i < j {
		s[i], s[j] = complement[s[j]], complement[s[i]]
		i++
		j--
	}
	if i == j {
		s[i] = complement[s[i]]
	}
}

// Upper upper-cases s in place and returns it. Only acgt are affected;
// other bytes pass through unchanged.
func Upper(s []byte) []byte {
	for i, b := range s {
		if b >= 'a' && b <= 'z' {
			s[i] = b - ('a' - 'A')
		}
	}
	return s
}

// IsValid reports whether every byte of s is an unambiguous DNA base.
func IsValid(s []byte) bool {
	for _, b := range s {
		if base2Code[b] == 0xFF {
			return false
		}
	}
	return true
}

// CountValid returns the number of unambiguous DNA bases in s.
func CountValid(s []byte) int {
	n := 0
	for _, b := range s {
		if base2Code[b] != 0xFF {
			n++
		}
	}
	return n
}

// GC returns the fraction of G/C bases among the valid bases of s.
// It returns 0 for sequences with no valid bases.
func GC(s []byte) float64 {
	gc, total := 0, 0
	for _, b := range s {
		switch base2Code[b] {
		case 1, 2:
			gc++
			total++
		case 0, 3:
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gc) / float64(total)
}

// Record is a named sequence, optionally with FASTQ qualities.
type Record struct {
	// ID is the first whitespace-delimited token of the header line.
	ID string
	// Desc is the remainder of the header line (may be empty).
	Desc string
	// Seq is the sequence payload.
	Seq []byte
	// Qual holds per-base Phred+33 qualities for FASTQ records; nil
	// for FASTA records.
	Qual []byte
}

// Len returns the sequence length in bases.
func (r *Record) Len() int { return len(r.Seq) }

// Validate returns an error when the record is structurally broken:
// empty ID, or FASTQ qualities whose length differs from the sequence.
func (r *Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("seq: record has empty ID")
	}
	if r.Qual != nil && len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("seq: record %q: qual length %d != seq length %d",
			r.ID, len(r.Qual), len(r.Seq))
	}
	return nil
}

// Subsequence returns the half-open slice [start,end) of the record's
// sequence, clamped to its bounds. The returned slice aliases r.Seq.
func (r *Record) Subsequence(start, end int) []byte {
	if start < 0 {
		start = 0
	}
	if end > len(r.Seq) {
		end = len(r.Seq)
	}
	if start >= end {
		return nil
	}
	return r.Seq[start:end]
}

// TotalBases sums the sequence lengths of records.
func TotalBases(records []Record) int64 {
	var n int64
	for i := range records {
		n += int64(len(records[i].Seq))
	}
	return n
}
