package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive should default to GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Error("positive passes through")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	f := func(nRaw uint8, wRaw uint8) bool {
		n := int(nRaw) % 200
		w := int(wRaw)%8 - 2 // exercise ≤0 too
		var hits sync.Map
		var count int64
		ForEach(n, w, func(i int) {
			if _, dup := hits.LoadOrStore(i, true); dup {
				t.Errorf("index %d visited twice", i)
			}
			atomic.AddInt64(&count, 1)
		})
		return atomic.LoadInt64(&count) == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForEachWorkerStateIsolation(t *testing.T) {
	type state struct {
		id    int
		items []int
	}
	var nextID int64
	var mu sync.Mutex
	var states []*state
	ForEachWorker(100, 4,
		func() *state {
			s := &state{id: int(atomic.AddInt64(&nextID, 1))}
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
			return s
		},
		func(s *state, i int) {
			s.items = append(s.items, i) // no locking: state is per-worker
		})
	total := 0
	seen := map[int]bool{}
	for _, s := range states {
		total += len(s.items)
		for _, i := range s.items {
			if seen[i] {
				t.Fatalf("index %d processed twice", i)
			}
			seen[i] = true
		}
	}
	if total != 100 {
		t.Errorf("processed %d items", total)
	}
	if len(states) > 4 {
		t.Errorf("%d worker states for 4 workers", len(states))
	}
}

func TestForEachWorkerSequentialPath(t *testing.T) {
	setups := 0
	sum := 0
	ForEachWorker(10, 1,
		func() int { setups++; return 0 },
		func(_ int, i int) { sum += i })
	if setups != 1 {
		t.Errorf("sequential path ran setup %d times", setups)
	}
	if sum != 45 {
		t.Errorf("sum = %d", sum)
	}
}
