// Package parallel provides the small shared-memory parallelism
// helpers used across the repository: a bounded parallel-for over an
// index range and a worker-state variant for loops that need per-
// goroutine scratch (sessions, buffers).
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count argument: values ≤ 0 become
// GOMAXPROCS.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ForEach calls fn(i) for every i in [0,n) using at most `workers`
// goroutines. Iterations are distributed dynamically, so uneven work
// per item balances automatically.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// ForEachWorker is ForEach with per-goroutine state: setup runs once
// in each worker goroutine and its result is passed to every fn call
// that worker executes.
func ForEachWorker[S any](n, workers int, setup func() S, fn func(state S, i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		s := setup()
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		return
	}
	idx := make(chan int, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := setup()
			for i := range idx {
				fn(s, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
