// Package shardnet distributes the sharded sketch index across
// processes: shard servers (cmd/jem-shardd) each load a subset of a
// JEMIDX05 index's shards and answer scatter-gather count queries over
// a compact length-prefixed binary protocol, and a Coordinator client
// routes per-shard probe batches to them using the same deterministic
// sketch.ShardOf placement the local sharded backend uses — so with
// every shard healthy, remote mapping results are byte-identical to
// local sharded mode.
//
// The robustness layer is the point of the package: per-shard
// deadlines derived from the request context, bounded retries with
// jittered backoff on connection errors, hedged probes to a replica
// when a shard's tracked p99 latency is exceeded, connection pooling
// with health-checked reconnect, and a degraded-answer policy — a
// query against a shard that stays down returns a *ShardError the
// caller can record and continue past, completing the gather with the
// surviving shards. See docs/DISTRIBUTED.md for the contract.
//
// Wire format: every message is one frame — a little-endian u32
// payload length followed by the payload, whose first byte is the
// message type. One request/response exchange is in flight per
// connection at a time; concurrency comes from the pool.
package shardnet

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketch"
)

// magic is the protocol identifier a client's hello carries; it is
// versioned with the frame layout, not the index format.
const magic = "JEMSHRD1"

// maxFrame bounds any single frame; a length prefix beyond it means a
// corrupt stream or a protocol mismatch, never a legitimate message.
const maxFrame = 1 << 26 // 64 MiB

// Message types. A query names one shard plus its probe batch; the
// reply carries one posting list per probe, in probe order.
const (
	msgHello    byte = 1 // client → server: magic
	msgHelloAck byte = 2 // server → client: Info + owned shard list
	msgQuery    byte = 3 // client → server: shard, probes ⟨trial, word⟩
	msgReply    byte = 4 // server → client: per-probe posting lists
	msgPing     byte = 5 // client → server: pool health check
	msgPong     byte = 6 // server → client
	msgErr      byte = 7 // server → client: human-readable refusal
)

// Info is the index identity a shard server announces in its hello
// acknowledgement. The coordinator refuses to mix servers that
// disagree on any field, and the facade additionally pins ManifestCRC
// against the local index file so a fleet serving a different build of
// the index is rejected before the first query.
type Info struct {
	// Shards is the index's total shard count P (not the subset this
	// server owns).
	Shards int
	// T is the sketch's trial count.
	T int
	// NumSubjects is the subject-id space size.
	NumSubjects int
	// ManifestCRC is the JEMIDX05 manifest checksum — the index
	// fingerprint both sides must agree on.
	ManifestCRC uint32
}

// writeAll sends one already-framed message.
func writeAll(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// readMsg reads one frame and splits off the type byte.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("shardnet: empty frame")
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("shardnet: frame length %d exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// frame allocates a frame with the 4-byte length prefix and type byte
// filled in, returning the frame and the body ready for appends via
// the encode helpers below. finishFrame patches the length.
func newFrame(typ byte, bodyCap int) []byte {
	f := make([]byte, 5, 5+bodyCap)
	f[4] = typ
	return f
}

func finishFrame(f []byte) []byte {
	binary.LittleEndian.PutUint32(f[:4], uint32(len(f)-4))
	return f
}

func appendU32(f []byte, v uint32) []byte {
	return append(f, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(f []byte, v uint64) []byte {
	f = appendU32(f, uint32(v))
	return appendU32(f, uint32(v>>32))
}

type reader struct {
	p   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.p) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.p) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v, nil
}

func encodeHello() []byte {
	f := newFrame(msgHello, len(magic))
	f = append(f, magic...)
	return finishFrame(f)
}

func decodeHello(body []byte) error {
	if string(body) != magic {
		return fmt.Errorf("shardnet: bad hello magic %q", body)
	}
	return nil
}

// encodeHelloAck carries the index identity plus the sorted list of
// shard ids this server owns.
func encodeHelloAck(info Info, owned []int) []byte {
	f := newFrame(msgHelloAck, 20+4*len(owned))
	f = appendU32(f, uint32(info.Shards))
	f = appendU32(f, uint32(info.T))
	f = appendU32(f, uint32(info.NumSubjects))
	f = appendU32(f, info.ManifestCRC)
	f = appendU32(f, uint32(len(owned)))
	for _, sd := range owned {
		f = appendU32(f, uint32(sd))
	}
	return finishFrame(f)
}

func decodeHelloAck(body []byte) (Info, []int, error) {
	r := &reader{p: body}
	var info Info
	var vals [4]uint32
	for i := range vals {
		v, err := r.u32()
		if err != nil {
			return Info{}, nil, err
		}
		vals[i] = v
	}
	info.Shards = int(vals[0])
	info.T = int(vals[1])
	info.NumSubjects = int(vals[2])
	info.ManifestCRC = vals[3]
	if info.Shards < 1 || info.Shards > sketch.MaxShards {
		return Info{}, nil, fmt.Errorf("shardnet: implausible shard count %d", info.Shards)
	}
	n, err := r.u32()
	if err != nil {
		return Info{}, nil, err
	}
	if int(n) > info.Shards {
		return Info{}, nil, fmt.Errorf("shardnet: server owns %d shards of %d", n, info.Shards)
	}
	owned := make([]int, n)
	for i := range owned {
		v, err := r.u32()
		if err != nil {
			return Info{}, nil, err
		}
		if int(v) >= info.Shards {
			return Info{}, nil, fmt.Errorf("shardnet: owned shard %d out of range [0,%d)", v, info.Shards)
		}
		owned[i] = int(v)
	}
	return info, owned, nil
}

// encodeQuery frames one shard's probe batch: len(trials) probes,
// probe i being ⟨trials[i], words[i]⟩.
func encodeQuery(shard int, trials []int32, words []sketch.Word) []byte {
	f := newFrame(msgQuery, 8+12*len(trials))
	f = appendU32(f, uint32(shard))
	f = appendU32(f, uint32(len(trials)))
	for i, t := range trials {
		f = appendU32(f, uint32(t))
		f = appendU64(f, uint64(words[i]))
	}
	return finishFrame(f)
}

// maxProbes bounds a query's probe count: probes are one-per-trial, so
// anything past the sketch trial-count ceiling is a corrupt frame.
const maxProbes = 1 << 20

func decodeQuery(body []byte) (int, []int32, []sketch.Word, error) {
	r := &reader{p: body}
	shard, err := r.u32()
	if err != nil {
		return 0, nil, nil, err
	}
	n, err := r.u32()
	if err != nil {
		return 0, nil, nil, err
	}
	if n > maxProbes {
		return 0, nil, nil, fmt.Errorf("shardnet: %d probes exceeds limit %d", n, maxProbes)
	}
	trials := make([]int32, n)
	words := make([]sketch.Word, n)
	for i := range trials {
		t, err := r.u32()
		if err != nil {
			return 0, nil, nil, err
		}
		w, err := r.u64()
		if err != nil {
			return 0, nil, nil, err
		}
		trials[i] = int32(t)
		words[i] = sketch.Word(w)
	}
	return int(shard), trials, words, nil
}

// encodeReply frames one posting list per probe, in probe order.
// Subjects and anchors are transmitted as the u32 bit patterns of
// their int32 values (anchors may be -1).
func encodeReply(lists [][]sketch.Posting) []byte {
	n := 4
	for _, ps := range lists {
		n += 4 + 8*len(ps)
	}
	f := newFrame(msgReply, n)
	f = appendU32(f, uint32(len(lists)))
	for _, ps := range lists {
		f = appendU32(f, uint32(len(ps)))
		for _, p := range ps {
			f = appendU32(f, uint32(p.Subject))
			f = appendU32(f, uint32(p.Anchor))
		}
	}
	return finishFrame(f)
}

func decodeReply(body []byte) ([][]sketch.Posting, error) {
	r := &reader{p: body}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxProbes {
		return nil, fmt.Errorf("shardnet: %d reply lists exceeds limit %d", n, maxProbes)
	}
	lists := make([][]sketch.Posting, n)
	for i := range lists {
		cnt, err := r.u32()
		if err != nil {
			return nil, err
		}
		if rem := len(r.p) - r.off; int(cnt) > rem/8 {
			return nil, fmt.Errorf("shardnet: posting count %d exceeds frame remainder", cnt)
		}
		if cnt == 0 {
			continue
		}
		ps := make([]sketch.Posting, cnt)
		for j := range ps {
			subj, err := r.u32()
			if err != nil {
				return nil, err
			}
			anchor, err := r.u32()
			if err != nil {
				return nil, err
			}
			ps[j] = sketch.Posting{Subject: int32(subj), Anchor: int32(anchor)}
		}
		lists[i] = ps
	}
	return lists, nil
}

func encodePing() []byte { return finishFrame(newFrame(msgPing, 0)) }
func encodePong() []byte { return finishFrame(newFrame(msgPong, 0)) }

func encodeErr(msg string) []byte {
	f := newFrame(msgErr, len(msg))
	f = append(f, msg...)
	return finishFrame(f)
}
