package shardnet

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/sketch"
)

// Server answers shard queries for the subset of a sharded index it
// holds. One process typically runs one Server (cmd/jem-shardd), but
// tests run several in-process over unix sockets.
//
// The server is deliberately small — decode probe, Lookup, encode
// postings — because the robustness budget is spent client-side: a
// server that stalls or dies is the coordinator's problem to retry,
// hedge around, or degrade past.
type Server struct {
	tables map[int]*sketch.FrozenTable
	info   Info
	owned  []int // sorted shard ids, announced in the hello ack

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	// done closes when the accept-loop goroutine exits, so Close can
	// wait for it (the obs.Server supervision pattern).
	done chan struct{}
}

// NewServer builds a server over the given shard subset. Every table's
// shard id must lie in [0, info.Shards) and all tables must agree on
// the trial count T.
func NewServer(tables map[int]*sketch.FrozenTable, info Info) (*Server, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("shardnet: server needs at least one shard")
	}
	if info.Shards < 1 || info.Shards > sketch.MaxShards {
		return nil, fmt.Errorf("shardnet: implausible shard count %d", info.Shards)
	}
	owned := make([]int, 0, len(tables))
	for sd, tbl := range tables {
		if sd < 0 || sd >= info.Shards {
			return nil, fmt.Errorf("shardnet: shard id %d out of range [0,%d)", sd, info.Shards)
		}
		if tbl == nil {
			return nil, fmt.Errorf("shardnet: shard %d table is nil", sd)
		}
		if tbl.T() != info.T {
			return nil, fmt.Errorf("shardnet: shard %d has %d trials, index says %d", sd, tbl.T(), info.T)
		}
		owned = append(owned, sd)
	}
	sort.Ints(owned)
	return &Server{
		tables: tables,
		info:   info,
		owned:  owned,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Owned returns the sorted shard ids this server holds.
func (s *Server) Owned() []int {
	out := make([]int, len(s.owned))
	copy(out, s.owned)
	return out
}

// Start begins accepting connections on ln in a supervised background
// goroutine and returns immediately. Close stops the listener, cuts
// live connections, and waits for every goroutine to exit.
func (s *Server) Start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		s.acceptLoop(ln)
	}()
}

// Addr returns the listener address (valid after Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed (Close) or fatal accept error
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

func (s *Server) forget(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	_ = c.Close()
}

// handle serves one connection: a strict request/response loop. Any
// read, decode, or write failure drops the connection — the client
// owns recovery.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.forget(c)
	br := bufio.NewReader(c)
	for {
		typ, body, err := readMsg(br)
		if err != nil {
			return
		}
		switch typ {
		case msgHello:
			if err := decodeHello(body); err != nil {
				_ = writeAll(c, encodeErr(err.Error()))
				return
			}
			if err := writeAll(c, encodeHelloAck(s.info, s.owned)); err != nil {
				return
			}
		case msgPing:
			if err := writeAll(c, encodePong()); err != nil {
				return
			}
		case msgQuery:
			// shard.down simulates a crashed shard process: drop the
			// connection without replying, so the coordinator sees an
			// abrupt EOF exactly as it would from a real kill.
			if _, ok := fault.Fire(fault.ShardDown); ok {
				return
			}
			shard, trials, words, err := decodeQuery(body)
			if err != nil {
				_ = writeAll(c, encodeErr(err.Error()))
				return
			}
			tbl, ok := s.tables[shard]
			if !ok {
				// A routing bug, not a transport fault: tell the client
				// and keep the connection.
				if err := writeAll(c, encodeErr(fmt.Sprintf("shard %d not owned by this server", shard))); err != nil {
					return
				}
				continue
			}
			lists := make([][]sketch.Posting, len(trials))
			for i, t := range trials {
				if int(t) < 0 || int(t) >= s.info.T {
					if err := writeAll(c, encodeErr(fmt.Sprintf("trial %d out of range [0,%d)", t, s.info.T))); err != nil {
						return
					}
					lists = nil
					break
				}
				lists[i] = tbl.Lookup(int(t), words[i])
			}
			if lists == nil {
				continue
			}
			if err := writeAll(c, encodeReply(lists)); err != nil {
				return
			}
		default:
			_ = writeAll(c, encodeErr(fmt.Sprintf("unknown message type %d", typ)))
			return
		}
	}
}

// Close stops the listener, closes every live connection, and waits
// for the accept loop and all per-connection goroutines to exit. It is
// idempotent.
func (s *Server) Close() error {
	ln, live, already := s.beginClose()
	var err error
	if !already {
		if ln != nil {
			err = ln.Close()
		}
		for _, c := range live {
			_ = c.Close() // teardown path; the read loop reports real errors
		}
	}
	if ln != nil {
		<-s.done
	}
	s.wg.Wait()
	return err
}

// beginClose flips the closed flag and snapshots what must be torn
// down, all under the lock. The blocking waits (accept-loop exit,
// per-connection goroutines) happen in Close with the lock released,
// so a slow teardown never stalls Start or the accept loop's forget.
func (s *Server) beginClose() (ln net.Listener, live []net.Conn, already bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.ln, nil, true
	}
	s.closed = true
	live = make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		live = append(live, c)
	}
	return s.ln, live, false
}
