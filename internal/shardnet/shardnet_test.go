package shardnet

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sketch"
)

// testIndex builds a deterministic sharded table with p shards and
// returns the per-shard tables keyed by shard id plus the matching
// Info and the local ShardedFrozen (the byte-identity oracle).
func testIndex(t *testing.T, p, subjects int) (map[int]*sketch.FrozenTable, Info, *sketch.ShardedFrozen) {
	t.Helper()
	const trials = 16
	rng := rand.New(rand.NewSource(42))
	tb := sketch.NewTable(trials)
	for subj := 0; subj < subjects; subj++ {
		words := make([][]sketch.Word, trials)
		anchors := make([][]int32, trials)
		for ti := 0; ti < trials; ti++ {
			for j := 0; j < 20; j++ {
				words[ti] = append(words[ti], sketch.Word(rng.Uint64()>>8))
				anchors[ti] = append(anchors[ti], int32(rng.Intn(1<<20))-1)
			}
		}
		tb.InsertPositional(int32(subj), words, anchors)
	}
	sf := tb.FreezeSharded(p, 0)
	tables := make(map[int]*sketch.FrozenTable, p)
	for i := 0; i < sf.NumShards(); i++ {
		tables[i] = sf.Shard(i)
	}
	info := Info{Shards: p, T: trials, NumSubjects: subjects, ManifestCRC: 0xfeedbeef}
	return tables, info, sf
}

// startServer runs a real Server over a unix socket and returns its
// coordinator-format address.
func startServer(t *testing.T, tables map[int]*sketch.FrozenTable, info Info) string {
	t.Helper()
	srv, err := NewServer(tables, info)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	t.Cleanup(func() { _ = srv.Close() })
	return "unix:" + path
}

// probeBatch routes nprobes random single-trial probes through
// ShardOf and returns them grouped per shard, mirroring what
// core.Session.scanRemoteWords sends.
func probeBatch(p, trials, nprobes int, seed int64) (perShardTrials map[int][]int32, perShardWords map[int][]sketch.Word) {
	rng := rand.New(rand.NewSource(seed))
	perShardTrials = make(map[int][]int32)
	perShardWords = make(map[int][]sketch.Word)
	for i := 0; i < nprobes; i++ {
		ti := rng.Intn(trials)
		w := sketch.Word(rng.Uint64() >> 8)
		sd := sketch.ShardOf(ti, w, p)
		perShardTrials[sd] = append(perShardTrials[sd], int32(ti))
		perShardWords[sd] = append(perShardWords[sd], w)
	}
	return perShardTrials, perShardWords
}

func TestProtocolRoundtrip(t *testing.T) {
	info := Info{Shards: 8, T: 32, NumSubjects: 1000, ManifestCRC: 0xdeadbeef}
	owned := []int{0, 3, 7}
	typ, body, err := readMsgBytes(encodeHelloAck(info, owned))
	if err != nil || typ != msgHelloAck {
		t.Fatalf("helloAck frame: typ=%d err=%v", typ, err)
	}
	gotInfo, gotOwned, err := decodeHelloAck(body)
	if err != nil || gotInfo != info || !reflect.DeepEqual(gotOwned, owned) {
		t.Fatalf("helloAck roundtrip: %+v %v %v", gotInfo, gotOwned, err)
	}

	trials := []int32{0, 5, 31}
	words := []sketch.Word{1, 1 << 55, ^sketch.Word(0) >> 8}
	typ, body, err = readMsgBytes(encodeQuery(6, trials, words))
	if err != nil || typ != msgQuery {
		t.Fatalf("query frame: typ=%d err=%v", typ, err)
	}
	shard, gotTrials, gotWords, err := decodeQuery(body)
	if err != nil || shard != 6 || !reflect.DeepEqual(gotTrials, trials) || !reflect.DeepEqual(gotWords, words) {
		t.Fatalf("query roundtrip: shard=%d %v %v %v", shard, gotTrials, gotWords, err)
	}

	lists := [][]sketch.Posting{
		{{Subject: 4, Anchor: 99}, {Subject: 7, Anchor: -1}},
		nil,
		{{Subject: 0, Anchor: 0}},
	}
	typ, body, err = readMsgBytes(encodeReply(lists))
	if err != nil || typ != msgReply {
		t.Fatalf("reply frame: typ=%d err=%v", typ, err)
	}
	gotLists, err := decodeReply(body)
	if err != nil || !reflect.DeepEqual(gotLists, lists) {
		t.Fatalf("reply roundtrip: %v %v", gotLists, err)
	}
}

// readMsgBytes parses one framed message from a byte slice.
func readMsgBytes(frame []byte) (byte, []byte, error) {
	return readMsg(bufio.NewReader(bytes.NewReader(frame)))
}

func TestQueryMatchesLocalLookup(t *testing.T) {
	const p = 4
	tables, info, sf := testIndex(t, p, 50)
	addr := startServer(t, tables, info)
	coord, err := Dial(context.Background(), []string{addr}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	if coord.NumShards() != p || coord.Info() != info {
		t.Fatalf("coordinator info %+v, want %+v", coord.Info(), info)
	}
	perShardTrials, perShardWords := probeBatch(p, info.T, 400, 7)
	for sd := 0; sd < p; sd++ {
		lists, err := coord.QueryShard(context.Background(), sd, perShardTrials[sd], perShardWords[sd])
		if err != nil {
			t.Fatalf("shard %d: %v", sd, err)
		}
		if len(lists) != len(perShardTrials[sd]) {
			t.Fatalf("shard %d: %d lists for %d probes", sd, len(lists), len(perShardTrials[sd]))
		}
		for i, ti := range perShardTrials[sd] {
			want := sf.Shard(sd).Lookup(int(ti), perShardWords[sd][i])
			got := lists[i]
			if len(got) != len(want) {
				t.Fatalf("shard %d probe %d: %d postings, want %d", sd, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("shard %d probe %d posting %d: %+v want %+v", sd, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestDialRejectsIncoherentFleet(t *testing.T) {
	tables, info, _ := testIndex(t, 4, 20)
	// Coverage hole: a server owning only shards {0,1} cannot serve a
	// 4-shard index alone.
	partial := map[int]*sketch.FrozenTable{0: tables[0], 1: tables[1]}
	addr := startServer(t, partial, info)
	if _, err := Dial(context.Background(), []string{addr}, Config{}, nil); err == nil {
		t.Fatal("Dial accepted a fleet with uncovered shards")
	}
	// Identity mismatch: same shards, different manifest CRC.
	otherInfo := info
	otherInfo.ManifestCRC++
	addrA := startServer(t, tables, info)
	addrB := startServer(t, tables, otherInfo)
	if _, err := Dial(context.Background(), []string{addrA, addrB}, Config{}, nil); err == nil {
		t.Fatal("Dial accepted servers announcing different indexes")
	}
}

func TestDialInjectedDialError(t *testing.T) {
	defer fault.Reset()
	tables, info, _ := testIndex(t, 2, 10)
	addr := startServer(t, tables, info)
	fault.Set(fault.ConnDialErr, fault.Spec{})
	_, err := Dial(context.Background(), []string{addr}, Config{}, nil)
	if !errors.Is(err, fault.ErrInjectedDial) {
		t.Fatalf("err=%v, want ErrInjectedDial", err)
	}
}

func TestRetryRecoversFromShardDown(t *testing.T) {
	defer fault.Reset()
	const p = 2
	tables, info, sf := testIndex(t, p, 20)
	addr := startServer(t, tables, info)
	coord, err := Dial(context.Background(), []string{addr}, Config{RetryBackoff: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	// The server drops the first query connection without replying (a
	// crashed shard), and the redial fails too; the default budget of
	// 1+2 attempts still lands the query on the third try.
	fault.Set(fault.ShardDown, fault.Spec{Times: 1})
	fault.Set(fault.ConnDialErr, fault.Spec{Times: 1})
	perShardTrials, perShardWords := probeBatch(p, info.T, 60, 3)
	sd := 0
	lists, err := coord.QueryShard(context.Background(), sd, perShardTrials[sd], perShardWords[sd])
	if err != nil {
		t.Fatalf("query did not recover: %v", err)
	}
	for i, ti := range perShardTrials[sd] {
		want := sf.Shard(sd).Lookup(int(ti), perShardWords[sd][i])
		if len(lists[i]) != len(want) {
			t.Fatalf("probe %d: %d postings, want %d", i, len(lists[i]), len(want))
		}
	}
	if got := coord.retries.Value(); got < 1 {
		t.Fatalf("retries counter = %d, want >= 1", got)
	}
	if got := coord.rpcErrors.Value(); got < 2 {
		t.Fatalf("rpc error counter = %d, want >= 2", got)
	}
}

func TestDegradedAnswerAfterBudgetExhausted(t *testing.T) {
	defer fault.Reset()
	const p = 2
	tables, info, _ := testIndex(t, p, 20)
	addr := startServer(t, tables, info)
	coord, err := Dial(context.Background(), []string{addr}, Config{RetryBackoff: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	// Every query connection dies without a reply: the shard is down
	// for good and the budget must exhaust into a *ShardError.
	fault.Set(fault.ShardDown, fault.Spec{})
	perShardTrials, perShardWords := probeBatch(p, info.T, 60, 5)
	_, err = coord.QueryShard(context.Background(), 1, perShardTrials[1], perShardWords[1])
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err=%v, want *ShardError", err)
	}
	if se.Shard != 1 {
		t.Fatalf("ShardError.Shard=%d, want 1", se.Shard)
	}
	if got := coord.lost.Value(); got != 1 {
		t.Fatalf("lost counter = %d, want 1", got)
	}
	// The fleet recovers once the fault clears: the same coordinator
	// must serve the shard again (fresh dial through the pool).
	fault.Reset()
	if _, err := coord.QueryShard(context.Background(), 1, perShardTrials[1], perShardWords[1]); err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
}

// startSlowReplica runs a protocol-correct server that answers every
// query only after delay — the stuck-replica a hedged probe races.
func startSlowReplica(t *testing.T, tables map[int]*sketch.FrozenTable, info Info, delay time.Duration) string {
	t.Helper()
	owned := make([]int, 0, len(tables))
	for sd := range tables {
		owned = append(owned, sd)
	}
	sort.Ints(owned)
	path := filepath.Join(t.TempDir(), "slow.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer func() { _ = c.Close() }()
				br := bufio.NewReader(c)
				for {
					typ, body, err := readMsg(br)
					if err != nil {
						return
					}
					switch typ {
					case msgHello:
						if err := writeAll(c, encodeHelloAck(info, owned)); err != nil {
							return
						}
					case msgPing:
						if err := writeAll(c, encodePong()); err != nil {
							return
						}
					case msgQuery:
						time.Sleep(delay)
						shard, trials, words, err := decodeQuery(body)
						if err != nil {
							return
						}
						lists := make([][]sketch.Posting, len(trials))
						for i, ti := range trials {
							lists[i] = tables[shard].Lookup(int(ti), words[i])
						}
						if err := writeAll(c, encodeReply(lists)); err != nil {
							return
						}
					default:
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		<-done
		wg.Wait()
	})
	return "unix:" + path
}

func TestHedgeRacesSlowReplica(t *testing.T) {
	const p = 2
	tables, info, _ := testIndex(t, p, 20)
	slow := startSlowReplica(t, tables, info, 400*time.Millisecond)
	fast := startServer(t, tables, info)
	// Replica order matters: the round-robin cursor starts at the slow
	// server, so the first attempt stalls and the hedge must win.
	coord, err := Dial(context.Background(), []string{slow, fast}, Config{HedgeAfter: 10 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	perShardTrials, perShardWords := probeBatch(p, info.T, 40, 9)
	start := time.Now()
	lists, err := coord.QueryShard(context.Background(), 0, perShardTrials[0], perShardWords[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != len(perShardTrials[0]) {
		t.Fatalf("%d lists for %d probes", len(lists), len(perShardTrials[0]))
	}
	if d := time.Since(start); d >= 400*time.Millisecond {
		t.Fatalf("query took %v — the hedge did not race the stuck replica", d)
	}
	if coord.hedges.Value() < 1 || coord.hedgeWins.Value() < 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both >= 1",
			coord.hedges.Value(), coord.hedgeWins.Value())
	}
}

func TestQueryShardContextCancelled(t *testing.T) {
	tables, info, _ := testIndex(t, 2, 10)
	addr := startServer(t, tables, info)
	coord, err := Dial(context.Background(), []string{addr}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = coord.QueryShard(ctx, 0, []int32{0}, []sketch.Word{1})
	var se *ShardError
	if !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want ShardError wrapping context.Canceled", err)
	}
}

func TestPoolHealthCheckedReconnect(t *testing.T) {
	tables, info, _ := testIndex(t, 2, 10)
	srv, err := NewServer(tables, info)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pool.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	cfg := Config{HealthCheckAfter: time.Nanosecond}.withDefaults()
	cfg.HealthCheckAfter = time.Nanosecond // every reuse must ping
	pl := newPool("unix:"+path, cfg)
	defer pl.close()
	pc, err := pl.get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pl.put(pc)
	// Kill the server: the pooled conn is now dead, the health ping
	// must condemn it, and with nothing listening the redial fails.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.get(context.Background()); err == nil {
		t.Fatal("get succeeded against a dead server")
	}
	// Restart on the same path: the pool recovers transparently.
	ln2, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(tables, info)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start(ln2)
	defer func() { _ = srv2.Close() }()
	pc2, err := pl.get(context.Background())
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if !pc2.healthy(time.Second) {
		t.Fatal("fresh conn not healthy")
	}
	pl.put(pc2)
}

func TestLatRingP99(t *testing.T) {
	var r latRing
	if r.p99() != 0 {
		t.Fatal("empty ring p99 != 0")
	}
	for i := 1; i <= 100; i++ {
		r.record(time.Duration(i) * time.Millisecond)
	}
	// Window holds the last 64 samples (37ms..100ms); p99 is the top.
	got := r.p99()
	if got < 99*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", got)
	}
}

func TestServerRefusesUnownedShard(t *testing.T) {
	tables, info, _ := testIndex(t, 4, 10)
	partial := map[int]*sketch.FrozenTable{0: tables[0], 1: tables[1], 2: tables[2], 3: tables[3]}
	delete(partial, 3)
	addr := startServer(t, partial, info)
	pl := newPool(addr, Config{}.withDefaults())
	defer pl.close()
	pc, err := pl.get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pc.c.Close() }()
	if err := writeAll(pc.c, encodeQuery(3, []int32{0}, []sketch.Word{1})); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readMsg(pc.br)
	if err != nil || typ != msgErr {
		t.Fatalf("typ=%d err=%v, want msgErr", typ, err)
	}
	if want := "shard 3 not owned"; !strings.Contains(string(body), want) {
		t.Fatalf("err body %q does not mention %q", body, want)
	}
}
