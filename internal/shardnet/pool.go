package shardnet

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// errPoolClosed is returned by get after Close; it marks the pool's
// owner (the coordinator) as shutting down, not a transport fault.
var errPoolClosed = errors.New("shardnet: connection pool closed")

// pconn is one pooled connection: the raw conn plus its buffered
// reader (frames are read through it, so it must travel with the
// conn) and the instant it went idle, for health-check staleness.
type pconn struct {
	c         net.Conn
	br        *bufio.Reader
	idleSince time.Time
}

// pool is a bounded idle-connection pool for one server address.
// Connections idle past healthAfter are ping-verified before reuse and
// redialed if the ping fails — a restarted server is picked up
// transparently.
type pool struct {
	addr        string
	dialTimeout time.Duration
	healthAfter time.Duration
	maxIdle     int

	mu     sync.Mutex
	idle   []*pconn
	closed bool
}

func newPool(addr string, cfg Config) *pool {
	return &pool{
		addr:        addr,
		dialTimeout: cfg.DialTimeout,
		healthAfter: cfg.HealthCheckAfter,
		maxIdle:     cfg.MaxIdlePerServer,
	}
}

// splitAddr maps an address spec to a net network/address pair:
// "unix:/path/sock" dials a unix socket (the test and same-host
// deployment path), anything else is TCP host:port.
func splitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	return "tcp", addr
}

// get returns a healthy connection: a fresh idle one as-is, a stale
// idle one after a ping round-trip, or a new dial. The caller must
// return it with put (on success) or close it (on error).
func (p *pool) get(ctx context.Context) (*pconn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errPoolClosed
		}
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			return p.dial(ctx)
		}
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if time.Since(pc.idleSince) > p.healthAfter && !pc.healthy(p.dialTimeout) {
			_ = pc.c.Close()
			continue // try the next idle conn, or dial
		}
		return pc, nil
	}
}

// healthy runs one ping/pong round-trip under a deadline. Any failure
// condemns the connection.
func (pc *pconn) healthy(timeout time.Duration) bool {
	if err := pc.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return false
	}
	if err := writeAll(pc.c, encodePing()); err != nil {
		return false
	}
	typ, _, err := readMsg(pc.br)
	if err != nil || typ != msgPong {
		return false
	}
	return pc.c.SetDeadline(time.Time{}) == nil
}

func (p *pool) dial(ctx context.Context) (*pconn, error) {
	if _, ok := fault.Fire(fault.ConnDialErr); ok {
		return nil, fault.ErrInjectedDial
	}
	network, address := splitAddr(p.addr)
	d := net.Dialer{Timeout: p.dialTimeout}
	c, err := d.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	c = fault.Conn(c)
	return &pconn{c: c, br: bufio.NewReader(c)}, nil
}

// put returns a connection to the idle list, or closes it when the
// pool is full or closed. Deadlines are cleared so a pooled conn never
// inherits a finished request's deadline.
func (p *pool) put(pc *pconn) {
	if err := pc.c.SetDeadline(time.Time{}); err != nil {
		_ = pc.c.Close()
		return
	}
	pc.idleSince = time.Now()
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		_ = pc.c.Close()
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}

// close shuts the pool: idle connections are closed and future gets
// fail. In-flight connections are closed by their users.
func (p *pool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		_ = pc.c.Close()
	}
}
