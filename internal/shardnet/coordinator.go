package shardnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// Config tunes the coordinator's robustness machinery. The zero value
// gets sane defaults (withDefaults); jem-serve and the facade expose
// only the knobs worth turning.
type Config struct {
	// ShardTimeout is the per-attempt deadline for one shard query. It
	// composes with the request context: an attempt is bounded by
	// whichever expires first.
	ShardTimeout time.Duration
	// Retries is how many additional attempts a failed shard query
	// gets (across replicas, round-robin) before the shard is declared
	// lost for this query. Zero means the default (2); a negative
	// value disables retries.
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// subsequent retry doubles it, and every wait is jittered into
	// [d/2, d) so synchronized retry storms cannot form.
	RetryBackoff time.Duration
	// HedgeAfter is the floor for the hedge delay. The effective delay
	// is max(HedgeAfter, observed p99 of the shard's last 64 query
	// latencies): once an attempt outlives the shard's own p99, a
	// second attempt races it on the next replica (or a fresh
	// connection to the same server).
	HedgeAfter time.Duration
	// DialTimeout bounds connection establishment and pool health
	// pings.
	DialTimeout time.Duration
	// MaxIdlePerServer bounds each server's idle-connection pool.
	MaxIdlePerServer int
	// HealthCheckAfter is how long a pooled connection may sit idle
	// before reuse requires a ping round-trip.
	HealthCheckAfter time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 25 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.MaxIdlePerServer <= 0 {
		cfg.MaxIdlePerServer = 4
	}
	if cfg.HealthCheckAfter <= 0 {
		cfg.HealthCheckAfter = 30 * time.Second
	}
	return cfg
}

// ShardError is the terminal failure of one shard query: every
// attempt the retry budget allowed has failed. The mapping layer
// records the shard as lost for the query and completes the gather
// with the surviving shards (the degraded-answer contract).
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shardnet: shard %d unavailable: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// remote is one shard server as the coordinator sees it: its pool,
// the shards it owns, and a liveness gauge flipped on attempt
// outcomes.
type remote struct {
	addr  string
	pool  *pool
	owned []int
	up    *obs.Gauge
}

// Coordinator is the client side of the shard protocol: it owns one
// connection pool per server, routes each shard's probe batch to a
// server owning that shard, and wraps every query in the deadline /
// retry / hedge machinery. It is safe for concurrent use by many
// sessions. It satisfies core.ShardQuerier.
type Coordinator struct {
	cfg     Config
	info    Info
	servers []*remote
	byShard [][]*remote // replicas per shard, server order
	lat     []latRing   // per-shard latency history for hedging

	rpcs, rpcErrors *obs.Counter
	retries, hedges *obs.Counter
	hedgeWins, lost *obs.Counter

	rrMu sync.Mutex
	rr   []int // per-shard round-robin replica cursor
}

// Dial connects to every server address ("host:port" TCP or
// "unix:/path"), handshakes each one, and validates that the fleet is
// coherent: every server must announce the same index identity and
// the union of owned shards must cover all of [0, P). Servers that
// share a shard become replicas for it (hedge and retry targets).
// Instruments are registered on reg (nil = a private registry).
func Dial(ctx context.Context, addrs []string, cfg Config, reg *obs.Registry) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("shardnet: no server addresses")
	}
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:       cfg,
		rpcs:      reg.Counter("jem_shardnet_rpcs_total", "shard queries attempted (incl. retries and hedges)"),
		rpcErrors: reg.Counter("jem_shardnet_rpc_errors_total", "shard query attempts that failed"),
		retries:   reg.Counter("jem_shardnet_retries_total", "shard query retry attempts"),
		hedges:    reg.Counter("jem_shardnet_hedges_total", "hedged probes launched past a shard's p99"),
		hedgeWins: reg.Counter("jem_shardnet_hedge_wins_total", "hedged probes that returned first"),
		lost:      reg.Counter("jem_shardnet_shards_lost_total", "shard queries that exhausted every attempt"),
	}
	for i, addr := range addrs {
		pl := newPool(addr, cfg)
		info, owned, err := handshake(ctx, pl, cfg.ShardTimeout)
		if err != nil {
			pl.close()
			_ = c.Close() // dial failed; the handshake error is the one to report
			return nil, fmt.Errorf("shardnet: handshake with %s: %w", addr, err)
		}
		if i == 0 {
			c.info = info
		} else if info != c.info {
			pl.close()
			_ = c.Close() // dial failed; the mismatch error is the one to report
			return nil, fmt.Errorf("shardnet: server %s announces index %+v, %s announced %+v",
				addr, info, addrs[0], c.info)
		}
		sv := &remote{
			addr:  addr,
			pool:  pl,
			owned: owned,
			up:    reg.Gauge(fmt.Sprintf("jem_shardnet_server%d_up", i), "1 when the last attempt against "+addr+" succeeded"),
		}
		sv.up.Set(1)
		c.servers = append(c.servers, sv)
	}
	c.byShard = make([][]*remote, c.info.Shards)
	for _, sv := range c.servers {
		for _, sd := range sv.owned {
			c.byShard[sd] = append(c.byShard[sd], sv)
		}
	}
	var missing []int
	for sd, reps := range c.byShard {
		if len(reps) == 0 {
			missing = append(missing, sd)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		_ = c.Close() // dial failed; the coverage error is the one to report
		return nil, fmt.Errorf("shardnet: shards %v are not served by any server", missing)
	}
	c.lat = make([]latRing, c.info.Shards)
	c.rr = make([]int, c.info.Shards)
	return c, nil
}

func handshake(ctx context.Context, pl *pool, timeout time.Duration) (Info, []int, error) {
	pc, err := pl.get(ctx)
	if err != nil {
		return Info{}, nil, err
	}
	if err := pc.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		_ = pc.c.Close()
		return Info{}, nil, err
	}
	if err := writeAll(pc.c, encodeHello()); err != nil {
		_ = pc.c.Close()
		return Info{}, nil, err
	}
	typ, body, err := readMsg(pc.br)
	if err != nil {
		_ = pc.c.Close()
		return Info{}, nil, err
	}
	if typ == msgErr {
		_ = pc.c.Close()
		return Info{}, nil, fmt.Errorf("server refused hello: %s", body)
	}
	if typ != msgHelloAck {
		_ = pc.c.Close()
		return Info{}, nil, fmt.Errorf("unexpected hello reply type %d", typ)
	}
	info, owned, err := decodeHelloAck(body)
	if err != nil {
		_ = pc.c.Close()
		return Info{}, nil, err
	}
	pl.put(pc)
	return info, owned, nil
}

// Info returns the index identity the fleet agreed on at Dial time.
func (c *Coordinator) Info() Info { return c.info }

// NumShards returns the index's total shard count P.
func (c *Coordinator) NumShards() int { return c.info.Shards }

// Close shuts every connection pool down. In-flight queries fail with
// pool-closed errors.
func (c *Coordinator) Close() error {
	for _, sv := range c.servers {
		sv.pool.close()
	}
	return nil
}

// attemptResult carries one attempt's outcome back to QueryShard's
// select loop over a buffered channel sized for the whole attempt
// budget, so attempt goroutines can always complete their send.
type attemptResult struct {
	lists  [][]sketch.Posting
	err    error
	sv     *remote
	hedged bool
	dur    time.Duration
}

// QueryShard resolves one shard's probe batch — probe i is
// ⟨trials[i], words[i]⟩ — against the fleet, returning one posting
// list per probe. The attempt machinery: the first attempt goes to
// the shard's next replica (round-robin); if it outlives the shard's
// hedge delay a second attempt races it; failed attempts are retried
// with doubling jittered backoff until the budget (1 + Retries) is
// spent. A nil error means the returned lists are exactly what the
// local sharded backend would have produced. A *ShardError means the
// shard is lost for this query.
func (c *Coordinator) QueryShard(ctx context.Context, shard int, trials []int32, words []sketch.Word) ([][]sketch.Posting, error) {
	if shard < 0 || shard >= len(c.byShard) {
		return nil, fmt.Errorf("shardnet: shard %d out of range [0,%d)", shard, len(c.byShard))
	}
	if err := ctx.Err(); err != nil {
		return nil, &ShardError{Shard: shard, Err: err}
	}
	reps := c.byShard[shard]
	budget := 1 + c.cfg.Retries
	resCh := make(chan attemptResult, budget)
	started, outstanding := 0, 0
	start := func(hedged bool) {
		sv := reps[c.nextReplica(shard, len(reps))]
		started++
		outstanding++
		c.rpcs.Inc()
		go func() {
			t0 := time.Now()
			lists, err := c.queryOnce(ctx, sv, shard, trials, words)
			resCh <- attemptResult{lists: lists, err: err, sv: sv, hedged: hedged, dur: time.Since(t0)}
		}()
	}
	start(false)
	hedge := time.NewTimer(c.hedgeDelay(shard))
	defer hedge.Stop()
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				r.sv.up.Set(1)
				c.lat[shard].record(r.dur)
				if r.hedged {
					c.hedgeWins.Inc()
				}
				return r.lists, nil
			}
			c.rpcErrors.Inc()
			r.sv.up.Set(0)
			lastErr = r.err
			if outstanding > 0 {
				continue // a hedge is still racing; wait for it
			}
			if started >= budget {
				c.lost.Inc()
				return nil, &ShardError{Shard: shard, Err: lastErr}
			}
			if err := sleepCtx(ctx, jitter(backoff)); err != nil {
				c.lost.Inc()
				return nil, &ShardError{Shard: shard, Err: err}
			}
			backoff *= 2
			c.retries.Inc()
			start(false)
		case <-hedge.C:
			if started < budget && outstanding > 0 {
				c.hedges.Inc()
				start(true)
			}
		case <-ctx.Done():
			c.lost.Inc()
			return nil, &ShardError{Shard: shard, Err: ctx.Err()}
		}
	}
}

// nextReplica advances the shard's round-robin cursor, so retries and
// hedges spread across replicas instead of hammering one server.
func (c *Coordinator) nextReplica(shard, n int) int {
	if n == 1 {
		return 0
	}
	c.rrMu.Lock()
	i := c.rr[shard] % n
	c.rr[shard]++
	c.rrMu.Unlock()
	return i
}

// hedgeDelay is max(HedgeAfter, tracked p99): hedging keys off the
// shard's own recent latency so a uniformly slow fleet does not hedge
// every query, while one stuck server does trigger the race.
func (c *Coordinator) hedgeDelay(shard int) time.Duration {
	p99 := c.lat[shard].p99()
	if p99 > c.cfg.HedgeAfter {
		return p99
	}
	return c.cfg.HedgeAfter
}

// queryOnce runs one attempt over one pooled connection, bounded by
// the request context and the per-shard timeout, whichever is sooner.
// Failed connections are condemned, successful ones pooled again.
func (c *Coordinator) queryOnce(ctx context.Context, sv *remote, shard int, trials []int32, words []sketch.Word) ([][]sketch.Posting, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	pc, err := sv.pool.get(actx)
	if err != nil {
		return nil, err
	}
	dl, _ := actx.Deadline()
	if err := pc.c.SetDeadline(dl); err != nil {
		_ = pc.c.Close()
		return nil, err
	}
	if err := writeAll(pc.c, encodeQuery(shard, trials, words)); err != nil {
		_ = pc.c.Close()
		return nil, err
	}
	typ, body, err := readMsg(pc.br)
	if err != nil {
		_ = pc.c.Close()
		return nil, err
	}
	switch typ {
	case msgReply:
		lists, err := decodeReply(body)
		if err != nil {
			_ = pc.c.Close()
			return nil, err
		}
		if len(lists) != len(trials) {
			_ = pc.c.Close()
			return nil, fmt.Errorf("shardnet: %d reply lists for %d probes", len(lists), len(trials))
		}
		sv.pool.put(pc)
		return lists, nil
	case msgErr:
		// The server answered coherently; the connection is fine even
		// though the query was refused.
		sv.pool.put(pc)
		return nil, fmt.Errorf("shardnet: server %s: %s", sv.addr, body)
	default:
		_ = pc.c.Close()
		return nil, fmt.Errorf("shardnet: unexpected reply type %d", typ)
	}
}

// jitter spreads d into [d/2, d) so concurrent retries desynchronize.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half))
}

// sleepCtx waits d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// latRing tracks a shard's last 64 successful query latencies for the
// hedge-delay estimate. 64 samples make the p99 effectively "slower
// than everything recent" — exactly the hedge trigger wanted.
type latRing struct {
	mu sync.Mutex
	ns [64]int64
	n  int // filled entries (≤ len(ns))
	i  int // next write position
}

func (r *latRing) record(d time.Duration) {
	r.mu.Lock()
	r.ns[r.i] = int64(d)
	r.i = (r.i + 1) % len(r.ns)
	if r.n < len(r.ns) {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile latency of the recorded window, or
// 0 before any sample exists.
func (r *latRing) p99() time.Duration {
	r.mu.Lock()
	n := r.n
	var buf [64]int64
	copy(buf[:n], r.ns[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	s := buf[:n]
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := (99*n+99)/100 - 1
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(s[idx])
}
