package lint

import (
	"go/ast"
	"go/types"
)

// detachedMarker is the doc-comment annotation that exempts a function
// from context-propagation checking: the function deliberately runs
// detached from any request (an offline batch harness, a deprecated
// compatibility wrapper). The annotation is a statement of intent a
// reviewer can grep for; use it sparingly and say why in the comment.
const detachedMarker = "//jem:detached"

// CtxFlow enforces the context-propagation discipline the serving
// tier depends on (PR 4 threaded context.Context through every mapping
// path; PR 6/7 built cancellation and tracing on top of it — both are
// silently defeated by a detached context):
//
//  1. context.Background() / context.TODO() are forbidden in library
//     code. A background context severs cancellation and trace
//     propagation for everything downstream. Allowed in package main
//     (the process root owns its lifecycle), in test files, and in
//     functions annotated //jem:detached.
//  2. A function that receives a context.Context must thread it: if
//     the parameter is never referenced while the body calls
//     context-accepting callees, the function is swallowing its
//     caller's cancellation scope.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must be threaded to callees; no detached Background/TODO contexts in library code",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			detached := hasAnnotation(fd.Doc, detachedMarker)
			inTest := isTestFile(pass.Fset, fd.Pos())
			if inTest || detached {
				continue
			}
			if !isMain {
				reportDetachedContexts(pass, fd)
			}
			reportUnthreadedContext(pass, fd)
		}
	}
}

// reportDetachedContexts flags context.Background()/TODO() anywhere in
// the function, including nested literals (a closure inherits its
// declaration's annotation — it runs on behalf of the same function).
func reportDetachedContexts(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFunc(pass.Info, call); ok && path == "context" && (name == "Background" || name == "TODO") {
			pass.Report(call.Pos(),
				"context.%s() detaches %s from its caller's cancellation and trace scope; thread a ctx parameter (or annotate the function %s and say why)",
				name, funcDisplayName(fd), detachedMarker)
		}
		return true
	})
}

// reportUnthreadedContext flags a context.Context parameter that is
// never referenced while the body calls context-accepting callees.
func reportUnthreadedContext(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	var ctxParams []*types.Var
	for _, field := range fd.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !namedTypeIs(t, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
				ctxParams = append(ctxParams, obj)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	callees := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj, ok := pass.Info.Uses[x].(*types.Var); ok {
				used[obj] = true
			}
		case *ast.CallExpr:
			if contextAcceptingCall(pass.Info, x) {
				callees++
			}
		}
		return true
	})
	if callees == 0 {
		return
	}
	for _, p := range ctxParams {
		if !used[p] {
			pass.Report(fd.Name.Pos(),
				"%s receives %s context.Context but never threads it while calling %d context-accepting callee(s); pass the ctx through (or name the parameter _ if detachment is intended)",
				funcDisplayName(fd), p.Name(), callees)
		}
	}
}
