// Package deprecatedapi is the golden fixture for the deprecatedapi
// analyzer: internal callers of the deprecated MapReads*/MapStream*
// compatibility wrappers are flagged; the canonical Map/Stream calls
// are not.
package deprecatedapi

import (
	"bytes"
	"context"
	"strings"

	jem "repro"
)

func bad(ctx context.Context, m *jem.Mapper, reads []jem.Record) {
	m.MapReads(reads)                                                                    // want `Mapper\.MapReads is a deprecated compatibility wrapper`
	m.MapReadsContext(ctx, reads)                                                        // want `Mapper\.MapReadsContext is a deprecated compatibility wrapper`
	m.MapStream(strings.NewReader(""), &bytes.Buffer{})                                  // want `Mapper\.MapStream is a deprecated compatibility wrapper`
	m.MapStreamContext(ctx, strings.NewReader(""), &bytes.Buffer{}, jem.StreamOptions{}) // want `Mapper\.MapStreamContext is a deprecated compatibility wrapper`
}

func good(ctx context.Context, m *jem.Mapper, reads []jem.Record) error {
	if _, err := m.Map(ctx, reads, jem.MapOptions{}); err != nil {
		return err
	}
	_, err := m.Stream(ctx, strings.NewReader(""), &bytes.Buffer{}, jem.StreamOptions{})
	return err
}

// goodOtherMapper: an unrelated type with the same method name is not
// the deprecated wrapper.
type otherMapper struct{}

func (otherMapper) MapReads(reads []jem.Record) {}

func goodOtherType(o otherMapper, reads []jem.Record) {
	o.MapReads(reads)
}

// suppressedCall is silenced; the suppression meta-test counts it.
func suppressedCall(m *jem.Mapper, reads []jem.Record) []jem.Mapping {
	return m.MapReads(reads) //jem:nolint(deprecatedapi)
}
