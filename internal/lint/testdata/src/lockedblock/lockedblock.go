// Package lockedblock is the golden fixture for the lockedblock
// analyzer: no channel traffic or blocking I/O while a sync mutex is
// held in the same statement list.
package lockedblock

import (
	"bytes"
	"io"
	"sync"
	"time"
)

type queue struct {
	mu   sync.Mutex
	ch   chan int
	vals []int
}

func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want `channel send while q\.mu is locked`
	q.mu.Unlock()
}

func (q *queue) badRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `channel receive while q\.mu is locked`
}

func (q *queue) badSleepAndWrite(w io.Writer, b []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond)          // want `time\.Sleep while q\.mu is locked`
	if _, err := w.Write(b); err != nil { // want `w\.Write through an interface while q\.mu is locked`
		return
	}
}

func (q *queue) badWait(wg *sync.WaitGroup) {
	q.mu.Lock()
	defer q.mu.Unlock()
	wg.Wait() // want `WaitGroup\.Wait while q\.mu is locked`
}

// goodSendAfterUnlock is the approved shape: mutate under the lock,
// talk to channels after releasing it.
func (q *queue) goodSendAfterUnlock(v int) {
	q.mu.Lock()
	q.vals = append(q.vals, v)
	q.mu.Unlock()
	q.ch <- v
}

// goodBufferWrite: a concrete in-memory writer is not blocking I/O.
func (q *queue) goodBufferWrite(buf *bytes.Buffer, b []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	buf.Write(b)
}

// goodClosure: a literal defined under the lock runs later, not here.
func (q *queue) goodClosure(v int) func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	return func() { q.ch <- v }
}
