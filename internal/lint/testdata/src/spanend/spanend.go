// Package spanend is the golden fixture for the spanend analyzer:
// spans begun and never ended, ended on only some paths, or discarded
// at the begin site are flagged; deferred ends, all-path ends,
// escaping spans, and process-terminating paths are not.
package spanend

import (
	"errors"
	"log"

	"repro/internal/obs"
)

func badNeverEnded(tr *obs.Tracer) {
	sp := tr.Start("work") // want `span sp is begun but never ended`
	sp.SetAttr("k", 1)
}

func badDiscarded(tr *obs.Tracer) {
	tr.Start("work") // want `span begun and immediately discarded`
}

// badErrorPath ends the span only on the happy path — the classic
// early-return leak this analyzer exists to catch.
func badErrorPath(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work") // want `span sp is not ended on every path to return`
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// badChild leaks a child span begun from a parent.
func badChild(parent *obs.Span, fail bool) {
	c := parent.Child("phase") // want `span c is not ended on every path to return`
	if fail {
		return
	}
	c.End()
}

func badNewSpan() *obs.Span {
	sp := obs.NewSpan("detached") // want `span sp is begun but never ended`
	sp.SetAttr("k", 2)
	return obs.NewSpan("other")
}

// goodDefer is the canonical shape: defer right after the begin
// covers every path, including ones added later.
func goodDefer(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// goodAllPaths ends the span explicitly on each exit path.
func goodAllPaths(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// goodLoopEnd ends the span after a loop the begin dominates.
func goodLoopEnd(tr *obs.Tracer, n int) {
	sp := tr.Start("work")
	for i := 0; i < n; i++ {
		sp.SetAttr("i", i)
	}
	sp.End()
}

// goodEscapeReturn hands the span to the caller; the End obligation
// travels with it and the local proof is out of scope.
func goodEscapeReturn(tr *obs.Tracer) *obs.Span {
	sp := tr.Start("work")
	return sp
}

// goodEscapeArg passes the span to a helper that may end it.
func goodEscapeArg(tr *obs.Tracer) {
	sp := tr.Start("work")
	endElsewhere(sp)
}

func endElsewhere(sp *obs.Span) { sp.End() }

// goodEscapeClosure captures the span in a literal; the literal's
// execution time is unknown, so the span is out of local reach.
func goodEscapeClosure(tr *obs.Tracer) func() {
	sp := tr.Start("work")
	return func() { sp.End() }
}

// goodFatalPath never returns on the error path — process death
// discharges the End obligation.
func goodFatalPath(tr *obs.Tracer, fail bool) {
	sp := tr.Start("work")
	if fail {
		log.Fatal("boom")
	}
	sp.End()
}

// suppressedLeak is silenced; the suppression meta-test counts it.
func suppressedLeak(tr *obs.Tracer) {
	sp := tr.Start("work") //jem:nolint(spanend)
	sp.SetAttr("k", 3)
}
