// Package maporder is the golden fixture for the maporder analyzer:
// emitting output while ranging over a map is nondeterministic;
// collect-sort-emit is the approved pattern.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a range over a map`
	}
}

func badAppend(m map[string]int) []byte {
	var out []byte
	for k := range m {
		out = append(out, k...) // want `append to \[\]byte inside a range over a map`
	}
	return out
}

func badWriter(w io.Writer, m map[string]bool) {
	for k := range m {
		w.Write([]byte(k)) // want `w\.Write inside a range over a map`
	}
}

// good is the house pattern (see Registry.sorted): the map range only
// collects; bytes are emitted from the sorted slice.
func good(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// goodSliceRange: ranging a slice is always ordered.
func goodSliceRange(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
