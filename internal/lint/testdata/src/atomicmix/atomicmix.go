// Package atomicmix is the golden fixture for the atomicmix
// analyzer: a field touched by sync/atomic anywhere must be touched
// atomically everywhere in the package.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) atomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// read mixes a plain load with the atomic writes above — the race the
// analyzer exists to catch.
func (c *counters) read() int64 {
	return c.hits // want `c\.hits is accessed with sync/atomic elsewhere`
}

func (c *counters) reset() {
	c.hits = 0 // want `c\.hits is accessed with sync/atomic elsewhere`
}

// total is only ever accessed plainly, so it is clean.
func (c *counters) bump() int64 {
	c.total++
	return c.total
}
