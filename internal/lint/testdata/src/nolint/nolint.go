// Package nolint is the golden fixture for the //jem:nolint
// suppression syntax: a named suppression silences exactly that
// analyzer on its own line or the line below; naming the wrong
// analyzer silences nothing; the bare form silences everything.
package nolint

import "os"

func suppressedTrailing(f *os.File) {
	f.Close() //jem:nolint(errsink)
}

func suppressedLeading(f *os.File) {
	//jem:nolint(errsink)
	f.Close()
}

func suppressedBlanket(f *os.File) {
	f.Close() //jem:nolint
}

func suppressedList(f *os.File) {
	f.Close() //jem:nolint(maporder, errsink)
}

func wrongAnalyzer(f *os.File) {
	f.Close() //jem:nolint(maporder) // want `error from f\.Close is discarded`
}

func unsuppressed(f *os.File) {
	f.Close() // want `error from f\.Close is discarded`
}
