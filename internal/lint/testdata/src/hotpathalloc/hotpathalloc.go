// Package hotpathalloc is the golden fixture for the hotpathalloc
// analyzer: annotated functions must stay free of fmt print calls,
// run-time string concatenation and closure literals; unannotated
// functions are never flagged.
package hotpathalloc

import "fmt"

//jem:hotpath
func hotBad(names []string) string {
	s := ""
	for _, n := range names {
		s = s + n                         // want `string concatenation in hot path hotBad`
		fmt.Println(n)                    // want `fmt\.Println in hot path hotBad`
		f := func() int { return len(n) } // want `closure literal in hot path hotBad`
		_ = f
	}
	s += "!" // want `string \+= in hot path hotBad`
	return s
}

// hotClean shows the approved idiom: append into a reused buffer.
//
//jem:hotpath
func hotClean(b []byte, names []string) []byte {
	for _, n := range names {
		b = append(b, n...)
	}
	return b
}

// constConcat is constant-folded by the compiler and costs nothing at
// run time, so it is not flagged even in a hot path.
//
//jem:hotpath
func constConcat() string {
	const prefix = "jem" + "-"
	return prefix
}

// cold has every violation but no annotation: nothing is flagged.
func cold(names []string) string {
	s := ""
	for _, n := range names {
		s += n
		fmt.Println(n)
	}
	return s
}
