// Package ctxflow is the golden fixture for the ctxflow analyzer:
// detached context.Background()/TODO() in library code and unthreaded
// context parameters are flagged; //jem:detached functions, _-named
// parameters, and functions with no context-accepting callees are not.
package ctxflow

import "context"

// takesCtx is a context-accepting callee. It receives a ctx but calls
// nothing context-accepting itself, so ctxflow leaves it alone.
func takesCtx(ctx context.Context) { _ = ctx }

func badBackground() {
	takesCtx(context.Background()) // want `context\.Background\(\) detaches badBackground`
}

func badTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) detaches badTODO`
}

// badClosure detaches inside a nested literal; the closure runs on
// behalf of the declaring function and inherits its obligations.
func badClosure() func() {
	return func() {
		takesCtx(context.Background()) // want `context\.Background\(\) detaches badClosure`
	}
}

// badUnthreaded receives a context but never passes it on while
// calling a context-accepting callee — the caller's cancellation
// scope is silently severed.
func badUnthreaded(ctx context.Context, n int) { // want `badUnthreaded receives ctx context\.Context but never threads it`
	for i := 0; i < n; i++ {
		takesCtx(context.TODO()) // want `context\.TODO\(\) detaches badUnthreaded`
	}
}

type worker struct{}

func (w *worker) run(ctx context.Context) { takesCtx(ctx) }

// badMethod exercises the method display name in the diagnostic.
func (w *worker) badMethod(ctx context.Context) { // want `worker\.badMethod receives ctx context\.Context but never threads it`
	w.run(context.Background()) // want `context\.Background\(\) detaches worker\.badMethod`
}

// goodThreaded passes its context through.
func goodThreaded(ctx context.Context) { takesCtx(ctx) }

// goodDerived threads a derived context; any reference to the
// parameter counts as threading.
func goodDerived(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	takesCtx(sub)
}

// goodNoCallees never calls anything context-accepting, so an unused
// ctx parameter is interface compliance, not a severed scope.
func goodNoCallees(ctx context.Context, x int) int { return x * 2 }

// goodUnderscore declares detachment in the signature itself.
func goodUnderscore(_ context.Context) { takesCtx(context.TODO()) } // want `context\.TODO\(\) detaches goodUnderscore`

// goodDetached runs deliberately outside any request lifecycle — an
// offline batch entry point. The annotation exempts the whole
// function from both checks.
//
//jem:detached
func goodDetached(ctx context.Context) {
	takesCtx(context.Background())
}

// suppressedBackground is silenced; the suppression meta-test counts it.
func suppressedBackground() {
	takesCtx(context.Background()) //jem:nolint(ctxflow)
}
