// Package goleak is the golden fixture for the goleak analyzer:
// unsupervised goroutines, goroutines that loop forever with nothing
// to stop them, and per-iteration time.After timers are flagged;
// WaitGroup workers, ctx.Done selects, completion broadcasts, bounded
// loops and hoisted tickers are not.
package goleak

import (
	"context"
	"sync"
	"time"
)

func work()     {}
func use(v int) {}

// badUnsupervised spawns a goroutine nothing can stop or wait for.
func badUnsupervised() {
	go func() { // want `goroutine has no termination or completion signal`
		work()
	}()
}

// badForever produces values forever: it has a send (so the spawner
// can see it's alive) but no receive that could ever stop it.
func badForever(out chan int) {
	go func() { // want `goroutine loops forever and has no channel receive`
		for {
			out <- 1
		}
	}()
}

// badChurn arms a fresh runtime timer every poll iteration.
func badChurn(done chan struct{}) {
	for {
		select {
		case <-time.After(time.Millisecond): // want `time\.After in a loop allocates a fresh timer`
			work()
		case <-done:
			return
		}
	}
}

// goodWaitGroup is the worker-pool shape: Done announces completion,
// range over the work channel terminates on close.
func goodWaitGroup(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := range jobs {
			use(j)
		}
	}()
	wg.Wait()
}

// goodCtxDone selects on cancellation: receive doubles as the
// termination path.
func goodCtxDone(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				use(v)
			}
		}
	}()
}

// goodCloseBroadcast signals exit by closing a channel the spawner
// can wait on.
func goodCloseBroadcast() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// goodBounded sends a known number of values, then closes: the loop
// condition gives the CFG a path to the exit.
func goodBounded(n int) chan int {
	out := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
		close(out)
	}()
	return out
}

// goodTicker hoists one timer out of the loop instead of arming a new
// one per iteration.
func goodTicker(done chan struct{}) {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			work()
		case <-done:
			return
		}
	}
}

// goodLitInLoop declares (but does not run) a literal inside the
// loop; the time.After belongs to the literal's own schedule.
func goodLitInLoop(fs []func() <-chan time.Time) {
	for i := range fs {
		fs[i] = func() <-chan time.Time { return time.After(time.Second) }
	}
}

// suppressedGoroutine is silenced; the suppression meta-test counts it.
func suppressedGoroutine() {
	go func() { //jem:nolint(goleak)
		work()
	}()
}
