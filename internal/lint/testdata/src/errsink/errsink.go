// Package errsink is the golden fixture for the errsink analyzer:
// dropped errors from Write/Flush/Close/Sync are flagged; infallible
// writers, sticky bufio writes, defers and explicit `_ =` discards
// are not.
package errsink

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"strings"
)

func bad(f *os.File, w io.Writer, bw *bufio.Writer, b []byte) {
	f.Close()  // want `error from f\.Close is discarded`
	w.Write(b) // want `error from w\.Write is discarded`
	bw.Flush() // want `error from bw\.Flush is discarded`
	f.Sync()   // want `error from f\.Sync is discarded`
}

func good(f *os.File, bw *bufio.Writer, buf *bytes.Buffer, sb *strings.Builder, b []byte) error {
	buf.Write(b)        // bytes.Buffer cannot fail
	sb.WriteString("x") // strings.Builder cannot fail
	bw.Write(b)         // sticky error, surfaced by the checked Flush below
	if err := bw.Flush(); err != nil {
		return err
	}
	_ = f.Sync() // explicit discard is a visible decision
	return f.Close()
}

// goodDeferClose is the read-path idiom and is deliberately exempt.
func goodDeferClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// badDeferCreateClose defers Close on a WRITE handle: the final
// buffered write error is thrown away and the caller sees success.
func badDeferCreateClose(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close on a file opened with os\.Create`
	_, err = f.Write(b)
	return err
}

// sidecar mirrors the quarantine sidecar writer in the streaming
// mapper: a wrapper that appends records to an io.Writer. Dropping
// the Write error loses the very records the sidecar exists to
// preserve.
type sidecar struct {
	w   io.Writer
	err error
}

func (q *sidecar) badRecord(entry []byte) {
	q.w.Write(entry) // want `error from q\.w\.Write is discarded`
}

// record is the accepted idiom: latch the first error and let the
// caller surface it once the stream ends.
func (q *sidecar) record(entry []byte) {
	if q.err != nil {
		return
	}
	if _, err := q.w.Write(entry); err != nil {
		q.err = err
	}
}

// goodCreateClose closes the write handle explicitly, propagating
// close-time write errors through a named return.
func goodCreateClose(path string, b []byte) (retErr error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	_, err = f.Write(b)
	return err
}
