package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink flags statements that silently drop the error returned by
// Write/WriteString/WriteByte/WriteRune/Flush/Close/Sync — the calls
// that decide whether serialized bytes (TSV/PAF/SAM rows, index
// files) actually reached their destination. A dropped Flush or Close
// error is a truncated index that nobody notices until load time.
//
// Deliberate exemptions, so the signal stays clean:
//
//   - `defer f.Close()` is not flagged on read handles (the read-path
//     idiom) — but IS flagged when the same function obtained f from
//     os.Create: on a write handle the deferred Close is where the
//     final buffered write surfaces, and the defer throws it away.
//   - bytes.Buffer and strings.Builder methods are infallible by
//     contract (their error results exist only to satisfy
//     interfaces).
//   - bufio.Writer's Write-family errors are sticky and surface at
//     Flush, so unchecked bw.Write is fine — but its Flush IS flagged.
//   - An explicit `_ =` assignment is a visible, greppable decision
//     and is not flagged.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "unchecked error results from Write/Flush/Close/Sync in serialization paths",
	Run:  runErrSink,
}

var errSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Flush":       true,
	"Close":       true,
	"Sync":        true,
}

// errSinkWriteFamily are the sticky-error methods exempted on
// *bufio.Writer (Flush/Close/Sync stay flagged there).
var errSinkWriteFamily = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func runErrSink(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrSinkFunc(pass, fd.Body)
		}
	}
}

func checkErrSinkFunc(pass *Pass, body *ast.BlockStmt) {
	writeHandles := collectCreateHandles(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			recv, fn, ok := methodCall(pass.Info, stmt.Call)
			if !ok || fn.Name() != "Close" {
				return true
			}
			if id, ok := recv.(*ast.Ident); ok && writeHandles[pass.Info.Uses[id]] {
				pass.Report(stmt.Pos(),
					"defer %s.Close on a file opened with os.Create discards the final write error; close explicitly and check (or propagate via a named return)",
					id.Name)
			}
			return true
		case *ast.ExprStmt:
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn, ok := methodCall(pass.Info, call)
			if !ok || !errSinkMethods[fn.Name()] {
				return true
			}
			if !errorReturning(pass.Info, call) {
				return true // e.g. csv.Writer.Flush returns nothing
			}
			if infallibleWriter(pass.Info.TypeOf(recv), fn.Name()) {
				return true
			}
			pass.Report(call.Pos(),
				"error from %s.%s is discarded; a failed %s silently truncates output (check it, or assign to _ to acknowledge)",
				exprString(recv), fn.Name(), fn.Name())
		}
		return true
	})
}

// collectCreateHandles finds local variables assigned from os.Create
// in body — handles that exist to be written to.
func collectCreateHandles(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	handles := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgFunc(pass.Info, call)
		if !ok || path != "os" || name != "Create" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				handles[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				handles[obj] = true
			}
		}
		return true
	})
	return handles
}

// infallibleWriter reports receiver types whose listed method cannot
// meaningfully fail.
func infallibleWriter(t types.Type, method string) bool {
	if t == nil {
		return false
	}
	if namedTypeIs(t, "bytes", "Buffer") || namedTypeIs(t, "strings", "Builder") {
		return true
	}
	if errSinkWriteFamily[method] && namedTypeIs(t, "bufio", "Writer") {
		return true // sticky error, surfaced by the (flagged) Flush
	}
	return false
}
