package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pkgFunc reports whether call is a direct call of pkgPath.name
// (e.g. "fmt".Sprintf), resolved through the type-checker so aliased
// imports are handled.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	if _, isPkgName := info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkgName {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// methodCall reports the called method's name and the receiver
// expression when call is a method call (x.M(...)), resolved through
// the type-checker's selection table.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method *types.Func, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	return sel.X, fn, true
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a (small) expression for use as a region key or
// in a diagnostic — good enough for receiver expressions like
// "s.mu" / "r.mu"; not a general printer.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	default:
		return "?"
	}
}

// funcDisplayName renders a FuncDecl as "Recv.Name" / "Name" — the
// form used by the hotpathalloc required-annotation table.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.IndexExpr: // generic receiver
			t = x.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hasAnnotation reports whether the declaration's doc comment group
// contains the given //jem:... marker line. The marker may be followed
// by free-form text on the same line ("//jem:detached batch tool: no
// caller scope") — the diagnostics ask authors to say why, so the
// reason lives next to the marker.
func hasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(c.Text)
		if t == marker || strings.HasPrefix(t, marker+" ") {
			return true
		}
	}
	return false
}

// errorReturning reports whether the call's result tuple ends in an
// error — the precondition for "you dropped the error" diagnostics.
func errorReturning(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	if results.Len() == 0 {
		return false
	}
	last := results.At(results.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isTestFile reports whether pos lies in a _test.go file — several
// analyzers (ctxflow, goleak) deliberately exempt test
// code from production-path invariants.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// terminatingCall reports calls that never return — the set the CFG
// builder treats as edges straight to the exit block: os.Exit,
// runtime.Goexit, the log.Fatal family, and testing's
// Fatal/Fatalf/FailNow/Skip family (which call Goexit).
func terminatingCall(info *types.Info, call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(info, call); ok {
		switch {
		case path == "os" && name == "Exit":
			return true
		case path == "runtime" && name == "Goexit":
			return true
		case path == "log" && strings.HasPrefix(name, "Fatal"):
			return true
		}
		return false
	}
	if recv, fn, ok := methodCall(info, call); ok && fn.Pkg() != nil && fn.Pkg().Path() == "testing" {
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			_ = recv
			return true
		}
	}
	return false
}

// inspectSkipFuncLit walks the statement subtree like ast.Inspect but
// does not descend into function literals — their bodies execute at
// some other time and belong to a different control-flow analysis.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}

// contextAcceptingCall reports whether call's static callee takes a
// context.Context as its first parameter.
func contextAcceptingCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return namedTypeIs(sig.Params().At(0).Type(), "context", "Context")
}

// namedTypeIs reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
