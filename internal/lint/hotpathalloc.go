package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathMarker is the doc-comment annotation that opts a function
// into hot-path allocation checking.
const hotPathMarker = "//jem:hotpath"

// requiredHotPaths lists functions that MUST carry //jem:hotpath:
// the per-row and per-segment loops whose allocation discipline the
// repo's throughput depends on (MapStream's writer drain, the session
// lookup loops, the sketch inner loops). Missing annotations are
// diagnostics: the point is that nobody silently drops the marker —
// and with it the machine checking — from a hot loop.
var requiredHotPaths = map[string][]string{
	"repro": {
		"Mapper.drainStreamResults",
		"appendTSVRow",
	},
	"repro/internal/core": {
		"Session.MapSegmentPositional",
		"Session.mapSegment",
		"Session.mapSegmentPositional",
	},
	"repro/internal/sketch": {
		"Sketcher.sketchTuples",
		"Sketcher.querySketchTuples",
		"HashFamily.Hash",
	},
}

// HotPathAlloc flags allocation-prone constructs inside functions
// annotated //jem:hotpath: fmt print-family calls (~2 allocs per
// call), non-constant string concatenation, and closure literals
// (captured-variable allocation plus a func value). It also requires
// the annotation on the functions listed in requiredHotPaths.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs in //jem:hotpath functions and require the annotation on known hot loops",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	required := make(map[string]bool)
	for _, name := range requiredHotPaths[pass.Pkg.Path()] {
		required[name] = true
	}
	seen := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			annotated := hasAnnotation(fd.Doc, hotPathMarker)
			name := funcDisplayName(fd)
			seen[name] = true
			if required[name] && !annotated {
				pass.Report(fd.Name.Pos(),
					"%s is a known hot path and must be annotated %s", name, hotPathMarker)
			}
			if annotated && fd.Body != nil {
				checkHotBody(pass, name, fd.Body)
			}
		}
	}
	// A required function that no longer exists means a hot loop was
	// renamed or moved without updating the table — the annotation
	// requirement must follow the code, not silently evaporate.
	for _, name := range requiredHotPaths[pass.Pkg.Path()] {
		if !seen[name] && len(pass.Files) > 0 {
			pass.Report(pass.Files[0].Name.Pos(),
				"required hot path %s.%s does not exist; update requiredHotPaths in internal/lint to follow the refactor",
				pass.Pkg.Path(), name)
		}
	}
}

func checkHotBody(pass *Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Report(x.Pos(),
				"closure literal in hot path %s allocates; hoist it out of the loop or restructure", fname)
			return false // the closure body runs elsewhere
		case *ast.CallExpr:
			if path, name, ok := pkgFunc(pass.Info, x); ok && path == "fmt" && isPrintName(name) {
				pass.Report(x.Pos(),
					"fmt.%s in hot path %s allocates per call; use an append-based formatter", name, fname)
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstantString(pass.Info, x) {
				pass.Report(x.Pos(),
					"string concatenation in hot path %s allocates; use append on a reused []byte", fname)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if t := pass.Info.TypeOf(x.Lhs[0]); t != nil && isStringType(t) {
					pass.Report(x.Pos(),
						"string += in hot path %s allocates; use append on a reused []byte", fname)
				}
			}
		}
		return true
	})
}

func isPrintName(name string) bool {
	return strings.Contains(strings.ToLower(name), "print")
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isNonConstantString reports whether e is a string-typed addition
// that survives to run time (an all-constant concatenation is folded
// by the compiler and costs nothing).
func isNonConstantString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || !isStringType(tv.Type) {
		return false
	}
	return tv.Value == nil
}
