package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/sketch").
	Path string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	// ForTest and ImportMap only appear under -test: ForTest names the
	// package a test variant was compiled for; ImportMap redirects
	// source-level import paths to test-variant packages.
	ForTest   string
	ImportMap map[string]string
}

// goList shells out to the go tool for package metadata plus compiled
// export data: `go list -deps -export` writes every dependency's
// export file into the build cache and reports its path, which is
// what lets the type-checker resolve imports without x/tools. With
// tests set, the test graph is included (-test): each package with
// test files additionally appears as a test-augmented variant
// ("foo [foo.test]") whose GoFiles merge in the _test.go sources.
func goList(dir string, tests bool, patterns ...string) ([]listedPkg, error) {
	args := []string{"list", "-deps", "-export"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,ForTest,ImportMap")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("lint: go list %s: %v", strings.Join(patterns, " "), err)
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types's import needs from the export
// files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves patterns (e.g. "./...") relative to dir, parses every
// matched non-standard package from source, and type-checks it
// against export data. Test files are not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, false, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Incomplete || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadTests is Load with the test graph included: each package with
// test files is analyzed as its test-augmented variant
// ("foo [foo.test]", same import path compiled with the in-package
// _test.go files merged in), and external test packages
// (package foo_test) are analyzed alongside. Skipped: generated
// .test main packages, plain packages superseded by their own test
// variant (analyzing both would duplicate every non-test
// diagnostic), and foreign recompilations — dependencies rebuilt
// against another package's test variant, which add no new source.
//
// Test variants of different packages can map the same source-level
// import path to different compiled packages, so unlike Load each
// analyzed package gets its own importer honoring its ImportMap.
func LoadTests(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, true, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	augmented := make(map[string]bool)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if base := testBase(p.ImportPath); base != p.ImportPath && base == p.ForTest {
			augmented[base] = true
		}
	}
	fset := token.NewFileSet()

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Incomplete || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test-main package
		}
		base := testBase(p.ImportPath)
		switch {
		case base == p.ImportPath:
			if augmented[base] {
				continue // superseded by its own test variant
			}
		case base != p.ForTest && base != p.ForTest+"_test":
			continue // foreign recompilation, no new source
		}
		imp := exportImporter(fset, mappedExports(exports, p.ImportMap))
		pkg, err := checkPackage(fset, imp, base, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// testBase strips the " [foo.test]" variant suffix from an import
// path reported under -test.
func testBase(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// mappedExports resolves one package's view of the export table:
// source-level import paths redirected by its ImportMap point at the
// mapped variant's export data.
func mappedExports(exports map[string]string, importMap map[string]string) map[string]string {
	if len(importMap) == 0 {
		return exports
	}
	out := make(map[string]string, len(exports))
	for path, file := range exports {
		out[path] = file
	}
	for from, to := range importMap {
		if file, ok := exports[to]; ok {
			out[from] = file
		}
	}
	return out
}

// LoadDir loads a single directory of Go files as one package outside
// the module's package graph — the fixture loader for the golden
// self-tests (testdata packages are invisible to `go list ./...`).
// Imports are resolved by listing the fixture's own import set, so
// fixtures may import anything in the standard library or the module.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first so the fixture's imports determine what gets listed.
	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			if p != "unsafe" {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		if len(paths) > 0 {
			listed, err := goList(moduleDir, false, paths...)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	imp := exportImporter(fset, exports)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", dir, err)
	}
	return &Package{Path: tpkg.Path(), Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}
