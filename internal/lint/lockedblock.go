package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedBlock flags blocking operations performed while a
// sync.Mutex/RWMutex is held in the same statement list: channel
// sends/receives, select statements, ranging over a channel,
// time.Sleep, sync.WaitGroup.Wait, and Read/Write calls through
// io.Reader/io.Writer interface values (a concrete *bytes.Buffer is
// memory; an io.Writer might be a socket). Holding a hot mutex across
// any of these turns every other goroutine's fast path into a wait —
// the registry/tracer pattern is "copy under lock, emit after
// unlock", and this analyzer keeps it that way.
var LockedBlock = &Analyzer{
	Name: "lockedblock",
	Doc:  "no channel ops or blocking I/O between mu.Lock() and its Unlock in the same block",
	Run:  runLockedBlock,
}

func runLockedBlock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkLockRegions(pass, block.List)
			return true
		})
	}
}

// checkLockRegions scans one statement list for Lock()/Unlock() pairs
// and inspects the statements between them. Two shapes are
// recognized:
//
//	mu.Lock(); <region...>; mu.Unlock()   — region ends at the Unlock
//	mu.Lock(); defer mu.Unlock(); <region to end of list>
func checkLockRegions(pass *Pass, stmts []ast.Stmt) {
	for i := 0; i < len(stmts); i++ {
		recv, isLock := lockStmt(pass.Info, stmts[i], "Lock", "RLock")
		if !isLock {
			continue
		}
		key := exprString(recv)
		start := i + 1
		end := len(stmts)
		// defer mu.Unlock() directly after the Lock extends the region
		// to the end of the list.
		if start < end {
			if ds, ok := stmts[start].(*ast.DeferStmt); ok {
				if drecv, isUnlock := unlockCall(pass.Info, ds.Call); isUnlock && exprString(drecv) == key {
					start++
				}
			}
		}
		for j := start; j < len(stmts); j++ {
			if urecv, isUnlock := lockStmt(pass.Info, stmts[j], "Unlock", "RUnlock"); isUnlock && exprString(urecv) == key {
				end = j
				break
			}
		}
		for j := start; j < end && j < len(stmts); j++ {
			reportBlockingOps(pass, stmts[j], key)
		}
	}
}

// lockStmt matches an expression statement calling one of the given
// sync mutex methods and returns the receiver expression.
func lockStmt(info *types.Info, s ast.Stmt, names ...string) (ast.Expr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	recv, fn, ok := methodCall(info, call)
	if !ok || !isSyncLockMethod(fn) {
		return nil, false
	}
	for _, want := range names {
		if fn.Name() == want {
			return recv, true
		}
	}
	return nil, false
}

func unlockCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	recv, fn, ok := methodCall(info, call)
	if !ok || !isSyncLockMethod(fn) {
		return nil, false
	}
	if fn.Name() == "Unlock" || fn.Name() == "RUnlock" {
		return recv, true
	}
	return nil, false
}

func isSyncLockMethod(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// reportBlockingOps walks one statement inside a locked region.
// Nested function literals are skipped: they execute later, not under
// this lock (an immediately-invoked literal is rare enough to accept
// the false negative).
func reportBlockingOps(pass *Pass, stmt ast.Stmt, lockKey string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Report(x.Pos(), "channel send while %s is locked can block every waiter of the lock", lockKey)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Report(x.Pos(), "channel receive while %s is locked can block every waiter of the lock", lockKey)
			}
		case *ast.SelectStmt:
			pass.Report(x.Pos(), "select while %s is locked can block every waiter of the lock", lockKey)
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Report(x.Pos(), "ranging over a channel while %s is locked can block every waiter of the lock", lockKey)
				}
			}
		case *ast.CallExpr:
			reportBlockingCall(pass, x, lockKey)
		}
		return true
	})
}

func reportBlockingCall(pass *Pass, call *ast.CallExpr, lockKey string) {
	if path, name, ok := pkgFunc(pass.Info, call); ok && path == "time" && name == "Sleep" {
		pass.Report(call.Pos(), "time.Sleep while %s is locked stalls every waiter of the lock", lockKey)
		return
	}
	recv, fn, ok := methodCall(pass.Info, call)
	if !ok {
		return
	}
	if fn.Name() == "Wait" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && namedTypeIs(pass.Info.TypeOf(recv), "sync", "WaitGroup") {
		pass.Report(call.Pos(), "WaitGroup.Wait while %s is locked stalls every waiter of the lock", lockKey)
		return
	}
	// Read/Write through an interface value: the concrete type could
	// be a pipe or socket. Concrete in-memory writers (bytes.Buffer,
	// strings.Builder) are fine and don't trip this.
	if fn.Name() == "Read" || fn.Name() == "Write" {
		if t := pass.Info.TypeOf(recv); t != nil {
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				pass.Report(call.Pos(),
					"%s.%s through an interface while %s is locked may be blocking I/O; copy under the lock, emit after",
					exprString(recv), fn.Name(), lockKey)
			}
		}
	}
}
