// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies — the foundation of jem-vet's second-generation
// analyzers (spanend, goleak). Like the rest of internal/lint it is
// stdlib-only: no x/tools, just go/ast.
//
// The graph is statement-granular: every plain statement (assignments,
// calls, defers, returns, ...) is appended to exactly one basic block,
// while compound statements (if/for/switch/select/range) are
// decomposed into blocks and edges. Expressions are not modeled — the
// analyzers that need expression-level facts inspect the statements a
// block carries. Function literals are opaque: their bodies run at
// some other time, so the builder does not descend into them (build a
// separate Graph for a literal's body).
//
// Limits, by design: `goto` into the middle of a loop constructs the
// obvious edge but no legality checking; panics are modeled only for
// the builtin panic (an Option can extend the terminating-call set);
// recover-based resumption is not modeled. These keep the builder
// ~300 lines while covering every shape the repository actually
// contains.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a run of straight-line statements with a
// single entry and edges to its possible successors.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, build
	// order: entry first, exit last).
	Index int
	// Stmts are the plain statements executed in order when control
	// enters the block. Compound statements are decomposed and do not
	// appear; their leaves do.
	Stmts []ast.Stmt
	// Succs are the blocks control may transfer to next. Empty for the
	// exit block and for blocks that provably never yield control
	// (select{} with no cases).
	Succs []*Block
}

// addSucc appends s to b.Succs, deduplicating.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic exit block: every return, every
	// terminating call, and the body's fall-off-the-end edge lead
	// here. Exit carries no statements.
	Exit *Block
	// Blocks lists every block, Entry first and Exit last.
	Blocks []*Block

	blockOf map[ast.Stmt]*Block
}

// Option customizes graph construction.
type Option func(*builder)

// WithTerminating registers an extra predicate for calls that never
// return (os.Exit, log.Fatal, testing.T.Fatal...). The builtin panic
// is always terminating. A statement whose top-level expression is a
// terminating call ends its block with an edge straight to Exit.
func WithTerminating(fn func(*ast.CallExpr) bool) Option {
	return func(b *builder) { b.terminating = fn }
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt, opts ...Option) *Graph {
	g := &Graph{blockOf: make(map[ast.Stmt]*Block)}
	b := &builder{g: g, labels: make(map[string]*labelBlocks)}
	for _, o := range opts {
		o(b)
	}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	b.stmtList(body.List)
	// Fall off the end of the body = implicit return.
	if b.cur != nil {
		b.cur.addSucc(g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// BlockOf returns the block a plain statement was appended to, or nil
// for compound statements (which are decomposed) and statements from
// other functions.
func (g *Graph) BlockOf(s ast.Stmt) *Block { return g.blockOf[s] }

// CanReach reports whether control can flow from `from` to `to` along
// zero or more edges without entering a block for which blocked
// returns true (blocked may be nil; `from` itself is not tested, `to`
// is reached even if blocked — callers that want "reach to strictly
// avoiding X" should fold that into blocked).
func (g *Graph) CanReach(from, to *Block, blocked func(*Block) bool) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{from}
	seen[from.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if seen[s.Index] || (blocked != nil && blocked(s)) {
				continue
			}
			seen[s.Index] = true
			stack = append(stack, s)
		}
	}
	return false
}

// Defers returns every DeferStmt appended to any block, in build
// order. A defer's callback runs at function exit on exactly the
// paths that executed the defer statement — path-sensitive analyzers
// should treat the DeferStmt's block position, not Exit, as where the
// obligation is discharged.
func (g *Graph) Defers() []*ast.DeferStmt {
	var out []*ast.DeferStmt
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if d, ok := s.(*ast.DeferStmt); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// labelBlocks tracks the blocks a label can transfer control to.
type labelBlocks struct {
	target *Block // goto / labeled-statement entry
	brk    *Block // break <label>
	cont   *Block // continue <label>
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	brk   *Block
	cont  *Block // nil for switch/select (not continuable)
	label string
}

type builder struct {
	g           *Graph
	cur         *Block // nil while statements are unreachable
	loops       []loopCtx
	labels      map[string]*labelBlocks
	terminating func(*ast.CallExpr) bool
	// pendingLabel carries a label to attach to the next loop/switch
	// so `break L` / `continue L` resolve.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// use appends s to the current block (creating an unreachable block if
// control already diverged, so statements after `return` still get a
// home and BlockOf stays total over reachable-or-not code).
func (b *builder) use(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
	b.g.blockOf[s] = b.cur
}

// jump ends the current block with an edge to target and marks the
// following statements unreachable until a new block starts.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.cur.addSucc(target)
	}
	b.cur = nil
}

// startBlock begins a new block reachable from the current one.
func (b *builder) startBlock() *Block {
	nb := b.newBlock()
	if b.cur != nil {
		b.cur.addSucc(nb)
	}
	b.cur = nb
	return nb
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelFor consumes the pending label for a loop/switch/select.
func (b *builder) labelFor() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		lb := b.labelInfo(x.Label.Name)
		// The label is a join point: goto L lands here.
		if lb.target == nil {
			lb.target = b.newBlock()
		}
		if b.cur != nil {
			b.cur.addSucc(lb.target)
		}
		b.cur = lb.target
		b.pendingLabel = x.Label.Name
		b.stmt(x.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if x.Init != nil {
			b.use(x.Init)
		}
		cond := b.cur
		if cond == nil {
			cond = b.startBlock()
		}
		after := b.newBlock()
		// then branch
		b.cur = b.newBlock()
		cond.addSucc(b.cur)
		b.stmtList(x.Body.List)
		b.jump(after)
		// else branch (or fallthrough past the if)
		if x.Else != nil {
			b.cur = b.newBlock()
			cond.addSucc(b.cur)
			b.stmt(x.Else)
			b.jump(after)
		} else {
			cond.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.labelFor()
		if x.Init != nil {
			b.use(x.Init)
		}
		head := b.startBlock()
		after := b.newBlock()
		if x.Cond != nil {
			head.addSucc(after) // condition false exits the loop
		}
		post := head // `continue` target: the post statement, else the head
		if x.Post != nil {
			post = b.newBlock()
		}
		b.loops = append(b.loops, loopCtx{brk: after, cont: post, label: label})
		b.cur = b.newBlock()
		head.addSucc(b.cur)
		b.stmtList(x.Body.List)
		if x.Post != nil {
			b.jump(post)
			b.cur = post
			b.use(x.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.labelFor()
		head := b.startBlock()
		after := b.newBlock()
		// A range always has an exit edge: the sequence ends (for a
		// channel, when it is closed — the supervision analyzers treat
		// that as a termination edge deliberately).
		head.addSucc(after)
		b.loops = append(b.loops, loopCtx{brk: after, cont: head, label: label})
		b.cur = b.newBlock()
		head.addSucc(b.cur)
		b.stmtList(x.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.labelFor()
		var init ast.Stmt
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init = sw.Init
			clauses = sw.Body.List
			if init != nil {
				b.use(init)
			}
		case *ast.TypeSwitchStmt:
			init = sw.Init
			clauses = sw.Body.List
			if init != nil {
				b.use(init)
			}
			b.use(sw.Assign)
		}
		head := b.cur
		if head == nil {
			head = b.startBlock()
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{brk: after, label: label})
		// Build clause blocks first so fallthrough can edge to the next.
		blocks := make([]*Block, len(clauses))
		for i := range clauses {
			blocks[i] = b.newBlock()
			head.addSucc(blocks[i])
		}
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			b.cur = blocks[i]
			b.caseBody(cc.Body, blocks, i, after)
		}
		if !hasDefault {
			head.addSucc(after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SelectStmt:
		label := b.labelFor()
		head := b.cur
		if head == nil {
			head = b.startBlock()
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{brk: after, label: label})
		// select{} with no cases blocks forever: head keeps zero
		// successors and `after` stays unreachable — exactly the shape
		// the goleak analyzer wants to see.
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			b.cur = b.newBlock()
			head.addSucc(b.cur)
			if cc.Comm != nil {
				b.use(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.use(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(x)

	case *ast.ExprStmt:
		b.use(s)
		if call, ok := x.X.(*ast.CallExpr); ok && b.isTerminating(call) {
			b.jump(b.g.Exit)
		}

	default:
		// Plain statements: declarations, assignments, sends, incdec,
		// defer, go, empty. All straight-line.
		b.use(s)
	}
}

// caseBody builds one switch-case body; fallthrough edges to the next
// clause's block.
func (b *builder) caseBody(body []ast.Stmt, blocks []*Block, i int, after *Block) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i+1 < len(blocks) {
				b.jump(blocks[i+1])
			} else {
				b.jump(after)
			}
			return
		}
		b.stmt(s)
	}
	b.jump(after)
}

func (b *builder) labelInfo(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) branch(x *ast.BranchStmt) {
	switch x.Tok {
	case token.BREAK:
		if x.Label != nil {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == x.Label.Name {
					b.jump(b.loops[i].brk)
					return
				}
			}
		} else if n := len(b.loops); n > 0 {
			b.jump(b.loops[n-1].brk)
			return
		}
		b.cur = nil
	case token.CONTINUE:
		if x.Label != nil {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == x.Label.Name && b.loops[i].cont != nil {
					b.jump(b.loops[i].cont)
					return
				}
			}
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].cont != nil {
					b.jump(b.loops[i].cont)
					return
				}
			}
		}
		b.cur = nil
	case token.GOTO:
		if x.Label != nil {
			lb := b.labelInfo(x.Label.Name)
			if lb.target == nil {
				lb.target = b.newBlock()
			}
			b.jump(lb.target)
			return
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by caseBody; a stray one (invalid Go) ends the block.
		b.cur = nil
	}
}

// isTerminating reports whether the call never returns: the builtin
// panic, plus whatever the WithTerminating option registered.
func (b *builder) isTerminating(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.terminating != nil && b.terminating(call)
}
