package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and
// builds its graph.
func buildFunc(t *testing.T, src, name string, opts ...Option) (*Graph, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body, opts...), fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil
}

func TestStraightLineSingleBlock(t *testing.T) {
	g, _ := buildFunc(t, `func f() { a := 1; b := a; _ = b }`, "f")
	if len(g.Entry.Stmts) != 3 {
		t.Errorf("entry stmts = %d, want 3", len(g.Entry.Stmts))
	}
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("straight-line body must reach exit")
	}
	if len(g.Exit.Succs) != 0 || len(g.Exit.Stmts) != 0 {
		t.Error("exit block must be empty and terminal")
	}
}

func TestIfElseBothReturn(t *testing.T) {
	g, _ := buildFunc(t, `func f(x bool) int {
		if x {
			return 1
		} else {
			return 2
		}
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("both returns must reach exit")
	}
	// The join block after the if exists but must be unreachable.
	reachable := 0
	for _, b := range g.Blocks {
		if b == g.Entry || g.CanReach(g.Entry, b, nil) {
			reachable++
		}
	}
	if reachable == len(g.Blocks) {
		t.Error("the post-if join block should be unreachable when both arms return")
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g, fd := buildFunc(t, `func f(x bool) {
		if x {
			return
		}
		work()
	}`, "f")
	// work() must sit in a block reachable both straight from the
	// condition (x false) and... only from there; the return arm exits.
	var workBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			workBlock = g.BlockOf(es)
		}
		return true
	})
	if workBlock == nil {
		t.Fatal("work() statement not assigned to a block")
	}
	if !g.CanReach(g.Entry, workBlock, nil) || !g.CanReach(workBlock, g.Exit, nil) {
		t.Error("fallthrough path entry→work→exit broken")
	}
}

func TestInfiniteLoopCannotReachExit(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
		for {
			work()
		}
	}`, "f")
	if g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("for{} without break/return must not reach exit")
	}
}

func TestInfiniteLoopWithReturnReachesExit(t *testing.T) {
	g, _ := buildFunc(t, `func f(done chan int) {
		for {
			select {
			case <-done:
				return
			case <-other:
				work()
			}
		}
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("loop with a returning select case must reach exit")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
		select {}
	}`, "f")
	if g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("select{} blocks forever; exit must be unreachable")
	}
}

func TestConditionalLoopHasExitEdge(t *testing.T) {
	g, _ := buildFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			work()
		}
		done()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("conditional for loop must reach exit via cond-false edge")
	}
}

func TestRangeLoopHasExitEdge(t *testing.T) {
	g, _ := buildFunc(t, `func f(ch chan int) {
		for v := range ch {
			use(v)
		}
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("range over a channel exits when the channel closes")
	}
}

func TestBreakExitsInfiniteLoop(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
		for {
			if stop() {
				break
			}
		}
		done()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("break must create an exit edge out of for{}")
	}
}

func TestLabeledBreakExitsOuterLoop(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
	outer:
		for {
			for {
				break outer
			}
		}
		done()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("labeled break must exit the outer infinite loop")
	}
}

func TestContinueSkipsRestOfBody(t *testing.T) {
	// continue jumps to the post statement: the tail() call after it
	// must not be reachable from the continue block — concretely, the
	// path continue→head must bypass tail() within one iteration. We
	// check the weaker structural property: tail()'s block is not a
	// successor of the continue statement's block.
	g, fd := buildFunc(t, `func f(xs []int) {
		for i := 0; i < len(xs); i++ {
			if xs[i] == 0 {
				continue
			}
			tail()
		}
	}`, "f")
	var contBlock, tailBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			_ = x
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "tail" {
					tailBlock = g.BlockOf(x)
				}
			}
		case *ast.IfStmt:
			// the continue lives alone in the then-branch; find its block
			// via the branch statement's enclosing block successors.
			if len(x.Body.List) == 1 {
				contBlock = nil // continue stmts aren't appended; marker only
			}
		}
		return true
	})
	_ = contBlock
	if tailBlock == nil {
		t.Fatal("tail() not assigned to a block")
	}
	if !g.CanReach(g.Entry, tailBlock, nil) {
		t.Error("tail() must be reachable when the if is false")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
		i := 0
	top:
		i++
		if i < 10 {
			goto top
		}
		goto done
	done:
		finish()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("goto-based loop must reach exit through the done label")
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	g, _ := buildFunc(t, `func f(x bool) {
		if !x {
			panic("no")
		}
		work()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("panic arm still leaves the happy path to exit")
	}
	// A function that always panics never falls off the end, but panic
	// edges to Exit (unwinding leaves the function).
	g2, _ := buildFunc(t, `func g() { panic("always") }`, "g")
	if !g2.CanReach(g2.Entry, g2.Exit, nil) {
		t.Error("panic unwinds to exit")
	}
	if len(g2.Entry.Succs) != 1 || g2.Entry.Succs[0] != g2.Exit {
		t.Error("panic must be the block's only successor edge")
	}
}

func TestWithTerminatingOption(t *testing.T) {
	src := `func f(x bool) {
		if x {
			osexit()
		}
		work()
	}`
	term := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "osexit"
	}
	g, fd := buildFunc(t, src, "f", WithTerminating(term))
	var exitBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "osexit" {
					exitBlock = g.BlockOf(es)
				}
			}
		}
		return true
	})
	if exitBlock == nil {
		t.Fatal("osexit() not assigned to a block")
	}
	if len(exitBlock.Succs) != 1 || exitBlock.Succs[0] != g.Exit {
		t.Errorf("terminating call block must edge only to exit, got %d succs", len(exitBlock.Succs))
	}
}

func TestSwitchWithoutDefaultFallsPast(t *testing.T) {
	g, _ := buildFunc(t, `func f(x int) {
		switch x {
		case 1:
			return
		case 2:
			return
		}
		after()
	}`, "f")
	if !g.CanReach(g.Entry, g.Exit, nil) {
		t.Error("switch without default must have a fall-past edge")
	}
}

func TestSwitchWithDefaultAllReturn(t *testing.T) {
	g, fd := buildFunc(t, `func f(x int) {
		switch x {
		case 1:
			return
		default:
			return
		}
		after()
	}`, "f")
	var afterBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
					afterBlock = g.BlockOf(es)
				}
			}
		}
		return true
	})
	if afterBlock == nil {
		t.Fatal("after() not assigned to a block")
	}
	if g.CanReach(g.Entry, afterBlock, nil) {
		t.Error("all-arms-return switch with default: code after it is unreachable")
	}
}

func TestFallthroughEdges(t *testing.T) {
	g, fd := buildFunc(t, `func f(x int) {
		switch x {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		}
	}`, "f")
	var oneBlock, twoBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "one":
						oneBlock = g.BlockOf(es)
					case "two":
						twoBlock = g.BlockOf(es)
					}
				}
			}
		}
		return true
	})
	if oneBlock == nil || twoBlock == nil {
		t.Fatal("case bodies not assigned to blocks")
	}
	if !g.CanReach(oneBlock, twoBlock, nil) {
		t.Error("fallthrough must edge from case 1 body to case 2 body")
	}
}

func TestDefersCollectedInOrder(t *testing.T) {
	g, _ := buildFunc(t, `func f(x bool) {
		defer a()
		if x {
			defer b()
		}
		defer c()
	}`, "f")
	ds := g.Defers()
	if len(ds) != 3 {
		t.Fatalf("defers = %d, want 3", len(ds))
	}
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Call.Fun.(*ast.Ident).Name
	}
	// Build order: entry block (a), then the if branch (b), then the
	// join (c).
	if names[0] != "a" {
		t.Errorf("first defer = %s, want a", names[0])
	}
	// The conditional defer must be in a block that doesn't dominate
	// exit: entry reaches exit without passing through b's block.
	var bBlock *Block
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			if d, ok := s.(*ast.DeferStmt); ok && d.Call.Fun.(*ast.Ident).Name == "b" {
				bBlock = blk
			}
		}
	}
	if bBlock == nil {
		t.Fatal("defer b() not in any block")
	}
	if !g.CanReach(g.Entry, g.Exit, func(blk *Block) bool { return blk == bBlock }) {
		t.Error("exit must be reachable while avoiding the conditional defer's block")
	}
}

func TestCanReachBlocked(t *testing.T) {
	g, fd := buildFunc(t, `func f(x bool) {
		if x {
			closeIt()
			return
		}
		leak()
	}`, "f")
	var closeBlock *Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "closeIt" {
					closeBlock = g.BlockOf(es)
				}
			}
		}
		return true
	})
	if closeBlock == nil {
		t.Fatal("closeIt() not assigned to a block")
	}
	// Exit is reachable avoiding the close block (via the leak path) —
	// the exact query spanend uses to prove a span can escape un-ended.
	if !g.CanReach(g.Entry, g.Exit, func(b *Block) bool { return b == closeBlock }) {
		t.Error("exit must be reachable around the closing block via the else path")
	}
}

func TestBlocksLayout(t *testing.T) {
	g, _ := buildFunc(t, `func f() { work() }`, "f")
	if g.Blocks[0] != g.Entry || g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Error("Blocks must be ordered Entry first, Exit last")
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Errorf("block %d has Index %d", i, b.Index)
		}
	}
}
