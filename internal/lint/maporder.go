package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags ranging over a map when the loop body emits output —
// a write to an io.Writer, an fmt.Fprint* call, or appending to a
// []byte. Go randomizes map iteration order on purpose, so such a
// loop produces nondeterministically-ordered bytes: index files that
// don't round-trip bit-identically, TSV output that diffs against
// itself, flaky golden tests. The fix is always the same — collect,
// sort, then emit (see Registry.sorted for the house pattern) — and a
// loop that only collects is exactly what this analyzer does NOT
// flag.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no output may be produced while ranging over a map (iteration order is randomized)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pos, what, found := findEmit(pass, rs.Body); found {
				pass.Report(pos,
					"%s inside a range over a map emits bytes in randomized order; collect keys, sort, then emit", what)
			}
			return true
		})
	}
}

// findEmit locates the first output-producing operation in body:
// a Write-family method call, an fmt.Fprint* call, binary.Write, or
// append to a []byte.
func findEmit(pass *Pass, body *ast.BlockStmt) (pos token.Pos, what string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFunc(pass.Info, call); ok {
			if path == "fmt" && isPrintName(name) && name[0] == 'F' {
				pos, what, found = call.Pos(), "fmt."+name, true
				return false
			}
			if path == "encoding/binary" && name == "Write" {
				pos, what, found = call.Pos(), "binary.Write", true
				return false
			}
		}
		if recv, fn, ok := methodCall(pass.Info, call); ok && errSinkWriteFamily[fn.Name()] {
			pos, what, found = call.Pos(), exprString(recv)+"."+fn.Name(), true
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if t := pass.Info.TypeOf(call.Args[0]); t != nil && isByteSlice(t) {
					pos, what, found = call.Pos(), "append to []byte", true
					return false
				}
			}
		}
		return true
	})
	return pos, what, found
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
