package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces the all-or-nothing rule of sync/atomic: once a
// struct field is accessed through a sync/atomic function anywhere in
// the package, every other access to that field must be atomic too.
// A plain load next to atomic.AddInt64 is a data race the race
// detector only catches when the interleaving actually happens; this
// catches it structurally. (Fields of type atomic.Int64 & friends are
// immune by construction — the mix is only possible with the
// function-style API over plain integer fields.)
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a struct field accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

type fieldAccess struct {
	pos  token.Pos
	expr string // rendered access, for the diagnostic
}

func runAtomicMix(pass *Pass) {
	// Pass 1: find fields used as &f arguments to sync/atomic calls,
	// and remember those argument nodes so pass 2 can skip them.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic use
	atomicArgNodes := make(map[ast.Expr]bool)      // the f in atomic.X(&f, ...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, _, ok := pkgFunc(pass.Info, call)
			if !ok || path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fld := fieldObject(pass.Info, un.X); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = un.Pos()
					}
					atomicArgNodes[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a mixed-model
	// access.
	var mixed []fieldAccess
	fieldNames := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgNodes[sel] {
				return true
			}
			fld := fieldObject(pass.Info, sel)
			if fld == nil {
				return true
			}
			if _, isAtomic := atomicFields[fld]; !isAtomic {
				return true
			}
			mixed = append(mixed, fieldAccess{pos: sel.Pos(), expr: exprString(sel)})
			fieldNames[fld] = sel.Sel.Name
			return true
		})
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].pos < mixed[j].pos })
	for _, m := range mixed {
		pass.Report(m.pos,
			"%s is accessed with sync/atomic elsewhere in this package; plain access mixes memory models (use atomic.Load/Store)",
			m.expr)
	}
}

// fieldObject resolves e to the struct field it selects, or nil.
// Only fields declared in the package under analysis participate:
// object identity across export-data boundaries is not stable enough
// for a cross-package version of this check.
func fieldObject(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
