package lint

import (
	"go/ast"
	"go/types"
)

// reproPkgPath is the module root package, where the public Mapper
// facade lives.
const reproPkgPath = "repro"

// deprecatedMapperMethods maps each deprecated compatibility wrapper
// on repro.Mapper to its canonical replacement. PR 5 consolidated the
// public API on Map/Stream (context-first, options-struct); the old
// entry points were kept as thin delegating wrappers so external
// callers keep compiling — but internal code has no excuse to route
// through them, and every internal call is one more reason the
// wrappers can never be deleted.
var deprecatedMapperMethods = map[string]string{
	"MapReads":         "Map",
	"MapReadsContext":  "Map",
	"MapStream":        "Stream",
	"MapStreamContext": "Stream",
}

// DeprecatedAPI flags internal (in-module, non-test) callers of the
// deprecated repro.Mapper wrappers. Test files are exempt: the
// delegation behavior of each wrapper is pinned by tests that must
// keep calling it. The wrapper definitions themselves (package repro)
// are exempt for the same reason.
//
// Like hotpathalloc's required-annotation table, the method table is
// guarded against staleness: when the analyzer visits package repro
// it verifies every listed method still exists, so a rename or
// removal breaks the lint run instead of silently disabling the
// check.
var DeprecatedAPI = &Analyzer{
	Name: "deprecatedapi",
	Doc:  "internal code must call Mapper.Map/Stream, not the deprecated MapReads*/MapStream* wrappers",
	Run:  runDeprecatedAPI,
}

func runDeprecatedAPI(pass *Pass) {
	if pass.Pkg.Path() == reproPkgPath {
		checkDeprecatedTable(pass)
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn, ok := methodCall(pass.Info, call)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != reproPkgPath {
				return true
			}
			canonical, deprecated := deprecatedMapperMethods[fn.Name()]
			if !deprecated || !namedTypeIs(pass.Info.TypeOf(recv), reproPkgPath, "Mapper") {
				return true
			}
			if isTestFile(pass.Fset, call.Pos()) {
				return true
			}
			pass.Report(call.Pos(),
				"Mapper.%s is a deprecated compatibility wrapper; call Mapper.%s (context-first) so the wrapper can eventually be deleted",
				fn.Name(), canonical)
			return true
		})
	}
}

// checkDeprecatedTable verifies, while visiting package repro, that
// every method in the table still exists on *Mapper.
func checkDeprecatedTable(pass *Pass) {
	obj := pass.Pkg.Scope().Lookup("Mapper")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		pass.Report(pass.Files[0].Name.Pos(),
			"deprecatedapi: package %s no longer declares type Mapper; update the deprecatedMapperMethods table", reproPkgPath)
		return
	}
	mset := types.NewMethodSet(types.NewPointer(tn.Type()))
	have := make(map[string]bool, mset.Len())
	for i := 0; i < mset.Len(); i++ {
		have[mset.At(i).Obj().Name()] = true
	}
	for name := range deprecatedMapperMethods {
		if !have[name] {
			pass.Report(pass.Files[0].Name.Pos(),
				"deprecatedapi: repro.Mapper no longer has method %s; update the deprecatedMapperMethods table", name)
		}
	}
}
