// Package lint is the repository's custom static-analysis layer:
// jem-vet. It encodes the hot-path, concurrency and serialization
// invariants that earlier PRs established only in commit messages —
// metrics call sites in hot loops stay allocation-free, atomic
// counters are never mixed with plain access, locks are not held
// across blocking operations, serialization errors are not dropped,
// and nothing iterates a map while producing output bytes.
//
// The package is built purely on the standard library's go/parser,
// go/ast and go/types (no x/tools dependency, honoring the repo's
// no-external-deps constraint). Packages are loaded by shelling out
// to `go list -deps -export -json`, which yields compiled export data
// for every dependency; target packages are then parsed from source
// and type-checked against that export data.
//
// Analyzer registry, annotation syntax (//jem:hotpath), suppression
// syntax (//jem:nolint(<analyzer>)) and the golden-fixture self-test
// harness are documented in docs/STATIC_ANALYSIS.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass carries one type-checked package through one analyzer run.
// Analyzers report findings through Report; the driver owns
// suppression handling and ordering.
type Pass struct {
	// Fset maps token.Pos values to file positions.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at pos. The message should state the
// violated invariant, not just the syntax that triggered it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Run inspects the package in pass and
// reports diagnostics; it must not retain the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks diagnostics silenced by a //jem:nolint comment;
	// the driver keeps them (counted, reportable under -v) instead of
	// dropping them.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		AtomicMix,
		LockedBlock,
		ErrSink,
		MapOrder,
		CtxFlow,
		SpanEnd,
		GoLeak,
	}
}

// ByName resolves a comma-separated analyzer list ("hotpathalloc,
// errsink") against the registry.
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Result is the outcome of running a set of analyzers over a set of
// packages: active diagnostics (sorted by position) and the count of
// findings silenced by //jem:nolint comments, per analyzer.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  map[string]int
}

// Run applies every analyzer to every package, honors nolint
// suppressions, and returns position-sorted diagnostics.
func Run(analyzers []*Analyzer, pkgs []*Package) Result {
	res := Result{Suppressed: make(map[string]int)}
	for _, pkg := range pkgs {
		nolint := collectNolint(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				diags:    &diags,
			}
			a.Run(pass)
			for _, d := range diags {
				if nolint.suppresses(d.Pos, a.Name) {
					d.Suppressed = true
					res.Suppressed[a.Name]++
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return res
}

// nolintIndex records, per file and line, which analyzers a
// //jem:nolint comment silences (nil value = all analyzers).
type nolintIndex map[string]map[int][]string

const nolintPrefix = "//jem:nolint"

// collectNolint scans every comment in the package for the
// //jem:nolint(<analyzer>[,<analyzer>...]) suppression form. A
// suppression applies to diagnostics on its own line (trailing
// comment) and on the line directly below (leading comment).
func collectNolint(fset *token.FileSet, files []*ast.File) nolintIndex {
	idx := make(nolintIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, nolintPrefix)
				var names []string // nil = suppress every analyzer
				if strings.HasPrefix(rest, "(") {
					end := strings.Index(rest, ")")
					if end < 0 {
						continue // malformed, ignore
					}
					for _, n := range strings.Split(rest[1:end], ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx[pos.Filename] = m
				}
				existing, present := m[pos.Line]
				if names == nil || (present && existing == nil) {
					m[pos.Line] = nil // blanket form wins
				} else {
					m[pos.Line] = append(existing, names...)
				}
			}
		}
	}
	return idx
}

func (idx nolintIndex) suppresses(pos token.Position, analyzer string) bool {
	m := idx[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		names, ok := m[line]
		if !ok {
			continue
		}
		if names == nil {
			return true
		}
		for _, n := range names {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}
