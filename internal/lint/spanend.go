package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/cfg"
)

// SpanEnd proves, on the intra-procedural control-flow graph, that
// every obs span begun in a function is ended on every path to
// return. An un-ended span never reports its duration, never lands in
// the tail-sampling ring, and — when it is a request root — pins its
// children alive; the error path that forgets sp.End() is exactly the
// path nobody exercises until production.
//
// Tracked span sources: obs.Tracer.Start, obs.NewSpan, obs.Span.Child.
// The analysis is deliberately local and escape-aware: a span that
// leaves the function (passed as an argument, returned, stored in a
// struct or captured by a closure) transfers the End obligation to
// code this analyzer cannot see, so it is skipped rather than
// guessed at. A `defer sp.End()` on a path discharges that path; so
// does a direct sp.End() (including `return sp.End()` and
// `d := sp.End()`).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs span begun must be ended on all paths (defer or every exit edge)",
	Run:  runSpanEnd,
}

const obsPkgPath = "repro/internal/obs"

func runSpanEnd(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Analyze the declaration body and every nested function
			// literal as independent control-flow units.
			checkSpanUnit(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanUnit(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// spanBeginCall reports whether call begins a span that the caller now
// owns: Tracer.Start, Span.Child, or NewSpan.
func spanBeginCall(info *types.Info, call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(info, call); ok {
		return path == obsPkgPath && name == "NewSpan"
	}
	if recv, fn, ok := methodCall(info, call); ok && fn.Pkg() != nil && fn.Pkg().Path() == obsPkgPath {
		t := info.TypeOf(recv)
		switch fn.Name() {
		case "Start":
			return namedTypeIs(t, obsPkgPath, "Tracer")
		case "Child":
			return namedTypeIs(t, obsPkgPath, "Span")
		}
	}
	return false
}

// spanBegin is one tracked span obligation in a unit.
type spanBegin struct {
	stmt ast.Stmt // the assignment that begins the span
	obj  types.Object
	call *ast.CallExpr
}

// checkSpanUnit runs the analysis over one function body, treating
// nested function literals as opaque (spans begun inside them are
// checked by their own unit; spans from this unit used inside them
// have escaped).
func checkSpanUnit(pass *Pass, body *ast.BlockStmt) {
	begins := collectSpanBegins(pass, body)
	if len(begins) == 0 {
		return
	}
	var g *cfg.Graph // built lazily: most units have no unresolved span
	for _, b := range begins {
		escaped, hasEnd := classifySpanUses(pass, body, b)
		if escaped {
			continue
		}
		if !hasEnd {
			pass.Report(b.call.Pos(),
				"span %s is begun but never ended in this function; its duration is never recorded (call %s.End, or defer it)",
				b.obj.Name(), b.obj.Name())
			continue
		}
		if g == nil {
			g = cfg.New(body, cfg.WithTerminating(func(c *ast.CallExpr) bool {
				return terminatingCall(pass.Info, c)
			}))
		}
		reportUnendedPaths(pass, g, b)
	}
}

// collectSpanBegins finds `sp := ....Start(...)` (and =, and var
// declarations) at statement level, skipping nested literals. A span
// begun and immediately discarded is reported on the spot.
func collectSpanBegins(pass *Pass, body *ast.BlockStmt) []*spanBegin {
	var out []*spanBegin
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && spanBeginCall(pass.Info, call) {
				pass.Report(call.Pos(),
					"span begun and immediately discarded; it can never be ended (assign it and End it, or don't begin it)")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok || !spanBeginCall(pass.Info, call) {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				out = append(out, &spanBegin{stmt: x, obj: obj, call: call})
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok || !spanBeginCall(pass.Info, call) {
					continue
				}
				if obj := pass.Info.Defs[vs.Names[0]]; obj != nil {
					out = append(out, &spanBegin{stmt: x, obj: obj, call: call})
				}
			}
		}
		return true
	})
	return out
}

// classifySpanUses scans every use of the span variable in the unit.
// A use that is not a direct method call — argument, return value,
// assignment, composite literal, capture by a nested literal —
// transfers the End obligation elsewhere: the variable has escaped
// and the local proof is abandoned.
func classifySpanUses(pass *Pass, body *ast.BlockStmt, b *spanBegin) (escaped, hasEnd bool) {
	// Idents that are the receiver of a direct method call: the X of a
	// SelectorExpr that is the Fun of a CallExpr.
	methodRecv := make(map[*ast.Ident]string)
	litIdents := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					methodRecv[id] = sel.Sel.Name
				}
			}
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					litIdents[id] = true
				}
				return true
			})
		}
		return true
	})
	beginLhs, _ := beginIdent(b.stmt)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == beginLhs {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || obj != b.obj {
			return true
		}
		if litIdents[id] {
			escaped = true
			return true
		}
		name, isMethod := methodRecv[id]
		if !isMethod {
			escaped = true
			return true
		}
		if name == "End" {
			hasEnd = true
		}
		return true
	})
	return escaped, hasEnd
}

// beginIdent extracts the declared/assigned identifier of a begin
// statement.
func beginIdent(s ast.Stmt) (*ast.Ident, bool) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		id, ok := x.Lhs[0].(*ast.Ident)
		return id, ok
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			if vs, ok := gd.Specs[0].(*ast.ValueSpec); ok {
				return vs.Names[0], true
			}
		}
	}
	return nil, false
}

// reportUnendedPaths walks the graph from the begin statement and
// reports when the exit is reachable without passing a statement that
// ends the span (a direct call or a defer that registers one).
func reportUnendedPaths(pass *Pass, g *cfg.Graph, b *spanBegin) {
	closing := func(s ast.Stmt) bool {
		found := false
		inspectSkipFuncLit(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == b.obj {
					found = true
				}
			}
			return true
		})
		// A defer statement registering End counts wherever it executes.
		if d, ok := s.(*ast.DeferStmt); ok && !found {
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == b.obj {
					found = true
				}
			}
		}
		return found
	}
	beginBlock := g.BlockOf(b.stmt)
	if beginBlock == nil {
		return
	}
	idx := -1
	for i, s := range beginBlock.Stmts {
		if s == b.stmt {
			idx = i
			break
		}
	}
	for _, s := range beginBlock.Stmts[idx+1:] {
		if closing(s) {
			return // ended (or deferred) in the begin block itself
		}
	}
	blocked := func(blk *cfg.Block) bool {
		for _, s := range blk.Stmts {
			if closing(s) {
				return true
			}
		}
		// A block that ends the process (panic, os.Exit, log.Fatal)
		// reaches Exit only in the graph, never in a trace: process
		// death discharges the End obligation.
		if n := len(blk.Stmts); n > 0 {
			if es, ok := blk.Stmts[n-1].(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
						return true
					}
					if terminatingCall(pass.Info, call) {
						return true
					}
				}
			}
		}
		return false
	}
	if g.CanReach(beginBlock, g.Exit, blocked) {
		pass.Report(b.call.Pos(),
			"span %s is not ended on every path to return; some exit path skips %s.End() (defer it right after the begin, or end it on each path)",
			b.obj.Name(), b.obj.Name())
	}
}
