package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
)

// GoLeak vets goroutines spawned in library code. A goroutine the
// spawner can neither stop nor observe is a leak waiting for a
// refactor: it pins its captured state forever, it races shutdown,
// and under `go test` it survives the test that started it.
//
// Two obligations, checked on the goroutine body:
//
//  1. Supervision: the body must carry at least one signal the
//     outside world can use — a channel receive (ctx.Done() select,
//     work-queue range), a close() or channel send announcing
//     completion, or a sync.WaitGroup.Done(). A body with none of
//     these is invisible: nothing can stop it and nothing can wait
//     for it.
//  2. Termination: if the body has no channel receive, its
//     control-flow graph must reach the exit — a `for {}` of pure
//     sends or computation runs until process death.
//
// The analyzer also flags time.After inside a loop: each iteration
// allocates a fresh runtime timer that is not collected until it
// fires, so a tight poll loop churns timers at the poll rate. Hoist
// a time.NewTicker (or NewTimer + Reset) out of the loop.
//
// Scope: non-main packages, non-test files, `go func(){...}` literals
// only (a named-function goroutine is checked where the function is
// declared, if it is ever also spawned with a literal; otherwise it
// is out of intra-procedural reach).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "library goroutines must be stoppable or observable; no time.After timer churn in loops",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			checkGoroutines(pass, fd.Body)
			checkTimerChurn(pass, fd.Body)
		}
	}
}

// checkGoroutines analyzes every `go func(){...}()` in the body,
// wherever it is nested.
func checkGoroutines(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // named-function goroutine: body out of reach here
		}
		signal, receive := goroutineSignals(pass, lit.Body)
		if !signal {
			pass.Report(gs.Pos(),
				"goroutine has no termination or completion signal (no channel receive, close, send, or WaitGroup.Done); the spawner can neither stop it nor observe its exit")
			return true
		}
		if !receive {
			g := cfg.New(lit.Body, cfg.WithTerminating(func(c *ast.CallExpr) bool {
				return terminatingCall(pass.Info, c)
			}))
			if !g.CanReach(g.Entry, g.Exit, nil) {
				pass.Report(gs.Pos(),
					"goroutine loops forever and has no channel receive that could stop it; give it a ctx.Done() or quit-channel case")
			}
		}
		return true
	})
}

// goroutineSignals scans a goroutine body (including nested literals,
// which commonly hold the deferred completion broadcast) for
// supervision signals. receive additionally reports a blocking
// receive or a range over a channel — the forms that double as a
// termination path when the channel closes.
func goroutineSignals(pass *Pass, body *ast.BlockStmt) (signal, receive bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				signal, receive = true, true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					signal, receive = true, true
				}
			}
		case *ast.SendStmt:
			signal = true
		case *ast.CallExpr:
			if id, isIdent := x.Fun.(*ast.Ident); isIdent {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					signal = true
				}
			}
			if _, fn, ok := methodCall(pass.Info, x); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				switch fn.Name() {
				case "Done", "Wait":
					signal = true
				}
			}
		}
		return true
	})
	return signal, receive
}

// checkTimerChurn reports time.After calls that execute once per loop
// iteration. A time.After inside a function literal is attributed to
// the literal, not the loop that merely declares it.
func checkTimerChurn(pass *Pass, body *ast.BlockStmt) {
	type span struct{ pos, end token.Pos }
	var loops, lits []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		case *ast.FuncLit:
			lits = append(lits, span{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	innermost := func(spans []span, p token.Pos) (span, bool) {
		best, found := span{}, false
		for _, s := range spans {
			if s.pos <= p && p < s.end && (!found || s.pos > best.pos) {
				best, found = s, true
			}
		}
		return best, found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFunc(pass.Info, call); !ok || path != "time" || name != "After" {
			return true
		}
		loop, inLoop := innermost(loops, call.Pos())
		if !inLoop {
			return true
		}
		// A literal declared inside the loop runs on its own schedule;
		// only flag when the loop is the innermost execution context.
		if lit, inLit := innermost(lits, call.Pos()); inLit && lit.pos > loop.pos {
			return true
		}
		pass.Report(call.Pos(),
			"time.After in a loop allocates a fresh timer every iteration (not collected until it fires); hoist a time.NewTicker or time.NewTimer out of the loop")
		return true
	})
}
