package lint

// The golden self-test harness: every analyzer has a fixture package
// under testdata/src/<name> whose offending lines carry
// `// want `+"`regex`"+`` comments. The harness type-checks the
// fixture, runs the analyzer, and diffs produced diagnostics against
// the expectations in both directions — a missing diagnostic (the
// analyzer went blind) and an unexpected one (a false positive) both
// fail. TestFixturesCatchViolations proves the harness has teeth by
// running each fixture with its analyzer disabled and requiring the
// diff to be non-empty.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// fixtureWant is one `// want` expectation.
type fixtureWant struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (.+)$")

// parseWants scans the fixture sources for `// want` comments. Each
// expectation is one or more Go-quoted strings (interpreted as
// regexps) after the marker.
func parseWants(t *testing.T, dir string) []*fixtureWant {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*fixtureWant
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, lit := range splitQuoted(t, e.Name(), lineNo, m[1]) {
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), lineNo, lit, err)
				}
				wants = append(wants, &fixtureWant{file: e.Name(), line: lineNo, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// splitQuoted extracts consecutive Go string literals ("..." or
// `...`) from the text after a want marker.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			break // trailing prose after the literals is ignored
		}
		quote := s[0]
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want literal %q", file, line, s)
		}
		lit, err := strconv.Unquote(s[:end+2])
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %q: %v", file, line, s[:end+2], err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want marker with no quoted regexp", file, line)
	}
	return out
}

// diffFixture compares a run's unsuppressed diagnostics against the
// wants and returns human-readable mismatches (empty = pass).
// Suppressed diagnostics neither satisfy wants nor count as
// unexpected: a //jem:nolint'd line is, by definition, silent.
func diffFixture(res Result, wants []*fixtureWant) []string {
	var problems []string
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			continue
		}
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s (%s)",
				base, d.Pos.Line, d.Message, d.Analyzer))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("missing diagnostic at %s:%d matching %q",
				w.file, w.line, w.re))
		}
	}
	sort.Strings(problems)
	return problems
}

func runFixture(t *testing.T, analyzers []*Analyzer, name string) (Result, []*fixtureWant) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(".", dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return Run(analyzers, []*Package{pkg}), parseWants(t, dir)
}

// analyzerFixtures pairs each analyzer with its fixture package.
func analyzerFixtures() map[string]*Analyzer {
	m := make(map[string]*Analyzer)
	for _, a := range All() {
		m[a.Name] = a
	}
	return m
}

func TestAnalyzerFixtures(t *testing.T) {
	for name, a := range analyzerFixtures() {
		t.Run(name, func(t *testing.T) {
			res, wants := runFixture(t, []*Analyzer{a}, name)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no expectations; every analyzer must demonstrate ≥1 caught violation", name)
			}
			for _, p := range diffFixture(res, wants) {
				t.Error(p)
			}
		})
	}
}

// TestFixturesCatchViolations runs every fixture with its analyzer
// DISABLED and requires the harness to notice the missing
// diagnostics — i.e. the fixtures genuinely depend on their analyzer
// and would catch a silently broken or unregistered one.
func TestFixturesCatchViolations(t *testing.T) {
	for name := range analyzerFixtures() {
		t.Run(name, func(t *testing.T) {
			res, wants := runFixture(t, nil /* no analyzers */, name)
			if problems := diffFixture(res, wants); len(problems) == 0 {
				t.Fatalf("fixture %s passes with its analyzer disabled; it demonstrates nothing", name)
			}
		})
	}
}

func TestNolintSuppression(t *testing.T) {
	res, wants := runFixture(t, []*Analyzer{ErrSink}, "nolint")
	for _, p := range diffFixture(res, wants) {
		t.Error(p)
	}
	// Four sites in the fixture are silenced: trailing, leading,
	// blanket, and list forms. The wrong-analyzer form must NOT count.
	if got := res.Suppressed["errsink"]; got != 4 {
		t.Errorf("suppressed[errsink] = %d, want 4", got)
	}
	suppressed := 0
	for _, d := range res.Diagnostics {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 4 {
		t.Errorf("suppressed diagnostics = %d, want 4", suppressed)
	}
}

// TestCFGAnalyzerSuppression verifies that each CFG-backed analyzer's
// fixture carries exactly one //jem:nolint'd site — proving the
// suppression machinery composes with the new analyzers and that the
// fixtures' want-counts don't silently absorb a suppressed finding.
func TestCFGAnalyzerSuppression(t *testing.T) {
	for _, a := range []*Analyzer{CtxFlow, SpanEnd, GoLeak} {
		t.Run(a.Name, func(t *testing.T) {
			res, wants := runFixture(t, []*Analyzer{a}, a.Name)
			for _, p := range diffFixture(res, wants) {
				t.Error(p)
			}
			if got := res.Suppressed[a.Name]; got != 1 {
				t.Errorf("suppressed[%s] = %d, want 1", a.Name, got)
			}
		})
	}
}

// TestRepoIsClean is `jem-vet ./...` as a test: the whole repository
// must satisfy its own invariants. This is the enforcement backstop
// for environments that run `go test ./...` but not `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(All(), pkgs)
	for _, d := range res.Diagnostics {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}

// TestRepoIsCleanWithTests is `jem-vet -tests ./...` as a test: the
// test variants of every package (with their _test.go files merged
// in) must satisfy the same invariants as the library code.
func TestRepoIsCleanWithTests(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo with tests; skipped in -short")
	}
	pkgs, err := LoadTests("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(All(), pkgs)
	for _, d := range res.Diagnostics {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("errsink, maporder")
	if err != nil || len(as) != 2 || as[0] != ErrSink || as[1] != MapOrder {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
