package mashmap

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

func smallParams() Params {
	return Params{K: 8, W: 4, SegLen: 200, MinShared: 2}
}

func world(t *testing.T) (ref []byte, contigs []seq.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	ref = randDNA(rng, 20_000)
	for pos := 0; pos+1000 <= len(ref); pos += 1000 {
		contigs = append(contigs, seq.Record{ID: fmt.Sprintf("c%d", len(contigs)), Seq: ref[pos : pos+1000]})
	}
	return ref, contigs
}

func TestMapSegmentFindsOrigin(t *testing.T) {
	ref, contigs := world(t)
	m := NewMapper(contigs, smallParams(), 1)
	rng := rand.New(rand.NewSource(56))
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		pos := rng.Intn(len(ref) - 200)
		hit, ok := m.MapSegment(ref[pos : pos+200])
		if !ok {
			continue
		}
		want := int32(pos / 1000)
		if hit.Subject == want || hit.Subject == want+1 {
			correct++
		}
	}
	if correct < trials-2 {
		t.Errorf("only %d/%d segments mapped to origin", correct, trials)
	}
}

func TestMapSegmentRejectsUnrelated(t *testing.T) {
	// Needs a realistic k: at k=8 the canonical k-mer space is so
	// small that random 200-mers genuinely share minimizers with any
	// index. k=16 collisions are vanishingly rare, so MinShared=2
	// keeps false hits out.
	_, contigs := world(t)
	p := Params{K: 16, W: 4, SegLen: 200, MinShared: 2}
	m := NewMapper(contigs, p, 1)
	rng := rand.New(rand.NewSource(57))
	falseHits := 0
	for i := 0; i < 20; i++ {
		if _, ok := m.MapSegment(randDNA(rng, 200)); ok {
			falseHits++
		}
	}
	if falseHits > 2 {
		t.Errorf("%d/20 unrelated segments mapped", falseHits)
	}
}

func TestMapSegmentStrandOblivious(t *testing.T) {
	ref, contigs := world(t)
	m := NewMapper(contigs, smallParams(), 1)
	seg := ref[3100:3300]
	h1, ok1 := m.MapSegment(seg)
	h2, ok2 := m.MapSegment(seq.ReverseComplement(seg))
	if !ok1 || !ok2 || h1.Subject != h2.Subject {
		t.Errorf("strand variance: %v,%v vs %v,%v", h1, ok1, h2, ok2)
	}
}

func TestMinSharedFilter(t *testing.T) {
	_, contigs := world(t)
	p := smallParams()
	p.MinShared = 1_000_000
	m := NewMapper(contigs, p, 1)
	if _, ok := m.MapSegment(contigs[0].Seq[:200]); ok {
		t.Error("absurd MinShared should reject everything")
	}
}

func TestEmptyAndShortSegments(t *testing.T) {
	_, contigs := world(t)
	m := NewMapper(contigs, smallParams(), 1)
	if _, ok := m.MapSegment(nil); ok {
		t.Error("nil segment should not map")
	}
	if _, ok := m.MapSegment([]byte("ACG")); ok {
		t.Error("sub-k segment should not map")
	}
}

func TestMapReadsShapeAndDeterminism(t *testing.T) {
	ref, contigs := world(t)
	m := NewMapper(contigs, smallParams(), 2)
	rng := rand.New(rand.NewSource(58))
	var reads []seq.Record
	for i := 0; i < 15; i++ {
		pos := rng.Intn(len(ref) - 900)
		reads = append(reads, seq.Record{ID: fmt.Sprintf("r%d", i), Seq: ref[pos : pos+900]})
	}
	r1 := m.MapReads(reads, 200, 1)
	r2 := m.MapReads(reads, 200, 4)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("worker count changed results")
	}
	if len(r1) != 2*len(reads) {
		t.Fatalf("got %d results", len(r1))
	}
	for i, r := range r1 {
		if r.ReadIndex != int32(i/2) {
			t.Fatalf("result %d has read %d", i, r.ReadIndex)
		}
		if (i%2 == 0) != (r.Kind == core.Prefix) {
			t.Fatalf("result %d kind %v", i, r.Kind)
		}
	}
}

func TestWindowedLocalIntersection(t *testing.T) {
	// A contig sharing two far-apart clusters of minimizers with a
	// query must be scored by the best single window, not the total.
	rng := rand.New(rand.NewSource(59))
	block := randDNA(rng, 200)
	// Subject: block at 0 and a copy at 5000, padding in between.
	subject := append([]byte(nil), block...)
	subject = append(subject, randDNA(rng, 4800)...)
	subject = append(subject, block...)
	subject = append(subject, randDNA(rng, 500)...)
	// Another subject with one contiguous double block.
	subject2 := append(append([]byte(nil), block...), block...)
	contigs := []seq.Record{
		{ID: "split", Seq: subject},
		{ID: "contig", Seq: subject2},
	}
	p := Params{K: 8, W: 4, SegLen: 400, MinShared: 2}
	m := NewMapper(contigs, p, 1)
	query := append(append([]byte(nil), block...), block...)
	hit, ok := m.MapSegment(query)
	if !ok {
		t.Fatal("no hit")
	}
	if hit.Subject != 1 {
		t.Errorf("windowing failed: best hit %v (want subject 1 with the contiguous copy)", hit)
	}
}

func TestMapSegmentDetailedPosition(t *testing.T) {
	// One long subject; segments cut from known offsets must report a
	// window position near the cut.
	rng := rand.New(rand.NewSource(81))
	subject := randDNA(rng, 20_000)
	p := Params{K: 12, W: 4, SegLen: 400, MinShared: 2}
	m := NewMapper([]seq.Record{{ID: "c", Seq: subject}}, p, 1)
	for trial := 0; trial < 15; trial++ {
		pos := rng.Intn(len(subject) - 400)
		hit, d, ok := m.MapSegmentDetailed(subject[pos : pos+400])
		if !ok || hit.Subject != 0 {
			t.Fatalf("trial %d: no hit", trial)
		}
		if diff := int(d.Pos) - pos; diff < -450 || diff > 450 {
			t.Errorf("trial %d: window pos %d vs cut %d", trial, d.Pos, pos)
		}
		if d.Identity < 95 {
			t.Errorf("trial %d: exact segment estimated at %.1f%% identity", trial, d.Identity)
		}
		if d.QueryMinimizers <= 0 {
			t.Errorf("trial %d: no query minimizers recorded", trial)
		}
	}
}

func TestEstimateIdentityMonotone(t *testing.T) {
	const k = 16
	prev := -1.0
	for shared := 1; shared <= 100; shared += 9 {
		id := EstimateIdentity(shared, 100, k)
		if id < prev {
			t.Fatalf("identity not monotone in shared count at %d: %v < %v", shared, id, prev)
		}
		prev = id
	}
	if EstimateIdentity(100, 100, k) != 100 {
		t.Errorf("perfect containment should estimate 100%%")
	}
	if EstimateIdentity(0, 100, k) != 0 || EstimateIdentity(5, 0, k) != 0 {
		t.Error("degenerate inputs should estimate 0")
	}
	if EstimateIdentity(200, 100, k) != 100 {
		t.Error("j>1 must clamp")
	}
}

func TestEstimateIdentityTracksMutationRate(t *testing.T) {
	// Mutate a segment at a known rate; the Mash estimate against the
	// clean subject should land in the right neighborhood.
	rng := rand.New(rand.NewSource(83))
	subject := randDNA(rng, 30_000)
	segStart := 10_000
	segment := append([]byte(nil), subject[segStart:segStart+1000]...)
	for i := range segment {
		if rng.Float64() < 0.03 {
			segment[i] = seq.Code2Base[rng.Intn(4)]
		}
	}
	p := Params{K: 16, W: 5, SegLen: 1000, MinShared: 2}
	m := NewMapper([]seq.Record{{ID: "c", Seq: subject}}, p, 1)
	_, d, ok := m.MapSegmentDetailed(segment)
	if !ok {
		t.Fatal("mutated segment did not map")
	}
	if d.Identity < 90 || d.Identity > 99.5 {
		t.Errorf("3%% mutation estimated at %.2f%% identity", d.Identity)
	}
}

func TestIndexEntries(t *testing.T) {
	_, contigs := world(t)
	m := NewMapper(contigs, smallParams(), 1)
	if m.IndexEntries() == 0 {
		t.Error("empty index")
	}
}
