// Package mashmap reimplements the stage-1 mapping strategy of
// Mashmap (Jain et al., RECOMB 2017), the state-of-the-art baseline
// the paper compares against. For each subject minimizer the index
// keeps every position at which it occurs; at query time the shared
// minimizer positions are grouped per subject and a window of the
// query length is slid over them to find the region of maximal local
// intersection, whose size estimates the winnowed Jaccard. The
// best-scoring subject is reported as the top hit, matching the paper's
// head-to-head evaluation setup.
package mashmap

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/kmer"
	"repro/internal/minimizer"
	"repro/internal/seq"
)

// Params configures the baseline.
type Params struct {
	K int // k-mer size (default 16)
	W int // minimizer window (default 100)
	// SegLen is the query segment length ℓ used as the local
	// intersection window span (default 1000).
	SegLen int
	// MinShared is the minimum local intersection size to report a
	// hit (default 2; 1 would let single random collisions through).
	MinShared int
}

// Defaults mirrors the JEM defaults so comparisons are like-for-like.
func Defaults() Params { return Params{K: 16, W: 100, SegLen: 1000, MinShared: 2} }

func (p Params) withDefaults() Params {
	if p.K == 0 {
		p.K = 16
	}
	if p.W == 0 {
		p.W = 100
	}
	if p.SegLen == 0 {
		p.SegLen = 1000
	}
	if p.MinShared == 0 {
		p.MinShared = 2
	}
	return p
}

type loc struct {
	subject int32
	pos     int32
}

// Mapper is the Mashmap-style index.
type Mapper struct {
	p     Params
	mp    minimizer.Params
	index map[kmer.Word][]loc
	nsubj int
}

// NewMapper indexes the contigs with `workers` goroutines (≤0 =
// GOMAXPROCS). Subject ids are dense input-order indices, matching the
// id space of core.Mapper over the same contig slice.
func NewMapper(contigs []seq.Record, p Params, workers int) *Mapper {
	p = p.withDefaults()
	m := &Mapper{
		p:     p,
		mp:    minimizer.Params{K: p.K, W: p.W},
		index: make(map[kmer.Word][]loc),
		nsubj: len(contigs),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lists := make([][]minimizer.Tuple, len(contigs))
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				lists[i] = minimizer.Extract(contigs[i].Seq, m.mp)
			}
		}()
	}
	for i := range contigs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, tuples := range lists {
		for _, t := range tuples {
			m.index[t.Kmer] = append(m.index[t.Kmer], loc{int32(i), t.Pos})
		}
	}
	return m
}

// IndexEntries returns the total number of ⟨minimizer, position⟩
// entries (a size statistic the experiments report).
func (m *Mapper) IndexEntries() int {
	n := 0
	for _, l := range m.index {
		n += len(l)
	}
	return n
}

// Detail carries the stage-2 style metadata of a mapping: where on
// the subject the best window starts, how many distinct minimizers the
// query produced, and the Mash-style identity estimate.
type Detail struct {
	// Pos is the subject position of the best window's first shared
	// minimizer.
	Pos int32
	// QueryMinimizers is |W(q)|, the denominator of the containment
	// Jaccard estimate.
	QueryMinimizers int
	// Identity is the Mash-distance-derived percent identity estimate
	// (0 when the Jaccard estimate is 0).
	Identity float64
}

// MapSegment maps a single end segment, returning the best-hit
// subject and its local intersection score. ok=false when no subject
// reaches MinShared.
func (m *Mapper) MapSegment(segment []byte) (core.Hit, bool) {
	hit, _, ok := m.MapSegmentDetailed(segment)
	return hit, ok
}

// MapSegmentDetailed is MapSegment plus stage-2 detail (window
// position and identity estimate), mirroring what Mashmap reports per
// mapping.
func (m *Mapper) MapSegmentDetailed(segment []byte) (core.Hit, Detail, bool) {
	tuples := minimizer.Extract(segment, m.mp)
	if len(tuples) == 0 {
		return core.Hit{Subject: -1}, Detail{}, false
	}
	// Distinct query minimizer words.
	words := make(map[kmer.Word]struct{}, len(tuples))
	for _, t := range tuples {
		words[t.Kmer] = struct{}{}
	}
	var hits []loc
	for w := range words {
		hits = append(hits, m.index[w]...)
	}
	if len(hits) == 0 {
		return core.Hit{Subject: -1}, Detail{}, false
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].subject != hits[j].subject {
			return hits[i].subject < hits[j].subject
		}
		return hits[i].pos < hits[j].pos
	})
	best := core.Hit{Subject: -1}
	bestPos := int32(-1)
	span := int32(m.p.SegLen)
	for i := 0; i < len(hits); {
		j := i
		subj := hits[i].subject
		for j < len(hits) && hits[j].subject == subj {
			j++
		}
		// Maximal window of span ℓ over this subject's positions.
		score := int32(0)
		pos := int32(-1)
		lo := i
		for hi := i; hi < j; hi++ {
			for hits[hi].pos-hits[lo].pos > span {
				lo++
			}
			if c := int32(hi - lo + 1); c > score {
				score = c
				pos = hits[lo].pos
			}
		}
		if score > best.Count || (score == best.Count && subj < best.Subject) {
			best = core.Hit{Subject: subj, Count: score}
			bestPos = pos
		}
		i = j
	}
	if best.Count < int32(m.p.MinShared) {
		return core.Hit{Subject: -1}, Detail{}, false
	}
	d := Detail{
		Pos:             bestPos,
		QueryMinimizers: len(words),
		Identity:        EstimateIdentity(int(best.Count), len(words), m.p.K),
	}
	return best, d, true
}

// EstimateIdentity converts a containment Jaccard estimate
// j = shared / queryMinimizers into a percent identity via the Mash
// distance d = -ln(2j/(1+j))/k (Ondov et al. 2016), the stage-2
// computation of Mashmap. Results are clamped to [0,100].
func EstimateIdentity(shared, queryMinimizers, k int) float64 {
	if shared <= 0 || queryMinimizers <= 0 {
		return 0
	}
	j := float64(shared) / float64(queryMinimizers)
	if j > 1 {
		j = 1
	}
	d := -math.Log(2*j/(1+j)) / float64(k)
	id := 100 * (1 - d)
	if id < 0 {
		return 0
	}
	if id > 100 {
		return 100
	}
	return id
}

// MapReads maps the end segments of every read with `workers`
// goroutines, returning results in the same order and shape as
// core.Mapper.MapReads so both feed the same evaluator.
func (m *Mapper) MapReads(reads []seq.Record, l int, workers int) []core.Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]core.Result, len(reads))
	var wg sync.WaitGroup
	idx := make(chan int, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				segs, kinds := core.EndSegments(reads[i].Seq, l)
				rs := make([]core.Result, len(segs))
				for s, seg := range segs {
					hit, ok := m.MapSegment(seg)
					r := core.Result{ReadIndex: int32(i), Kind: kinds[s], Subject: -1}
					if ok {
						r.Subject = hit.Subject
						r.Count = hit.Count
					}
					rs[s] = r
				}
				out[i] = rs
			}
		}()
	}
	for i := range reads {
		idx <- i
	}
	close(idx)
	wg.Wait()
	flat := make([]core.Result, 0, 2*len(reads))
	for _, rs := range out {
		flat = append(flat, rs...)
	}
	return flat
}
