// Package minimizer implements (w,k)-minimizer extraction (winnowing).
//
// Given a sequence s, a k-mer size k and a window size w, the
// minimizer of a window of w consecutive k-mers is the one with the
// smallest ordering value. Following the paper (§III-B.2 and the
// implementation notes), the ordering is the lexicographic order of
// the *canonical* k-mer — the smaller of the k-mer and its reverse
// complement — which equals numeric order of the 2-bit packed word.
//
// A minimizer tuple ⟨k_i, p_i⟩ is appended to the output list Mo(s,w)
// only when the minimizer changes or when the previous occurrence
// slides out of the window, exactly the dedup rule in §IV-A(c). The
// output list is sorted by position by construction.
package minimizer

import (
	"fmt"

	"repro/internal/kmer"
)

// Tuple is one minimizer occurrence: the canonical packed k-mer and the
// start position of the window-minimal k-mer on the sequence.
// FwdIsCanon records whether the forward-strand k-mer at Pos equals
// the canonical form; two sequences share an orientation at a common
// minimizer iff their FwdIsCanon flags agree, which is what lets
// seed-chaining recover relative strand from canonical sketches.
type Tuple struct {
	Kmer       kmer.Word
	Pos        int32
	FwdIsCanon bool
}

// Ordering selects how k-mers are ranked when picking the window
// minimum.
type Ordering int

const (
	// OrderLex ranks canonical k-mers lexicographically — the paper's
	// choice ("we use the lexicographically smallest k-mer as this
	// hash function", §III-B.2).
	OrderLex Ordering = iota
	// OrderHash ranks canonical k-mers by an invertible 64-bit mix of
	// their packed value, the minimap2-style choice. It avoids the
	// poly-A bias of lexicographic ordering and is exposed for the
	// ablation studies; the selected Tuple still carries the k-mer
	// itself.
	OrderHash
)

// Params bundles the winnowing parameters.
type Params struct {
	K int // k-mer size (1..kmer.MaxK)
	W int // window size, in number of consecutive k-mers (≥1)
	// Order is the ranking used to pick window minima (default
	// OrderLex, the paper's setting).
	Order Ordering
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.K <= 0 || p.K > kmer.MaxK {
		return fmt.Errorf("minimizer: k=%d out of range [1,%d]", p.K, kmer.MaxK)
	}
	if p.W <= 0 {
		return fmt.Errorf("minimizer: w=%d must be positive", p.W)
	}
	return nil
}

// entry is one k-mer inside the sliding monotone deque. key is the
// ordering rank (the word itself under OrderLex, its mix under
// OrderHash).
type entry struct {
	key        uint64
	word       kmer.Word
	pos        int32
	fwdIsCanon bool
}

// mix64 is the Murmur3 finalizer, an invertible 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rank returns the ordering key of a canonical k-mer under p.Order.
func (p Params) rank(w kmer.Word) uint64 {
	if p.Order == OrderHash {
		return mix64(uint64(w))
	}
	return uint64(w)
}

// Extract returns the position-sorted minimizer tuple list Mo(s,w) of
// s. It never returns an error for sequences shorter than k — the list
// is simply empty. Ambiguous bases break k-mer windows but winnowing
// resumes after them.
func Extract(s []byte, p Params) []Tuple {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	est := len(s)/(p.W/2+1) + 4
	out := make([]Tuple, 0, est)
	return AppendExtract(out, s, p)
}

// AppendExtract appends the minimizers of s to dst and returns the
// extended slice, allowing callers to reuse buffers across sequences.
func AppendExtract(dst []Tuple, s []byte, p Params) []Tuple {
	it := kmer.NewIterator(s, p.K)

	// Monotone deque of candidate minimizers within the current
	// window, increasing by word value; front is the minimizer.
	var deque []entry
	head := 0
	idx := -1            // index of the current k-mer within its contiguous run
	lastPos := int32(-1) // position of the previously emitted tuple
	prevKmerPos := -2

	flushRun := func() {
		deque = deque[:0]
		head = 0
		idx = -1
	}

	for {
		fwd, canon, pos, ok := it.Next()
		if !ok {
			break
		}
		if pos != prevKmerPos+1 {
			// Ambiguity gap: restart windowing.
			flushRun()
		}
		prevKmerPos = pos
		idx++

		// Evict candidates that left the window. Within a contiguous
		// run, k-mer index and sequence position advance in lockstep,
		// so the window [idx-w+1, idx] corresponds to start positions
		// ≥ pos-w+1.
		for head < len(deque) && int(deque[head].pos) < pos-p.W+1 {
			head++
		}
		// Maintain monotonicity: pop strictly-larger candidates from
		// the back. Using > keeps the leftmost occurrence of ties,
		// matching "smallest, first occurring" choice.
		key := p.rank(canon)
		for len(deque) > head && deque[len(deque)-1].key > key {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, entry{key, canon, int32(pos), fwd == canon})
		// Compact the slice occasionally so head doesn't grow without bound.
		if head > 64 && head*2 > len(deque) {
			n := copy(deque, deque[head:])
			deque = deque[:n]
			head = 0
		}

		if idx >= p.W-1 {
			min := deque[head]
			// Emit when the minimizer changes or re-occurs at a new
			// position (the previous one went out of bounds).
			if min.pos != lastPos {
				dst = append(dst, Tuple{Kmer: min.word, Pos: min.pos, FwdIsCanon: min.fwdIsCanon})
				lastPos = min.pos
			}
		}
	}
	return dst
}

// Density returns |Mo(s,w)| / #k-mers for s — the expected value is
// roughly 2/(w+1) for random sequences, a useful sanity statistic.
func Density(s []byte, p Params) float64 {
	n := kmer.Count(s, p.K)
	if n == 0 {
		return 0
	}
	return float64(len(Extract(s, p))) / float64(n)
}

// Set returns the distinct canonical minimizer k-mers of s — the
// minimizer sketch M(s,w) used by the minimizer Jaccard estimate.
func Set(s []byte, p Params) map[kmer.Word]struct{} {
	tuples := Extract(s, p)
	out := make(map[kmer.Word]struct{}, len(tuples))
	for _, t := range tuples {
		out[t.Kmer] = struct{}{}
	}
	return out
}

// Jaccard computes the minimizer Jaccard estimate J_m(a,b;w) =
// J(M(a,w), M(b,w)) from the paper. It returns 0 when both minimizer
// sets are empty.
func Jaccard(a, b []byte, p Params) float64 {
	sa := Set(a, p)
	sb := Set(b, p)
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	small, large := sa, sb
	if len(sb) < len(sa) {
		small, large = sb, sa
	}
	for w := range small {
		if _, ok := large[w]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}
