package minimizer

import (
	"math/rand"
	"testing"
)

func benchSeq(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	return randDNA(rng, n)
}

func BenchmarkExtractLex(b *testing.B) {
	s := benchSeq(1 << 20)
	p := Params{K: 16, W: 100}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(s, p)
	}
}

func BenchmarkExtractHash(b *testing.B) {
	s := benchSeq(1 << 20)
	p := Params{K: 16, W: 100, Order: OrderHash}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(s, p)
	}
}

func BenchmarkExtractSmallWindow(b *testing.B) {
	s := benchSeq(1 << 20)
	p := Params{K: 16, W: 10}
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(s, p)
	}
}
