package minimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kmer"
	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Code2Base[rng.Intn(4)]
	}
	return s
}

// naiveExtract is the direct definition: for every full window of w
// consecutive k-mers, find the smallest canonical k-mer (leftmost on
// ties) and emit it when its position differs from the previous
// emission. Ambiguity gaps restart windows.
func naiveExtract(s []byte, p Params) []Tuple {
	type km struct {
		canon      kmer.Word
		pos        int
		fwdIsCanon bool
	}
	// Split into contiguous valid runs.
	var out []Tuple
	lastPos := -1
	runStart := 0
	emitRun := func(run []byte, off int) {
		var kms []km
		for i := 0; i+p.K <= len(run); i++ {
			w, ok := kmer.Encode(run[i:i+p.K], p.K)
			if !ok {
				panic("invalid base in run")
			}
			c := kmer.Canonical(w, p.K)
			kms = append(kms, km{c, off + i, c == w})
		}
		for i := 0; i+p.W <= len(kms); i++ {
			best := kms[i]
			for _, c := range kms[i+1 : i+p.W] {
				if c.canon < best.canon {
					best = c
				}
			}
			if best.pos != lastPos {
				out = append(out, Tuple{Kmer: best.canon, Pos: int32(best.pos), FwdIsCanon: best.fwdIsCanon})
				lastPos = best.pos
			}
		}
	}
	for i := 0; i <= len(s); i++ {
		valid := false
		if i < len(s) {
			_, valid = seq.Code(s[i])
		}
		if !valid {
			if i > runStart {
				emitRun(s[runStart:i], runStart)
			}
			runStart = i + 1
		}
	}
	return out
}

func TestExtractMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		p := Params{K: 2 + rng.Intn(8), W: 1 + rng.Intn(10)}
		s := randDNA(rng, rng.Intn(400))
		for i := range s {
			if rng.Intn(40) == 0 {
				s[i] = 'N'
			}
		}
		got := Extract(s, p)
		want := naiveExtract(s, p)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d w=%d len=%d): got %d tuples want %d\ngot:  %v\nwant: %v",
				trial, p.K, p.W, len(s), len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d idx %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestExtractPositionsSortedAndDeduped(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, 50+rng.Intn(500))
		tuples := Extract(s, Params{K: 5, W: 8})
		for i := 1; i < len(tuples); i++ {
			if tuples[i].Pos <= tuples[i-1].Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinimizerSetRevCompInvariant(t *testing.T) {
	// The canonical minimizer *set* of a sequence equals that of its
	// reverse complement — the property that makes mapping
	// strand-oblivious.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randDNA(rng, 60+rng.Intn(300))
		p := Params{K: 7, W: 5}
		a := Set(s, p)
		b := Set(seq.ReverseComplement(s), p)
		if len(a) != len(b) {
			return false
		}
		for w := range a {
			if _, ok := b[w]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortSequenceYieldsNothing(t *testing.T) {
	p := Params{K: 16, W: 10}
	if got := Extract([]byte("ACGT"), p); len(got) != 0 {
		t.Errorf("short sequence: got %v", got)
	}
	if got := Extract(nil, p); len(got) != 0 {
		t.Errorf("nil sequence: got %v", got)
	}
	// Exactly k+w-1 bases = exactly one full window.
	rng := rand.New(rand.NewSource(1))
	s := randDNA(rng, p.K+p.W-1)
	if got := Extract(s, p); len(got) != 1 {
		t.Errorf("one-window sequence: got %d tuples", len(got))
	}
}

func TestAllAmbiguous(t *testing.T) {
	s := []byte("NNNNNNNNNNNNNNNNNNNNNNNNNN")
	if got := Extract(s, Params{K: 4, W: 3}); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestDensityApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randDNA(rng, 200_000)
	p := Params{K: 15, W: 10}
	d := Density(s, p)
	want := 2.0 / float64(p.W+1)
	if math.Abs(d-want) > 0.25*want {
		t.Errorf("density %v far from expected %v", d, want)
	}
}

func TestW1KeepsEveryKmer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randDNA(rng, 100)
	p := Params{K: 6, W: 1}
	tuples := Extract(s, p)
	if len(tuples) != kmer.Count(s, p.K) {
		t.Errorf("w=1: got %d tuples want %d", len(tuples), kmer.Count(s, p.K))
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 16, W: 100}).Validate(); err != nil {
		t.Errorf("valid params: %v", err)
	}
	for _, p := range []Params{{K: 0, W: 5}, {K: 40, W: 5}, {K: 5, W: 0}, {K: -1, W: -1}} {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestExtractPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Extract([]byte("ACGT"), Params{K: 0, W: 0})
}

func TestJaccardSelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randDNA(rng, 500)
	p := Params{K: 8, W: 6}
	if got := Jaccard(s, s, p); got != 1 {
		t.Errorf("self minimizer Jaccard = %v", got)
	}
	if got := Jaccard(nil, nil, p); got != 0 {
		t.Errorf("empty minimizer Jaccard = %v", got)
	}
}

func TestJaccardTracksSimilarity(t *testing.T) {
	// Mutating a sequence should lower the minimizer Jaccard estimate
	// monotonically-ish; we just check a strong perturbation is far
	// below a mild one.
	rng := rand.New(rand.NewSource(13))
	s := randDNA(rng, 5000)
	p := Params{K: 12, W: 8}
	mild := append([]byte(nil), s...)
	strong := append([]byte(nil), s...)
	mutate := func(dst []byte, rate float64) {
		for i := range dst {
			if rng.Float64() < rate {
				dst[i] = seq.Code2Base[rng.Intn(4)]
			}
		}
	}
	mutate(mild, 0.01)
	mutate(strong, 0.30)
	jm := Jaccard(s, mild, p)
	js := Jaccard(s, strong, p)
	if jm <= js {
		t.Errorf("mild %v should exceed strong %v", jm, js)
	}
	if jm < 0.5 {
		t.Errorf("1%% mutation dropped Jaccard to %v", jm)
	}
}

// naiveExtractOrdered generalizes naiveExtract to any ordering.
func naiveExtractOrdered(s []byte, p Params) []Tuple {
	type km struct {
		key        uint64
		canon      kmer.Word
		pos        int
		fwdIsCanon bool
	}
	var out []Tuple
	lastPos := -1
	runStart := 0
	emitRun := func(run []byte, off int) {
		var kms []km
		for i := 0; i+p.K <= len(run); i++ {
			w, ok := kmer.Encode(run[i:i+p.K], p.K)
			if !ok {
				panic("invalid base in run")
			}
			c := kmer.Canonical(w, p.K)
			kms = append(kms, km{p.rank(c), c, off + i, c == w})
		}
		for i := 0; i+p.W <= len(kms); i++ {
			best := kms[i]
			for _, c := range kms[i+1 : i+p.W] {
				if c.key < best.key {
					best = c
				}
			}
			if best.pos != lastPos {
				out = append(out, Tuple{Kmer: best.canon, Pos: int32(best.pos), FwdIsCanon: best.fwdIsCanon})
				lastPos = best.pos
			}
		}
	}
	for i := 0; i <= len(s); i++ {
		valid := false
		if i < len(s) {
			_, valid = seq.Code(s[i])
		}
		if !valid {
			if i > runStart {
				emitRun(s[runStart:i], runStart)
			}
			runStart = i + 1
		}
	}
	return out
}

func TestHashOrderingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		p := Params{K: 2 + rng.Intn(8), W: 1 + rng.Intn(10), Order: OrderHash}
		s := randDNA(rng, rng.Intn(400))
		got := Extract(s, p)
		want := naiveExtractOrdered(s, p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d tuples want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d idx %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestHashOrderingAvoidsLexBias(t *testing.T) {
	// Lexicographic ordering systematically selects numerically small
	// (A-leading) k-mers; hash ordering samples uniformly. The mean
	// packed value of lex-selected minimizers must therefore sit far
	// below that of hash-selected ones on random sequence.
	rng := rand.New(rand.NewSource(73))
	s := randDNA(rng, 50_000)
	const k = 12
	meanWord := func(tuples []Tuple) float64 {
		var sum float64
		for _, tp := range tuples {
			sum += float64(tp.Kmer)
		}
		return sum / float64(len(tuples))
	}
	lex := Extract(s, Params{K: k, W: 10, Order: OrderLex})
	hash := Extract(s, Params{K: k, W: 10, Order: OrderHash})
	if len(lex) == 0 || len(hash) == 0 {
		t.Fatal("no minimizers extracted")
	}
	if meanWord(lex) >= 0.5*meanWord(hash) {
		t.Errorf("lex mean %.3g not far below hash mean %.3g", meanWord(lex), meanWord(hash))
	}
}

func TestHashOrderingRevCompInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	s := randDNA(rng, 400)
	p := Params{K: 7, W: 5, Order: OrderHash}
	a := Set(s, p)
	b := Set(seq.ReverseComplement(s), p)
	if len(a) != len(b) {
		t.Fatalf("set sizes differ under hash ordering")
	}
	for w := range a {
		if _, ok := b[w]; !ok {
			t.Fatal("hash-ordered minimizer set not strand-invariant")
		}
	}
}

func TestAppendExtractReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s1 := randDNA(rng, 300)
	s2 := randDNA(rng, 300)
	p := Params{K: 6, W: 4}
	buf := make([]Tuple, 0, 256)
	buf = AppendExtract(buf, s1, p)
	n1 := len(buf)
	buf = AppendExtract(buf, s2, p)
	if len(buf) <= n1 {
		t.Errorf("append did not extend: %d -> %d", n1, len(buf))
	}
	want := Extract(s2, p)
	got := buf[n1:]
	if len(got) != len(want) {
		t.Fatalf("appended %d tuples want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx %d: %v != %v", i, got[i], want[i])
		}
	}
}
