package scaffold

import (
	"reflect"
	"strings"
	"testing"
)

// obs builds a SegmentObservation with the common test geometry:
// reads of length 3000, segments of 500, contigs of 5000.
func obs(read int32, prefix bool, contig int32, reverse bool, tstart int) SegmentObservation {
	return SegmentObservation{
		ReadIndex: read, Prefix: prefix, Contig: contig, Reverse: reverse,
		TargetStart: tstart, TargetEnd: tstart + 500,
		ContigLength: 5000, ReadLength: 3000, SegmentLen: 500,
	}
}

func TestDeriveEvidenceForwardRead(t *testing.T) {
	// Read spans the gap between contig 0 (via its tail) and contig 1
	// (via its head): prefix at 0:[4000,4500) forward, suffix at
	// 1:[500,1000) forward. True gap = interior (2000) − overhangs
	// (500 + 500) = 1000.
	evidence := DeriveEvidence([]SegmentObservation{
		obs(0, true, 0, false, 4000),
		obs(0, false, 1, false, 500),
	})
	want := []Evidence{{A: 0, B: 1, PortA: Tail, PortB: Head, Gap: 1000}}
	if !reflect.DeepEqual(evidence, want) {
		t.Errorf("got %+v want %+v", evidence, want)
	}
}

func TestDeriveEvidenceReverseRead(t *testing.T) {
	// The same physical adjacency sampled on the reverse strand: the
	// read's prefix now maps (reversed) to contig 1 and its suffix
	// (reversed) to contig 0. Canonical aggregation must unify both.
	fwd := DeriveEvidence([]SegmentObservation{
		obs(0, true, 0, false, 4000),
		obs(0, false, 1, false, 500),
	})
	rev := DeriveEvidence([]SegmentObservation{
		obs(1, true, 1, true, 500),
		obs(1, false, 0, true, 4000),
	})
	links := AggregateEvidence(append(fwd, rev...))
	if len(links) != 1 {
		t.Fatalf("strand-mirrored evidence did not unify: %+v", links)
	}
	l := links[0]
	if l.Support != 2 || l.A != 0 || l.B != 1 || l.PortA != Tail || l.PortB != Head {
		t.Errorf("link = %+v", l)
	}
	if l.GapMedian != 1000 {
		t.Errorf("gap median = %d want 1000", l.GapMedian)
	}
}

func TestDeriveEvidenceReversedContig(t *testing.T) {
	// Contig 1 was assembled reverse-complemented relative to the
	// genome: the suffix segment maps to it in reverse, near its tail.
	evidence := DeriveEvidence([]SegmentObservation{
		obs(0, true, 0, false, 4000),
		obs(0, false, 1, true, 4000), // local coords of the flipped contig
	})
	want := []Evidence{{A: 0, B: 1, PortA: Tail, PortB: Tail, Gap: 1000}}
	if !reflect.DeepEqual(evidence, want) {
		t.Errorf("got %+v want %+v", evidence, want)
	}
}

func TestDeriveEvidenceSkipsIncompleteAndSelf(t *testing.T) {
	evidence := DeriveEvidence([]SegmentObservation{
		obs(0, true, 0, false, 4000), // prefix only
		obs(1, true, 2, false, 100),  // both ends on the same contig
		obs(1, false, 2, false, 3000),
	})
	if len(evidence) != 0 {
		t.Errorf("got %+v", evidence)
	}
}

func TestBuildOrientedChain(t *testing.T) {
	// 0 tail — head 1 tail — head 2: a forward chain.
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Head, Support: 5, GapMedian: 800},
		{A: 1, B: 2, PortA: Tail, PortB: Head, Support: 4, GapMedian: -50},
	}
	sc := BuildOriented(links, 4, 1)
	if sc.AcceptedLinks != 2 || len(sc.Chains) != 1 {
		t.Fatalf("scaffolds = %+v", sc)
	}
	chain := sc.Chains[0]
	if len(chain) != 3 {
		t.Fatalf("chain = %+v", chain)
	}
	// Either orientation of the whole chain is valid; normalize.
	if chain[0].Contig == 2 {
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		for i := range chain {
			chain[i].Reversed = !chain[i].Reversed
		}
	}
	for i, p := range chain {
		if p.Contig != int32(i) || p.Reversed {
			t.Errorf("placement %d = %+v", i, p)
		}
	}
	if chain[1].GapBefore != 800 || chain[2].GapBefore != -50 {
		t.Errorf("gaps = %d,%d", chain[1].GapBefore, chain[2].GapBefore)
	}
	if len(sc.Singletons) != 1 || sc.Singletons[0] != 3 {
		t.Errorf("singletons = %v", sc.Singletons)
	}
}

func TestBuildOrientedReversedPlacement(t *testing.T) {
	// 0 tail — tail 1: contig 1 must be placed reverse-complemented.
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Tail, Support: 3, GapMedian: 10},
	}
	sc := BuildOriented(links, 2, 1)
	if len(sc.Chains) != 1 || len(sc.Chains[0]) != 2 {
		t.Fatalf("scaffolds = %+v", sc)
	}
	chain := sc.Chains[0]
	// Both (0 fwd, 1 rev) and (1 fwd, 0 rev) describe the same join.
	a, b := chain[0], chain[1]
	if a.Reversed == b.Reversed {
		t.Errorf("tail-tail join needs exactly one reversal: %+v", chain)
	}
}

func TestBuildOrientedPortExclusivity(t *testing.T) {
	// Two links compete for contig 0's tail; only the stronger wins,
	// but a link to 0's head is still allowed.
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Head, Support: 9},
		{A: 0, B: 2, PortA: Tail, PortB: Head, Support: 5},
		{A: 0, B: 3, PortA: Head, PortB: Head, Support: 4},
	}
	sc := BuildOriented(links, 4, 1)
	if sc.AcceptedLinks != 2 {
		t.Fatalf("accepted %d links", sc.AcceptedLinks)
	}
	inChain := map[int32]bool{}
	for _, ch := range sc.Chains {
		for _, p := range ch {
			inChain[p.Contig] = true
		}
	}
	if inChain[2] {
		t.Errorf("losing link attached anyway: %+v", sc.Chains)
	}
	if !inChain[3] || !inChain[1] {
		t.Errorf("head link should coexist with tail link: %+v", sc.Chains)
	}
}

func TestBuildOrientedRejectsCycle(t *testing.T) {
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Head, Support: 5},
		{A: 1, B: 2, PortA: Tail, PortB: Head, Support: 5},
		{A: 2, B: 0, PortA: Tail, PortB: Head, Support: 5},
	}
	sc := BuildOriented(links, 3, 1)
	if sc.AcceptedLinks != 2 {
		t.Errorf("cycle not rejected: %d links", sc.AcceptedLinks)
	}
}

func TestBuildOrientedMinSupport(t *testing.T) {
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Head, Support: 5},
		{A: 1, B: 2, PortA: Tail, PortB: Head, Support: 1},
	}
	sc := BuildOriented(links, 3, 3)
	if sc.AcceptedLinks != 1 {
		t.Errorf("accepted %d links", sc.AcceptedLinks)
	}
}

func TestWriteAGP(t *testing.T) {
	links := []OrientedLink{
		{A: 0, B: 1, PortA: Tail, PortB: Tail, Support: 3, GapMedian: 120},
	}
	sc := BuildOriented(links, 3, 1)
	var buf strings.Builder
	name := func(c int32) string { return []string{"cA", "cB", "cC"}[c] }
	length := func(c int32) int { return []int{100, 200, 50}[c] }
	if err := WriteAGP(&buf, sc, name, length, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Chain of 2 contigs: W, N, W = 3 lines; singleton cC: 1 line.
	if len(lines) != 4 {
		t.Fatalf("got %d AGP lines:\n%s", len(lines), buf.String())
	}
	// First component starts at 1.
	f0 := strings.Split(lines[0], "\t")
	if f0[1] != "1" || f0[4] != "W" {
		t.Errorf("line 0: %q", lines[0])
	}
	// Gap line has type N and length 120.
	f1 := strings.Split(lines[1], "\t")
	if f1[4] != "N" || f1[5] != "120" {
		t.Errorf("line 1: %q", lines[1])
	}
	// Tail-tail join → exactly one reversed contig.
	f2 := strings.Split(lines[2], "\t")
	o0, o2 := f0[len(f0)-1], f2[len(f2)-1]
	if (o0 == "-") == (o2 == "-") {
		t.Errorf("orientations %s/%s for tail-tail join", o0, o2)
	}
	// Coordinates are contiguous: line2 starts right after the gap.
	// line0 spans its contig; gap 120; line2 object start = prev end+1.
	if f1[1] == "" || f2[1] == "" {
		t.Errorf("missing coordinates")
	}
	// Singleton line describes cC fully.
	f3 := strings.Split(lines[3], "\t")
	if f3[0] != "cC" || f3[2] != "50" {
		t.Errorf("singleton line: %q", lines[3])
	}
	// Negative/small gaps clamp to minGap.
	links[0].GapMedian = -500
	sc = BuildOriented(links, 2, 1)
	buf.Reset()
	if err := WriteAGP(&buf, sc, name, length, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\tN\t10\t") {
		t.Errorf("overlap not clamped:\n%s", buf.String())
	}
}

func TestPortString(t *testing.T) {
	if Head.String() != "head" || Tail.String() != "tail" {
		t.Error("port strings")
	}
}
