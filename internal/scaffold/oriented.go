package scaffold

import (
	"sort"
)

// Port identifies one end of a contig.
type Port uint8

const (
	// Head is the contig's left (coordinate-0) end.
	Head Port = iota
	// Tail is the contig's right end.
	Tail
)

func (p Port) String() string {
	if p == Head {
		return "head"
	}
	return "tail"
}

// Evidence is one read's worth of adjacency evidence between two
// contigs, derived from a positional mapping of the read's two end
// segments (see DeriveEvidence): which end (port) of each contig the
// read attaches to, plus a gap estimate.
type Evidence struct {
	A, B         int32
	PortA, PortB Port
	// Gap is the estimated number of bases between the two contig
	// ends; negative values indicate overlap.
	Gap int
}

// SegmentObservation is the positional mapping of one end segment in
// the form the orientation logic needs. Prefix says whether this is
// the read's prefix (true) or suffix (false) segment.
type SegmentObservation struct {
	ReadIndex    int32
	Prefix       bool
	Contig       int32
	Reverse      bool // segment maps to the contig's reverse strand
	TargetStart  int  // estimated segment start on the contig
	TargetEnd    int  // estimated segment end on the contig
	ContigLength int
	ReadLength   int
	SegmentLen   int
}

// DeriveEvidence pairs up prefix/suffix observations per read and
// derives oriented adjacency evidence.
//
// Geometry: the read's interior lies to the RIGHT of its prefix
// segment and to the LEFT of its suffix segment. A prefix segment
// mapping forward to contig A therefore exits A through its tail
// (coordinates past TargetEnd); mapping in reverse it exits through
// A's head. The suffix segment is the mirror image. The gap estimate
// is the read interior length minus the contig overhangs the read
// still covers on each side.
func DeriveEvidence(obs []SegmentObservation) []Evidence {
	type pair struct {
		p, s *SegmentObservation
	}
	perRead := map[int32]*pair{}
	for i := range obs {
		o := &obs[i]
		pr := perRead[o.ReadIndex]
		if pr == nil {
			pr = &pair{}
			perRead[o.ReadIndex] = pr
		}
		if o.Prefix {
			pr.p = o
		} else {
			pr.s = o
		}
	}
	var out []Evidence
	for _, pr := range perRead {
		if pr.p == nil || pr.s == nil || pr.p.Contig == pr.s.Contig {
			continue
		}
		p, s := pr.p, pr.s
		ev := Evidence{A: p.Contig, B: s.Contig}
		var overhangA, overhangB int
		if !p.Reverse {
			ev.PortA = Tail
			overhangA = p.ContigLength - p.TargetEnd
		} else {
			ev.PortA = Head
			overhangA = p.TargetStart
		}
		if !s.Reverse {
			ev.PortB = Head
			overhangB = s.TargetStart
		} else {
			ev.PortB = Tail
			overhangB = s.ContigLength - s.TargetEnd
		}
		interior := p.ReadLength - 2*p.SegmentLen
		if interior < 0 {
			interior = 0
		}
		ev.Gap = interior - overhangA - overhangB
		out = append(out, ev)
	}
	return out
}

// OrientedLink aggregates evidence for one (contig end, contig end)
// adjacency.
type OrientedLink struct {
	A, B         int32
	PortA, PortB Port
	Support      int
	// GapMedian is the median gap estimate across supporting reads.
	GapMedian int
}

// AggregateEvidence groups evidence into links with support counts and
// median gaps, sorted by descending support (ties by ids/ports).
func AggregateEvidence(evidence []Evidence) []OrientedLink {
	type key struct {
		a, b   int32
		pa, pb Port
	}
	gaps := map[key][]int{}
	for _, ev := range evidence {
		k := key{ev.A, ev.B, ev.PortA, ev.PortB}
		// Canonicalize direction: smaller contig id first.
		if ev.B < ev.A {
			k = key{ev.B, ev.A, ev.PortB, ev.PortA}
		}
		gaps[k] = append(gaps[k], ev.Gap)
	}
	links := make([]OrientedLink, 0, len(gaps))
	for k, gs := range gaps {
		sort.Ints(gs)
		links = append(links, OrientedLink{
			A: k.a, B: k.b, PortA: k.pa, PortB: k.pb,
			Support:   len(gs),
			GapMedian: gs[len(gs)/2],
		})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Support != links[j].Support {
			return links[i].Support > links[j].Support
		}
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		if links[i].B != links[j].B {
			return links[i].B < links[j].B
		}
		if links[i].PortA != links[j].PortA {
			return links[i].PortA < links[j].PortA
		}
		return links[i].PortB < links[j].PortB
	})
	return links
}

// Placement is one contig inside an oriented scaffold.
type Placement struct {
	Contig int32
	// Reversed is true when the contig enters the scaffold
	// reverse-complemented.
	Reversed bool
	// GapBefore is the estimated gap to the previous contig in the
	// chain (0 for the first).
	GapBefore int
}

// OrientedScaffolds is the result of oriented chain construction.
type OrientedScaffolds struct {
	Chains        [][]Placement
	Singletons    []int32
	AcceptedLinks int
}

// BuildOriented chains contigs respecting per-end degree limits: each
// contig port joins at most one link, links are accepted in descending
// support order, and cycles are rejected — yielding oriented paths
// with gap estimates.
func BuildOriented(links []OrientedLink, nContigs, minSupport int) *OrientedScaffolds {
	if minSupport < 1 {
		minSupport = 1
	}
	parent := make([]int32, nContigs)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	type edge struct {
		other int32
		port  Port // the other contig's port used
		gap   int
	}
	// portUsed[c][p] records whether port p of contig c is taken;
	// adj[c][p] holds the accepted edge at that port.
	portUsed := make([][2]bool, nContigs)
	adj := make([][2]*edge, nContigs)
	accepted := 0
	for _, l := range links {
		if l.Support < minSupport {
			continue
		}
		if portUsed[l.A][l.PortA] || portUsed[l.B][l.PortB] {
			continue
		}
		ra, rb := find(l.A), find(l.B)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		portUsed[l.A][l.PortA] = true
		portUsed[l.B][l.PortB] = true
		adj[l.A][l.PortA] = &edge{other: l.B, port: l.PortB, gap: l.GapMedian}
		adj[l.B][l.PortB] = &edge{other: l.A, port: l.PortA, gap: l.GapMedian}
		accepted++
	}

	out := &OrientedScaffolds{AcceptedLinks: accepted}
	visited := make([]bool, nContigs)
	degree := func(c int32) int {
		d := 0
		if portUsed[c][Head] {
			d++
		}
		if portUsed[c][Tail] {
			d++
		}
		return d
	}
	for c := int32(0); int(c) < nContigs; c++ {
		if visited[c] || degree(c) > 1 {
			continue
		}
		if degree(c) == 0 {
			visited[c] = true
			out.Singletons = append(out.Singletons, c)
			continue
		}
		// Walk from this endpoint. Orientation rule: a contig is
		// placed forward when the chain leaves through its tail (for
		// the first contig) or enters through its head (for later
		// contigs); otherwise it is reversed.
		var exitPort Port
		if portUsed[c][Tail] {
			exitPort = Tail
		} else {
			exitPort = Head
		}
		chain := []Placement{{Contig: c, Reversed: exitPort == Head}}
		visited[c] = true
		cur, port := c, exitPort
		for {
			e := adj[cur][port]
			if e == nil {
				break
			}
			next := e.other
			if visited[next] {
				break
			}
			// The chain enters `next` through e.port; forward
			// placement means entering through the head.
			chain = append(chain, Placement{
				Contig:    next,
				Reversed:  e.port == Tail,
				GapBefore: e.gap,
			})
			visited[next] = true
			// Leave through the opposite port.
			cur = next
			if e.port == Head {
				port = Tail
			} else {
				port = Head
			}
		}
		out.Chains = append(out.Chains, chain)
	}
	return out
}
