package scaffold

import (
	"fmt"
	"io"
)

// WriteAGP renders oriented scaffolds in AGP v2.1, the standard
// exchange format for assembly structure: one object per scaffold,
// alternating W (contig) and N (gap) component lines. Gap estimates
// below minGap are clamped to minGap, since AGP gaps must be positive;
// estimated overlaps are therefore represented as minimal gaps, with
// the true estimate preserved in BuildOriented's output for callers
// that need it.
//
// contigName and contigLen map contig ids to their FASTA names and
// lengths.
func WriteAGP(w io.Writer, sc *OrientedScaffolds, contigName func(int32) string, contigLen func(int32) int, minGap int) error {
	if minGap < 1 {
		minGap = 1
	}
	for si, chain := range sc.Chains {
		object := fmt.Sprintf("scaffold_%d", si)
		pos := 1 // AGP coordinates are 1-based inclusive
		part := 1
		for i, p := range chain {
			if i > 0 {
				gap := chain[i].GapBefore
				if gap < minGap {
					gap = minGap
				}
				// N line: gap with evidence "paired-ends" is the
				// conventional tag for read-pair-like linkage; long
				// read links are closest to "align_genus" none of
				// which fit perfectly, so we use the generic
				// "scaffold" gap type with linkage yes.
				if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\tN\t%d\tscaffold\tyes\tna\n",
					object, pos, pos+gap-1, part, gap); err != nil {
					return err
				}
				pos += gap
				part++
			}
			l := contigLen(p.Contig)
			orient := "+"
			if p.Reversed {
				orient = "-"
			}
			if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\tW\t%s\t1\t%d\t%s\n",
				object, pos, pos+l-1, part, contigName(p.Contig), l, orient); err != nil {
				return err
			}
			pos += l
			part++
		}
	}
	// Singletons are emitted as single-component objects so the AGP
	// describes the complete assembly.
	for _, c := range sc.Singletons {
		l := contigLen(c)
		if _, err := fmt.Fprintf(w, "%s\t1\t%d\t1\tW\t%s\t1\t%d\t+\n",
			contigName(c), l, contigName(c), l); err != nil {
			return err
		}
	}
	return nil
}
