// Package scaffold implements the downstream hybrid-scaffolding step
// that motivates the paper's mapping problem: long reads whose two end
// segments map to *different* contigs witness that those contigs are
// nearby on the genome, and chaining such links extends draft
// assemblies into scaffolds (paper §I and future work ii).
//
// The scaffolder is deliberately simple and deterministic: links are
// accumulated with support counts, filtered by a support threshold,
// and greedily accepted highest-support-first subject to each contig
// joining at most two neighbors and no cycles — yielding a path
// forest whose components are the scaffolds.
package scaffold

import (
	"sort"

	"repro/internal/core"
)

// Link is an undirected contig adjacency witnessed by long reads.
type Link struct {
	A, B    int32 // contig ids with A < B
	Support int   // number of witnessing reads
}

// BuildLinks pairs up the per-read prefix/suffix results and counts
// cross-contig links. Results may be in any order; segments of the
// same read are matched by ReadIndex.
func BuildLinks(results []core.Result) []Link {
	type ends struct {
		prefix, suffix int32
		hasP, hasS     bool
	}
	perRead := make(map[int32]*ends)
	for _, r := range results {
		if !r.Mapped() {
			continue
		}
		e := perRead[r.ReadIndex]
		if e == nil {
			e = &ends{}
			perRead[r.ReadIndex] = e
		}
		if r.Kind == core.Prefix {
			e.prefix, e.hasP = r.Subject, true
		} else {
			e.suffix, e.hasS = r.Subject, true
		}
	}
	counts := make(map[[2]int32]int)
	for _, e := range perRead {
		if !e.hasP || !e.hasS || e.prefix == e.suffix {
			continue
		}
		a, b := e.prefix, e.suffix
		if a > b {
			a, b = b, a
		}
		counts[[2]int32{a, b}]++
	}
	links := make([]Link, 0, len(counts))
	for k, c := range counts {
		links = append(links, Link{A: k[0], B: k[1], Support: c})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Support != links[j].Support {
			return links[i].Support > links[j].Support
		}
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return links
}

// Scaffolds groups contigs into ordered chains.
type Scaffolds struct {
	// Chains lists each multi-contig scaffold as an ordered contig
	// path.
	Chains [][]int32
	// Singletons are contigs that joined no chain.
	Singletons []int32
	// AcceptedLinks is the number of links used.
	AcceptedLinks int
}

// Build runs the greedy path-forest construction over links among
// nContigs contigs, ignoring links with support below minSupport.
func Build(links []Link, nContigs int, minSupport int) *Scaffolds {
	if minSupport < 1 {
		minSupport = 1
	}
	parent := make([]int32, nContigs)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	degree := make([]int8, nContigs)
	adj := make(map[int32][]int32, nContigs)
	accepted := 0
	for _, l := range links {
		if l.Support < minSupport {
			continue
		}
		if degree[l.A] >= 2 || degree[l.B] >= 2 {
			continue
		}
		ra, rb := find(l.A), find(l.B)
		if ra == rb {
			continue // would close a cycle
		}
		parent[ra] = rb
		degree[l.A]++
		degree[l.B]++
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
		accepted++
	}

	out := &Scaffolds{AcceptedLinks: accepted}
	visited := make([]bool, nContigs)
	// Walk each path from an endpoint (degree ≤ 1).
	for c := int32(0); int(c) < nContigs; c++ {
		if visited[c] || degree[c] > 1 {
			continue
		}
		if degree[c] == 0 {
			visited[c] = true
			out.Singletons = append(out.Singletons, c)
			continue
		}
		chain := []int32{c}
		visited[c] = true
		prev, cur := c, adj[c][0]
		for {
			chain = append(chain, cur)
			visited[cur] = true
			var next int32 = -1
			for _, n := range adj[cur] {
				if n != prev {
					next = n
					break
				}
			}
			if next < 0 {
				break
			}
			prev, cur = cur, next
		}
		out.Chains = append(out.Chains, chain)
	}
	return out
}

// Span sums contig lengths along a chain, the scaffold's (gap-less)
// lower-bound span.
func Span(chain []int32, lengths func(int32) int32) int64 {
	var s int64
	for _, c := range chain {
		s += int64(lengths(c))
	}
	return s
}
