package scaffold

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func res(read int32, kind core.SegmentKind, subject int32) core.Result {
	return core.Result{ReadIndex: read, Kind: kind, Subject: subject}
}

func TestBuildLinksCountsSupport(t *testing.T) {
	results := []core.Result{
		// Reads 0 and 1 bridge contigs 2-5 (one in each direction).
		res(0, core.Prefix, 2), res(0, core.Suffix, 5),
		res(1, core.Prefix, 5), res(1, core.Suffix, 2),
		// Read 2 bridges 5-7.
		res(2, core.Prefix, 5), res(2, core.Suffix, 7),
		// Read 3: both ends on the same contig — no link.
		res(3, core.Prefix, 1), res(3, core.Suffix, 1),
		// Read 4: one end unmapped — no link.
		res(4, core.Prefix, 3), res(4, core.Suffix, -1),
	}
	links := BuildLinks(results)
	if len(links) != 2 {
		t.Fatalf("got %d links: %v", len(links), links)
	}
	if links[0] != (Link{A: 2, B: 5, Support: 2}) {
		t.Errorf("links[0] = %+v", links[0])
	}
	if links[1] != (Link{A: 5, B: 7, Support: 1}) {
		t.Errorf("links[1] = %+v", links[1])
	}
}

func TestBuildLinksEmpty(t *testing.T) {
	if got := BuildLinks(nil); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestBuildChainsSimplePath(t *testing.T) {
	links := []Link{
		{A: 0, B: 1, Support: 5},
		{A: 1, B: 2, Support: 4},
		{A: 2, B: 3, Support: 3},
	}
	sc := Build(links, 6, 1)
	if sc.AcceptedLinks != 3 {
		t.Errorf("accepted %d links", sc.AcceptedLinks)
	}
	if len(sc.Chains) != 1 {
		t.Fatalf("chains = %v", sc.Chains)
	}
	chain := sc.Chains[0]
	want := []int32{0, 1, 2, 3}
	rev := []int32{3, 2, 1, 0}
	if !reflect.DeepEqual(chain, want) && !reflect.DeepEqual(chain, rev) {
		t.Errorf("chain = %v", chain)
	}
	if len(sc.Singletons) != 2 {
		t.Errorf("singletons = %v", sc.Singletons)
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	links := []Link{
		{A: 0, B: 1, Support: 5},
		{A: 1, B: 2, Support: 5},
		{A: 0, B: 2, Support: 5}, // would close a triangle
	}
	sc := Build(links, 3, 1)
	if sc.AcceptedLinks != 2 {
		t.Errorf("accepted %d links (cycle not rejected)", sc.AcceptedLinks)
	}
	if len(sc.Chains) != 1 || len(sc.Chains[0]) != 3 {
		t.Errorf("chains = %v", sc.Chains)
	}
}

func TestBuildDegreeCap(t *testing.T) {
	// A star: contig 0 linked to 1,2,3. Only two links can attach to
	// 0; the third must be dropped.
	links := []Link{
		{A: 0, B: 1, Support: 9},
		{A: 0, B: 2, Support: 8},
		{A: 0, B: 3, Support: 7},
	}
	sc := Build(links, 4, 1)
	if sc.AcceptedLinks != 2 {
		t.Errorf("accepted %d links", sc.AcceptedLinks)
	}
	if len(sc.Chains) != 1 || len(sc.Chains[0]) != 3 {
		t.Errorf("chains = %v", sc.Chains)
	}
	// Contig 3 (lowest support) is the singleton.
	if !reflect.DeepEqual(sc.Singletons, []int32{3}) {
		t.Errorf("singletons = %v", sc.Singletons)
	}
}

func TestBuildMinSupport(t *testing.T) {
	links := []Link{
		{A: 0, B: 1, Support: 5},
		{A: 1, B: 2, Support: 1}, // below threshold
	}
	sc := Build(links, 3, 2)
	if sc.AcceptedLinks != 1 {
		t.Errorf("accepted %d links", sc.AcceptedLinks)
	}
	if len(sc.Chains) != 1 || len(sc.Chains[0]) != 2 {
		t.Errorf("chains = %v", sc.Chains)
	}
}

func TestBuildPrefersHighSupport(t *testing.T) {
	// 1 can only take two neighbors; the two strongest links win.
	links := []Link{
		{A: 1, B: 2, Support: 10},
		{A: 1, B: 3, Support: 9},
		{A: 1, B: 4, Support: 1},
	}
	sc := Build(BuildLinksOrder(links), 5, 1)
	joined := map[int32]bool{}
	for _, ch := range sc.Chains {
		for _, c := range ch {
			joined[c] = true
		}
	}
	if joined[4] {
		t.Errorf("weakest link should have been dropped: %v", sc.Chains)
	}
}

// BuildLinksOrder re-sorts links the way BuildLinks would emit them.
func BuildLinksOrder(links []Link) []Link {
	out := append([]Link(nil), links...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Support > out[j-1].Support; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestSpan(t *testing.T) {
	lengths := func(c int32) int32 { return 100 * (c + 1) }
	if got := Span([]int32{0, 1, 2}, lengths); got != 600 {
		t.Errorf("span = %d", got)
	}
	if got := Span(nil, lengths); got != 0 {
		t.Errorf("empty span = %d", got)
	}
}

func TestBuildEmpty(t *testing.T) {
	sc := Build(nil, 3, 1)
	if len(sc.Chains) != 0 || len(sc.Singletons) != 3 {
		t.Errorf("empty build: %+v", sc)
	}
}
