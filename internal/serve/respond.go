package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
)

// deferredWriter decouples "the mapping stream writes rows" from "the
// HTTP status is committed". Rows buffer in memory until either the
// run finishes (the whole response is then sent atomically, which is
// what lets a failed run — deadline exceeded, injected write fault,
// worker panic under the fail policy — return a clean error status
// with no partial rows) or the buffer crosses commitLimit (a large
// result set then streams with 200 and periodic flushes, bounding
// server memory; a failure after that point truncates the body and
// appends a "# jem-serve: error:" comment line so clients can tell a
// truncated table from a complete one).
type deferredWriter struct {
	hw          http.ResponseWriter
	commitLimit int
	buf         bytes.Buffer
	committed   bool
	sinceFlush  int
	writeErr    error
}

// flushEvery bounds how many bytes a committed (streaming) response
// accumulates before the chunk is pushed to the client.
const flushEvery = 32 << 10

func newDeferredWriter(w http.ResponseWriter, commitLimit int) *deferredWriter {
	return &deferredWriter{hw: w, commitLimit: commitLimit}
}

func (d *deferredWriter) Write(p []byte) (int, error) {
	if d.writeErr != nil {
		return 0, d.writeErr
	}
	if !d.committed {
		d.buf.Write(p)
		if d.buf.Len() >= d.commitLimit {
			d.commit(http.StatusOK)
		}
		return len(p), nil
	}
	n, err := d.hw.Write(p)
	d.writeErr = err
	d.sinceFlush += n
	if err == nil && d.sinceFlush >= flushEvery {
		d.flush()
	}
	return n, err
}

// commit sends the status line and everything buffered so far.
func (d *deferredWriter) commit(status int) {
	if d.committed {
		return
	}
	d.committed = true
	d.hw.WriteHeader(status)
	if d.buf.Len() > 0 {
		_, d.writeErr = d.hw.Write(d.buf.Bytes())
		d.buf.Reset()
		d.flush()
	}
}

func (d *deferredWriter) flush() {
	d.sinceFlush = 0
	if f, ok := d.hw.(http.Flusher); ok {
		f.Flush()
	}
}

// finish ends a successful run: commit 200 if still buffered (setting
// fn's headers first — stats are only knowable at the end, and headers
// can only be set pre-commit) and flush the remainder.
func (d *deferredWriter) finish(setHeaders func(http.Header)) error {
	if !d.committed {
		if setHeaders != nil {
			setHeaders(d.hw.Header())
		}
		d.commit(http.StatusOK)
	}
	d.flush()
	return d.writeErr
}

// fail ends a failed run. Pre-commit the buffered rows are dropped and
// a clean error status goes out (the partial-free contract); post-
// commit the body is already streaming, so the best that can be done
// is a trailing comment line marking the table as truncated.
func (d *deferredWriter) fail(status int, msg string) {
	if !d.committed {
		d.buf.Reset()
		d.hw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		http.Error(d.hw, msg, status)
		d.committed = true
		return
	}
	fmt.Fprintf(d.hw, "# jem-serve: error: %s\n", msg)
	d.flush()
}

// ndjsonWriter transcodes the mapper's TSV row stream into newline-
// delimited JSON on the fly — one object per mapped segment, the
// header line dropped. It exists so format=json costs no second
// mapping pass and no buffering of the result set: the TSV row format
// is the mapper's native streamed output, and re-encoding a 4-field
// row is cheap next to producing it.
type ndjsonWriter struct {
	w         *deferredWriter
	carry     []byte // partial trailing line from the previous Write
	out       []byte // per-call encode buffer, reused
	sawHeader bool
}

func (j *ndjsonWriter) Write(p []byte) (int, error) {
	j.carry = append(j.carry, p...)
	j.out = j.out[:0]
	for {
		nl := bytes.IndexByte(j.carry, '\n')
		if nl < 0 {
			break
		}
		line := j.carry[:nl]
		j.carry = j.carry[nl+1:]
		if !j.sawHeader {
			j.sawHeader = true
			continue
		}
		j.out = appendRowJSON(j.out, line)
	}
	if len(j.out) > 0 {
		if _, err := j.w.Write(j.out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// appendRowJSON renders one TSV row (read_id, end, contig_id,
// shared_trials; "*" marks unmapped) as a JSON object line.
func appendRowJSON(out, line []byte) []byte {
	fields := bytes.Split(line, []byte{'\t'})
	if len(fields) != 4 {
		return out // malformed row; cannot happen from our own writer
	}
	out = append(out, `{"read_id":`...)
	out = strconv.AppendQuote(out, string(fields[0]))
	out = append(out, `,"end":`...)
	out = strconv.AppendQuote(out, string(fields[1]))
	if string(fields[2]) == "*" {
		out = append(out, `,"mapped":false}`...)
	} else {
		out = append(out, `,"mapped":true,"contig_id":`...)
		out = strconv.AppendQuote(out, string(fields[2]))
		out = append(out, `,"shared_trials":`...)
		out = append(out, fields[3]...)
		out = append(out, '}')
	}
	return append(out, '\n')
}
