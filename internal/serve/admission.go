package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by admit when the wait queue is already at
// capacity; the HTTP layer translates it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: admission queue full")

// admission is the server's load-shedding gate: at most maxInFlight
// mapping requests run concurrently, at most maxQueue more wait for a
// slot, and everything beyond that is rejected immediately with
// ErrQueueFull (fail fast beats queueing without bound — a saturated
// mapper gains nothing from a longer queue, it only converts overload
// into latency and memory growth).
//
// Waiting is deadline-aware: a queued request whose context expires
// leaves the queue with the context's error, so a client timeout never
// occupies a wait slot it can no longer use.
type admission struct {
	slots    chan struct{} // buffered to maxInFlight; a held token = running
	queued   atomic.Int64  // requests currently waiting for a token
	maxQueue int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// admit blocks until a slot is free, the queue is full, or ctx is
// done. On success the caller must call the returned release exactly
// once when the request finishes.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot means no queueing at all.
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, ErrQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InFlight returns the number of currently running requests.
func (a *admission) InFlight() int64 { return int64(len(a.slots)) }

// Queued returns the number of requests waiting for a slot.
func (a *admission) Queued() int64 { return a.queued.Load() }
