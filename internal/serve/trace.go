package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
)

// flightMinGap rate-limits flight captures: slow requests arrive in
// bursts exactly when the process can least afford goroutine dumps,
// so at most one capture lands per gap (the recorder counts the rest
// as suppressed).
const flightMinGap = 2 * time.Second

// inflightEntry is one row of the live in-flight table: what the
// request is doing and since when. The table is snapshotted into
// flight captures so a stuck request shows up in every capture taken
// while it is stuck.
type inflightEntry struct {
	index string
	start time.Time
}

// reqObs carries one map request's observability state from the first
// line of handleMap to its deferred finish: trace identity, the root
// span, outcome classification, and the run stats. Every exit path of
// the handler flows through finish, so every request — including 404s,
// 429s and deadline kills — lands in the trace ring and the request
// log exactly once.
type reqObs struct {
	s *Server
	// ctx is the request context stripped of its cancellation
	// (finish runs after the handler returns, when the request
	// context may already be canceled) but keeping its values, so
	// the request-log emission stays correlated with the request.
	ctx     context.Context
	id      obs.TraceID
	root    *obs.Span
	start   time.Time
	index   string
	status  int
	errMsg  string
	admWait time.Duration
	stats   jem.Stats
	// timed marks the paths whose latency feeds the request histogram:
	// admitted requests (success, stream error, queued-past-deadline) —
	// not pre-admission rejections, which would pollute the mapping
	// latency distribution with parameter-validation noise.
	timed bool
	done  bool
}

// beginRequest opens the observability scope for one map request:
// resolve or mint the trace ID, answer it in the X-JEM-Trace-Id
// response header immediately (so every status — 404, 429, 504 —
// carries it), start the root span and register the request in the
// in-flight table.
func (s *Server) beginRequest(w http.ResponseWriter, r *http.Request) *reqObs {
	id := obs.NewTraceID()
	if h := r.Header.Get("X-JEM-Trace-Id"); h != "" {
		if pid, err := obs.ParseTraceID(h); err == nil && !pid.IsZero() {
			id = pid
		}
	}
	w.Header().Set("X-JEM-Trace-Id", id.String())
	ro := &reqObs{
		s:      s,
		ctx:    context.WithoutCancel(r.Context()),
		id:     id,
		root:   obs.NewSpan("request"),
		start:  time.Now(),
		status: http.StatusOK,
	}
	s.inflightMu.Lock()
	s.inflightTab[id] = inflightEntry{start: ro.start}
	s.inflightMu.Unlock()
	return ro
}

// setIndex records which index the request resolved to, on the span
// and in the in-flight table.
func (ro *reqObs) setIndex(name string) {
	ro.index = name
	ro.root.SetAttr("index", name)
	ro.s.inflightMu.Lock()
	if e, ok := ro.s.inflightTab[ro.id]; ok {
		e.index = name
		ro.s.inflightTab[ro.id] = e
	}
	ro.s.inflightMu.Unlock()
}

// fail records the request's terminal status and error message for
// the trace and the request log (it does not write the response).
func (ro *reqObs) fail(status int, msg string) {
	ro.status = status
	ro.errMsg = msg
}

// httpError is fail + http.Error: the one-liner for the handler's
// early-exit paths. The X-JEM-Trace-Id header set in beginRequest
// survives http.Error, so even rejections carry their trace identity.
func (ro *reqObs) httpError(w http.ResponseWriter, msg string, status int) {
	ro.fail(status, msg)
	http.Error(w, msg, status)
}

// finish closes the request's observability scope: end the root span,
// offer the trace to the tail-sampling ring, record the request-log
// entry, observe latency (with the trace ID as the histogram
// exemplar) on timed paths, and trigger the flight recorder when the
// request crossed the slow threshold. Deferred from handleMap; runs
// exactly once.
func (ro *reqObs) finish() {
	if ro.done {
		return
	}
	ro.done = true
	s := ro.s

	s.inflightMu.Lock()
	delete(s.inflightTab, ro.id)
	s.inflightMu.Unlock()

	d := ro.root.End()
	ro.root.SetAttr("status", ro.status)
	t := &obs.Trace{
		ID:       ro.id,
		Root:     ro.root,
		Status:   ro.status,
		Err:      ro.errMsg,
		Start:    ro.start,
		Duration: d,
	}
	s.traces.Add(t)
	s.reqlog.Record(ro.ctx, obs.RequestLogEntry{
		Time:          ro.start,
		TraceID:       ro.id,
		Index:         ro.index,
		Status:        ro.status,
		Err:           ro.errMsg,
		Reads:         ro.stats.Reads,
		Mapped:        ro.stats.Mapped,
		Bad:           ro.stats.BadRecords,
		Postings:      ro.stats.PostingsScanned,
		AdmissionWait: ro.admWait,
		ReadWall:      ro.stats.ReadWall,
		MapWall:       ro.stats.MapWall,
		WriteWall:     ro.stats.WriteWall,
		Duration:      d,
	})
	if ro.timed {
		s.met.latency.ObserveExemplar(d.Seconds(), ro.id.String())
	}
	if s.flight.Exceeded(d) {
		s.flight.Capture(t, []obs.Attr{
			{Key: "inflight", Value: s.adm.InFlight()},
			{Key: "queued", Value: s.adm.Queued()},
			{Key: "inflight_table", Value: s.inflightTable()},
		})
	}
}

// inflightTable renders the live in-flight table as one line per
// request, oldest first — the "what else was running" context a
// flight capture carries.
func (s *Server) inflightTable() string {
	s.inflightMu.Lock()
	type row struct {
		id    obs.TraceID
		entry inflightEntry
	}
	rows := make([]row, 0, len(s.inflightTab))
	for id, e := range s.inflightTab {
		rows = append(rows, row{id, e})
	}
	s.inflightMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].entry.start.Before(rows[j].entry.start) })
	var b strings.Builder
	for _, r := range rows {
		idx := r.entry.index
		if idx == "" {
			idx = "?"
		}
		fmt.Fprintf(&b, "%s index=%s age=%v\n", r.id, idx,
			time.Since(r.entry.start).Round(time.Millisecond))
	}
	return b.String()
}

// handleTraces serves the retained request traces: text span trees by
// default, NDJSON with ?format=json, a single trace with ?id=.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	asJSON := q.Get("format") == "json"
	if idStr := q.Get("id"); idStr != "" {
		id, err := obs.ParseTraceID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		t := s.traces.Find(id)
		if t == nil {
			http.Error(w, "trace not retained (sampled out, evicted, or never seen)", http.StatusNotFound)
			return
		}
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = t.WriteText(w)
		return
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.traces.WriteNDJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.traces.WriteText(w)
}

// handleFlight serves the flight recorder's snapshots: text by
// default, NDJSON with ?format=json.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.flight.WriteNDJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.flight.WriteText(w)
}

// handleRequests serves the ringed request log as NDJSON, newest
// entries last.
func (s *Server) handleRequests(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.reqlog.WriteNDJSON(w)
}
