package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestTraceIDHeaderOnEveryPath pins the header contract: every
// response from /v1/map carries an X-JEM-Trace-Id — success, unknown
// index, bad parameters, and deadline kills alike — and a
// client-supplied ID is echoed back.
func TestTraceIDHeaderOnEveryPath(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{})

	cases := []struct {
		name   string
		url    string
		status int
	}{
		{"success", ts.URL + "/v1/map/asm", http.StatusOK},
		{"unknown index", ts.URL + "/v1/map/nosuch", http.StatusNotFound},
		{"bad format", ts.URL + "/v1/map/asm?format=xml", http.StatusBadRequest},
		{"bad timeout", ts.URL + "/v1/map/asm?timeout=banana", http.StatusBadRequest},
		{"deadline", ts.URL + "/v1/map/asm?timeout=1ns", http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postReads(t, tc.url, w.fastq)
			io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			id := resp.Header.Get("X-JEM-Trace-Id")
			if !traceIDRe.MatchString(id) {
				t.Errorf("X-JEM-Trace-Id = %q, want 16 hex digits", id)
			}
		})
	}

	t.Run("client-supplied id echoed", func(t *testing.T) {
		const want = "deadbeef01234567"
		req, err := http.NewRequest("POST", ts.URL+"/v1/map/asm", bytes.NewReader(w.fastq))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-JEM-Trace-Id", want)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if got := resp.Header.Get("X-JEM-Trace-Id"); got != want {
			t.Errorf("X-JEM-Trace-Id = %q, want the client's %q echoed", got, want)
		}
	})
}

// TestTraceRetrievable drives one request end to end and pulls its
// span tree back out of /debug/traces: per-phase children, per-shard
// gather timings, run stats as attributes — in both the text and the
// NDJSON rendering.
func TestTraceRetrievable(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{})

	const id = "feedface87654321"
	req, err := http.NewRequest("POST", ts.URL+"/v1/map/asm", bytes.NewReader(w.fastq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-JEM-Trace-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", resp.StatusCode)
	}

	status, text := get(t, ts.URL+"/debug/traces?id="+id)
	if status != http.StatusOK {
		t.Fatalf("/debug/traces?id: status %d: %s", status, text)
	}
	for _, want := range []string{
		"trace " + id, "request", "admission", "read", "sketch",
		"gather", "shard00", "shard03", "write", "postings=",
		"index=asm", "status=200",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace text missing %q:\n%s", want, text)
		}
	}

	status, js := get(t, ts.URL+"/debug/traces?id="+id+"&format=json")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces json: status %d", status)
	}
	var tj struct {
		TraceID string `json:"trace_id"`
		Status  int    `json:"status"`
		Root    struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(js), &tj); err != nil {
		t.Fatalf("parsing trace JSON: %v\n%s", err, js)
	}
	if tj.TraceID != id || tj.Status != 200 || tj.Root.Name != "request" {
		t.Errorf("trace JSON header wrong: %+v", tj)
	}
	names := map[string]bool{}
	for _, c := range tj.Root.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"admission", "read", "sketch", "gather", "write"} {
		if !names[want] {
			t.Errorf("trace JSON missing child %q (have %v)", want, names)
		}
	}

	// The full listing includes the trace too.
	if _, all := get(t, ts.URL+"/debug/traces"); !strings.Contains(all, id) {
		t.Error("/debug/traces listing missing the trace")
	}
	// An unknown ID is a 404, not an empty page.
	if status, _ := get(t, ts.URL+"/debug/traces?id=0000000000000000"); status != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", status)
	}
}

// TestSlowRequestFlightRecorder sets a slow threshold every mapping
// request exceeds and asserts the flight recorder captures the
// request: goroutine profile, span tree, admission state — and that
// the trace ring keeps the request as slow.
func TestSlowRequestFlightRecorder(t *testing.T) {
	w := getWorld(t)
	_, ts := newTestServer(t, serve.Config{SlowRequest: time.Microsecond})

	const id = "ca11ab1e5caff01d"
	req, err := http.NewRequest("POST", ts.URL+"/v1/map/asm", bytes.NewReader(w.fastq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-JEM-Trace-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", resp.StatusCode)
	}

	status, flight := get(t, ts.URL+"/debug/flight")
	if status != http.StatusOK {
		t.Fatalf("/debug/flight: status %d", status)
	}
	for _, want := range []string{
		"trace=" + id, "exceeded slow threshold",
		"--- span tree", "request", "--- goroutines", "goroutine",
		"inflight:", "queued:",
	} {
		if !strings.Contains(flight, want) {
			t.Errorf("/debug/flight missing %q:\n%.2000s", want, flight)
		}
	}

	_, js := get(t, ts.URL+"/debug/flight?format=json")
	var fj struct {
		TraceID    string `json:"trace_id"`
		Goroutines string `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(js, "\n", 2)[0]), &fj); err != nil {
		t.Fatalf("parsing flight JSON: %v", err)
	}
	if fj.TraceID != id || !strings.Contains(fj.Goroutines, "goroutine") {
		t.Errorf("flight JSON wrong: trace=%s", fj.TraceID)
	}

	// The same request was tail-kept as slow in the trace ring.
	_, tr := get(t, ts.URL+"/debug/traces?id="+id)
	if !strings.Contains(tr, "kept=slow") {
		t.Errorf("slow request not kept as slow:\n%s", tr)
	}
}

// TestRequestLogEmitted wires a slog JSON logger into the server and
// asserts one structured line per request lands in it, and that
// /debug/requests serves the ringed NDJSON with the phase breakdown.
func TestRequestLogEmitted(t *testing.T) {
	w := getWorld(t)
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, ts := newTestServer(t, serve.Config{Logger: logger})

	const id = "0123456789abcdef"
	req, err := http.NewRequest("POST", ts.URL+"/v1/map/asm", bytes.NewReader(w.fastq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-JEM-Trace-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()

	logged := logBuf.String()
	for _, want := range []string{`"msg":"map request"`, `"trace_id":"` + id + `"`, `"index":"asm"`, `"status":200`} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %s:\n%s", want, logged)
		}
	}

	_, nd := get(t, ts.URL+"/debug/requests")
	var entry struct {
		TraceID    string `json:"trace_id"`
		Status     int    `json:"status"`
		Reads      int    `json:"reads"`
		MapWallNS  int64  `json:"map_wall_ns"`
		DurationNS int64  `json:"duration_ns"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(nd, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("parsing /debug/requests: %v\n%s", err, nd)
	}
	if entry.TraceID != id || entry.Status != 200 || entry.Reads == 0 || entry.DurationNS <= 0 {
		t.Errorf("/debug/requests entry wrong: %+v", entry)
	}

	// Failed requests log at warning/error level with the error text.
	resp = postReads(t, ts.URL+"/v1/map/asm?timeout=1ns", w.fastq)
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(logBuf.String(), "deadline exceeded") {
		t.Error("request log missing the deadline error line")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the slog handler
// (requests log from handler goroutines while the test reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObsSoakBounded is the memory-bound acceptance test: thousands of
// requests through a server with small rings, then every retention
// surface — trace ring, request-log ring, flight ring, tracer roots —
// must still be at or under its bound.
func TestObsSoakBounded(t *testing.T) {
	w := getWorld(t)
	var logBuf syncBuffer
	cfg := serve.Config{
		TraceRing:      64,
		TraceSampleN:   8,
		RequestLogRing: 128,
		LogSampleN:     50,
		FlightRing:     4,
		SlowRequest:    30 * time.Second, // nothing here is slow
		Logger:         slog.New(slog.NewJSONHandler(&logBuf, nil)),
		MaxInFlight:    8,
		MaxQueue:       1024,
	}
	_, ts := newTestServer(t, cfg)

	// One-read FASTQ body: small enough that 10k requests stay fast.
	r0 := w.ds.Reads[0]
	body := []byte(fmt.Sprintf("@%s\n%s\n+\n%s\n", r0.ID, r0.Seq, strings.Repeat("I", len(r0.Seq))))

	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < n; i += clients {
				resp, err := http.Post(ts.URL+"/v1/map/asm", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	_, traces := get(t, ts.URL+"/debug/traces")
	var retained, seen, kept int
	if _, err := fmt.Sscanf(traces, "# %d traces retained of %d seen (%d kept by policy)",
		&retained, &seen, &kept); err != nil {
		t.Fatalf("parsing /debug/traces header: %v\n%.200s", err, traces)
	}
	if retained > cfg.TraceRing {
		t.Errorf("trace ring retained %d > cap %d", retained, cfg.TraceRing)
	}
	if seen < n {
		t.Errorf("trace ring saw %d requests, want ≥ %d", seen, n)
	}
	if kept >= seen {
		t.Errorf("sampling kept everything (%d of %d) at 1-in-%d", kept, seen, cfg.TraceSampleN)
	}

	_, nd := get(t, ts.URL+"/debug/requests")
	if lines := strings.Count(nd, "\n"); lines > cfg.RequestLogRing {
		t.Errorf("/debug/requests has %d lines > ring cap %d", lines, cfg.RequestLogRing)
	}
	// The emitted log is sampled: far fewer lines than requests.
	if emitted := strings.Count(logBuf.String(), "\n"); emitted > n/10 {
		t.Errorf("slog emitted %d lines for %d ok requests at 1-in-%d", emitted, n, cfg.LogSampleN)
	}

	if _, flight := get(t, ts.URL+"/debug/flight"); strings.Contains(flight, "exceeded slow threshold") {
		t.Error("flight recorder captured fast requests")
	}
}
