package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// version is one generation of a served index: the sealed mapper plus
// the bookkeeping that makes hot-swap drainable. Requests pin the
// version they started on, so a swap never invalidates in-flight work
// — old-generation requests finish on the old mapper while new
// arrivals route to the new one.
type version struct {
	mapper   *jem.Mapper
	gen      int64
	inflight atomic.Int64 // requests currently mapping on this version
	served   atomic.Int64 // requests completed on this version
}

// servedIndex is a named reference index behind an atomic pointer.
// Swap replaces the pointer; acquire/release pin a version across one
// request.
type servedIndex struct {
	name string
	cur  atomic.Pointer[version]
}

// acquire pins the current version for one request. The retry loop
// closes the load/increment race with a concurrent swap: if the
// pointer moved while we were incrementing, the increment may have
// landed on a version the swapper already began draining, so undo and
// take the new one — the drain wait then cannot miss us.
func (ix *servedIndex) acquire() *version {
	for {
		v := ix.cur.Load()
		v.inflight.Add(1)
		if ix.cur.Load() == v {
			return v
		}
		v.inflight.Add(-1)
	}
}

func (v *version) release() {
	v.served.Add(1)
	v.inflight.Add(-1)
}

// swap atomically installs a new mapper generation and returns the
// displaced version (never nil).
func (ix *servedIndex) swap(m *jem.Mapper) *version {
	old := ix.cur.Load()
	next := &version{mapper: m, gen: old.gen + 1}
	ix.cur.Store(next)
	return old
}

// drain waits until every request pinned to v has finished, polling
// the in-flight count, or until ctx expires. It reports whether the
// drain completed and how long it waited. Polling (rather than a
// WaitGroup) keeps release on the request hot path to one atomic add,
// and a swap is rare enough that millisecond-granularity waiting is
// free. One ticker serves the whole wait — time.After in the loop
// would arm a fresh runtime timer every millisecond, and each lives
// until it fires even after the drain completes.
func drain(ctx context.Context, v *version) (drained bool, waited time.Duration) {
	start := time.Now()
	if v.inflight.Load() == 0 {
		return true, time.Since(start)
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for v.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return false, time.Since(start)
		case <-tick.C:
		}
	}
	return true, time.Since(start)
}

// indexSet is the server's named-index table. The map itself is
// mutated only by AddIndex (and guarded by mu); lookups take the lock
// briefly and all per-request state lives in the servedIndex versions.
type indexSet struct {
	mu      sync.Mutex
	byName  map[string]*servedIndex
	ordered []string // registration order, for stable listings
}

func newIndexSet() *indexSet {
	return &indexSet{byName: make(map[string]*servedIndex)}
}

// add registers a new named index (or swaps an existing name) and
// returns the servedIndex. Used at startup and by the swap endpoint.
func (s *indexSet) add(name string, m *jem.Mapper) (*servedIndex, *version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix, ok := s.byName[name]; ok {
		return ix, ix.swap(m)
	}
	ix := &servedIndex{name: name}
	ix.cur.Store(&version{mapper: m, gen: 1})
	s.byName[name] = ix
	s.ordered = append(s.ordered, name)
	return ix, nil
}

func (s *indexSet) get(name string) (*servedIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok := s.byName[name]
	return ix, ok
}

// sole returns the only index when exactly one is loaded — the
// default target for /v1/map without an explicit index name.
func (s *indexSet) sole() (*servedIndex, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ordered) != 1 {
		return nil, false
	}
	return s.byName[s.ordered[0]], true
}

// list snapshots the registered indexes in registration order.
func (s *indexSet) list() []*servedIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*servedIndex, 0, len(s.ordered))
	for _, name := range s.ordered {
		out = append(out, s.byName[name])
	}
	return out
}

func (s *indexSet) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byName)
}
